// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per figure, plus the headline numbers and the
// reproduction-specific ablations). Run with:
//
//	go test -bench=. -benchmem              # smoke budget, minutes total
//	go test -bench=Fig2 -benchtime=1x -tags=full
//
// Each iteration regenerates the complete figure; reported metrics therefore
// measure the cost of one full reproduction of that experiment.
package winofault

import (
	"context"
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// benchConfig picks the experiment budget: -short (and the default bench
// run) uses the smoke scale so the whole suite completes in a few minutes.
func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	if testing.Short() {
		return experiments.Smoke()
	}
	cfg := experiments.Smoke()
	cfg.Samples = 12
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (neuron- vs operation-level FI).
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2 (network-wise accuracy vs BER).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3 (layer-wise sensitivity).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4 (operation-type sensitivity).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (fine-grained TMR overhead).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (voltage vs BER vs accuracy).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (voltage-scaled energy).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkHeadline regenerates the paper's abstract summary numbers.
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// BenchmarkAblationSemantics compares the three fault semantics.
func BenchmarkAblationSemantics(b *testing.B) { benchExperiment(b, "semantics") }

// BenchmarkAblationTile compares winograd F(2x2,3x3) vs F(4x4,3x3).
func BenchmarkAblationTile(b *testing.B) { benchExperiment(b, "tile") }

// Engine microbenchmarks: the raw inference cost underlying every
// experiment, per engine.

func benchForward(b *testing.B, kind nn.EngineKind) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	in := tensor.Quantize(
		tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
		fixed.Int16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in, nil)
	}
}

// BenchmarkForwardDirect measures one VGG19-tiny inference, direct engine.
func BenchmarkForwardDirect(b *testing.B) { benchForward(b, nn.Direct) }

// BenchmarkForwardWinograd measures one VGG19-tiny inference, winograd engine.
func BenchmarkForwardWinograd(b *testing.B) { benchForward(b, nn.Winograd) }

// BenchmarkForwardCtxReuse measures the inference with a reused ExecContext,
// the per-worker configuration of the campaign scheduler (amortizes per-pass
// shape/census setup across Monte-Carlo rounds).
func BenchmarkForwardCtxReuse(b *testing.B) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: nn.Direct, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	in := tensor.Quantize(
		tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
		fixed.Int16)
	ctx := net.NewExecContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardCtx(ctx, in, nil)
	}
}

// benchForwardCtx measures the steady-state campaign hot path: a reused
// ExecContext whose scratch arenas are already warm, fault-free rounds.
// allocs/op must stay 0 (see TestForwardCtxAllocFree); ns/op is the paired
// before/after metric the CI benchmark-delta step compares across commits.
// backend selects the compute backend ("" = default scalar); results are
// bit-identical either way, so the scalar/blocked pairs below measure the
// pure wall-clock effect of the blocked kernels.
func benchForwardCtx(b *testing.B, kind nn.EngineKind, backend string) {
	bk, err := kernel.Get(backend)
	if err != nil {
		b.Fatal(err)
	}
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	in := tensor.Quantize(
		tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
		fixed.Int16)
	ctx := net.NewExecContext()
	ctx.UseBackend(bk)
	net.ForwardCtx(ctx, in, nil) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardCtx(ctx, in, nil)
	}
}

// BenchmarkForwardCtxDirect is the steady-state direct-engine forward pass.
func BenchmarkForwardCtxDirect(b *testing.B) { benchForwardCtx(b, nn.Direct, "") }

// BenchmarkForwardCtxWinograd is the steady-state winograd forward pass.
func BenchmarkForwardCtxWinograd(b *testing.B) { benchForwardCtx(b, nn.Winograd, "") }

// BenchmarkForwardCtxBlocked is BenchmarkForwardCtxWinograd on the blocked
// backend (paired-output-channel Hadamard accumulation).
func BenchmarkForwardCtxBlocked(b *testing.B) { benchForwardCtx(b, nn.Winograd, "blocked") }

// BenchmarkForwardCtxBlockedDirect is BenchmarkForwardCtxDirect on the
// blocked backend (4-wide output-column MAC blocking).
func BenchmarkForwardCtxBlockedDirect(b *testing.B) { benchForwardCtx(b, nn.Direct, "blocked") }

// noEventInjector is a non-nil injector whose rounds carry no faults — the
// shape of the overwhelming majority of rounds at realistic BERs.
type noEventInjector struct{}

func (noEventInjector) OpEvents(int, fault.Census) []fault.Event { return nil }
func (noEventInjector) Neuron(int, *tensor.QTensor)              {}

// BenchmarkForwardCtxDelta measures the steady-state delta-execution round
// with an empty event stream: the pass reduces to collecting events, scanning
// the dirty set and returning the cached golden logits. This is the unit the
// campaign scheduler runs thousands of times per sweep at low BERs; allocs/op
// must stay 0 (the golden-snapshot plane is part of the arena contract,
// enforced by TestForwardDeltaAllocFree).
func BenchmarkForwardCtxDelta(b *testing.B) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: nn.Winograd, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	in := tensor.Quantize(
		tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
		fixed.Int16)
	ctx := net.NewExecContext()
	inj := nn.Injector(noEventInjector{})
	net.ForwardDelta(ctx, in, inj) // capture the golden plane
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardDelta(ctx, in, inj)
	}
}

// Campaign-scheduler benchmarks: one 8-point BER sweep of a winograd
// VGG19-tiny campaign at different worker counts. Accuracies are
// bit-identical across all of these; only wall-clock changes. On an N-core
// host SweepWorkers4 should be at least ~2x faster than SweepWorkers1 for
// N >= 4 (the 8x2 = 16 independent units keep 4 workers saturated).
func benchSweepWorkers(b *testing.B, workers int) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: nn.Winograd, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	set := dataset.ForModel(arch.Dataset, 8, arch.In.H, 99, fixed.Int16)
	runner := faultsim.New(net, set.Batch(0, 8))
	bers := []float64{1e-11, 3e-11, 1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 1e-7}
	opts := faultsim.Options{Seed: 1, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Sweep(context.Background(), bers, opts, 2)
	}
}

// BenchmarkSweepWorkers1 is the serial baseline of the scheduler benchmark.
func BenchmarkSweepWorkers1(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepWorkers4 is the same sweep on four workers.
func BenchmarkSweepWorkers4(b *testing.B) { benchSweepWorkers(b, 4) }

// BenchmarkSweepWorkersMax is the same sweep at the GOMAXPROCS default.
func BenchmarkSweepWorkersMax(b *testing.B) { benchSweepWorkers(b, 0) }

// Delta-execution benchmarks: a serial sweep at the golden-fixture BERs
// {3e-11, 3e-10, 1e-9} — the regime the accuracy fixtures pin, where most
// Monte-Carlo rounds carry zero or very few fault events — with the
// fault-cone delta path on (the default) versus forced-off full execution.
// The Delta/DeltaOff ratio is the headline win of delta execution; accuracies
// are bit-identical between the two (see TestDeltaMatchesFullExecution).
// allocs/op of the delta variant pins the steady state: the golden plane and
// scratch arenas are recycled across rounds, so allocations stay a small
// per-unit constant (injector + reduction bookkeeping) instead of scaling
// with the node count or the round's recompute work.
func benchSweepDelta(b *testing.B, enabled bool) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: nn.Winograd, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	set := dataset.ForModel(arch.Dataset, 8, arch.In.H, 99, fixed.Int16)
	runner := faultsim.New(net, set.Batch(0, 8))
	bers := []float64{3e-11, 3e-10, 1e-9}
	opts := faultsim.Options{Seed: 1, Workers: 1, DeltaExec: &enabled}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Sweep(context.Background(), bers, opts, 2)
	}
}

// BenchmarkSweepDelta is the fixture-BER sweep with delta execution.
func BenchmarkSweepDelta(b *testing.B) { benchSweepDelta(b, true) }

// BenchmarkSweepDeltaOff is the same sweep forced through full execution.
func BenchmarkSweepDeltaOff(b *testing.B) { benchSweepDelta(b, false) }

// BenchmarkSweepBlocked is the fixture-BER sweep (delta on, serial) with the
// blocked compute backend — the whole-campaign counterpart of the ForwardCtx
// backend pairs. Accuracies are bit-identical to BenchmarkSweepDelta's; only
// wall-clock may differ, and allocs/op must stay the same small per-unit
// constant (the backend stamp allocates nothing).
func BenchmarkSweepBlocked(b *testing.B) {
	arch := models.VGG19(models.Tiny)
	net := models.Build(arch, nn.Config{
		Kind: nn.Winograd, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
	})
	set := dataset.ForModel(arch.Dataset, 8, arch.In.H, 99, fixed.Int16)
	runner := faultsim.New(net, set.Batch(0, 8))
	bers := []float64{3e-11, 3e-10, 1e-9}
	opts := faultsim.Options{Seed: 1, Workers: 1, Backend: "blocked"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Sweep(context.Background(), bers, opts, 2)
	}
}
