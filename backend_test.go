package winofault

import (
	"fmt"
	"testing"

	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// These tests pin the kernel seam's central claim end to end: every compute
// backend is bit-identical, not merely statistically close. The kernel-level
// half (per-primitive differential tests over random operands) lives in
// internal/kernel; here whole campaigns and whole forward passes must agree
// to the byte.

// sweepWith runs one sweep under the given backend/workers/delta knobs and
// returns the points.
func sweepWith(t *testing.T, cfg Config, bers []float64) []Point {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Sweep(bers)
}

// TestBackendSweepBitIdentical compares full statistical campaigns between
// the scalar and blocked backends across the model zoo and both engines; for
// vgg19 additionally across worker counts and delta execution on/off, and
// for one hardware-located stuckpe scenario. Accuracies must be equal as
// float64 bit patterns — any divergence means a backend changed an integer
// sum somewhere.
func TestBackendSweepBitIdentical(t *testing.T) {
	bers := []float64{3e-11, 3e-10, 1e-9}
	base := Config{
		WidthMult: 0.125, InputSize: 16, Samples: 8, Rounds: 2, Seed: 3, Workers: 4,
	}
	for _, model := range []string{"vgg19", "resnet50", "densenet169", "googlenet"} {
		for _, engine := range []Engine{Direct, Winograd} {
			t.Run(fmt.Sprintf("%s/%v", model, engine), func(t *testing.T) {
				cfg := base
				cfg.Model, cfg.Engine = model, engine
				cfg.Backend = "scalar"
				want := sweepWith(t, cfg, bers)
				cfg.Backend = "blocked"
				got := sweepWith(t, cfg, bers)
				for i := range want {
					if want[i] != got[i] {
						t.Errorf("point %d: scalar %+v != blocked %+v", i, want[i], got[i])
					}
				}
			})
		}
	}

	// Workers x delta: the backend stamp must survive context pooling and
	// the delta-execution golden planes at every parallelism level.
	t.Run("vgg19/workers-delta", func(t *testing.T) {
		for _, workers := range []int{1, 2, 8} {
			for _, delta := range []bool{true, false} {
				d := delta
				cfg := base
				cfg.Model, cfg.Engine = "vgg19", Winograd
				cfg.Workers, cfg.DeltaExec = workers, &d
				cfg.Backend = "scalar"
				want := sweepWith(t, cfg, bers)
				cfg.Backend = "blocked"
				got := sweepWith(t, cfg, bers)
				for i := range want {
					if want[i] != got[i] {
						t.Errorf("workers=%d delta=%t point %d: scalar %+v != blocked %+v",
							workers, delta, i, want[i], got[i])
					}
				}
			}
		}
	})

	// Hardware-located events replay on the reference path regardless of
	// backend; the surrounding fault-free tiles do not, so a stuckpe
	// campaign exercises both sides of the seam in one sweep.
	t.Run("vgg19/stuckpe", func(t *testing.T) {
		sc := Scenario{Kind: "stuckpe", Row: 1, Col: 2, Bit: 24}
		results := map[string][]Point{}
		for _, backend := range []string{"scalar", "blocked"} {
			cfg := base
			cfg.Model, cfg.Engine, cfg.Backend = "vgg19", Winograd, backend
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pts, err := sys.SweepHW(sc, bers)
			if err != nil {
				t.Fatal(err)
			}
			results[backend] = pts
		}
		for i := range results["scalar"] {
			if results["scalar"][i] != results["blocked"][i] {
				t.Errorf("stuckpe point %d: scalar %+v != blocked %+v",
					i, results["scalar"][i], results["blocked"][i])
			}
		}
	})
}

// diffInjector feeds identical deterministic (seed, round, node) fault events
// to every context it is used with, mirroring faultsim's statistical sampler.
type diffInjector struct {
	seed  uint64
	round uint64
	ber   float64
	fmt   fixed.Format
}

func (in *diffInjector) OpEvents(li int, census fault.Census) []fault.Event {
	evs := fault.Sample(rng.New(in.seed).Split(in.round).Split(uint64(li)), census, census,
		fault.Model{BER: in.ber, Semantics: fault.ResultFlip}, in.fmt, fault.Protection{})
	conv.MarkResultFlip(evs)
	return evs
}

func (in *diffInjector) Neuron(int, *tensor.QTensor) {}

// TestBackendRandomizedDifferential feeds the exact same randomized fault
// rounds to two execution contexts — one per backend — and requires the
// output logits tensors to be element-for-element equal. Unlike the sweep
// comparison (which reduces to accuracies), this catches a backend divergence
// in any single output element, faulty rounds included.
func TestBackendRandomizedDifferential(t *testing.T) {
	for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
		arch := models.VGG19(models.Tiny)
		net := models.Build(arch, nn.Config{
			Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
		})
		in := tensor.Quantize(
			tensor.New(tensor.Shape{N: 2, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
			fixed.Int16)
		ctxs := map[string]*nn.ExecContext{}
		for _, backend := range []string{"scalar", "blocked"} {
			bk, err := kernel.Get(backend)
			if err != nil {
				t.Fatal(err)
			}
			ctx := net.NewExecContext()
			ctx.UseBackend(bk)
			ctxs[backend] = ctx
		}
		for round := uint64(0); round < 8; round++ {
			// Round 0 is fault-free; later rounds draw dense event sets so
			// replay tiles and fast tiles mix within one pass.
			ber := 0.0
			if round > 0 {
				ber = 1e-9 * float64(round)
			}
			logits := map[string][]int32{}
			for backend, ctx := range ctxs {
				inj := &diffInjector{seed: 11, round: round, ber: ber, fmt: fixed.Int16}
				out := net.ForwardCtx(ctx, in, inj)
				logits[backend] = append([]int32(nil), out.Data...)
			}
			want, got := logits["scalar"], logits["blocked"]
			if len(want) != len(got) {
				t.Fatalf("%v round %d: logits length %d != %d", kind, round, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v round %d: logits[%d] scalar %d != blocked %d",
						kind, round, i, want[i], got[i])
				}
			}
		}
	}
}
