package winofault

import (
	"context"
	"testing"
)

// TestShardedSweepBitIdentical: splitting a sweep's unit index space into
// contiguous shards, computing each shard's counts independently (as remote
// workers would) and reducing the merged counts must reproduce SweepCtx
// bit-for-bit — the invariant the distributed campaign path rests on.
func TestShardedSweepBitIdentical(t *testing.T) {
	bers := []float64{0, 1e-9, 1e-8}
	sys, err := New(testConfig(Winograd))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.SweepCtx(context.Background(), bers)
	if err != nil {
		t.Fatal(err)
	}
	total := sys.SweepUnits(bers)
	if total == 0 {
		t.Fatal("sweep has no units")
	}
	for _, shards := range []int{1, 2, total} {
		var counts []int
		for sh := 0; sh < shards; sh++ {
			lo, hi := sh*total/shards, (sh+1)*total/shards
			// A fresh System per shard: shard workers never share state.
			remote, err := New(testConfig(Winograd))
			if err != nil {
				t.Fatal(err)
			}
			part, err := remote.SweepUnitCounts(context.Background(), bers, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, part...)
		}
		got, err := sys.SweepFromCounts(bers, counts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%d shards: point %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardedLayersBitIdentical extends the invariant to the
// layer-sensitivity batch.
func TestShardedLayersBitIdentical(t *testing.T) {
	const ber = 3e-9
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	wantBase, wantLayers, err := sys.LayerSensitivitiesCtx(context.Background(), ber)
	if err != nil {
		t.Fatal(err)
	}
	total := sys.LayerUnits(ber)
	var counts []int
	for _, r := range [][2]int{{0, total / 2}, {total / 2, total}} {
		remote, err := New(testConfig(Direct))
		if err != nil {
			t.Fatal(err)
		}
		part, err := remote.LayerUnitCounts(context.Background(), ber, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, part...)
	}
	base, layers, err := sys.LayersFromCounts(ber, counts)
	if err != nil {
		t.Fatal(err)
	}
	if base != wantBase {
		t.Errorf("baseline %v, want %v", base, wantBase)
	}
	if len(layers) != len(wantLayers) {
		t.Fatalf("layer count %d, want %d", len(layers), len(wantLayers))
	}
	for i := range wantLayers {
		if layers[i] != wantLayers[i] {
			t.Errorf("layer %d: %+v, want %+v", i, layers[i], wantLayers[i])
		}
	}
}

// TestShardRangeAndCountErrors: wire-facing range/length mistakes are
// errors, never panics.
func TestShardRangeAndCountErrors(t *testing.T) {
	bers := []float64{1e-9}
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	total := sys.SweepUnits(bers)
	if _, err := sys.SweepUnitCounts(context.Background(), bers, 0, total+1); err == nil {
		t.Error("oversized range did not error")
	}
	if _, err := sys.SweepUnitCounts(context.Background(), bers, -1, 0); err == nil {
		t.Error("negative range did not error")
	}
	if _, err := sys.SweepFromCounts(bers, make([]int, total+2)); err == nil {
		t.Error("mismatched counts length did not error")
	}
	if _, _, err := sys.LayersFromCounts(1e-9, nil); err == nil {
		t.Error("empty layer counts did not error")
	}
	if _, err := sys.LayerUnitCounts(context.Background(), 1e-9, 5, 2); err == nil {
		t.Error("inverted layer range did not error")
	}
}
