package winofault_test

import (
	"fmt"
	"log"

	winofault "repro"
)

// ExampleNew shows the one-call setup of an evaluated system and the
// operation-census comparison at the heart of the paper: winograd executes
// the same network with ~2.25x fewer multiplications.
func ExampleNew() {
	st, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Direct})
	if err != nil {
		log.Fatal(err)
	}
	wg, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Winograd})
	if err != nil {
		log.Fatal(err)
	}
	_, _, stMul, _ := st.OpCounts()
	_, _, wgMul, _ := wg.OpCounts()
	fmt.Printf("direct %.2fG muls, winograd %.2fG muls, ratio %.2f\n",
		float64(stMul)/1e9, float64(wgMul)/1e9, float64(stMul)/float64(wgMul))
	// Output: direct 0.40G muls, winograd 0.18G muls, ratio 2.25
}

// ExampleSystem_Accuracy demonstrates the golden-agreement contract: with no
// faults injected, the system agrees with itself perfectly.
func ExampleSystem_Accuracy() {
	sys, err := winofault.New(winofault.Config{Model: "googlenet", Samples: 8, InputSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Accuracy(0))
	// Output: 1
}
