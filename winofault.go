// Package winofault is a Go reproduction of "Winograd Convolution: A
// Perspective from Fault Tolerance" (Xue et al., DAC 2022): an
// operation-level soft-error injection platform for quantized CNNs executed
// with standard or winograd convolution, plus the paper's two applications —
// fine-grained TMR protection planning and voltage-scaled energy
// exploration on a DNN-Engine-class accelerator.
//
// The package is a thin, stable facade over the internal engine packages;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. Typical use:
//
//	sys, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Winograd})
//	if err != nil { ... }
//	acc := sys.Accuracy(3e-10) // golden-agreement accuracy under soft errors
package winofault

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/fixed"
	"repro/internal/hwfault"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/tmr"
	"repro/internal/volt"
	"repro/internal/winograd"
)

// Engine selects the convolution algorithm.
type Engine int

const (
	// Direct is standard convolution (ST-Conv).
	Direct Engine = iota
	// Winograd is winograd convolution (WG-Conv) with DWM decomposition for
	// kernels other than 3x3 stride 1.
	Winograd
)

// Precision selects the fixed-point quantization width.
type Precision int

const (
	// Int16 is 16-bit fixed point (Q8.8), the paper's main configuration.
	Int16 Precision = iota
	// Int8 is 8-bit fixed point (Q4.4).
	Int8
)

// Semantics selects the fault-injection semantics.
type Semantics int

const (
	// ResultFlip flips one bit of the result register of a sampled
	// operation (the platform default; the paper's stated methodology).
	ResultFlip Semantics = iota
	// OperandFlip flips one bit of one operand instead (the paper's
	// motivating observation, kept for ablation).
	OperandFlip
	// NeuronFlip is TensorFI/PyTorchFI-style neuron-level injection, which
	// cannot distinguish the two engines (paper Fig. 1).
	NeuronFlip
)

// Config describes one evaluated system.
type Config struct {
	// Model is one of "vgg19", "resnet50", "densenet169", "googlenet".
	Model string
	// Engine selects standard or winograd convolution.
	Engine Engine
	// Precision selects int8 or int16 quantization (default Int16).
	Precision Precision
	// Semantics selects the fault model (default ResultFlip).
	Semantics Semantics
	// WidthMult scales channel counts (default 0.125; 1 = paper scale).
	WidthMult float64
	// InputSize overrides the input resolution (default 32).
	InputSize int
	// Samples is the number of synthetic evaluation images (default 24).
	Samples int
	// Rounds is the Monte-Carlo rounds per accuracy estimate (default 2).
	Rounds int
	// Seed makes everything reproducible (default 1).
	Seed uint64
	// TileF4 switches winograd from F(2x2,3x3) to F(4x4,3x3).
	TileF4 bool
	// Workers caps the fault-campaign parallelism (0 = GOMAXPROCS, 1 =
	// serial). Every result is bit-identical for any worker count; Workers
	// only changes wall-clock time.
	Workers int
	// DeltaExec controls the fault-cone delta-execution fast path: per
	// Monte-Carlo round only the nodes downstream of that round's fault
	// events are recomputed against each worker's cached golden
	// activations. Like Workers it can only change wall-clock time —
	// results are bit-identical either way — so nil (the default) means
	// enabled; point at false to force full re-execution of every round.
	// Neuron-flip semantics always run the full path.
	DeltaExec *bool
	// Backend names the compute backend for the fault-free hot paths:
	// "scalar" (the bit-exactness reference) or "blocked" (hand-blocked
	// kernels); "" means the process default. Backends are bit-identical by
	// contract, so like Workers and DeltaExec this only changes wall-clock
	// time. Unknown names are rejected by New.
	Backend string
	// Scenario optionally locates the campaign's faults on the DNN-Engine
	// PE array (stuck PE, SEU burst, voltage-stressed region) instead of
	// drawing them i.i.d. over the op census. Requires ResultFlip semantics
	// and strictly positive BERs; see the Scenario type.
	Scenario *Scenario
}

// Scenario is a hardware-located fault configuration mapped onto the
// DNN-Engine-class 16x16 PE array (see internal/hwfault). It is shared
// between Config and the CampaignRequest wire form; the zero value of every
// optional field means the platform default, so a request spelling a
// default explicitly is the same campaign as one omitting it.
//
// Kinds:
//
//	"stuckpe"    — every MAC scheduled onto PE (Row, Col) has product bit
//	               Bit flipped (a worst-case pinned bit). A negative Row,
//	               Col or Bit is sampled deterministically from the seed.
//	"burst"      — one SEU burst per Monte-Carlo round: a sampled (PE,
//	               cycle-window) corrupts Span consecutive MAC slots.
//	"voltregion" — the inclusive PE rectangle (Row0,Col0)-(Row1,Col1) runs
//	               at supply V and draws bit flips at the voltage model's
//	               timing-error BER, while the rest of the array keeps the
//	               campaign's swept (nominal) BER.
type Scenario struct {
	// Kind is "stuckpe", "burst" or "voltregion".
	Kind string `json:"kind"`
	// Row, Col locate the stuck PE (stuckpe); -1 = sampled from the seed.
	Row int `json:"row,omitempty"`
	Col int `json:"col,omitempty"`
	// Bit is the corrupted product-register bit (stuckpe), counted from the
	// LSB; -1 = sampled from the seed.
	Bit int `json:"bit,omitempty"`
	// Span is the MAC slots corrupted per burst (burst; default 64).
	Span int `json:"span,omitempty"`
	// Row0..Col1 bound the stressed region, inclusive (voltregion).
	Row0 int `json:"row0,omitempty"`
	Col0 int `json:"col0,omitempty"`
	Row1 int `json:"row1,omitempty"`
	Col1 int `json:"col1,omitempty"`
	// V is the region's supply voltage in volts (voltregion).
	V float64 `json:"v,omitempty"`
}

// compile translates the wire scenario into the internal form, validated
// against the DNN-Engine array and the campaign's quantization format.
func (s Scenario) compile(f fixed.Format) (hwfault.Scenario, error) {
	var hs hwfault.Scenario
	switch s.Kind {
	case "stuckpe":
		hs = hwfault.Scenario{Kind: hwfault.StuckPE, PE: hwfault.PE{Row: s.Row, Col: s.Col}, Bit: s.Bit}
	case "burst":
		hs = hwfault.Scenario{Kind: hwfault.BurstSEU, Span: int64(s.Span)}
	case "voltregion":
		hs = hwfault.Scenario{
			Kind:   hwfault.VoltRegion,
			Region: hwfault.Region{Row0: s.Row0, Col0: s.Col0, Row1: s.Row1, Col1: s.Col1},
			V:      s.V,
		}
	default:
		return hs, fmt.Errorf("winofault: unknown scenario kind %q (want stuckpe, burst or voltregion)", s.Kind)
	}
	hs = hs.WithDefaults()
	if err := hs.Validate(systolic.DNNEngine16, f); err != nil {
		return hs, err
	}
	return hs, nil
}

// Normalized validates the scenario against the array geometry and the
// campaign's quantization precision, returning the defaults-applied copy
// that canonicalization (the service cache key) and execution share. Fields
// irrelevant to the kind are zeroed; sampled coordinates stay -1 (their
// identity is the seed, which is part of the campaign anyway).
func (s Scenario) Normalized(p Precision) (Scenario, error) {
	hs, err := s.compile(Config{Precision: p}.format())
	if err != nil {
		return Scenario{}, err
	}
	out := Scenario{Kind: s.Kind}
	switch hs.Kind {
	case hwfault.StuckPE:
		out.Row, out.Col, out.Bit = hs.PE.Row, hs.PE.Col, hs.Bit
	case hwfault.BurstSEU:
		out.Span = int(hs.Span)
	case hwfault.VoltRegion:
		out.Row0, out.Col0 = hs.Region.Row0, hs.Region.Col0
		out.Row1, out.Col1 = hs.Region.Row1, hs.Region.Col1
		out.V = hs.V
	}
	return out, nil
}

func (c *Config) normalize() {
	if c.Model == "" {
		c.Model = "vgg19"
	}
	if c.WidthMult == 0 {
		c.WidthMult = 0.125
	}
	if c.InputSize == 0 {
		c.InputSize = 32
	}
	if c.Samples == 0 {
		c.Samples = 24
	}
	if c.Rounds == 0 {
		c.Rounds = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c Config) format() fixed.Format {
	if c.Precision == Int8 {
		return fixed.Int8
	}
	return fixed.Int16
}

func (c Config) kind() nn.EngineKind {
	if c.Engine == Winograd {
		return nn.Winograd
	}
	return nn.Direct
}

func (c Config) tile() *winograd.Tile {
	if c.TileF4 {
		return winograd.F4
	}
	return winograd.F2
}

func (c Config) semantics() fault.Semantics {
	switch c.Semantics {
	case OperandFlip:
		return fault.OperandFlip
	case NeuronFlip:
		return fault.NeuronFlip
	default:
		return fault.ResultFlip
	}
}

// System is a ready-to-evaluate network + fault-injection campaign.
type System struct {
	cfg    Config
	arch   *models.Arch
	full   *models.Arch
	runner *faultsim.Runner
	opts   faultsim.Options
	census []fault.Census
	// sched maps the scaled network onto the DNN-Engine PE array for
	// hardware-located scenarios; built eagerly in New (it is geometry-only
	// and cheap) so concurrent SweepHW calls never race on it.
	sched []*hwfault.LayerSchedule
}

// injection compiles a scenario against this system's schedules. Sampled
// stuck coordinates resolve from the campaign seed, so every process that
// builds the same (config, scenario) pair injects identical faults.
func (s *System) injection(sc Scenario) (*hwfault.Injection, error) {
	// Scenario events are mul result-register flips; under any other
	// semantics the injector would silently ignore them and hand back
	// statistical results labeled as a scenario sweep.
	if s.cfg.Semantics != ResultFlip {
		return nil, fmt.Errorf("winofault: scenario %q requires result-flip semantics, got %q", sc.Kind, s.cfg.semantics())
	}
	hs, err := sc.compile(s.cfg.format())
	if err != nil {
		return nil, err
	}
	return hwfault.NewInjection(hs, systolic.DNNEngine16, s.cfg.format(), s.sched, s.cfg.Seed)
}

// scenarioBERs rejects non-positive BERs when a hardware scenario is
// active: the unit-space contract treats BER <= 0 campaigns as exactly
// fault-free, which a stuck PE is not, so such sweeps would silently lie.
func (s *System) scenarioBERs(hw *hwfault.Injection, bers ...float64) error {
	if hw == nil {
		return nil
	}
	for _, ber := range bers {
		if ber <= 0 {
			return fmt.Errorf("winofault: hardware scenarios need positive BERs, got %v", ber)
		}
	}
	return nil
}

// New builds a system: the scaled quantized network with deterministic
// weights, a synthetic evaluation set, and paper-scale fault intensities.
func New(cfg Config) (*System, error) {
	if cfg.InputSize < 0 {
		return nil, fmt.Errorf("winofault: InputSize %d is negative (0 means the default, %d)", cfg.InputSize, 32)
	}
	if _, err := kernel.Get(cfg.Backend); err != nil {
		return nil, fmt.Errorf("winofault: %w", err)
	}
	cfg.normalize()
	scale := models.Options{WidthMult: cfg.WidthMult, InputSize: cfg.InputSize}
	arch, err := models.ByName(cfg.Model, scale)
	if err != nil {
		return nil, err
	}
	// Reject undersized geometry here with a descriptive error; otherwise a
	// too-small InputSize panics deep inside the convolution engines.
	if err := models.ValidateGeometry(arch); err != nil {
		return nil, fmt.Errorf("winofault: config %q input %dx%d: %w",
			cfg.Model, cfg.InputSize, cfg.InputSize, err)
	}
	full, _ := models.ByName(cfg.Model, models.Options{})
	f := cfg.format()
	net := models.Build(arch, nn.Config{
		Kind: cfg.kind(), Tile: cfg.tile(), ActFmt: f, WFmt: f, Seed: cfg.Seed ^ 0xabcdef,
	})
	set := dataset.ForModel(arch.Dataset, cfg.Samples, arch.In.H, cfg.Seed^0x5eed, f)
	runner := faultsim.New(net, set.Batch(0, cfg.Samples))
	sys := &System{
		cfg:    cfg,
		arch:   arch,
		full:   full,
		runner: runner,
		census: models.Census(arch, cfg.kind(), cfg.tile()),
		opts: faultsim.Options{
			Semantics:       cfg.semantics(),
			Seed:            cfg.Seed,
			Intensity:       models.IntensityFor(arch, full, cfg.kind(), cfg.tile()),
			NeuronIntensity: models.NeuronIntensityFor(arch, full),
			Workers:         cfg.Workers,
			DeltaExec:       cfg.DeltaExec,
			Backend:         cfg.Backend,
		},
	}
	sys.sched = hwfault.NetworkSchedules(systolic.DNNEngine16, arch, cfg.kind(), cfg.tile(), cfg.Samples)
	if cfg.Scenario != nil {
		inj, err := sys.injection(*cfg.Scenario) // also rejects non-result semantics
		if err != nil {
			return nil, err
		}
		sys.opts.HW = inj
	}
	return sys, nil
}

// Point is one (BER, accuracy) measurement.
type Point struct {
	BER      float64
	Accuracy float64 // golden-agreement accuracy in [0,1]
}

// Accuracy returns golden-agreement accuracy at the given bit error rate.
// It panics on invalid arguments (a non-positive BER on a scenario-carrying
// system); use AccuracyCtx to handle that as an error. Before scenarios no
// error could reach this wrapper, and silently returning 0 would be
// indistinguishable from a measured 0% accuracy.
func (s *System) Accuracy(ber float64) float64 {
	acc, err := s.AccuracyCtx(context.Background(), ber)
	if err != nil {
		panic(err) // Background ctx never cancels: only validation errors land here
	}
	return acc
}

// AccuracyCtx is Accuracy with cancellation: when ctx is canceled the
// campaign stops scheduling Monte-Carlo rounds and ctx.Err() is returned.
func (s *System) AccuracyCtx(ctx context.Context, ber float64) (float64, error) {
	if err := s.scenarioBERs(s.opts.HW, ber); err != nil {
		return 0, err
	}
	acc := s.runner.Accuracy(ctx, ber, s.opts, s.cfg.Rounds)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return acc, nil
}

// Sweep measures accuracy across a BER range. Like Accuracy it panics on
// invalid arguments (a non-positive BER on a scenario-carrying system)
// rather than silently returning nil; use SweepCtx to get the error.
func (s *System) Sweep(bers []float64) []Point {
	pts, err := s.SweepCtx(context.Background(), bers)
	if err != nil {
		panic(err) // Background ctx never cancels: only validation errors land here
	}
	return pts
}

// SweepCtx is Sweep with cancellation: when ctx is canceled mid-campaign the
// scheduler stops claiming (BER point, round) units, the partial points are
// discarded and ctx.Err() is returned.
func (s *System) SweepCtx(ctx context.Context, bers []float64) ([]Point, error) {
	if err := s.scenarioBERs(s.opts.HW, bers...); err != nil {
		return nil, err
	}
	pts := s.runner.Sweep(ctx, bers, s.opts, s.cfg.Rounds)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{BER: p.BER, Accuracy: p.Accuracy}
	}
	return out, nil
}

// SweepHW measures accuracy across a BER range with faults located on the
// accelerator array by the given scenario, overriding any Config.Scenario
// for this sweep. The BER axis keeps its statistical meaning as the
// nominal background rate: a "voltregion" draws it outside the stressed
// region, while "stuckpe" and "burst" ignore it (their fault process is the
// scenario itself) — every BER must still be positive, because BER <= 0
// points are defined as exactly fault-free by the unit-space contract.
func (s *System) SweepHW(sc Scenario, bers []float64) ([]Point, error) {
	return s.SweepHWCtx(context.Background(), sc, bers)
}

// SweepHWCtx is SweepHW with cancellation.
func (s *System) SweepHWCtx(ctx context.Context, sc Scenario, bers []float64) ([]Point, error) {
	inj, err := s.injection(sc)
	if err != nil {
		return nil, err
	}
	if err := s.scenarioBERs(inj, bers...); err != nil {
		return nil, err
	}
	opts := s.opts
	opts.HW = inj
	pts := s.runner.Sweep(ctx, bers, opts, s.cfg.Rounds)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{BER: p.BER, Accuracy: p.Accuracy}
	}
	return out, nil
}

// Distributed shard execution. A campaign batch flattens to a (campaign,
// round) unit index space that is a pure function of the request (see
// internal/faultsim); the six methods below expose that space so a
// coordinator can split it into contiguous ranges, have remote workers
// compute per-unit agreement counts, and reduce the merged counts in index
// order — bit-identically to a local SweepCtx / LayerSensitivitiesCtx run.

// SweepUnits reports the size of the flattened unit index space of a BER
// sweep: the domain of SweepUnitCounts ranges and the required length of a
// SweepFromCounts counts slice.
func (s *System) SweepUnits(bers []float64) int {
	return faultsim.Units(faultsim.SweepCampaigns(bers, s.opts), s.cfg.Rounds)
}

// SweepUnitCounts executes units [lo, hi) of the sweep's unit index space
// and returns their golden-agreement counts in unit order. Counts for a
// range are bit-identical no matter which process computes them or with how
// many workers.
func (s *System) SweepUnitCounts(ctx context.Context, bers []float64, lo, hi int) ([]int, error) {
	if err := s.scenarioBERs(s.opts.HW, bers...); err != nil {
		return nil, err
	}
	cs := faultsim.SweepCampaigns(bers, s.opts)
	if err := checkUnitRange(lo, hi, faultsim.Units(cs, s.cfg.Rounds)); err != nil {
		return nil, err
	}
	counts := s.runner.UnitCounts(ctx, cs, s.cfg.Rounds, lo, hi)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return counts, nil
}

// SweepFromCounts reduces a full set of per-unit agreement counts — merged
// from shards in unit-index order — into sweep points bit-identical to
// SweepCtx over the same BERs.
func (s *System) SweepFromCounts(bers []float64, counts []int) ([]Point, error) {
	cs := faultsim.SweepCampaigns(bers, s.opts)
	if want := faultsim.Units(cs, s.cfg.Rounds); len(counts) != want {
		return nil, fmt.Errorf("winofault: %d unit counts for %d units", len(counts), want)
	}
	accs := s.runner.Reduce(cs, s.cfg.Rounds, counts)
	out := make([]Point, len(bers))
	for i, ber := range bers {
		out[i] = Point{BER: ber, Accuracy: accs[i]}
	}
	return out, nil
}

// LayerUnits is SweepUnits for the layer-sensitivity batch at one BER.
func (s *System) LayerUnits(ber float64) int {
	return faultsim.Units(s.runner.LayerCampaigns(ber, s.opts), s.cfg.Rounds)
}

// LayerUnitCounts is SweepUnitCounts for the layer-sensitivity batch.
func (s *System) LayerUnitCounts(ctx context.Context, ber float64, lo, hi int) ([]int, error) {
	if err := s.scenarioBERs(s.opts.HW, ber); err != nil {
		return nil, err
	}
	cs := s.runner.LayerCampaigns(ber, s.opts)
	if err := checkUnitRange(lo, hi, faultsim.Units(cs, s.cfg.Rounds)); err != nil {
		return nil, err
	}
	counts := s.runner.UnitCounts(ctx, cs, s.cfg.Rounds, lo, hi)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return counts, nil
}

// LayersFromCounts reduces merged layer-sensitivity unit counts into the
// same (baseline, per-layer) result LayerSensitivitiesCtx computes,
// bit-identically.
func (s *System) LayersFromCounts(ber float64, counts []int) (baseline float64, layers []LayerSensitivity, err error) {
	cs := s.runner.LayerCampaigns(ber, s.opts)
	if want := faultsim.Units(cs, s.cfg.Rounds); len(counts) != want {
		return 0, nil, fmt.Errorf("winofault: %d unit counts for %d units", len(counts), want)
	}
	base, per := s.runner.LayerSensitivityFromCounts(ber, s.opts, s.cfg.Rounds, counts)
	return base, s.layerTable(base, per), nil
}

// checkUnitRange validates a shard range against a unit space size. Ranges
// arrive over the wire, so they are errors rather than panics.
func checkUnitRange(lo, hi, total int) error {
	if lo < 0 || hi < lo || hi > total {
		return fmt.Errorf("winofault: unit range [%d, %d) outside [0, %d)", lo, hi, total)
	}
	return nil
}

// OnProgress registers fn to observe campaign progress: after every finished
// (campaign, Monte-Carlo round) work unit it receives the completed and total
// unit counts of the running batch. The callback is observational only (it
// can never change results) and may be invoked concurrently from scheduler
// workers, so it must be goroutine-safe. A nil fn removes the callback.
func (s *System) OnProgress(fn func(done, total int)) { s.opts.Progress = fn }

// SetProtection installs a fine-grained TMR protection plan by layer name:
// each entry maps a convolution layer (as reported by LayerSensitivities) to
// its protected [mul, add] operation fractions in [0, 1]. An empty or nil map
// clears the protection. The plan applies to every subsequent campaign run by
// this system.
func (s *System) SetProtection(layers map[string][2]float64) error {
	if len(layers) == 0 {
		s.opts.Protection = nil
		return nil
	}
	byName := make(map[string]int, len(s.runner.Net.ConvNodes()))
	for _, li := range s.runner.Net.ConvNodes() {
		byName[s.arch.Ops[li].Name] = li
	}
	prot := make(map[int]fault.Protection, len(layers))
	for name, fr := range layers {
		li, ok := byName[name]
		if !ok {
			return fmt.Errorf("winofault: protection names unknown conv layer %q", name)
		}
		if fr[0] < 0 || fr[0] > 1 || fr[1] < 0 || fr[1] > 1 {
			return fmt.Errorf("winofault: protection fractions for %q out of [0,1]: %v", name, fr)
		}
		prot[li] = fault.Protection{MulFrac: fr[0], AddFrac: fr[1]}
	}
	s.opts.Protection = prot
	return nil
}

// FormatSweep renders sweep points as the canonical accuracy table shared by
// the wfsim CLI and the wfserve text endpoint — one header line, then one
// "%-12.3g %.2f" row per point. Keeping a single renderer is what lets CI
// diff the two byte-for-byte.
func FormatSweep(w io.Writer, pts []Point) {
	fmt.Fprintf(w, "%-12s %s\n", "BER", "accuracy%")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12.3g %.2f\n", p.BER, p.Accuracy*100)
	}
}

// LayerSensitivity is the fault sensitivity of one convolution layer.
type LayerSensitivity struct {
	Layer string
	// Accuracy with this layer fault-free while the rest is injected.
	FaultFreeAccuracy float64
	// Vulnerability = FaultFreeAccuracy - baseline (paper's vulnerability
	// factor); larger means more critical.
	Vulnerability float64
	// Muls is the layer's full-size multiplication count.
	Muls int64
}

// LayerSensitivities runs the paper's Fig. 3 analysis at the given BER,
// returning the all-faulty baseline accuracy and per-layer results in
// network order. Like Accuracy it panics on invalid arguments (a
// non-positive BER on a scenario-carrying system); use
// LayerSensitivitiesCtx to get the error.
func (s *System) LayerSensitivities(ber float64) (baseline float64, layers []LayerSensitivity) {
	baseline, layers, err := s.LayerSensitivitiesCtx(context.Background(), ber)
	if err != nil {
		panic(err) // Background ctx never cancels: only validation errors land here
	}
	return baseline, layers
}

// LayerSensitivitiesCtx is LayerSensitivities with cancellation: when ctx is
// canceled the partial analysis is discarded and ctx.Err() is returned.
func (s *System) LayerSensitivitiesCtx(ctx context.Context, ber float64) (baseline float64, layers []LayerSensitivity, err error) {
	if err := s.scenarioBERs(s.opts.HW, ber); err != nil {
		return 0, nil, err
	}
	base, per := s.runner.LayerSensitivity(ctx, ber, s.opts, s.cfg.Rounds)
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	return base, s.layerTable(base, per), nil
}

// layerTable maps per-node accuracies to the named LayerSensitivity rows in
// network order (shared by the local and the counts-reduction paths).
func (s *System) layerTable(base float64, per map[int]float64) []LayerSensitivity {
	var layers []LayerSensitivity
	for _, li := range s.runner.Net.ConvNodes() {
		layers = append(layers, LayerSensitivity{
			Layer:             s.arch.Ops[li].Name,
			FaultFreeAccuracy: per[li],
			Vulnerability:     per[li] - base,
			Muls:              s.opts.Intensity[li].Mul,
		})
	}
	return layers
}

// TMRPlan is a fine-grained protection plan.
type TMRPlan struct {
	// Accuracy achieved under the campaign BER.
	Accuracy float64
	// OverheadOps is the extra executed operations (2x each protected op).
	OverheadOps int64
	// OverheadFraction is OverheadOps relative to the full-TMR overhead.
	OverheadFraction float64
	// Layers maps layer name to protected (mul, add) fractions.
	Layers map[string][2]float64
}

// OptimizeTMR searches for the cheapest fine-grained TMR plan reaching the
// target golden-agreement accuracy at the given BER (paper Section 4.1).
func (s *System) OptimizeTMR(ber, targetAccuracy float64) *TMRPlan {
	ctx := context.Background()
	opts := s.opts
	vf := tmr.Vulnerability(ctx, s.runner, ber, opts, s.cfg.Rounds)
	plan := (&tmr.Optimizer{
		Runner: s.runner, Opts: opts, BER: ber, Rounds: s.cfg.Rounds, VF: vf, Step: 0.125,
	}).Optimize(ctx, targetAccuracy, 600)
	out := &TMRPlan{
		Accuracy:    plan.Accuracy,
		OverheadOps: plan.Overhead(s.opts.Intensity),
		Layers:      map[string][2]float64{},
	}
	full := 2 * tmr.TotalOps(s.opts.Intensity)
	if full > 0 {
		out.OverheadFraction = float64(out.OverheadOps) / float64(full)
	}
	for li, p := range plan.Protection {
		out.Layers[s.arch.Ops[li].Name] = [2]float64{p.MulFrac, p.AddFrac}
	}
	return out
}

// EnergyPoint is one voltage-scaling operating point.
type EnergyPoint struct {
	AccuracyLossPct float64
	Voltage         float64
	// Energy normalized to direct convolution at nominal voltage.
	NormalizedEnergy float64
}

// ExploreEnergy finds, for each accuracy-loss constraint (in percent), the
// lowest accelerator supply voltage the system tolerates and the resulting
// energy, normalized to a direct-convolution run at nominal voltage (paper
// Section 4.2).
func (s *System) ExploreEnergy(lossesPct []float64) []EnergyPoint {
	acc := volt.DNNEngine
	array := systolic.DNNEngine16
	const batch = 16
	bers := []float64{1e-12, 1e-11, 1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 1e-7}
	pts := s.runner.Sweep(context.Background(), bers, s.opts, 3*s.cfg.Rounds)
	accs := make([]float64, len(pts))
	for i, p := range pts {
		accs[i] = p.Accuracy
	}
	curve := volt.NewAccuracyCurve(bers, volt.Isotonic(accs))

	cost := array.NetworkCost(s.full, s.cfg.kind(), s.cfg.tile(), batch)
	baseCost := array.NetworkCost(s.full, nn.Direct, nil, batch)
	baseline := acc.Energy(baseCost.Cycles, acc.VNom)
	grid := volt.VoltageGrid(acc.VMin, acc.VNom, 0.002)

	var out []EnergyPoint
	for _, loss := range lossesPct {
		v, ok := acc.MinVoltage(curve, 1-loss/100, grid)
		if !ok {
			v = acc.VNom
		}
		out = append(out, EnergyPoint{
			AccuracyLossPct:  loss,
			Voltage:          v,
			NormalizedEnergy: acc.Energy(cost.Cycles, v) / baseline,
		})
	}
	return out
}

// OpCounts reports the network's total primitive-operation counts per image
// (scaled model and full-size architecture).
func (s *System) OpCounts() (scaledMul, scaledAdd, fullMul, fullAdd int64) {
	for _, c := range s.census {
		scaledMul += c.Mul
		scaledAdd += c.Add
	}
	for _, c := range s.opts.Intensity {
		fullMul += c.Mul
		fullAdd += c.Add
	}
	return
}

// GoldenPredictions returns the fault-free predictions of the evaluation set.
func (s *System) GoldenPredictions() []int { return s.runner.Golden() }

// Experiments lists the reproducible paper experiments.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper figure/table (see Experiments for
// IDs), rendering its series to w. Budget selects the run size: "smoke"
// (seconds), "quick" (default; seconds to minutes per figure) or "full"
// (quarter-width models, more samples; minutes).
func RunExperiment(id, budget string, w io.Writer) error {
	var cfg experiments.Config
	switch budget {
	case "smoke":
		cfg = experiments.Smoke()
	case "", "quick":
		cfg = experiments.Quick()
	case "full":
		cfg = experiments.Quick()
		cfg.Scale = models.Options{WidthMult: 0.25, InputSize: 32}
		cfg.Samples = 48
		cfg.Rounds = 3
	default:
		return fmt.Errorf("winofault: unknown budget %q (want smoke, quick or full)", budget)
	}
	return experiments.Run(id, cfg, w)
}
