package winofault

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers /healthz always and scripts /campaigns/{id} by
// failing the first `fails` requests with the given status (0 = drop the
// connection) before succeeding.
func flakyServer(t *testing.T, fails int, failStatus int) (*Client, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true}`)
	})
	handler := func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fails) {
			if failStatus == 0 {
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("cannot hijack")
				}
				conn, _, _ := hj.Hijack()
				conn.Close() // connection error, not an HTTP status
				return
			}
			w.WriteHeader(failStatus)
			fmt.Fprintln(w, `{"error":"transient"}`)
			return
		}
		fmt.Fprintln(w, `{"id":"abc","state":"done","cached":true,"done":0,"total":0,"result":{"points":[]}}`)
	}
	mux.HandleFunc("/campaigns/", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c.retryBase = time.Millisecond // keep the test fast
	return c, &calls
}

// TestStatusRetries5xx: transient 5xx responses are retried until success.
func TestStatusRetries5xx(t *testing.T) {
	c, calls := flakyServer(t, 2, http.StatusBadGateway)
	st, err := c.Status(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("state %q", st.State)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

// TestResultRetriesConnectionError: dropped connections retry too, and the
// raw result bytes come back verbatim.
func TestResultRetriesConnectionError(t *testing.T) {
	c, calls := flakyServer(t, 1, 0)
	body, err := c.Result(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Errorf("unexpected body %q", body)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestStatusGivesUpAfterBoundedAttempts: a persistently failing server
// exhausts the retry budget instead of looping forever.
func TestStatusGivesUpAfterBoundedAttempts(t *testing.T) {
	c, calls := flakyServer(t, 1000, http.StatusInternalServerError)
	_, err := c.Status(context.Background(), "abc")
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("persistent 5xx returned %v, want a giving-up error", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want exactly the 4-attempt budget", got)
	}
}

// TestStatusDoesNotRetry4xx: client errors are final — retrying a 404
// cannot make the campaign exist.
func TestStatusDoesNotRetry4xx(t *testing.T) {
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, `{"ok":true}`) })
	mux.HandleFunc("/campaigns/", func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"unknown campaign"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c.retryBase = time.Millisecond
	if _, err := c.Status(context.Background(), "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("404 returned %v", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("server saw %d calls for a 404, want 1 (no retry)", got)
	}
}

// TestRetryHonorsContext: cancellation during backoff returns promptly with
// the context error instead of burning the remaining attempts.
func TestRetryHonorsContext(t *testing.T) {
	c, _ := flakyServer(t, 1000, http.StatusInternalServerError)
	c.retryBase = 10 * time.Second // cancellation must cut this short
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Status(ctx, "abc")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled retry returned %v", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("cancellation did not cut the backoff short")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled retry did not return")
	}
}
