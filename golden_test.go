package winofault

import (
	"fmt"
	"testing"

	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// TestGoldenAccuracyFixture pins campaign accuracies for all four models and
// both engines to the values measured before the allocation-free hot-path
// refactor (ExecContext scratch arenas, blocked winograd kernels, sorted
// event cursors). The engines' determinism contract makes these bit-exact:
// any arithmetic reordering, stale-scratch leak or event-routing change shows
// up here as a hard failure, for every Workers value — and, since the kernel
// seam, for every compute backend and with delta execution on or off: all
// four (backend, delta) combinations must land on the same fixture values.
func TestGoldenAccuracyFixture(t *testing.T) {
	bers := []float64{3e-11, 3e-10, 1e-9}
	fixture := map[string]map[Engine][]float64{
		"vgg19":       {Direct: {1, 0.875, 0.9375}, Winograd: {1, 0.9375, 0.875}},
		"resnet50":    {Direct: {0.125, 0, 0}, Winograd: {0.375, 0, 0}},
		"densenet169": {Direct: {0.25, 0, 0}, Winograd: {0.4375, 0, 0.0625}},
		"googlenet":   {Direct: {0.9375, 0.625, 0.625}, Winograd: {0.8125, 0.8125, 0.75}},
	}
	for model, byEngine := range fixture {
		for engine, want := range byEngine {
			for _, backend := range []string{"scalar", "blocked"} {
				for _, delta := range []bool{true, false} {
					d := delta
					t.Run(fmt.Sprintf("%s/%v/%s/delta=%t", model, engine, backend, delta), func(t *testing.T) {
						sys, err := New(Config{
							Model: model, Engine: engine, WidthMult: 0.125, InputSize: 16,
							Samples: 8, Rounds: 2, Seed: 3, Workers: 4,
							Backend: backend, DeltaExec: &d,
						})
						if err != nil {
							t.Fatal(err)
						}
						for i, ber := range bers {
							if got := sys.Accuracy(ber); got != want[i] {
								t.Errorf("accuracy(%g) = %v, want %v (bit-exactness broken)", ber, got, want[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestNewUndersizedInput: construction must never panic for any input
// resolution — undersized geometry is either valid (the zoo's padded stacks
// survive even 1x1, checked per-arch by models.ValidateGeometry, whose
// rejection path is covered in models_test.go) or rejected with a
// descriptive error at Config level.
func TestNewUndersizedInput(t *testing.T) {
	for _, model := range []string{"vgg19", "resnet50", "densenet169", "googlenet"} {
		for _, engine := range []Engine{Direct, Winograd} {
			for _, sz := range []int{1, 2, 4} {
				sys, err := New(Config{
					Model: model, Engine: engine, InputSize: sz, Samples: 2, Rounds: 1,
				})
				if err != nil {
					continue // a descriptive rejection is a valid outcome
				}
				if acc := sys.Accuracy(0); acc != 1 {
					t.Errorf("%s/%v@%d: golden accuracy %v", model, engine, sz, acc)
				}
			}
		}
		// Nonsensical sizes must be rejected, not silently replaced or
		// panicked on.
		if _, err := New(Config{Model: model, InputSize: -3}); err == nil {
			t.Errorf("%s: negative InputSize did not error", model)
		}
	}
}

// TestForwardCtxAllocFree enforces the arena contract: after the first pass
// has populated an ExecContext's scratch buffers, a steady-state fault-free
// ForwardCtx performs zero heap allocations for either engine, under both
// compute backends. The pre-refactor baseline was 134 (direct) / 254
// (winograd) allocations per pass, so any ceiling breach is a
// >90%-regression signal by construction.
func TestForwardCtxAllocFree(t *testing.T) {
	for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
		for _, backend := range []string{"scalar", "blocked"} {
			bk, err := kernel.Get(backend)
			if err != nil {
				t.Fatal(err)
			}
			arch := models.VGG19(models.Tiny)
			net := models.Build(arch, nn.Config{
				Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
			})
			in := tensor.Quantize(
				tensor.New(tensor.Shape{N: 2, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
				fixed.Int16)
			ctx := net.NewExecContext()
			ctx.UseBackend(bk)
			net.ForwardCtx(ctx, in, nil) // warm the arena
			allocs := testing.AllocsPerRun(10, func() { net.ForwardCtx(ctx, in, nil) })
			if allocs != 0 {
				t.Errorf("%v/%s: steady-state ForwardCtx allocates %v times per pass, want 0", kind, backend, allocs)
			}
		}
	}
}

// TestForwardCtxAllocFreeAcrossModels extends the zero-allocation guard to
// every zoo architecture (concat, residual-add, avg-pool and DWM units all
// draw from the arena too), under both compute backends.
func TestForwardCtxAllocFreeAcrossModels(t *testing.T) {
	for _, name := range []string{"resnet50", "densenet169", "googlenet"} {
		for _, backend := range []string{"scalar", "blocked"} {
			bk, err := kernel.Get(backend)
			if err != nil {
				t.Fatal(err)
			}
			arch, err := models.ByName(name, models.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			net := models.Build(arch, nn.Config{
				Kind: nn.Winograd, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 1,
			})
			in := tensor.Quantize(
				tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
				fixed.Int16)
			ctx := net.NewExecContext()
			ctx.UseBackend(bk)
			net.ForwardCtx(ctx, in, nil)
			if allocs := testing.AllocsPerRun(5, func() { net.ForwardCtx(ctx, in, nil) }); allocs != 0 {
				t.Errorf("%s/%s: steady-state ForwardCtx allocates %v times per pass, want 0", name, backend, allocs)
			}
		}
	}
}
