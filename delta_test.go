package winofault

import (
	"context"
	"fmt"
	"testing"
)

func deltaOff() *bool { off := false; return &off }
func deltaOn() *bool  { on := true; return &on }

// TestDeltaMatchesFullExecution is the facade-level acceptance fixture for
// delta execution: across the whole model zoo, both engines and the golden-
// fixture BERs, a system running the fault-cone delta path returns sweep
// points bit-identical to one forced through full execution. Worker-count
// invariance of the delta path is pinned separately below, so here each
// model/engine pair runs one representative worker count.
func TestDeltaMatchesFullExecution(t *testing.T) {
	bers := []float64{3e-11, 3e-10, 1e-9}
	workersFor := map[string]int{"vgg19": 1, "resnet50": 2, "densenet169": 8, "googlenet": 4}
	for model, workers := range workersFor {
		for _, engine := range []Engine{Direct, Winograd} {
			t.Run(fmt.Sprintf("%s/%v", model, engine), func(t *testing.T) {
				cfg := Config{
					Model: model, Engine: engine, WidthMult: 0.125, InputSize: 16,
					Samples: 8, Rounds: 2, Seed: 3, Workers: workers,
				}
				cfg.DeltaExec = deltaOff()
				full, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := full.Sweep(bers)

				cfg.DeltaExec = nil // the default: delta on
				delta, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := delta.Sweep(bers)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("point %d: delta %+v != full %+v (bit-identity broken)", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestDeltaWorkerCountInvariant: the delta path keeps the scheduler's
// bit-identical-for-any-worker-count guarantee — per-worker golden planes
// cannot leak state between units.
func TestDeltaWorkerCountInvariant(t *testing.T) {
	bers := []float64{3e-10, 1e-9}
	var want []Point
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig(Winograd)
		cfg.Rounds = 2
		cfg.Workers = workers
		cfg.DeltaExec = deltaOn()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.Sweep(bers)
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDeltaShardedSweepBitIdentical: unit-range shards computed by delta-
// enabled systems must merge to the bytes a full-execution system produces
// locally, so delta and non-delta workers can serve the same distributed
// campaign.
func TestDeltaShardedSweepBitIdentical(t *testing.T) {
	bers := []float64{1e-9, 1e-8}
	cfg := testConfig(Winograd)
	cfg.Rounds = 2
	cfg.DeltaExec = deltaOff()
	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.SweepCtx(context.Background(), bers)
	if err != nil {
		t.Fatal(err)
	}
	total := full.SweepUnits(bers)
	cfg.DeltaExec = nil // shard workers run the delta default
	var counts []int
	for _, r := range [][2]int{{0, total / 3}, {total / 3, total / 2}, {total / 2, total}} {
		remote, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		part, err := remote.SweepUnitCounts(context.Background(), bers, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, part...)
	}
	got, err := full.SweepFromCounts(bers, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: delta-sharded %+v != full local %+v", i, got[i], want[i])
		}
	}
}

// TestDeltaMatchesFullScenario extends bit-identity to hardware-located
// campaigns: the stuck-PE and voltage-region event generators drive the same
// dirty-set machinery as the statistical sampler, so delta on/off must agree
// on every point.
func TestDeltaMatchesFullScenario(t *testing.T) {
	bers := []float64{1e-10, 1e-9}
	for _, sc := range []Scenario{
		{Kind: "stuckpe", Row: 0, Col: 0, Bit: 24},
		{Kind: "voltregion", Row0: 0, Col0: 0, Row1: 3, Col1: 3, V: 0.75},
	} {
		cfg := scenarioConfig(Winograd, &sc)
		cfg.Rounds = 2
		cfg.DeltaExec = deltaOff()
		full, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.SweepCtx(context.Background(), bers)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DeltaExec = nil
		delta, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := delta.SweepCtx(context.Background(), bers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s point %d: delta %+v != full %+v", sc.Kind, i, got[i], want[i])
			}
		}
	}
}
