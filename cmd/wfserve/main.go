// Command wfserve is the campaign server: it queues fault-injection
// campaigns submitted over HTTP+JSON, runs them on the deterministic
// faultsim scheduler, and serves identical requests from a
// content-addressed result cache — bit-identically and without re-running
// the campaign.
//
// Usage:
//
//	wfserve -addr :8077 -cache-dir /var/lib/wfserve
//
//	curl -s -X POST 'localhost:8077/campaigns?wait=1' -d '{
//	    "model": "vgg19", "engine": "winograd",
//	    "bers": [1e-10, 1e-9, 1e-8]}'
//
// With -dist the server becomes a fleet coordinator: wfworker nodes
// register against /workers, and cache-miss campaigns are sharded across
// them by unit range — with transparent fallback to local execution when no
// workers are live. Results are byte-identical either way.
//
// See DESIGN.md "Service layer" and "Distributed execution" for the API,
// cache-key schema and shard protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	start := time.Now()
	addr := flag.String("addr", ":8077", "listen address")
	cacheDir := flag.String("cache-dir", "", "result cache persistence directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 256, "in-memory result cache capacity")
	queue := flag.Int("queue", 16, "bounded job queue depth")
	jobs := flag.Int("jobs", 1, "campaigns executed concurrently")
	workers := flag.Int("workers", 0, "per-campaign faultsim worker budget (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight campaigns")
	distFlag := flag.Bool("dist", false, "coordinate a wfworker fleet: shard cache-miss campaigns across registered workers")
	lease := flag.Duration("lease", 15*time.Second, "with -dist: worker lease TTL (silent workers lose their shards after this)")
	shardUnits := flag.Int("shard-units", 0, "with -dist: units per shard (0 = auto, ~2 shards per live worker)")
	journal := flag.String("journal", "", "with -dist: control-plane journal file; a restarted server resumes in-flight campaigns from it")
	traceDir := flag.String("trace-dir", "", "durable trace store directory: finished campaign traces survive restarts (empty = memory-only ring)")
	stragglerFactor := flag.Float64("straggler-factor", 0, "with -dist: flag workers slower than this multiple of the fleet median per-unit exec time (0 = default 3)")
	stragglerProbation := flag.Duration("straggler-probation", 0, "with -dist: how long a flagged straggler goes lease-less before one probe shard re-measures it (0 = default 10x lease)")
	keys := flag.String("keys", "", "API key table file: \"<api-key> <tenant> [weight=N] [quota=N]\" per line (empty + WFSERVE_KEYS env unset = open server)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	debugAddr := flag.String("debug-addr", "", "private listener for /debug/pprof and runtime /metrics (empty = disabled; bind loopback, never the public address)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	}

	// Tenancy: -keys names a table file; the WFSERVE_KEYS environment
	// variable may carry the same content inline (container secrets).
	var tenants *service.TenantTable
	if *keys != "" {
		t, err := service.LoadTenantTable(*keys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
			os.Exit(1)
		}
		tenants = t
	} else if env := os.Getenv("WFSERVE_KEYS"); env != "" {
		t, err := service.ParseTenantTable(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfserve: WFSERVE_KEYS: %v\n", err)
			os.Exit(1)
		}
		tenants = t
	}

	cfg := service.Config{
		Jobs:         *jobs,
		QueueDepth:   *queue,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		TraceDir:     *traceDir,
		Tenants:      tenants,
		Logger:       logger,
	}
	var coord *dist.Coordinator
	if *distFlag {
		ccfg := dist.CoordinatorConfig{
			LeaseTTL:           *lease,
			ShardUnits:         *shardUnits,
			JournalPath:        *journal,
			StragglerFactor:    *stragglerFactor,
			StragglerProbation: *stragglerProbation,
			Logger:             logger,
		}
		if tenants != nil {
			ccfg.Auth = tenants.Valid
		}
		var err error
		coord, err = dist.NewCoordinator(ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
			os.Exit(1)
		}
		cfg.Distributor = coord
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	}

	handler := http.Handler(svc.Handler())
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/workers", coord.Handler())
		mux.Handle("/workers/", coord.Handler())
		mux.Handle("/", svc.Handler())
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("wfserve: listening",
		"addr", *addr, "jobs", *jobs, "queue", *queue, "workers", *workers,
		"cache", *cacheEntries, "dir", *cacheDir, "dist", *distFlag,
		"journal", *journal, "tenants", tenants.Len())

	// The debug listener is deliberately a second server: pprof and runtime
	// internals never ride the public address.
	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler("wfserve", start, nil)}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("wfserve: debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("wfserve: debug listener up", "addr", *debugAddr)
	}

	// Crash recovery: resubmit every campaign the journal says a previous
	// incarnation left unfinished. The content-addressed cache answers any
	// that actually completed (crash after caching); the rest re-enter the
	// queue as the trusted default tenant and resume from their journaled
	// shard merges once workers re-register. This must run after the
	// listener is up: the fleet can only re-register through it, and the
	// coordinator holds each recovered campaign for a re-registration grace
	// instead of falling back to a full local recompute on the empty worker
	// table a freshly restarted process necessarily has.
	if coord != nil {
		for _, rc := range coord.Recovered() {
			j, err := svc.Submit(rc.Req)
			if err != nil {
				// Unrunnable requests (validation) must not crash-loop the
				// journal; queue pressure just means recovery is best-effort
				// this boot — the journal entry survives for the next one.
				logger.Warn("wfserve: recovery: campaign not resubmitted",
					"campaign", shortKey(rc.Key), "err", err)
				if !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, service.ErrClosed) {
					coord.CampaignDone(rc.Key)
				}
				continue
			}
			if st := j.Status(); st.Cached {
				logger.Info("wfserve: recovery: campaign already cached; retiring journal entry",
					"campaign", shortKey(rc.Key))
				coord.CampaignDone(rc.Key)
				continue
			}
			logger.Info("wfserve: resuming journaled campaign", "campaign", shortKey(rc.Key))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("wfserve: draining", "signal", s.String(), "budget", *drain)
	}

	// Flip the drain state first: new submissions and worker registrations
	// get 503s, and /healthz answers 503 "draining" so load balancers stop
	// routing here. The listener stays open while in-flight campaigns
	// drain — fleet workers must keep leasing and reporting shards (and
	// ?wait=1 clients keep their connections) for those campaigns to finish
	// instead of stalling into lease expiry and a local re-run. Only once
	// the service is drained does the listener shut down.
	svc.BeginDrain()
	if coord != nil {
		coord.BeginDrain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := svc.Close(ctx); err != nil {
		logger.Error("wfserve: drain expired, in-flight campaigns canceled", "err", err)
		code = 1
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("wfserve: http shutdown", "err", err)
	}
	if dbg != nil {
		dbg.Shutdown(ctx)
	}
	if coord != nil {
		coord.Close()
	}
	if code != 0 {
		os.Exit(code)
	}
	logger.Info("wfserve: drained cleanly")
}

// shortKey truncates a campaign content address for log attrs.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
