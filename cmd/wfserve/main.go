// Command wfserve is the campaign server: it queues fault-injection
// campaigns submitted over HTTP+JSON, runs them on the deterministic
// faultsim scheduler, and serves identical requests from a
// content-addressed result cache — bit-identically and without re-running
// the campaign.
//
// Usage:
//
//	wfserve -addr :8077 -cache-dir /var/lib/wfserve
//
//	curl -s -X POST 'localhost:8077/campaigns?wait=1' -d '{
//	    "model": "vgg19", "engine": "winograd",
//	    "bers": [1e-10, 1e-9, 1e-8]}'
//
// See DESIGN.md "Service layer" for the API and cache-key schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	cacheDir := flag.String("cache-dir", "", "result cache persistence directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 256, "in-memory result cache capacity")
	queue := flag.Int("queue", 16, "bounded job queue depth")
	jobs := flag.Int("jobs", 1, "campaigns executed concurrently")
	workers := flag.Int("workers", 0, "per-campaign faultsim worker budget (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight campaigns")
	flag.Parse()

	svc, err := service.New(service.Config{
		Jobs:         *jobs,
		QueueDepth:   *queue,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("wfserve: listening on %s (jobs=%d queue=%d workers=%d cache=%d dir=%q)",
		*addr, *jobs, *queue, *workers, *cacheEntries, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "wfserve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("wfserve: %v: draining (budget %s)", s, *drain)
	}

	// Stop intake first (new submissions get 503), then let in-flight
	// campaigns finish inside the drain budget; past it they are canceled.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("wfserve: http shutdown: %v", err)
	}
	if err := svc.Close(ctx); err != nil {
		log.Printf("wfserve: drain expired, in-flight campaigns canceled: %v", err)
		os.Exit(1)
	}
	log.Printf("wfserve: drained cleanly")
}
