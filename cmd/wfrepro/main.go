// Command wfrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	wfrepro -exp fig1            # one experiment
//	wfrepro -exp all             # everything (headline numbers last)
//	wfrepro -exp fig5 -budget full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	winofault "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or comma list ("+list()+" or all)")
	budget := flag.String("budget", "quick", "run size: smoke, quick or full")
	flag.Parse()

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = winofault.Experiments()
	}
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "running %s (%s budget)...\n", id, *budget)
		if err := winofault.RunExperiment(id, *budget, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wfrepro:", err)
			os.Exit(1)
		}
	}
}

func list() string {
	out := ""
	for i, id := range winofault.Experiments() {
		if i > 0 {
			out += "|"
		}
		out += id
	}
	return out
}
