// Command wfsim runs ad-hoc operation-level fault-injection campaigns:
// pick a benchmark model, engine, precision and BER range, get the
// golden-agreement accuracy table.
//
// Usage:
//
//	wfsim -model vgg19 -engine winograd -prec int16 -bers 1e-10,1e-9,1e-8
//	wfsim -model resnet50 -engine direct -semantics result -layers
//	wfsim -model vgg19 -engine winograd -scenario stuckpe -pe 0,0 -stuck-bit 24
//	wfsim -model vgg19 -scenario voltregion -region 0,0,3,3 -vregion 0.75
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	winofault "repro"
)

func main() {
	model := flag.String("model", "vgg19", "vgg19|resnet50|densenet169|googlenet")
	engine := flag.String("engine", "direct", "direct|winograd")
	prec := flag.String("prec", "int16", "int8|int16")
	semantics := flag.String("semantics", "result", "result|operand|neuron")
	bers := flag.String("bers", "1e-11,1e-10,1e-9,1e-8,1e-7", "comma-separated bit error rates")
	width := flag.Float64("width", 0.125, "model width multiplier (1 = paper scale)")
	input := flag.Int("input", 32, "input resolution")
	samples := flag.Int("samples", 24, "evaluation images")
	rounds := flag.Int("rounds", 2, "Monte-Carlo rounds")
	seed := flag.Uint64("seed", 1, "root seed")
	workers := flag.Int("workers", 0, "campaign worker count (0 = GOMAXPROCS; results are identical for any value)")
	delta := flag.Bool("delta", true, "fault-cone delta execution: recompute only dirty nodes per round (results are identical on or off)")
	backend := flag.String("backend", "", "compute backend: scalar|blocked (\"\" = process default; results are identical for every backend)")
	layers := flag.Bool("layers", false, "also print per-layer sensitivity at the middle BER")
	scenario := flag.String("scenario", "", "hardware-located faults: stuckpe|burst|voltregion (default: statistical model)")
	pe := flag.String("pe", "0,0", "stuckpe: \"row,col\" of the stuck PE (-1 = sampled from the seed)")
	stuckBit := flag.Int("stuck-bit", -1, "stuckpe: corrupted product-register bit (-1 = sampled from the seed)")
	burstSpan := flag.Int("burst-span", 0, "burst: MAC slots corrupted per burst (0 = default 64)")
	region := flag.String("region", "0,0,3,3", "voltregion: inclusive \"row0,col0,row1,col1\" PE rectangle")
	vregion := flag.Float64("vregion", 0.75, "voltregion: supply voltage of the stressed region")
	flag.Parse()

	cfg := winofault.Config{
		Model:     *model,
		WidthMult: *width,
		InputSize: *input,
		Samples:   *samples,
		Rounds:    *rounds,
		Seed:      *seed,
		Workers:   *workers,
		DeltaExec: delta,
		Backend:   *backend,
	}
	switch *engine {
	case "direct":
	case "winograd":
		cfg.Engine = winofault.Winograd
	default:
		fatal("unknown engine %q", *engine)
	}
	switch *prec {
	case "int16":
	case "int8":
		cfg.Precision = winofault.Int8
	default:
		fatal("unknown precision %q", *prec)
	}
	switch *semantics {
	case "result":
		cfg.Semantics = winofault.ResultFlip
	case "operand":
		cfg.Semantics = winofault.OperandFlip
	case "neuron":
		cfg.Semantics = winofault.NeuronFlip
	default:
		fatal("unknown semantics %q", *semantics)
	}

	switch *scenario {
	case "":
	case "stuckpe":
		p := parseInts(*pe, 2, "pe")
		cfg.Scenario = &winofault.Scenario{Kind: "stuckpe", Row: p[0], Col: p[1], Bit: *stuckBit}
	case "burst":
		cfg.Scenario = &winofault.Scenario{Kind: "burst", Span: *burstSpan}
	case "voltregion":
		r := parseInts(*region, 4, "region")
		cfg.Scenario = &winofault.Scenario{Kind: "voltregion",
			Row0: r[0], Col0: r[1], Row1: r[2], Col1: r[3], V: *vregion}
	default:
		fatal("unknown scenario %q (want stuckpe, burst or voltregion)", *scenario)
	}

	var rates []float64
	for _, s := range strings.Split(*bers, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal("bad BER %q: %v", s, err)
		}
		rates = append(rates, v)
	}

	sys, err := winofault.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	sm, sa, fm, fa := sys.OpCounts()
	if *scenario != "" {
		fmt.Printf("%s / %s / %s / %s scenario\n", *model, *engine, *prec, *scenario)
	} else {
		fmt.Printf("%s / %s / %s / %s semantics\n", *model, *engine, *prec, *semantics)
	}
	fmt.Printf("ops per image: scaled %.3gM mul + %.3gM add; full-size %.3gG mul + %.3gG add\n",
		float64(sm)/1e6, float64(sa)/1e6, float64(fm)/1e9, float64(fa)/1e9)
	// The table renderer is shared with the wfserve text endpoint so CI can
	// diff server and CLI output byte-for-byte.
	winofault.FormatSweep(os.Stdout, sys.Sweep(rates))

	if *layers {
		mid := rates[len(rates)/2]
		base, ls := sys.LayerSensitivities(mid)
		fmt.Printf("\nlayer sensitivity at BER %.3g (baseline %.2f%%):\n", mid, base*100)
		fmt.Printf("%-24s %10s %10s %12s\n", "layer", "ff-acc%", "vuln pp", "muls(full)")
		for _, l := range ls {
			fmt.Printf("%-24s %10.2f %10.2f %12d\n",
				l.Layer, l.FaultFreeAccuracy*100, l.Vulnerability*100, l.Muls)
		}
	}
}

// parseInts parses a comma-separated list of exactly n integers.
func parseInts(s string, n int, flagName string) []int {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		fatal("-%s %q: want %d comma-separated integers", flagName, s, n)
	}
	out := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal("-%s %q: %v", flagName, s, err)
		}
		out[i] = v
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wfsim: "+format+"\n", args...)
	os.Exit(1)
}
