package main

import (
	"strings"
	"testing"
)

func seqPtr(n int) *int { return &n }

func testSnaps() []snapshot {
	return []snapshot{
		{Sha: "bbbbbbbbbbbb", Seq: seqPtr(1), Benchmarks: []benchmark{
			{Name: "BenchmarkSweep-8", NsPerOp: 90e6},
			{Name: "BenchmarkSweep-8", NsPerOp: 110e6},
			{Name: "BenchmarkNew-8", NsPerOp: 500},
		}},
		{Sha: "aaaaaaaaaaaa", Seq: seqPtr(0), Benchmarks: []benchmark{
			{Name: "BenchmarkSweep-8", NsPerOp: 180e6},
			{Name: "BenchmarkSweep-8", NsPerOp: 176e6},
		}},
	}
}

// TestBestTakesMinAndStripsSuffix: repeated count>1 runs fold to the fastest,
// under the GOMAXPROCS-free name.
func TestBestTakesMinAndStripsSuffix(t *testing.T) {
	b := best(testSnaps()[0])
	if got := b["BenchmarkSweep"]; got != 90e6 {
		t.Errorf("best ns/op = %v, want the 90ms minimum", got)
	}
	if _, ok := b["BenchmarkSweep-8"]; ok {
		t.Error("GOMAXPROCS suffix survived aggregation")
	}
}

// TestOrderBySeq: committed snapshots sort by seq regardless of sha order;
// seq-less CI artifacts fall to the end.
func TestOrderBySeq(t *testing.T) {
	snaps := append(testSnaps(), snapshot{Sha: "000artifact"})
	order(snaps)
	if snaps[0].Sha != "aaaaaaaaaaaa" || snaps[1].Sha != "bbbbbbbbbbbb" || snaps[2].Sha != "000artifact" {
		t.Errorf("trajectory order wrong: %s, %s, %s", snaps[0].Sha, snaps[1].Sha, snaps[2].Sha)
	}
}

// TestTrendTable: the rendered table carries per-snapshot deltas, dashes for
// snapshots missing a benchmark, and honors the -bench filter.
func TestTrendTable(t *testing.T) {
	snaps := testSnaps()
	order(snaps)
	var out strings.Builder
	if n := trend(&out, snaps, ""); n != 2 {
		t.Fatalf("trend rendered %d benchmarks, want 2", n)
	}
	table := out.String()
	for _, want := range []string{"aaaaaaa", "bbbbbbb", "176.0ms", "90.0ms (-48.9%)", "-"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	out.Reset()
	if n := trend(&out, snaps, "New"); n != 1 || strings.Contains(out.String(), "BenchmarkSweep") {
		t.Errorf("filter \"New\" rendered %d benchmarks:\n%s", n, out.String())
	}
}

// TestTrendMidTrajectory: benchmarks appearing mid-history render from their
// first appearance marked "(new)", and a benchmark that skips a snapshot
// restarts with "(new)" instead of a stale delta against the last snapshot
// that had it — only adjacent snapshots are ever compared.
func TestTrendMidTrajectory(t *testing.T) {
	snaps := []snapshot{
		{Sha: "aaaaaaaaaaaa", Seq: seqPtr(0), Benchmarks: []benchmark{
			{Name: "BenchmarkOld-8", NsPerOp: 100e6},
			{Name: "BenchmarkGap-8", NsPerOp: 50e6},
		}},
		{Sha: "bbbbbbbbbbbb", Seq: seqPtr(1), Benchmarks: []benchmark{
			{Name: "BenchmarkOld-8", NsPerOp: 80e6},
		}},
		{Sha: "cccccccccccc", Seq: seqPtr(2), Benchmarks: []benchmark{
			{Name: "BenchmarkOld-8", NsPerOp: 80e6},
			{Name: "BenchmarkGap-8", NsPerOp: 100e6},
			{Name: "BenchmarkMid-8", NsPerOp: 500},
		}},
	}
	var out strings.Builder
	if n := trend(&out, snaps, ""); n != 3 {
		t.Fatalf("trend rendered %d benchmarks, want 3", n)
	}
	table := out.String()
	// A bench landing in the last snapshot: two dashes then a (new) baseline.
	for _, want := range []string{"500ns (new)", "100.0ms (new)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The gap must not produce a delta against the pre-gap value (that would
	// render 100ms (+100.0%) against snapshot a's 50ms).
	if strings.Contains(table, "+100.0%") {
		t.Errorf("gap produced a stale cross-gap delta:\n%s", table)
	}
	// Continuity still annotates adjacent columns.
	if !strings.Contains(table, "80.0ms (-20.0%)") {
		t.Errorf("adjacent delta missing:\n%s", table)
	}
}

// TestHumanUnits pins the magnitude formatting.
func TestHumanUnits(t *testing.T) {
	cases := map[float64]string{450: "450ns", 4500: "4.5µs", 4.5e6: "4.5ms"}
	for ns, want := range cases {
		if got := human(ns); got != want {
			t.Errorf("human(%v) = %q, want %q", ns, got, want)
		}
	}
}
