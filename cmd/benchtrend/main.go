// Command benchtrend renders the ns/op trajectory of the hot-path benchmarks
// across perf snapshots — the BENCH_<sha>.json files the CI bench job
// produces, of which the repo commits one per landed perf milestone under
// bench/. Each snapshot holds count=6 runs per benchmark; benchtrend
// aggregates them by minimum (noise on shared machines is one-sided, so the
// fastest run estimates true cost — the same estimator the CI regression gate
// uses) and prints one row per benchmark with the per-snapshot deltas.
//
// Usage:
//
//	benchtrend                       # committed snapshots under bench/
//	benchtrend -dir path/to/snaps    # another snapshot directory
//	benchtrend a.json b.json c.json  # explicit files, trajectory in arg order
//
// Directory snapshots are ordered by their "seq" field (the committed
// files carry one; CI artifacts do not and sort after, by sha) so the
// trajectory reads oldest to newest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// snapshot is the BENCH_<sha>.json schema produced by the CI bench job; Seq
// is the additive field committed snapshots use to order the trajectory.
type snapshot struct {
	Sha        string      `json:"sha"`
	Ref        string      `json:"ref"`
	Goos       string      `json:"goos"`
	Goarch     string      `json:"goarch"`
	Go         string      `json:"go"`
	Seq        *int        `json:"seq"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// gomaxprocsSuffix is the -N tail `go test` appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// best folds a snapshot's repeated runs into min ns/op per benchmark name
// (GOMAXPROCS suffix stripped, so snapshots from different machines align).
func best(s snapshot) map[string]float64 {
	out := map[string]float64{}
	for _, b := range s.Benchmarks {
		name := gomaxprocsSuffix.ReplaceAllString(b.Name, "")
		if v, ok := out[name]; !ok || b.NsPerOp < v {
			out[name] = b.NsPerOp
		}
	}
	return out
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: snapshot has no benchmarks", path)
	}
	return s, nil
}

// order sorts directory-loaded snapshots into trajectory order: by seq when
// present, seq-less ones after (by sha, for determinism).
func order(snaps []snapshot) {
	sort.SliceStable(snaps, func(i, j int) bool {
		si, sj := snaps[i].Seq, snaps[j].Seq
		switch {
		case si != nil && sj != nil:
			return *si < *sj
		case si != nil:
			return true
		case sj != nil:
			return false
		default:
			return snaps[i].Sha < snaps[j].Sha
		}
	})
}

// short is the 7-character sha column label.
func short(sha string) string {
	if len(sha) > 7 {
		return sha[:7]
	}
	if sha == "" {
		return "unknown"
	}
	return sha
}

// human renders ns/op at a glance: ns, µs, ms as magnitude demands.
func human(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// trend renders the trajectory table: one row per benchmark, one column per
// snapshot, each later column annotated with the change against the
// immediately-previous snapshot. Benchmarks appearing mid-trajectory render
// from their first appearance: the first measured column after a "-" (absent)
// column is marked "(new)" rather than carrying a stale delta against some
// older snapshot — new benches land mid-history all the time and their first
// number is a baseline, not a regression.
func trend(w *strings.Builder, snaps []snapshot, match string) int {
	bests := make([]map[string]float64, len(snaps))
	seen := map[string]bool{}
	var names []string
	for i, s := range snaps {
		bests[i] = best(s)
		for name := range bests[i] {
			if !seen[name] && strings.Contains(name, match) {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-34s", "benchmark")
	for _, s := range snaps {
		fmt.Fprintf(w, " %20s", short(s.Sha))
	}
	fmt.Fprintln(w)
	for _, name := range names {
		fmt.Fprintf(w, "%-34s", name)
		for i := range snaps {
			v, ok := bests[i][name]
			prev, hasPrev := 0.0, false
			if i > 0 {
				prev, hasPrev = bests[i-1][name]
			}
			switch {
			case !ok:
				fmt.Fprintf(w, " %20s", "-")
			case hasPrev:
				fmt.Fprintf(w, " %20s", fmt.Sprintf("%s (%+.1f%%)", human(v), (v/prev-1)*100))
			case i == 0:
				fmt.Fprintf(w, " %20s", human(v))
			default:
				fmt.Fprintf(w, " %20s", human(v)+" (new)")
			}
		}
		fmt.Fprintln(w)
	}
	return len(names)
}

func main() {
	dir := flag.String("dir", "bench", "snapshot directory scanned when no files are given")
	match := flag.String("bench", "", "only benchmarks whose name contains this substring")
	flag.Parse()

	paths := flag.Args()
	fromDir := len(paths) == 0
	if fromDir {
		var err error
		paths, err = filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
		if err != nil || len(paths) == 0 {
			fatal("no BENCH_*.json snapshots under %s", *dir)
		}
	}
	var snaps []snapshot
	for _, p := range paths {
		s, err := load(p)
		if err != nil {
			fatal("%v", err)
		}
		snaps = append(snaps, s)
	}
	if fromDir {
		order(snaps)
	}
	var out strings.Builder
	if trend(&out, snaps, *match) == 0 {
		fatal("no benchmarks match %q", *match)
	}
	fmt.Print(out.String())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(1)
}
