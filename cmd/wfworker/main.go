// Command wfworker is a fleet node for distributed campaign execution: it
// registers with a wfserve coordinator started with -dist, polls for shard
// leases (contiguous unit ranges of a campaign batch), executes them on the
// local deterministic faultsim scheduler, and posts back per-unit agreement
// counts. Determinism makes the fleet transparent: any number of workers,
// joining or dying at any time, produces results byte-identical to a
// single-machine run.
//
// Usage:
//
//	wfworker -server localhost:8077 -name node-a -workers 8
//
// The worker survives coordinator restarts and network blips by backing off
// and re-registering; SIGTERM/SIGINT stop it cleanly (an unreported shard
// is simply re-leased to the rest of the fleet). With -debug-addr the node
// serves /debug/pprof and a /metrics page (shard counter, execution latency
// histogram, build/runtime gauges) on a private listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dist"
	"repro/internal/obs"
)

func main() {
	server := flag.String("server", "localhost:8077", "wfserve coordinator address")
	name := flag.String("name", defaultName(), "worker name reported in logs and /metrics")
	workers := flag.Int("workers", 0, "faultsim parallelism per shard (0 = GOMAXPROCS; never changes results)")
	apiKey := flag.String("api-key", os.Getenv("WF_API_KEY"), "API key for a coordinator running with -keys (default $WF_API_KEY)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	debugAddr := flag.String("debug-addr", "", "private listener for /debug/pprof and /metrics (empty = disabled; bind loopback)")
	execDelay := flag.Duration("exec-delay", 0, "artificial per-shard execution delay for testing straggler detection (never use in production)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfworker: %v\n", err)
		os.Exit(1)
	}

	metrics := dist.NewWorkerMetrics()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: metrics.Handler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("wfworker: debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("wfworker: debug listener up", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := dist.RunWorker(ctx, dist.WorkerConfig{
		Server:    *server,
		Name:      *name,
		Workers:   *workers,
		APIKey:    *apiKey,
		Logger:    logger,
		Metrics:   metrics,
		ExecDelay: *execDelay,
	}); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "wfworker: %v\n", err)
		os.Exit(1)
	}
}

func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "wfworker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
