// Command metricscheck validates a Prometheus text-exposition page read from
// stdin: HELP/TYPE ordering, label syntax and escaping round-trips, and
// histogram invariants (ascending le, cumulative buckets, +Inf == _count).
// CI pipes /metrics responses through it so a malformed page fails the build
// instead of silently breaking scrapes.
//
// Usage:
//
//	curl -s localhost:8077/metrics | metricscheck -require wfserve_build_info,wfserve_campaign_seconds
//
// -require names metric families (comma-separated) that must be present;
// for a histogram family the name matches its _bucket/_sum/_count samples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must appear")
	flag.Parse()

	exp, err := obs.ValidateExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}
	missing := []string{}
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// Histogram samples carry _bucket/_sum/_count suffixes, so presence
		// means "declared as a family" or "has a sample under the bare name".
		if exp.Types[name] == "" && len(exp.Find(name)) == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "metricscheck: required metric families missing: %s\n", strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok (%d samples, %d typed families)\n", len(exp.Samples), len(exp.Types))
}
