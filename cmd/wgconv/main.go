// Command wgconv validates and profiles the winograd convolution engine
// against direct convolution on a single layer: numerical agreement,
// operation censuses (the multiplication reduction that drives the paper's
// fault-tolerance result), and wall-clock throughput.
//
// Usage:
//
//	wgconv -c 64 -oc 64 -hw 32 -k 3 -stride 1 -tile f2
//	wgconv -k 7 -stride 2 -tile f4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conv"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

func main() {
	inC := flag.Int("c", 32, "input channels")
	outC := flag.Int("oc", 32, "output channels")
	hw := flag.Int("hw", 32, "input spatial size")
	k := flag.Int("k", 3, "kernel size")
	stride := flag.Int("stride", 1, "stride")
	tileName := flag.String("tile", "f2", "winograd tile: f2|f4")
	iters := flag.Int("iters", 10, "timing iterations")
	flag.Parse()

	tile := winograd.F2
	if *tileName == "f4" {
		tile = winograd.F4
	} else if *tileName != "f2" {
		fmt.Fprintln(os.Stderr, "wgconv: unknown tile", *tileName)
		os.Exit(1)
	}
	pad := *k / 2

	r := rng.New(7)
	w := tensor.New(tensor.Shape{N: *outC, C: *inC, H: *k, W: *k}).Random(r, 0.3)
	inF := tensor.New(tensor.Shape{N: 1, C: *inC, H: *hw, W: *hw}).Random(r, 1)
	inQ := tensor.Quantize(inF, fixed.Int16)

	st := conv.NewParams(w, nil, *stride, pad, fixed.Int16, fixed.Int16)
	wg := winograd.NewLayer(w, nil, *stride, pad, tile, fixed.Int16, fixed.Int16)

	ref := conv.ForwardFloat(inF, w, nil, *stride, pad)
	stOut := tensor.Dequantize(conv.Forward(inQ, st))
	wgOut := tensor.Dequantize(wg.Forward(inQ))

	fmt.Printf("layer: %dx%dx%d, %dx%d kernel, stride %d, %s (%d DWM units)\n",
		*inC, *hw, *hw, *k, *k, *stride, tile.Name, wg.Units())
	fmt.Printf("max |direct - float|:   %.5f\n", tensor.MaxAbsDiff(stOut, ref))
	fmt.Printf("max |winograd - float|: %.5f\n", tensor.MaxAbsDiff(wgOut, ref))
	fmt.Printf("max |winograd - direct|: %.5f\n", tensor.MaxAbsDiff(wgOut, stOut))

	cs, cw := st.Census(inQ.Shape), wg.Census(inQ.Shape)
	fmt.Printf("census: direct %d mul + %d add; winograd %d mul + %d add (%.2fx fewer muls)\n",
		cs.Mul, cs.Add, cw.Mul, cw.Add, float64(cs.Mul)/float64(cw.Mul))

	timeIt := func(name string, f func()) {
		start := time.Now()
		for i := 0; i < *iters; i++ {
			f()
		}
		d := time.Since(start) / time.Duration(*iters)
		fmt.Printf("%-10s %v/forward\n", name, d)
	}
	timeIt("direct", func() { conv.Forward(inQ, st) })
	timeIt("winograd", func() { wg.Forward(inQ) })
}
