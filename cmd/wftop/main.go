// Command wftop is a live terminal dashboard for a wfserve deployment: it
// polls the server's /metrics and /fleet endpoints and renders queue and
// cache state, per-tenant fair-share occupancy, campaign latency/throughput
// and the federated worker table (heartbeat age, shard counts, exec p50/p99,
// straggler flags) in place — top(1) for the campaign fleet.
//
// Usage:
//
//	wftop -server localhost:8077            # live, refreshed every 2s
//	wftop -server localhost:8077 -once      # one snapshot to stdout (CI)
//
// Every byte rendered comes from the same public endpoints an operator can
// curl: /metrics is parsed with the strict exposition parser CI uses
// (metricscheck), so wftop doubles as a continuous validity check — a
// malformed page fails the snapshot rather than rendering garbage.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	server := flag.String("server", "localhost:8077", "wfserve address")
	apiKey := flag.String("api-key", os.Getenv("WF_API_KEY"), "API key for a keyed server (default $WF_API_KEY)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control; CI-friendly)")
	flag.Parse()

	base := *server
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := &client{base: base, key: *apiKey, hc: &http.Client{Timeout: 10 * time.Second}}

	if *once {
		if err := render(os.Stdout, cl); err != nil {
			fmt.Fprintf(os.Stderr, "wftop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for {
		var frame strings.Builder
		err := render(&frame, cl)
		// Clear and repaint only once the frame is complete, so a slow poll
		// never leaves a half-drawn screen.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("wftop: %v (retrying every %s)\n", err, *interval)
		} else {
			os.Stdout.WriteString(frame.String())
		}
		time.Sleep(*interval)
	}
}

type client struct {
	base string
	key  string
	hc   *http.Client
}

func (c *client) get(path string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	return c.hc.Do(req)
}

// metrics fetches and strictly validates the server's exposition page.
func (c *client) metrics() (*obs.Exposition, error) {
	resp, err := c.get("/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ValidateExposition(resp.Body)
}

func render(w io.Writer, cl *client) error {
	exp, err := cl.metrics()
	if err != nil {
		return err
	}
	now := time.Now().Format(time.RFC3339)
	fmt.Fprintf(w, "wftop — %s — %s  (uptime %s)\n\n",
		cl.base, now, fmtDur(gauge(exp, "wfserve_uptime_seconds")))

	fmt.Fprintf(w, "queue %d  inflight %d  draining %s\n",
		int64(gauge(exp, "wfserve_queue_depth")),
		int64(gauge(exp, "wfserve_jobs_inflight")),
		yesNo(gauge(exp, "wfserve_draining") > 0))
	hits, misses := gauge(exp, "wfserve_cache_hits_total"), gauge(exp, "wfserve_cache_misses_total")
	ratio := 0.0
	if hits+misses > 0 {
		ratio = 100 * hits / (hits + misses)
	}
	fmt.Fprintf(w, "cache %d entries, %s resident, %d hits / %d misses (%.1f%% hit)\n",
		int64(gauge(exp, "wfserve_cache_entries")),
		fmtBytes(gauge(exp, "wfserve_cache_resident_bytes")),
		int64(hits), int64(misses), ratio)

	camp := histogram(exp, "wfserve_campaign_seconds", nil)
	thr := histogram(exp, "wfserve_campaign_units_per_second", nil)
	fmt.Fprintf(w, "campaigns %d done  latency p50 %s p99 %s  throughput p50 %.0f units/s\n\n",
		camp.Count, fmtSecs(camp.Quantile(0.50)), fmtSecs(camp.Quantile(0.99)), thr.Quantile(0.50))

	renderTenants(w, exp)

	resp, err := cl.get("/fleet?format=text")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		io.Copy(w, resp.Body)
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		fmt.Fprintln(w, "fleet: none (server runs without -dist)")
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET /fleet: %s", resp.Status)
	}
	return nil
}

// renderTenants prints the per-tenant fair-share table when the server
// exposes tenant series (multi-tenant mode).
func renderTenants(w io.Writer, exp *obs.Exposition) {
	queued := byTenant(exp, "wfserve_tenant_queue_depth")
	if len(queued) == 0 {
		return
	}
	running := byTenant(exp, "wfserve_tenant_jobs_running")
	admitted := byTenant(exp, "wfserve_tenant_admitted_total")
	rejected := byTenant(exp, "wfserve_tenant_rejected_total")
	units := byTenant(exp, "wfserve_tenant_served_units_total")
	names := make([]string, 0, len(queued))
	for n := range queued {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %6s %7s %9s %9s %12s\n", "TENANT", "QUEUE", "RUNNING", "ADMITTED", "REJECTED", "UNITS")
	for _, n := range names {
		fmt.Fprintf(w, "%-16.16s %6d %7d %9d %9d %12d\n",
			n, int64(queued[n]), int64(running[n]), int64(admitted[n]), int64(rejected[n]), int64(units[n]))
	}
	fmt.Fprintln(w)
}

// gauge returns the value of the named unlabeled sample (0 when absent).
func gauge(exp *obs.Exposition, name string) float64 {
	for _, s := range exp.Find(name) {
		if len(s.Labels) == 0 {
			return s.Value
		}
	}
	return 0
}

// byTenant collects a family's samples keyed by their tenant label.
func byTenant(exp *obs.Exposition, name string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range exp.Find(name) {
		if t, ok := s.Labels["tenant"]; ok {
			out[t] = s.Value
		}
	}
	return out
}

// histogram reconstructs an obs.HistogramSnapshot from a family's cumulative
// _bucket samples (filtered to label sets matching want, ignoring le), so
// quantile estimates reuse the same interpolation the server uses.
func histogram(exp *obs.Exposition, fam string, want map[string]string) obs.HistogramSnapshot {
	type bkt struct {
		le  float64
		cum float64
	}
	var bkts []bkt
	var sum float64
	for _, s := range exp.Samples {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		switch s.Name {
		case fam + "_bucket":
			le := math.Inf(1)
			if raw := s.Labels["le"]; raw != "+Inf" {
				fmt.Sscanf(raw, "%g", &le)
			}
			bkts = append(bkts, bkt{le: le, cum: s.Value})
		case fam + "_sum":
			sum = s.Value
		}
	}
	if len(bkts) == 0 {
		return obs.HistogramSnapshot{}
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	snap := obs.HistogramSnapshot{Sum: sum}
	prev := 0.0
	for _, b := range bkts {
		if !math.IsInf(b.le, 1) {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		snap.Counts = append(snap.Counts, int64(b.cum-prev))
		prev = b.cum
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func fmtDur(s float64) string {
	return (time.Duration(s) * time.Second).String()
}

func fmtSecs(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
