// Server + client: stand up the wfserve campaign service in-process, submit
// the same winograd VGG19 sweep twice through the facade client, and watch
// the second submission come back from the content-addressed cache —
// bit-identical, without re-running a single Monte-Carlo round.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	winofault "repro"
	"repro/internal/service"
)

func main() {
	svc, err := service.New(service.Config{Jobs: 1, QueueDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)

	client, err := winofault.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	req := winofault.CampaignRequest{
		Model:     "vgg19",
		Engine:    "winograd",
		InputSize: 16,
		Samples:   8,
		BERs:      []float64{1e-10, 1e-9, 1e-8},
	}

	ctx := context.Background()
	start := time.Now()
	res1, st1, err := client.Sweep(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	res2, st2, err := client.Sweep(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)

	fmt.Printf("campaign %.12s…: first run cached=%v (%v), second cached=%v (%v)\n\n",
		st1.ID, st1.Cached, cold.Round(time.Millisecond), st2.Cached, warm.Round(time.Millisecond))
	winofault.FormatSweep(os.Stdout, res1.Points)

	for i := range res1.Points {
		if res1.Points[i] != res2.Points[i] {
			log.Fatalf("cache broke determinism: %+v vs %+v", res1.Points[i], res2.Points[i])
		}
	}
	fmt.Println("\ncached sweep is bit-identical to the freshly computed one")

	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	if err := svc.Close(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
