// TMR protection: plan the paper's fine-grained triple-modular-redundancy
// (Section 4.1) for a standard-convolution network and its winograd twin,
// and compare the protection overhead needed to reach the same accuracy
// goal — fault-tolerance-aware winograd needs far less.
package main

import (
	"fmt"
	"log"
	"sort"

	winofault "repro"
)

func main() {
	const (
		ber    = 5e-9 // stress level with visible degradation at example scale
		target = 0.90 // accuracy goal (fraction of golden)
	)

	for _, engine := range []winofault.Engine{winofault.Direct, winofault.Winograd} {
		name := "ST-Conv"
		if engine == winofault.Winograd {
			name = "WG-Conv (fault-tolerance aware)"
		}
		sys, err := winofault.New(winofault.Config{
			Model:  "vgg19",
			Engine: engine,
			// Small budget so the example finishes in tens of seconds.
			Samples: 12, Rounds: 2,
		})
		if err != nil {
			log.Fatal(err)
		}

		before := sys.Accuracy(ber)
		plan := sys.OptimizeTMR(ber, target)
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("accuracy unprotected: %.1f%%  ->  with plan: %.1f%% (goal %.0f%%)\n",
			before*100, plan.Accuracy*100, target*100)
		fmt.Printf("TMR overhead: %.3gG extra ops = %.1f%% of full TMR\n",
			float64(plan.OverheadOps)/1e9, plan.OverheadFraction*100)

		// Show the most protected layers (multiplications first, as the
		// operation-type analysis dictates).
		type row struct {
			layer    string
			mul, add float64
		}
		var rows []row
		for l, fr := range plan.Layers {
			if fr[0] > 0 || fr[1] > 0 {
				rows = append(rows, row{l, fr[0], fr[1]})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].mul+rows[i].add > rows[j].mul+rows[j].add })
		for i, r := range rows {
			if i == 5 {
				fmt.Printf("  ... and %d more layers\n", len(rows)-5)
				break
			}
			fmt.Printf("  %-20s protect %3.0f%% of muls, %3.0f%% of adds\n", r.layer, r.mul*100, r.add*100)
		}
		fmt.Println()
	}
}
