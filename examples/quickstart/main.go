// Quickstart: build the paper's VGG19 benchmark under both convolution
// engines and watch winograd's inherent fault tolerance appear as the bit
// error rate grows — the headline observation of the paper, in ~30 lines.
package main

import (
	"fmt"
	"log"

	winofault "repro"
)

func main() {
	bers := []float64{1e-10, 1e-9, 3e-9, 1e-8}

	st, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Direct})
	if err != nil {
		log.Fatal(err)
	}
	wg, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Winograd})
	if err != nil {
		log.Fatal(err)
	}

	_, _, stMul, _ := st.OpCounts()
	_, _, wgMul, _ := wg.OpCounts()
	fmt.Printf("VGG19 full-size multiplications: direct %.2fG, winograd %.2fG (%.2fx fewer)\n\n",
		float64(stMul)/1e9, float64(wgMul)/1e9, float64(stMul)/float64(wgMul))

	fmt.Printf("%-10s %12s %12s %8s\n", "BER", "ST-Conv %", "WG-Conv %", "gap pp")
	stPts, wgPts := st.Sweep(bers), wg.Sweep(bers)
	for i := range bers {
		fmt.Printf("%-10.0e %12.2f %12.2f %8.2f\n",
			bers[i], stPts[i].Accuracy*100, wgPts[i].Accuracy*100,
			(wgPts[i].Accuracy-stPts[i].Accuracy)*100)
	}
	fmt.Println("\n(accuracy = agreement with the fault-free golden predictions;" +
		" winograd executes ~2x fewer of the vulnerable multiplications)")
}
