// Voltage scaling: use the network's fault tolerance to run the DNN-Engine
// accelerator below its error-free supply voltage (paper Section 4.2). The
// winograd network tolerates more timing-error BER at equal accuracy loss,
// so it reaches a lower voltage — and it also needs fewer cycles, so the
// energy gain compounds.
package main

import (
	"fmt"
	"log"

	winofault "repro"
)

func main() {
	losses := []float64{1, 3, 5, 10} // accuracy-loss budgets in percent

	st, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Direct})
	if err != nil {
		log.Fatal(err)
	}
	wg, err := winofault.New(winofault.Config{Model: "vgg19", Engine: winofault.Winograd})
	if err != nil {
		log.Fatal(err)
	}

	stPts := st.ExploreEnergy(losses)
	wgPts := wg.ExploreEnergy(losses)

	fmt.Println("energy normalized to ST-Conv at the nominal 0.9 V supply:")
	fmt.Printf("%-8s %10s %10s %12s %12s\n", "loss%", "V(ST)", "V(WG)", "E(ST)", "E(WG)")
	for i := range losses {
		fmt.Printf("%-8.0f %10.3f %10.3f %12.3f %12.3f\n",
			losses[i], stPts[i].Voltage, wgPts[i].Voltage,
			stPts[i].NormalizedEnergy, wgPts[i].NormalizedEnergy)
	}
	fmt.Println("\nlower V(WG) = winograd's fault tolerance permits deeper scaling;")
	fmt.Println("E(WG) < E(ST) even at equal voltage because winograd runs fewer cycles")
}
