// Layer-wise analysis: reproduce the paper's Fig. 3 insight that a
// network's middle layers — the ones executing the most multiplications —
// are the most fault-sensitive, which is exactly what the fine-grained TMR
// planner exploits when ranking layers by vulnerability factor.
package main

import (
	"fmt"
	"log"
	"strings"

	winofault "repro"
)

func main() {
	sys, err := winofault.New(winofault.Config{
		Model:   "vgg19",
		Engine:  winofault.Winograd,
		Samples: 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	const ber = 5e-9
	base, layers := sys.LayerSensitivities(ber)
	fmt.Printf("VGG19 (winograd engine), BER %.0e, all-faulty baseline %.1f%%\n\n", ber, base*100)
	fmt.Printf("%-16s %9s %9s %14s  %s\n", "layer", "ff-acc%", "vuln pp", "muls (full)", "vulnerability")

	maxV := 0.0
	for _, l := range layers {
		if l.Vulnerability > maxV {
			maxV = l.Vulnerability
		}
	}
	for _, l := range layers {
		bar := ""
		if maxV > 0 && l.Vulnerability > 0 {
			bar = strings.Repeat("#", int(l.Vulnerability/maxV*30+0.5))
		}
		fmt.Printf("%-16s %9.1f %9.1f %14d  %s\n",
			l.Layer, l.FaultFreeAccuracy*100, l.Vulnerability*100, l.Muls, bar)
	}
	fmt.Println("\nlayers whose fault-free accuracy rises most above the baseline are the")
	fmt.Println("most critical; protect those first (the paper's TMR selection heuristic)")
}
