package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	winofault "repro"
	"repro/internal/obs"
)

// Handler exposes the service as the wfserve HTTP+JSON API:
//
//	POST   /campaigns            submit (?wait=1 blocks for the result)
//	GET    /campaigns/{id}        poll status (+result once done)
//	GET    /campaigns/{id}/result raw result bytes; ?format=text renders the
//	                              canonical wfsim accuracy table
//	GET    /campaigns/{id}/events server-sent events: per-round progress,
//	                              then the final status
//	GET    /campaigns/{id}/trace  the campaign's span timeline as JSON;
//	                              ?format=text renders a waterfall. Scoped to
//	                              the submitting tenants like every other
//	                              campaign route
//	DELETE /campaigns/{id}        cancel an in-flight campaign — shared by
//	                              design: coalesced waiters on the same
//	                              content address all observe the abort and
//	                              may resubmit (see Service.Cancel)
//	GET    /healthz               liveness + drain state: 200 {"ok":true,
//	                              "state":"serving"} while accepting work,
//	                              503 {"ok":false,"state":"draining"} once
//	                              shutdown has begun — load balancers and
//	                              fleet workers stop routing on the 503
//	GET    /metrics               Prometheus text format: queue depth,
//	                              in-flight jobs, cache hit/miss counters,
//	                              per-worker shard counts and the federated
//	                              wffleet_* series
//	GET    /fleet                 federated fleet view (JSON; ?format=text
//	                              renders a table): per-worker liveness,
//	                              heartbeat age, shard counts, exec p50/p99,
//	                              straggler flags. Tenant-agnostic but still
//	                              requires a valid API key on a keyed server;
//	                              404 without a distributor
//
// On a multi-tenant server (Config.Tenants set) every /campaigns* route
// demands a valid API key: submission resolves the key to the tenant that
// pays for the campaign, and status/result/events/cancel are scoped to the
// tenants that submitted the job (campaign IDs are deterministic request
// hashes, so without that scope any tenant that guessed another's request
// parameters could read its results or cancel its runs). Unknown keys get a
// 401; a valid key probing another tenant's campaign gets the same 404 an
// unknown campaign does, so existence never leaks across tenants.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	return mux
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ok":false,"state":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"ok":true,"state":"serving"}`)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintln(w, "# HELP wfserve_queue_depth Campaigns waiting in the bounded job queue.")
	fmt.Fprintln(w, "# TYPE wfserve_queue_depth gauge")
	fmt.Fprintf(w, "wfserve_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintln(w, "# HELP wfserve_jobs_inflight Campaigns currently executing.")
	fmt.Fprintln(w, "# TYPE wfserve_jobs_inflight gauge")
	fmt.Fprintf(w, "wfserve_jobs_inflight %d\n", st.Inflight)
	fmt.Fprintln(w, "# HELP wfserve_cache_hits_total Content-addressed cache probes that found a result.")
	fmt.Fprintln(w, "# TYPE wfserve_cache_hits_total counter")
	fmt.Fprintf(w, "wfserve_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintln(w, "# HELP wfserve_cache_misses_total Content-addressed cache probes that found nothing.")
	fmt.Fprintln(w, "# TYPE wfserve_cache_misses_total counter")
	fmt.Fprintf(w, "wfserve_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintln(w, "# HELP wfserve_cache_entries In-memory cache tier entry count (LRU occupancy).")
	fmt.Fprintln(w, "# TYPE wfserve_cache_entries gauge")
	fmt.Fprintf(w, "wfserve_cache_entries %d\n", st.CacheEntries)
	fmt.Fprintln(w, "# HELP wfserve_cache_resident_bytes Result bytes resident in the in-memory cache tier.")
	fmt.Fprintln(w, "# TYPE wfserve_cache_resident_bytes gauge")
	fmt.Fprintf(w, "wfserve_cache_resident_bytes %d\n", st.CacheBytes)
	fmt.Fprintln(w, "# HELP wfserve_draining Whether shutdown has begun (healthz reports 503).")
	fmt.Fprintln(w, "# TYPE wfserve_draining gauge")
	fmt.Fprintf(w, "wfserve_draining %d\n", boolGauge(s.Draining()))
	if len(st.Tenants) > 0 {
		fmt.Fprintln(w, "# HELP wfserve_tenant_queue_depth Campaigns waiting per tenant.")
		fmt.Fprintln(w, "# TYPE wfserve_tenant_queue_depth gauge")
		for _, ts := range st.Tenants {
			fmt.Fprintf(w, "wfserve_tenant_queue_depth{tenant=\"%s\"} %d\n", obs.EscapeLabel(ts.Name), ts.QueueDepth)
		}
		fmt.Fprintln(w, "# HELP wfserve_tenant_jobs_running Campaigns executing per tenant.")
		fmt.Fprintln(w, "# TYPE wfserve_tenant_jobs_running gauge")
		for _, ts := range st.Tenants {
			fmt.Fprintf(w, "wfserve_tenant_jobs_running{tenant=\"%s\"} %d\n", obs.EscapeLabel(ts.Name), ts.Running)
		}
		fmt.Fprintln(w, "# HELP wfserve_tenant_admitted_total Submissions that consumed queue capacity, per tenant.")
		fmt.Fprintln(w, "# TYPE wfserve_tenant_admitted_total counter")
		for _, ts := range st.Tenants {
			fmt.Fprintf(w, "wfserve_tenant_admitted_total{tenant=\"%s\"} %d\n", obs.EscapeLabel(ts.Name), ts.Admitted)
		}
		fmt.Fprintln(w, "# HELP wfserve_tenant_rejected_total Submissions refused (queue full or over quota), per tenant.")
		fmt.Fprintln(w, "# TYPE wfserve_tenant_rejected_total counter")
		for _, ts := range st.Tenants {
			fmt.Fprintf(w, "wfserve_tenant_rejected_total{tenant=\"%s\"} %d\n", obs.EscapeLabel(ts.Name), ts.Rejected)
		}
		fmt.Fprintln(w, "# HELP wfserve_tenant_served_units_total Campaign work units executed per tenant.")
		fmt.Fprintln(w, "# TYPE wfserve_tenant_served_units_total counter")
		for _, ts := range st.Tenants {
			fmt.Fprintf(w, "wfserve_tenant_served_units_total{tenant=\"%s\"} %d\n", obs.EscapeLabel(ts.Name), ts.ServedUnits)
		}
	}
	if st.Workers != nil {
		live := 0
		for _, ws := range st.Workers {
			if ws.Live {
				live++
			}
		}
		fmt.Fprintln(w, "# HELP wfserve_workers_live Fleet workers with a fresh heartbeat.")
		fmt.Fprintln(w, "# TYPE wfserve_workers_live gauge")
		fmt.Fprintf(w, "wfserve_workers_live %d\n", live)
		fmt.Fprintln(w, "# HELP wfserve_worker_shards_total Shard results delivered per fleet worker.")
		fmt.Fprintln(w, "# TYPE wfserve_worker_shards_total counter")
		for _, ws := range st.Workers {
			fmt.Fprintf(w, "wfserve_worker_shards_total{worker=\"%s\",id=\"%s\"} %d\n",
				obs.EscapeLabel(ws.Name), obs.EscapeLabel(ws.ID), ws.Shards)
		}
	}
	if fr := s.fleet(); fr != nil {
		writeFleetMetrics(w, fr.Fleet())
	}
	s.metrics.Write(w)
	obs.WriteBuildInfo(w, "wfserve", s.start)
}

// handleTrace serves a finished or in-flight campaign's span timeline: from
// the in-memory ring first, falling back to the durable trace store when the
// ring misses (evicted, or the trace belongs to a previous incarnation of
// this server). Both paths serve the same TraceSnapshot wire form, so a
// disk-served trace is byte-identical to the one served before the restart.
// Without a trace store, a ring miss is a 404 exactly as before.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var snap obs.TraceSnapshot
	if tr := s.trace.Lookup(j.Key); tr != nil {
		snap = tr.Snapshot()
	} else if stored, ok := s.traceStore.Get(j.Key); ok {
		snap = stored
	} else {
		httpError(w, http.StatusNotFound, fmt.Errorf("no trace recorded for campaign %q", j.Key))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}

// requestAPIKey extracts the caller's API key: "Authorization: Bearer <key>"
// or the "X-API-Key" header. Empty when neither is present.
func requestAPIKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
	}
	return r.Header.Get("X-API-Key")
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeStatus(w http.ResponseWriter, code int, st winofault.CampaignStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req winofault.CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, err := s.SubmitFor(req, requestAPIKey(r))
	switch {
	case errors.Is(err, ErrUnauthorized):
		httpError(w, http.StatusUnauthorized, err)
		return
	case errors.Is(err, ErrQuotaExceeded):
		// The tenant's own campaigns must finish before capacity frees up;
		// hint a longer retry than the global queue-full backpressure.
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	wait := r.URL.Query().Get("wait")
	if wait == "" || wait == "0" || wait == "false" {
		st := j.StatusWithResult()
		code := http.StatusAccepted
		if st.State == winofault.StateDone {
			code = http.StatusOK
		}
		writeStatus(w, code, st)
		return
	}
	if _, err := j.Wait(r.Context()); err != nil && r.Context().Err() != nil {
		httpError(w, http.StatusRequestTimeout, fmt.Errorf("wait aborted: %w", err))
		return
	}
	writeStatus(w, http.StatusOK, j.StatusWithResult())
}

// lookup authenticates the caller (when a key table is configured) and
// resolves the campaign, writing the error response itself on failure: 401
// for a missing or unknown API key, 404 both for unknown campaigns and for
// campaigns the caller's tenant never submitted.
func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	tenant := DefaultTenant
	if s.cfg.Tenants != nil {
		t, ok := s.cfg.Tenants.Lookup(requestAPIKey(r))
		if !ok {
			httpError(w, http.StatusUnauthorized, ErrUnauthorized)
			return nil, false
		}
		tenant = t.Name
	}
	j, ok := s.Job(r.PathValue("id"))
	if !ok || !j.visibleTo(tenant) {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeStatus(w, http.StatusOK, j.StatusWithResult())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := j.StatusWithResult()
	if st.State != winofault.StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("campaign %q is %s", st.ID, st.State))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		var res winofault.CampaignResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		winofault.FormatSweep(w, res.Points)
		return
	}
	// The cached bytes verbatim: identical campaigns get byte-identical
	// responses, which CI diffs directly.
	w.Header().Set("Content-Type", "application/json")
	w.Write(st.Result)
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	updates, unsubscribe := j.Subscribe()
	defer unsubscribe()
	enc := json.NewEncoder(w)
	for {
		select {
		case st, open := <-updates:
			if !open {
				return
			}
			event := "progress"
			if st.State == winofault.StateDone || st.State == winofault.StateFailed {
				event = st.State
			}
			fmt.Fprintf(w, "event: %s\ndata: ", event)
			enc.Encode(st) // Encode terminates the data line with \n
			fmt.Fprint(w, "\n")
			if canFlush {
				fl.Flush()
			}
			if event != "progress" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.Cancel(j.Key)
	writeStatus(w, http.StatusOK, j.StatusWithResult())
}
