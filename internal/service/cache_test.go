package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

// TestCachePersistence: entries survive both eviction and a full cache
// rebuild when a persistence directory is configured.
func TestCachePersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("payload-a"))
	c.Put("b", []byte("payload-b")) // evicts a from memory, not from disk
	if got, ok := c.Get("a"); !ok || !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("evicted entry not reloaded from disk: %q %v", got, ok)
	}

	// A fresh cache over the same dir (server restart) still serves it.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get("a"); !ok || !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("restart lost the entry: %q %v", got, ok)
	}
	if _, ok := c2.Get("nope"); ok {
		t.Error("phantom entry")
	}
}

// TestCachePutOverwrites: re-putting a key replaces its bytes everywhere.
func TestCachePutOverwrites(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if got, _ := c.Get("k"); !bytes.Equal(got, []byte("new")) {
		t.Errorf("memory kept %q", got)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "k.json")); err != nil || !bytes.Equal(got, []byte("new")) {
		t.Errorf("disk kept %q (%v)", got, err)
	}
	if c.Len() != 1 {
		t.Errorf("overwrite duplicated the entry: len %d", c.Len())
	}
}

// TestCacheNoTempDroppings: atomic writes must not leave temp files behind.
func TestCacheNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("x"))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 10 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("dir has %d entries, want 10: %v", len(ents), names)
	}
}

// TestCacheBytesGauge: the resident-bytes gauge tracks inserts, in-place
// overwrites and LRU evictions exactly, so /metrics reports true memory
// pressure.
func TestCacheBytesGauge(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	check := func(entries int, bytes int64) {
		t.Helper()
		if c.Len() != entries || c.Bytes() != bytes {
			t.Fatalf("cache at %d entries / %d bytes, want %d / %d", c.Len(), c.Bytes(), entries, bytes)
		}
	}
	check(0, 0)
	c.Put("a", make([]byte, 10))
	check(1, 10)
	c.Put("b", make([]byte, 5))
	check(2, 15)
	c.Put("a", make([]byte, 3)) // overwrite shrinks
	check(2, 8)
	c.Put("c", make([]byte, 7)) // evicts LRU ("b")
	check(2, 10)
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted entry still present")
	}
	check(2, 10)
}

// TestCacheBytesDiskPromotion: entries promoted back from the persistence
// directory count toward the resident gauge again.
func TestCacheBytesDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", make([]byte, 10))
	c.Put("b", make([]byte, 6)) // evicts "a" from memory, disk copy stays
	if c.Bytes() != 6 {
		t.Fatalf("resident %d bytes, want 6", c.Bytes())
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("persisted entry lost")
	}
	// "a" promoted back in, evicting "b": gauge follows.
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("after promotion: %d entries / %d bytes, want 1 / 10", c.Len(), c.Bytes())
	}
}
