package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

// TestCachePersistence: entries survive both eviction and a full cache
// rebuild when a persistence directory is configured.
func TestCachePersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("payload-a"))
	c.Put("b", []byte("payload-b")) // evicts a from memory, not from disk
	if got, ok := c.Get("a"); !ok || !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("evicted entry not reloaded from disk: %q %v", got, ok)
	}

	// A fresh cache over the same dir (server restart) still serves it.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get("a"); !ok || !bytes.Equal(got, []byte("payload-a")) {
		t.Fatalf("restart lost the entry: %q %v", got, ok)
	}
	if _, ok := c2.Get("nope"); ok {
		t.Error("phantom entry")
	}
}

// TestCachePutOverwrites: re-putting a key replaces its bytes everywhere.
func TestCachePutOverwrites(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if got, _ := c.Get("k"); !bytes.Equal(got, []byte("new")) {
		t.Errorf("memory kept %q", got)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "k.json")); err != nil || !bytes.Equal(got, []byte("new")) {
		t.Errorf("disk kept %q (%v)", got, err)
	}
	if c.Len() != 1 {
		t.Errorf("overwrite duplicated the entry: len %d", c.Len())
	}
}

// TestCacheNoTempDroppings: atomic writes must not leave temp files behind.
func TestCacheNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("x"))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 10 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("dir has %d entries, want 10: %v", len(ents), names)
	}
}
