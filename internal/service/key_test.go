package service

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	winofault "repro"
)

func mustKey(t *testing.T, req winofault.CampaignRequest) string {
	t.Helper()
	key, err := Key(req)
	if err != nil {
		t.Fatalf("Key(%+v): %v", req, err)
	}
	return key
}

// TestKeyDefaultsAreCanonical: spelling a platform default explicitly must
// address the same campaign as omitting it.
func TestKeyDefaultsAreCanonical(t *testing.T) {
	implicit := winofault.CampaignRequest{BERs: []float64{1e-9}}
	explicit := winofault.CampaignRequest{
		Model:     "vgg19",
		Engine:    "direct",
		Precision: "int16",
		Semantics: "result",
		WidthMult: 0.125,
		InputSize: 32,
		Samples:   24,
		Rounds:    2,
		Seed:      1,
		BERs:      []float64{1e-9},
	}
	if a, b := mustKey(t, implicit), mustKey(t, explicit); a != b {
		t.Errorf("explicit defaults changed the key: %s vs %s", a, b)
	}
}

// TestKeyJSONFieldOrderInvariance: the same request serialized with
// different JSON member order must hash identically.
func TestKeyJSONFieldOrderInvariance(t *testing.T) {
	docs := []string{
		`{"model":"resnet50","engine":"winograd","bers":[1e-10,1e-9],"seed":7}`,
		`{"seed":7,"bers":[1e-10,1e-9],"engine":"winograd","model":"resnet50"}`,
	}
	var keys []string
	for _, doc := range docs {
		var req winofault.CampaignRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mustKey(t, req))
	}
	if keys[0] != keys[1] {
		t.Errorf("JSON member order changed the key: %s vs %s", keys[0], keys[1])
	}
}

// TestKeyFloatFormattingInvariance: every textual spelling of the same
// float64 must canonicalize identically, and genuinely different values
// must not.
func TestKeyFloatFormattingInvariance(t *testing.T) {
	var a, b winofault.CampaignRequest
	if err := json.Unmarshal([]byte(`{"bers":[1e-9],"widthMult":0.125}`), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"bers":[0.000000001],"widthMult":1.25e-1}`), &b); err != nil {
		t.Fatal(err)
	}
	if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
		t.Errorf("same floats, different spelling, different keys: %s vs %s", ka, kb)
	}
	c := a
	c.BERs = []float64{2e-9}
	if mustKey(t, a) == mustKey(t, c) {
		t.Error("different BER produced the same key")
	}
}

// TestKeyProtectionOrderInvariance: protection is a map, so its iteration
// order must never leak into the key; its content must.
func TestKeyProtectionOrderInvariance(t *testing.T) {
	prot := map[string][2]float64{}
	for _, name := range []string{"conv1_1", "conv2_1", "conv3_1", "conv3_4", "conv4_2", "conv5_3"} {
		prot[name] = [2]float64{0.5, 0.25}
	}
	base := winofault.CampaignRequest{BERs: []float64{1e-9}, Protection: prot}
	want := mustKey(t, base)
	for i := 0; i < 20; i++ {
		clone := winofault.CampaignRequest{BERs: []float64{1e-9}, Protection: map[string][2]float64{}}
		for k, v := range prot {
			clone.Protection[k] = v
		}
		if got := mustKey(t, clone); got != want {
			t.Fatalf("iteration %d: map order leaked into the key: %s vs %s", i, got, want)
		}
	}
	changed := winofault.CampaignRequest{BERs: []float64{1e-9},
		Protection: map[string][2]float64{"conv1_1": {1, 0.25}}}
	if mustKey(t, changed) == want {
		t.Error("different protection produced the same key")
	}
	// A zero-fraction entry protects nothing: same campaign as no entry.
	noop := winofault.CampaignRequest{BERs: []float64{1e-9},
		Protection: map[string][2]float64{"conv1_1": {0, 0}}}
	if mustKey(t, noop) != mustKey(t, winofault.CampaignRequest{BERs: []float64{1e-9}}) {
		t.Error("zero-fraction protection entry changed the key")
	}
}

// TestKeyIgnoresWorkers: worker count is scheduling, not campaign identity
// (results are bit-identical for any value), so it must not shard the cache.
func TestKeyIgnoresWorkers(t *testing.T) {
	a := winofault.CampaignRequest{BERs: []float64{1e-9}, Workers: 1}
	b := winofault.CampaignRequest{BERs: []float64{1e-9}, Workers: 32}
	if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
		t.Errorf("workers sharded the cache: %s vs %s", ka, kb)
	}
}

// TestKeyDistinguishesResultAffectingFields: every field that changes the
// campaign's outcome must change the key.
func TestKeyDistinguishesResultAffectingFields(t *testing.T) {
	base := winofault.CampaignRequest{BERs: []float64{1e-9}}
	want := mustKey(t, base)
	variants := map[string]winofault.CampaignRequest{
		"model":     {Model: "googlenet", BERs: []float64{1e-9}},
		"engine":    {Engine: "winograd", BERs: []float64{1e-9}},
		"precision": {Precision: "int8", BERs: []float64{1e-9}},
		"semantics": {Semantics: "neuron", BERs: []float64{1e-9}},
		"widthMult": {WidthMult: 0.25, BERs: []float64{1e-9}},
		"inputSize": {InputSize: 16, BERs: []float64{1e-9}},
		"samples":   {Samples: 8, BERs: []float64{1e-9}},
		"rounds":    {Rounds: 5, BERs: []float64{1e-9}},
		"seed":      {Seed: 99, BERs: []float64{1e-9}},
		"tileF4":    {TileF4: true, BERs: []float64{1e-9}},
		"berOrder":  {BERs: []float64{1e-8, 1e-9}},
		"layers":    {Layers: true, BERs: []float64{1e-9}},
	}
	for field, req := range variants {
		if mustKey(t, req) == want {
			t.Errorf("changing %s did not change the key", field)
		}
	}
}

// TestKeyRejectsInvalidRequests pins the validation surface.
func TestKeyRejectsInvalidRequests(t *testing.T) {
	bad := map[string]winofault.CampaignRequest{
		"no bers":        {},
		"bad engine":     {Engine: "systolic", BERs: []float64{1e-9}},
		"bad precision":  {Precision: "fp32", BERs: []float64{1e-9}},
		"bad semantics":  {Semantics: "sdc", BERs: []float64{1e-9}},
		"reserved chars": {BERs: []float64{1e-9}, Protection: map[string][2]float64{"a|b": {1, 1}}},
		"nan ber":        {BERs: []float64{math.NaN()}},
		"inf ber":        {BERs: []float64{math.Inf(1)}},
		// Negative/nonsensical numerics must be 400s at submit time, never
		// keyed jobs that fail (or panic) on the worker: only the zero value
		// means "default".
		"negative samples":       {Samples: -1, BERs: []float64{1e-9}},
		"negative rounds":        {Rounds: -1, BERs: []float64{1e-9}},
		"negative inputSize":     {InputSize: -4, BERs: []float64{1e-9}},
		"negative widthMult":     {WidthMult: -0.5, BERs: []float64{1e-9}},
		"nan widthMult":          {WidthMult: math.NaN(), BERs: []float64{1e-9}},
		"inf widthMult":          {WidthMult: math.Inf(1), BERs: []float64{1e-9}},
		"nan protection":         {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {math.NaN(), 0.5}}},
		"inf protection":         {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {math.Inf(1), 0.5}}},
		"negative protection":    {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {-0.1, 0.5}}},
		"above-unity protection": {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {0.5, 1.5}}},
	}
	for name, req := range bad {
		if _, err := Key(req); err == nil {
			t.Errorf("%s: Key accepted an invalid request", name)
		}
	}
}

// TestCanonicalIsVersioned: the canonical serialization carries its schema
// tag so persisted entries can never outlive a schema change silently.
func TestCanonicalIsVersioned(t *testing.T) {
	canon, err := Canonical(winofault.CampaignRequest{BERs: []float64{1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(canon, keySchema+"\n") {
		t.Errorf("canonical form does not start with schema tag %q:\n%s", keySchema, canon)
	}
}
