package service

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	winofault "repro"
)

func mustKey(t *testing.T, req winofault.CampaignRequest) string {
	t.Helper()
	key, err := Key(req)
	if err != nil {
		t.Fatalf("Key(%+v): %v", req, err)
	}
	return key
}

// TestKeyDefaultsAreCanonical: spelling a platform default explicitly must
// address the same campaign as omitting it.
func TestKeyDefaultsAreCanonical(t *testing.T) {
	implicit := winofault.CampaignRequest{BERs: []float64{1e-9}}
	explicit := winofault.CampaignRequest{
		Model:     "vgg19",
		Engine:    "direct",
		Precision: "int16",
		Semantics: "result",
		WidthMult: 0.125,
		InputSize: 32,
		Samples:   24,
		Rounds:    2,
		Seed:      1,
		BERs:      []float64{1e-9},
	}
	if a, b := mustKey(t, implicit), mustKey(t, explicit); a != b {
		t.Errorf("explicit defaults changed the key: %s vs %s", a, b)
	}
}

// TestKeyJSONFieldOrderInvariance: the same request serialized with
// different JSON member order must hash identically.
func TestKeyJSONFieldOrderInvariance(t *testing.T) {
	docs := []string{
		`{"model":"resnet50","engine":"winograd","bers":[1e-10,1e-9],"seed":7}`,
		`{"seed":7,"bers":[1e-10,1e-9],"engine":"winograd","model":"resnet50"}`,
	}
	var keys []string
	for _, doc := range docs {
		var req winofault.CampaignRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mustKey(t, req))
	}
	if keys[0] != keys[1] {
		t.Errorf("JSON member order changed the key: %s vs %s", keys[0], keys[1])
	}
}

// TestKeyFloatFormattingInvariance: every textual spelling of the same
// float64 must canonicalize identically, and genuinely different values
// must not.
func TestKeyFloatFormattingInvariance(t *testing.T) {
	var a, b winofault.CampaignRequest
	if err := json.Unmarshal([]byte(`{"bers":[1e-9],"widthMult":0.125}`), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"bers":[0.000000001],"widthMult":1.25e-1}`), &b); err != nil {
		t.Fatal(err)
	}
	if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
		t.Errorf("same floats, different spelling, different keys: %s vs %s", ka, kb)
	}
	c := a
	c.BERs = []float64{2e-9}
	if mustKey(t, a) == mustKey(t, c) {
		t.Error("different BER produced the same key")
	}
}

// TestKeyProtectionOrderInvariance: protection is a map, so its iteration
// order must never leak into the key; its content must.
func TestKeyProtectionOrderInvariance(t *testing.T) {
	prot := map[string][2]float64{}
	for _, name := range []string{"conv1_1", "conv2_1", "conv3_1", "conv3_4", "conv4_2", "conv5_3"} {
		prot[name] = [2]float64{0.5, 0.25}
	}
	base := winofault.CampaignRequest{BERs: []float64{1e-9}, Protection: prot}
	want := mustKey(t, base)
	for i := 0; i < 20; i++ {
		clone := winofault.CampaignRequest{BERs: []float64{1e-9}, Protection: map[string][2]float64{}}
		for k, v := range prot {
			clone.Protection[k] = v
		}
		if got := mustKey(t, clone); got != want {
			t.Fatalf("iteration %d: map order leaked into the key: %s vs %s", i, got, want)
		}
	}
	changed := winofault.CampaignRequest{BERs: []float64{1e-9},
		Protection: map[string][2]float64{"conv1_1": {1, 0.25}}}
	if mustKey(t, changed) == want {
		t.Error("different protection produced the same key")
	}
	// A zero-fraction entry protects nothing: same campaign as no entry.
	noop := winofault.CampaignRequest{BERs: []float64{1e-9},
		Protection: map[string][2]float64{"conv1_1": {0, 0}}}
	if mustKey(t, noop) != mustKey(t, winofault.CampaignRequest{BERs: []float64{1e-9}}) {
		t.Error("zero-fraction protection entry changed the key")
	}
}

// TestKeyIgnoresWorkers: worker count is scheduling, not campaign identity
// (results are bit-identical for any value), so it must not shard the cache.
func TestKeyIgnoresWorkers(t *testing.T) {
	a := winofault.CampaignRequest{BERs: []float64{1e-9}, Workers: 1}
	b := winofault.CampaignRequest{BERs: []float64{1e-9}, Workers: 32}
	if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
		t.Errorf("workers sharded the cache: %s vs %s", ka, kb)
	}
}

// TestKeyIgnoresDeltaExec: like Workers, delta execution is scheduling, not
// campaign identity — results are bit-identical with it on, off or defaulted
// (pinned by the delta equivalence fixtures), so none of the three spellings
// may shard the cache, and the wfcampaign/v1 schema stays unchanged.
func TestKeyIgnoresDeltaExec(t *testing.T) {
	off, on := false, true
	want := mustKey(t, winofault.CampaignRequest{BERs: []float64{1e-9}})
	for name, req := range map[string]winofault.CampaignRequest{
		"explicit off": {BERs: []float64{1e-9}, DeltaExec: &off},
		"explicit on":  {BERs: []float64{1e-9}, DeltaExec: &on},
	} {
		if got := mustKey(t, req); got != want {
			t.Errorf("%s sharded the cache: %s vs %s", name, got, want)
		}
	}
}

// TestKeyIgnoresBackend: the compute backend is scheduling, not campaign
// identity — every backend is bit-identical by contract (pinned by the
// cross-backend differential tests) — so no registered spelling may shard
// the cache, while unknown names are rejected at submit time.
func TestKeyIgnoresBackend(t *testing.T) {
	want := mustKey(t, winofault.CampaignRequest{BERs: []float64{1e-9}})
	for _, backend := range []string{"scalar", "blocked"} {
		req := winofault.CampaignRequest{BERs: []float64{1e-9}, Backend: backend}
		if got := mustKey(t, req); got != want {
			t.Errorf("backend %q sharded the cache: %s vs %s", backend, got, want)
		}
	}
	if _, err := Key(winofault.CampaignRequest{BERs: []float64{1e-9}, Backend: "simd-avx512"}); err == nil {
		t.Error("Key accepted an unregistered backend name")
	}
}

// TestKeyDistinguishesResultAffectingFields: every field that changes the
// campaign's outcome must change the key.
func TestKeyDistinguishesResultAffectingFields(t *testing.T) {
	base := winofault.CampaignRequest{BERs: []float64{1e-9}}
	want := mustKey(t, base)
	variants := map[string]winofault.CampaignRequest{
		"model":     {Model: "googlenet", BERs: []float64{1e-9}},
		"engine":    {Engine: "winograd", BERs: []float64{1e-9}},
		"precision": {Precision: "int8", BERs: []float64{1e-9}},
		"semantics": {Semantics: "neuron", BERs: []float64{1e-9}},
		"widthMult": {WidthMult: 0.25, BERs: []float64{1e-9}},
		"inputSize": {InputSize: 16, BERs: []float64{1e-9}},
		"samples":   {Samples: 8, BERs: []float64{1e-9}},
		"rounds":    {Rounds: 5, BERs: []float64{1e-9}},
		"seed":      {Seed: 99, BERs: []float64{1e-9}},
		"tileF4":    {TileF4: true, BERs: []float64{1e-9}},
		"berOrder":  {BERs: []float64{1e-8, 1e-9}},
		"layers":    {Layers: true, BERs: []float64{1e-9}},
	}
	for field, req := range variants {
		if mustKey(t, req) == want {
			t.Errorf("changing %s did not change the key", field)
		}
	}
}

// TestKeyRejectsInvalidRequests pins the validation surface.
func TestKeyRejectsInvalidRequests(t *testing.T) {
	bad := map[string]winofault.CampaignRequest{
		"no bers":        {},
		"bad engine":     {Engine: "systolic", BERs: []float64{1e-9}},
		"bad precision":  {Precision: "fp32", BERs: []float64{1e-9}},
		"bad semantics":  {Semantics: "sdc", BERs: []float64{1e-9}},
		"reserved chars": {BERs: []float64{1e-9}, Protection: map[string][2]float64{"a|b": {1, 1}}},
		"nan ber":        {BERs: []float64{math.NaN()}},
		"inf ber":        {BERs: []float64{math.Inf(1)}},
		// Negative/nonsensical numerics must be 400s at submit time, never
		// keyed jobs that fail (or panic) on the worker: only the zero value
		// means "default".
		"negative samples":       {Samples: -1, BERs: []float64{1e-9}},
		"negative rounds":        {Rounds: -1, BERs: []float64{1e-9}},
		"negative inputSize":     {InputSize: -4, BERs: []float64{1e-9}},
		"negative widthMult":     {WidthMult: -0.5, BERs: []float64{1e-9}},
		"nan widthMult":          {WidthMult: math.NaN(), BERs: []float64{1e-9}},
		"inf widthMult":          {WidthMult: math.Inf(1), BERs: []float64{1e-9}},
		"nan protection":         {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {math.NaN(), 0.5}}},
		"inf protection":         {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {math.Inf(1), 0.5}}},
		"negative protection":    {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {-0.1, 0.5}}},
		"above-unity protection": {BERs: []float64{1e-9}, Protection: map[string][2]float64{"conv1_1": {0.5, 1.5}}},
	}
	for name, req := range bad {
		if _, err := Key(req); err == nil {
			t.Errorf("%s: Key accepted an invalid request", name)
		}
	}
}

// TestKeyUnchangedWithoutScenario pins the wfcampaign/v1 content addresses
// of scenario-less requests to their exact pre-scenario (PR 4) values: the
// scenario lines are appended only when the field is present, so every
// previously persisted cache entry keeps answering its request.
func TestKeyUnchangedWithoutScenario(t *testing.T) {
	pinned := []struct {
		name string
		req  winofault.CampaignRequest
		key  string
	}{
		{"defaults", winofault.CampaignRequest{BERs: []float64{1e-9}},
			"dc864e4c985bfd6d4116e42dc50f1200b09ea3c76c21861a2b1765f2b0983a9e"},
		{"full", winofault.CampaignRequest{Model: "resnet50", Engine: "winograd", Precision: "int8",
			Semantics: "operand", WidthMult: 0.25, InputSize: 24, Samples: 12, Rounds: 3, Seed: 9,
			TileF4: true, BERs: []float64{1e-10, 3e-9}, Layers: true,
			Protection: map[string][2]float64{"conv1": {0.5, 0.25}}},
			"8747f1568f30fb20e26d76ba51dfc644e26018c02481cd5177265c4ee834a61f"},
	}
	for _, p := range pinned {
		if got := mustKey(t, p.req); got != p.key {
			t.Errorf("%s: key drifted from the pinned PR 4 value:\ngot  %s\nwant %s", p.name, got, p.key)
		}
	}
}

// TestKeyScenario: scenarios are part of campaign identity — the kind and
// every kind-relevant parameter shard the cache, while default spellings
// and kind-irrelevant fields do not.
func TestKeyScenario(t *testing.T) {
	base := func(sc *winofault.Scenario) winofault.CampaignRequest {
		return winofault.CampaignRequest{BERs: []float64{1e-9}, Scenario: sc}
	}
	plain := mustKey(t, base(nil))
	stuck := mustKey(t, base(&winofault.Scenario{Kind: "stuckpe", Row: 1, Col: 2, Bit: 20}))
	if stuck == plain {
		t.Error("stuckpe scenario did not change the key")
	}
	variants := map[string]*winofault.Scenario{
		"kind":   {Kind: "burst"},
		"pe":     {Kind: "stuckpe", Row: 3, Col: 2, Bit: 20},
		"bit":    {Kind: "stuckpe", Row: 1, Col: 2, Bit: 21},
		"span":   {Kind: "burst", Span: 128},
		"region": {Kind: "voltregion", Row1: 3, Col1: 3, V: 0.75},
		"volt":   {Kind: "voltregion", Row1: 3, Col1: 3, V: 0.76},
	}
	seen := map[string]string{"": stuck}
	for name, sc := range variants {
		k := mustKey(t, base(sc))
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("scenario variant %q collides with %q", name, prev)
			}
		}
		seen[name] = k
	}
	// Defaults applied: an explicit default span is the same campaign.
	if a, b := mustKey(t, base(&winofault.Scenario{Kind: "burst"})),
		mustKey(t, base(&winofault.Scenario{Kind: "burst", Span: 64})); a != b {
		t.Error("explicit default burst span changed the key")
	}
	// Kind-irrelevant fields are dropped by normalization.
	if a, b := mustKey(t, base(&winofault.Scenario{Kind: "burst"})),
		mustKey(t, base(&winofault.Scenario{Kind: "burst", Row: 5, V: 0.8})); a != b {
		t.Error("kind-irrelevant scenario fields changed the key")
	}
	// Sampled coordinates are identity too (resolved from the keyed seed).
	if a, b := mustKey(t, base(&winofault.Scenario{Kind: "stuckpe", Row: -1, Col: -1, Bit: -1})),
		mustKey(t, base(&winofault.Scenario{Kind: "stuckpe"})); a == b {
		t.Error("sampled and pinned stuck coordinates share a key")
	}
	// ... but every negative spelling means the same "sampled" campaign, so
	// they must all canonicalize to -1 and share one key.
	if a, b := mustKey(t, base(&winofault.Scenario{Kind: "stuckpe", Row: -1, Col: -1, Bit: -1})),
		mustKey(t, base(&winofault.Scenario{Kind: "stuckpe", Row: -5, Col: -2, Bit: -9})); a != b {
		t.Error("negative sampled-coordinate spellings sharded the cache")
	}
}

// TestKeyRejectsInvalidScenarios pins the scenario validation surface.
func TestKeyRejectsInvalidScenarios(t *testing.T) {
	bers := []float64{1e-9}
	bad := map[string]winofault.CampaignRequest{
		"unknown kind":  {BERs: bers, Scenario: &winofault.Scenario{Kind: "meteor"}},
		"pe outside":    {BERs: bers, Scenario: &winofault.Scenario{Kind: "stuckpe", Row: 16}},
		"bit outside":   {BERs: bers, Scenario: &winofault.Scenario{Kind: "stuckpe", Bit: 32}},
		"bit vs int8":   {BERs: bers, Precision: "int8", Scenario: &winofault.Scenario{Kind: "stuckpe", Bit: 20}},
		"negative span": {BERs: bers, Scenario: &winofault.Scenario{Kind: "burst", Span: -2}},
		"bad region":    {BERs: bers, Scenario: &winofault.Scenario{Kind: "voltregion", Row0: 3, Row1: 1, V: 0.8}},
		"zero volt":     {BERs: bers, Scenario: &winofault.Scenario{Kind: "voltregion", Row1: 1, Col1: 1}},
		"semantics":     {BERs: bers, Semantics: "operand", Scenario: &winofault.Scenario{Kind: "burst"}},
		"zero ber":      {BERs: []float64{0, 1e-9}, Scenario: &winofault.Scenario{Kind: "burst"}},
	}
	for name, req := range bad {
		if _, err := Key(req); err == nil {
			t.Errorf("%s: Key accepted an invalid scenario request", name)
		}
	}
	// int16 keeps the full 32-bit product register addressable.
	ok := winofault.CampaignRequest{BERs: bers, Scenario: &winofault.Scenario{Kind: "stuckpe", Bit: 31}}
	if _, err := Key(ok); err != nil {
		t.Errorf("bit 31 on int16 rejected: %v", err)
	}
}

// TestCanonicalIsVersioned: the canonical serialization carries its schema
// tag so persisted entries can never outlive a schema change silently.
func TestCanonicalIsVersioned(t *testing.T) {
	canon, err := Canonical(winofault.CampaignRequest{BERs: []float64{1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(canon, keySchema+"\n") {
		t.Errorf("canonical form does not start with schema tag %q:\n%s", keySchema, canon)
	}
}
