package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	winofault "repro"
)

// testServer stands up the full HTTP stack over a real campaign runner.
func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s, err := New(quiet(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

// tinyReq is a real but fast campaign: vgg19 at 16x16, 4 images, 1 round.
func tinyReq() winofault.CampaignRequest {
	return winofault.CampaignRequest{
		Model:     "vgg19",
		Engine:    "winograd",
		InputSize: 16,
		Samples:   4,
		Rounds:    1,
		BERs:      []float64{1e-9, 1e-8},
	}
}

// TestEndToEndCacheHitBitIdentical is the acceptance test: two identical
// POST /campaigns requests return bit-identical sweep accuracies, the
// second marked as a cache hit, and the raw result bytes match exactly.
func TestEndToEndCacheHitBitIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 8})
	client, err := winofault.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res1, st1, err := client.Sweep(ctx, tinyReq())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cached {
		t.Error("first submission claims a cache hit")
	}
	res2, st2, err := client.Sweep(ctx, tinyReq())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Error("second identical submission is not a cache hit")
	}
	if st1.ID != st2.ID {
		t.Errorf("identical requests got different IDs: %s vs %s", st1.ID, st2.ID)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Errorf("raw result bytes differ:\n%s\n%s", st1.Result, st2.Result)
	}
	if len(res1.Points) != len(tinyReq().BERs) {
		t.Fatalf("sweep has %d points, want %d", len(res1.Points), len(tinyReq().BERs))
	}
	for i := range res1.Points {
		if res1.Points[i] != res2.Points[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, res1.Points[i], res2.Points[i])
		}
	}

	// The cached sweep matches an in-process serial run bit-for-bit: the
	// service layer adds caching, never changes numbers.
	cfg, err := tinyReq().SystemConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	sys, err := winofault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sys.Sweep(tinyReq().BERs) {
		if res1.Points[i] != p {
			t.Errorf("server point %d = %+v, serial run = %+v", i, res1.Points[i], p)
		}
	}

	// GET /campaigns/{id}/result serves the identical bytes verbatim.
	for _, probe := range []int{1, 2} {
		resp, err := http.Get(ts.URL + "/campaigns/" + st1.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(body, []byte(st1.Result)) {
			t.Errorf("result probe %d not byte-identical to the submission result", probe)
		}
	}
}

// TestResultTextFormatMatchesCLI: the ?format=text rendering is the exact
// wfsim accuracy table (shared renderer).
func TestResultTextFormatMatchesCLI(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 8})
	client, err := winofault.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := client.Sweep(context.Background(), tinyReq())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var want bytes.Buffer
	winofault.FormatSweep(&want, res.Points)
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("text rendering diverged from FormatSweep:\n%q\n%q", body, want.Bytes())
	}
}

// TestLayerSensitivityOverHTTP: a Layers request carries the per-layer
// analysis, matching a direct facade run.
func TestLayerSensitivityOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 8})
	client, err := winofault.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyReq()
	req.Layers = true
	res, _, err := client.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) == 0 {
		t.Fatal("no layer sensitivities returned")
	}
	cfg, _ := req.SystemConfig()
	sys, err := winofault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, layers := sys.LayerSensitivities(req.BERs[len(req.BERs)/2])
	if res.Baseline != base {
		t.Errorf("baseline %v, facade %v", res.Baseline, base)
	}
	if len(res.Layers) != len(layers) {
		t.Fatalf("layer count %d, facade %d", len(res.Layers), len(layers))
	}
	for i := range layers {
		if res.Layers[i] != layers[i] {
			t.Errorf("layer %d: %+v vs %+v", i, res.Layers[i], layers[i])
		}
	}
}

// TestEventsStreamProgress: the SSE endpoint emits progress events and a
// terminal done event carrying the result.
func TestEventsStreamProgress(t *testing.T) {
	gate := make(chan struct{})
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		<-gate
		for u := 1; u <= 3; u++ {
			progress(0, u, 3)
		}
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(sweepReq(77))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + j.Key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(gate)

	var events []string
	var final winofault.CampaignStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, ev)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && len(events) > 0 && events[len(events)-1] == "done" {
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("bad done payload %q: %v", data, err)
			}
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("event stream %v did not end with done", events)
	}
	if final.State != winofault.StateDone || string(final.Result) != `{"points":[]}` {
		t.Errorf("final event payload %+v", final)
	}
}

// TestHTTPValidation pins the error surface: bad bodies and unknown
// campaigns are client errors, an overflowing queue is a 503.
func TestHTTPValidation(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 1})
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 4)
	s.run = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		started <- struct{}{}
		<-gate
		return []byte(`{}`), nil
	}

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{"bers":[1e-9],"model":`); code != http.StatusBadRequest {
		t.Errorf("truncated body: %d", code)
	}
	if code := post(`{"bers":[1e-9],"engine":"quantum"}`); code != http.StatusBadRequest {
		t.Errorf("bad engine: %d", code)
	}
	if code := post(`{"bers":[1e-9],"typo":true}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d", code)
	}
	// The REVIEW regression: negative numerics used to be keyed, queued, and
	// then panic dataset construction on the worker goroutine, killing the
	// whole process. They must be plain 400s.
	if code := post(`{"bers":[1e-9],"samples":-1}`); code != http.StatusBadRequest {
		t.Errorf("negative samples: %d", code)
	}
	if code := post(`{"bers":[1e-9],"rounds":-2}`); code != http.StatusBadRequest {
		t.Errorf("negative rounds: %d", code)
	}
	if code := post(`{"bers":[1e-9],"protection":{"conv1_1":[2,0]}}`); code != http.StatusBadRequest {
		t.Errorf("out-of-range protection: %d", code)
	}
	resp, err := http.Get(ts.URL + "/campaigns/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: %d", resp.StatusCode)
	}

	if code := post(`{"bers":[1e-9],"seed":101}`); code != http.StatusAccepted { // running
		t.Errorf("first submission: %d", code)
	}
	<-started
	if code := post(`{"bers":[1e-9],"seed":102}`); code != http.StatusAccepted { // queued
		t.Errorf("second submission: %d", code)
	}
	if code := post(`{"bers":[1e-9],"seed":103}`); code != http.StatusServiceUnavailable {
		t.Errorf("overflow submission: %d", code)
	}
}
