package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	winofault "repro"
	"repro/internal/obs"
)

// fleetStub is a Distributor that also federates a canned fleet view, so the
// /fleet surface is testable without a live coordinator.
type fleetStub struct {
	status FleetStatus
}

func (d *fleetStub) Run(ctx context.Context, key string, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
	return nil, ErrNoWorkers
}
func (d *fleetStub) Workers() []WorkerStat { return nil }
func (d *fleetStub) Fleet() FleetStatus    { return d.status }

// stubFleetStatus builds a two-worker fleet view, one flagged, with hostile
// label content in the worker names.
func stubFleetStatus() FleetStatus {
	h := obs.NewHistogram(obs.DurationBuckets)
	h.Observe(0.01)
	h.Observe(0.02)
	return FleetStatus{
		Epoch:             "epoch1",
		StragglerFactor:   3,
		MedianUnitSeconds: 75e-6,
		Workers: []FleetWorker{
			{
				ID: "w-1", Name: "node\nwith \"quotes\" and \\ and 蜂", Epoch: "epoch1",
				Live: true, Shards: 12, LastHeartbeat: 0.5, UnitSeconds: 75e-6,
				Inflight: 1, Goroutines: 9, HeapBytes: 1 << 20,
				Exec: h.Snapshot(), P50: h.Snapshot().Quantile(0.5), P99: h.Snapshot().Quantile(0.99),
			},
			{
				ID: "w-2", Name: "slowpoke", Epoch: "epoch1",
				Live: true, Straggler: true, Shards: 2, LastHeartbeat: 1.5, UnitSeconds: 0.2,
			},
		},
	}
}

// TestFleetEndpointJSONAndText: GET /fleet serves the reporter's view as
// JSON and as the fixed-width table, stragglers marked.
func TestFleetEndpointJSONAndText(t *testing.T) {
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 4, Distributor: &fleetStub{status: stubFleetStatus()}},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			return []byte(`{"points":[]}`), nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet status %d", resp.StatusCode)
	}
	var fs FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatalf("bad fleet JSON: %v", err)
	}
	if fs.Epoch != "epoch1" || len(fs.Workers) != 2 {
		t.Fatalf("fleet JSON mangled: %+v", fs)
	}
	if !fs.Workers[1].Straggler || fs.Workers[1].ID != "w-2" {
		t.Fatalf("straggler flag lost in JSON: %+v", fs.Workers[1])
	}
	if fs.Workers[0].Exec.Count != 2 {
		t.Fatalf("exec histogram lost in JSON: %+v", fs.Workers[0].Exec)
	}

	tresp, err := http.Get(ts.URL + "/fleet?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	text := string(body)
	for _, want := range []string{"fleet epoch epoch1", "WORKER", "w-1", "w-2", "STRAGGLER", "slowpoke"} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet table missing %q:\n%s", want, text)
		}
	}
}

// TestFleetEndpointWithoutDistributor: a server with no fleet answers 404,
// not an empty table — there is no fleet to describe.
func TestFleetEndpointWithoutDistributor(t *testing.T) {
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 4})
	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /fleet without a distributor: status %d, want 404", resp.StatusCode)
	}
}

// TestFleetEndpointKeyedServer: the fleet view is tenant-agnostic but never
// anonymous on a keyed server — any valid key reads it, no key gets 401.
func TestFleetEndpointKeyedServer(t *testing.T) {
	tenants := &TenantTable{byKey: map[string]*Tenant{
		"key-a": {Name: "alice", Weight: 1},
	}}
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 4, Tenants: tenants, Distributor: &fleetStub{status: stubFleetStatus()}},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			return []byte(`{"points":[]}`), nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /fleet status %d, want 401", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/fleet", nil)
	req.Header.Set("X-API-Key", "key-a")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed /fleet status %d, want 200", resp.StatusCode)
	}
}

// TestFleetMetricsFederatedExposition: the wffleet_* series render on
// /metrics, pass the strict exposition validator even with hostile worker
// names (newlines, quotes, UTF-8), and the names round-trip the escaper.
func TestFleetMetricsFederatedExposition(t *testing.T) {
	status := stubFleetStatus()
	hostile := status.Workers[0].Name
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 4, Distributor: &fleetStub{status: status}},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			return []byte(`{"points":[]}`), nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics with federated fleet failed strict validation: %v", err)
	}
	for _, fam := range []string{
		"wffleet_worker_shards_total", "wffleet_worker_live", "wffleet_worker_straggler",
		"wffleet_worker_last_heartbeat_seconds", "wffleet_worker_unit_seconds",
		"wffleet_worker_inflight_shards", "wffleet_worker_goroutines",
		"wffleet_worker_heap_bytes", "wffleet_shard_exec_seconds",
	} {
		if exp.Types[fam] == "" {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	foundHostile, foundStraggler := false, false
	for _, sm := range exp.Find("wffleet_worker_shards_total") {
		if sm.Labels["worker"] == hostile && sm.Value == 12 {
			foundHostile = true
		}
	}
	for _, sm := range exp.Find("wffleet_worker_straggler") {
		if sm.Labels["id"] == "w-2" && sm.Value == 1 {
			foundStraggler = true
		}
	}
	if !foundHostile {
		t.Error("hostile worker name did not round-trip on the federated shard counter")
	}
	if !foundStraggler {
		t.Error("straggler gauge not exported for the flagged worker")
	}
	// The federated histogram only renders workers that reported one; the
	// snapshotless straggler must not contribute empty series.
	for _, sm := range exp.Find("wffleet_shard_exec_seconds_count") {
		if sm.Labels["id"] == "w-2" {
			t.Error("snapshotless worker rendered an exec histogram")
		}
	}
}

// TestTraceServedFromDiskAfterRestart: a finished campaign's trace spills to
// the -trace-dir store; a fresh Service over the same directories (a restart)
// serves it byte-identically even though its in-memory ring is empty.
func TestTraceServedFromDiskAfterRestart(t *testing.T) {
	traceDir, cacheDir := t.TempDir(), t.TempDir()
	cfg := quiet(Config{Jobs: 1, QueueDepth: 4, TraceDir: traceDir, CacheDir: cacheDir})

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	j, err := s1.Submit(tinyReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := getTraceBytes(t, ts1.URL+"/campaigns/"+j.Key+"/trace")
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// "Restart": a new Service over the same cache and trace directories.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Close(ctx)
	})

	// Resubmitting is answered by the persisted cache — and must not shadow
	// the richer on-disk trace with a synthetic probe-only one.
	j2, err := s2.Submit(tinyReq())
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); !st.Cached {
		t.Fatalf("restarted server did not serve the campaign from cache: %+v", st)
	}
	after := getTraceBytes(t, ts2.URL+"/campaigns/"+j2.Key+"/trace")
	if !bytes.Equal(before, after) {
		t.Fatalf("trace served after restart differs from the original:\nbefore: %s\nafter:  %s", before, after)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(after, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Complete {
		t.Error("disk-served trace not complete")
	}
	if names := spanNames(snap.Spans); names["phase"] == 0 || names["cache-write"] == 0 {
		t.Errorf("disk-served trace lost the execution span tree: %v", names)
	}
}

// TestTraceStoreMissWithoutDirIs404: with no -trace-dir configured, a ring
// miss stays a 404 exactly as before the store existed.
func TestTraceStoreMissWithoutDirIs404(t *testing.T) {
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 4}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	j, err := s.Submit(sweepReq(808))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Evict the finished trace with a flood of newer ones.
	for i := 0; i < obs.DefaultTraceCap+8; i++ {
		s.trace.Begin(fmt.Sprintf("flood%058d", i)).Finish()
	}
	if s.trace.Lookup(j.Key) != nil {
		t.Fatal("flood did not evict the finished trace")
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + j.Key + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ring miss without a store: status %d, want 404", resp.StatusCode)
	}
}

// getTraceBytes fetches a campaign trace as raw JSON bytes.
func getTraceBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
