package service

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Multi-tenancy: API keys map to named tenants, and the single bounded FIFO
// the service used to run is replaced by per-tenant queues drained with
// deficit round robin (DRR). Each tenant has a weight (its long-run share of
// execution slots), an optional quota (a hard cap on queued+running
// campaigns, enforced with 429s), and per-campaign priorities within its own
// queue. Unauthenticated deployments keep the old behavior exactly: every
// submission lands on the built-in default tenant, and DRR over one tenant
// is a FIFO.

// DefaultTenant is the built-in tenant used when no key table is configured
// (open deployments, the local CLI path, and recovery resubmissions).
const DefaultTenant = "default"

// Priority bounds for CampaignRequest.Priority: 0 (lowest, the default) to
// MaxPriority. Priorities order campaigns within one tenant's queue only —
// across tenants, weights decide.
const MaxPriority = 9

// Tenant is one named principal of the service.
type Tenant struct {
	// Name labels the tenant in /metrics and logs.
	Name string
	// Weight is the tenant's DRR share (default 1): a weight-3 tenant gets
	// three campaign slots for every one a weight-1 tenant gets, when both
	// have work queued.
	Weight int
	// Quota caps the tenant's queued+running campaigns (0 = unlimited).
	// Submissions beyond it fail with ErrQuotaExceeded (HTTP 429).
	Quota int
}

// TenantTable maps API keys to tenants. Immutable after load.
type TenantTable struct {
	byKey map[string]*Tenant
}

// Lookup resolves an API key to its tenant.
func (t *TenantTable) Lookup(apiKey string) (*Tenant, bool) {
	if t == nil || apiKey == "" {
		return nil, false
	}
	ten, ok := t.byKey[apiKey]
	return ten, ok
}

// Valid reports whether apiKey belongs to any tenant (the fleet-endpoint
// auth hook, which needs membership, not identity).
func (t *TenantTable) Valid(apiKey string) bool {
	_, ok := t.Lookup(apiKey)
	return ok
}

// Len is the number of distinct keys in the table.
func (t *TenantTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.byKey)
}

// ParseTenantTable reads a key table from its text form, one key per line:
//
//	# comment
//	<api-key> <tenant-name> [weight=N] [quota=N]
//
// Several keys may name the same tenant (they share its queue, weight and
// quota), but restating weight= or quota= with a different value is an
// error — a tenant has one configuration.
func ParseTenantTable(src string) (*TenantTable, error) {
	table := &TenantTable{byKey: map[string]*Tenant{}}
	tenants := map[string]*Tenant{}
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("service: keys line %d: want \"<api-key> <tenant> [weight=N] [quota=N]\", got %q", i+1, line)
		}
		key, name := fields[0], fields[1]
		if name == "" || strings.HasPrefix(name, "weight=") || strings.HasPrefix(name, "quota=") {
			return nil, fmt.Errorf("service: keys line %d: missing tenant name", i+1)
		}
		weight, quota := 1, 0
		for _, attr := range fields[2:] {
			k, v, ok := strings.Cut(attr, "=")
			if !ok {
				return nil, fmt.Errorf("service: keys line %d: bad attribute %q", i+1, attr)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("service: keys line %d: %s=%q is not a non-negative integer", i+1, k, v)
			}
			switch k {
			case "weight":
				if n < 1 {
					return nil, fmt.Errorf("service: keys line %d: weight must be >= 1", i+1)
				}
				weight = n
			case "quota":
				quota = n
			default:
				return nil, fmt.Errorf("service: keys line %d: unknown attribute %q", i+1, k)
			}
		}
		if _, dup := table.byKey[key]; dup {
			return nil, fmt.Errorf("service: keys line %d: duplicate API key", i+1)
		}
		if ten, ok := tenants[name]; ok {
			if ten.Weight != weight || ten.Quota != quota {
				return nil, fmt.Errorf("service: keys line %d: tenant %q redeclared with conflicting weight/quota", i+1, name)
			}
			table.byKey[key] = ten
			continue
		}
		ten := &Tenant{Name: name, Weight: weight, Quota: quota}
		tenants[name] = ten
		table.byKey[key] = ten
	}
	if len(table.byKey) == 0 {
		return nil, fmt.Errorf("service: key table has no entries")
	}
	return table, nil
}

// LoadTenantTable reads a key table file (see ParseTenantTable).
func LoadTenantTable(path string) (*TenantTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read key table: %w", err)
	}
	t, err := ParseTenantTable(string(data))
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", path, err)
	}
	return t, nil
}

// TenantStat is one tenant's /metrics snapshot.
type TenantStat struct {
	Name string
	// QueueDepth / Running are current occupancy (quota counts both).
	QueueDepth int
	Running    int
	// Admitted / Rejected count submissions that consumed queue capacity
	// vs. those refused (queue full or over quota). Coalesced submissions
	// and cache hits count as neither — they cost nothing.
	Admitted int64
	Rejected int64
	// ServedUnits totals the campaign work units executed for this tenant —
	// the fair-share currency the weights apportion.
	ServedUnits int64
}

// tenantQueue is the scheduler's per-tenant state: priority buckets, the DRR
// deficit counter, and accounting.
type tenantQueue struct {
	name    string
	weight  int
	quota   int
	credit  int // DRR deficit: jobs this tenant may still dequeue this visit
	buckets [MaxPriority + 1][]*Job
	queued  int
	running int

	admitted, rejected, servedUnits int64
}

// pop removes the oldest job of the highest non-empty priority bucket.
func (tq *tenantQueue) pop() *Job {
	for p := MaxPriority; p >= 0; p-- {
		b := tq.buckets[p]
		if len(b) == 0 {
			continue
		}
		j := b[0]
		b[0] = nil // release for GC; the slice is reused
		tq.buckets[p] = b[1:]
		tq.queued--
		return j
	}
	return nil
}

// scheduler replaces the single bounded FIFO channel: per-tenant priority
// queues drained with deficit round robin. The global depth bound is
// unchanged — QueueDepth still caps total *waiting* campaigns, so the
// admission behavior of an open deployment is exactly the old channel's.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int // global bound on waiting jobs
	closed bool

	queues map[string]*tenantQueue
	ring   []string // DRR visit order; tenants are appended once, never removed
	cursor int
	queued int // total waiting jobs across tenants
}

func newScheduler(depth int) *scheduler {
	sc := &scheduler{depth: depth, queues: map[string]*tenantQueue{}}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// queueFor returns (creating if needed) the tenant's queue. The default
// tenant materializes on first use like any other.
func (sc *scheduler) queueFor(t *Tenant) *tenantQueue {
	tq, ok := sc.queues[t.Name]
	if !ok {
		tq = &tenantQueue{name: t.Name, weight: max(t.Weight, 1), quota: t.Quota}
		sc.queues[t.Name] = tq
		sc.ring = append(sc.ring, t.Name)
	}
	return tq
}

// enqueue admits a job to its tenant's queue, or rejects it: ErrClosed after
// shutdown begins, ErrQueueFull at the global depth bound, ErrQuotaExceeded
// at the tenant's own cap. The job's tenant and priority were fixed by
// Submit.
func (sc *scheduler) enqueue(j *Job, t *Tenant) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return ErrClosed
	}
	tq := sc.queueFor(t)
	if sc.queued >= sc.depth {
		tq.rejected++
		return ErrQueueFull
	}
	if tq.quota > 0 && tq.queued+tq.running >= tq.quota {
		tq.rejected++
		return ErrQuotaExceeded
	}
	p := j.priority
	tq.buckets[p] = append(tq.buckets[p], j)
	tq.queued++
	tq.admitted++
	sc.queued++
	sc.cond.Signal()
	return nil
}

// next blocks until a job is dequeued or the scheduler is closed and empty
// (nil — the calling worker exits). Closing does not discard queued work:
// like the old closed channel, workers drain what was admitted.
func (sc *scheduler) next() *Job {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if j := sc.dequeueLocked(); j != nil {
			return j
		}
		if sc.closed {
			return nil
		}
		sc.cond.Wait()
	}
}

// dequeueLocked is one DRR step: visit tenants in ring order from the
// cursor; an empty queue forfeits its deficit, a non-empty one replenishes
// by its weight when exhausted and pays one credit per campaign. A tenant
// keeps the cursor until its credit or queue runs out, so a weight-w tenant
// dequeues up to w consecutive campaigns per visit — that burst, amortized
// around the ring, is exactly the w : 1 long-run share.
func (sc *scheduler) dequeueLocked() *Job {
	if sc.queued == 0 {
		return nil
	}
	for i := 0; i <= len(sc.ring); i++ { // <=: the cursor tenant may be mid-burst
		tq := sc.queues[sc.ring[sc.cursor%len(sc.ring)]]
		if tq.queued == 0 {
			tq.credit = 0
			sc.cursor++
			continue
		}
		if tq.credit <= 0 {
			tq.credit = tq.weight
		}
		j := tq.pop()
		tq.credit--
		// Stamp the post-decrement deficit for the job's queue-wait span.
		// Safe without j.mu: the dequeuing goroutine is the same one that
		// will run the job, and nothing else reads j.deficit before then.
		j.deficit = tq.credit
		tq.running++
		sc.queued--
		if tq.credit <= 0 || tq.queued == 0 {
			sc.cursor++
		}
		return j
	}
	return nil
}

// done returns a job's execution slot and credits its served units to the
// tenant.
func (sc *scheduler) done(j *Job, units int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if tq, ok := sc.queues[j.tenant]; ok {
		tq.running--
		tq.servedUnits += units
	}
}

// close wakes every blocked worker; queued jobs still drain.
func (sc *scheduler) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.mu.Unlock()
	sc.cond.Broadcast()
}

// depthNow is the total number of waiting campaigns (the /metrics gauge the
// old len(chan) provided).
func (sc *scheduler) depthNow() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.queued
}

// stats snapshots every tenant that has ever submitted, sorted by name.
func (sc *scheduler) stats() []TenantStat {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]TenantStat, 0, len(sc.queues))
	for _, tq := range sc.queues {
		out = append(out, TenantStat{
			Name:        tq.name,
			QueueDepth:  tq.queued,
			Running:     tq.running,
			Admitted:    tq.admitted,
			Rejected:    tq.rejected,
			ServedUnits: tq.servedUnits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
