// Package service is the campaign service layer of the reproduction: a
// bounded job queue in front of the faultsim engine, a content-addressed
// result cache keyed by the canonical campaign request, and an HTTP+JSON
// surface (cmd/wfserve) with a thin client in the winofault facade.
//
// Determinism is what makes the cache sound: PR 1's scheduler guarantees
// bit-identical results for any worker count, so a campaign's identity is
// exactly the content of its request — never who ran it, when, or with how
// many workers. See DESIGN.md "Service layer".
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	winofault "repro"
)

// keySchema versions the canonical serialization; bump it whenever the
// canonical string changes meaning so stale persisted entries can never be
// served for a request they no longer describe.
const keySchema = "wfcampaign/v1"

// canonicalFloat renders a float64 in its shortest round-trip form, so every
// textual spelling of the same value ("1e-9", "0.000000001") canonicalizes
// identically. NaN and infinities are rejected before this is called.
func canonicalFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Canonical returns the canonical serialization of a campaign request: the
// platform defaults applied, enums validated, every float in shortest
// round-trip form, protection entries sorted by layer name, and the
// scheduling-only Workers, DeltaExec and Backend fields dropped (results are
// bit-identical for any worker count, with delta execution on or off, and
// under every compute backend). Two requests describe the same campaign if
// and only if their canonical strings are equal.
func Canonical(req winofault.CampaignRequest) (string, error) {
	cfg, err := req.SystemConfig()
	if err != nil {
		return "", err
	}
	if len(req.BERs) == 0 {
		return "", fmt.Errorf("service: request has no BERs")
	}
	for _, ber := range req.BERs {
		if math.IsNaN(ber) || math.IsInf(ber, 0) {
			return "", fmt.Errorf("service: BER %v is not finite", ber)
		}
	}
	// Hardware-located scenarios: validate and canonicalize up front. The
	// scenario lines are appended at the very end of the canonical string,
	// so requests without one keep byte-identical wfcampaign/v1 keys.
	var scenario *winofault.Scenario
	if req.Scenario != nil {
		if req.Semantics != "" && req.Semantics != "result" {
			return "", fmt.Errorf("service: scenario %q requires result semantics, got %q", req.Scenario.Kind, req.Semantics)
		}
		for _, ber := range req.BERs {
			if ber <= 0 {
				return "", fmt.Errorf("service: scenario campaigns need positive BERs, got %v", ber)
			}
		}
		ns, err := req.Scenario.Normalized(cfg.Precision)
		if err != nil {
			return "", err
		}
		scenario = &ns
	}
	// Mirror Config.normalize: a request spelling a default explicitly is
	// the same campaign as one omitting it.
	if req.Model == "" {
		req.Model = "vgg19"
	}
	if req.Engine == "" {
		req.Engine = "direct"
	}
	if req.Precision == "" {
		req.Precision = "int16"
	}
	if req.Semantics == "" {
		req.Semantics = "result"
	}
	if req.WidthMult == 0 {
		req.WidthMult = 0.125
	}
	if req.InputSize == 0 {
		req.InputSize = 32
	}
	if req.Samples == 0 {
		req.Samples = 24
	}
	if req.Rounds == 0 {
		req.Rounds = 2
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	// Reject nonsensical numerics at submit time: a keyed request must be
	// runnable, otherwise the cache fills with addresses that can only fail
	// (or worse, panic deep inside dataset/model construction). Only the
	// zero value means "default"; anything else must stand on its own.
	if math.IsNaN(req.WidthMult) || math.IsInf(req.WidthMult, 0) || req.WidthMult <= 0 {
		return "", fmt.Errorf("service: WidthMult %v is not a positive finite value", req.WidthMult)
	}
	if req.InputSize < 1 {
		return "", fmt.Errorf("service: InputSize %d is not positive", req.InputSize)
	}
	if req.Samples < 1 {
		return "", fmt.Errorf("service: Samples %d is not positive", req.Samples)
	}
	if req.Rounds < 1 {
		return "", fmt.Errorf("service: Rounds %d is not positive", req.Rounds)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", keySchema)
	fmt.Fprintf(&b, "model=%s\n", req.Model)
	fmt.Fprintf(&b, "engine=%s\n", req.Engine)
	fmt.Fprintf(&b, "precision=%s\n", req.Precision)
	fmt.Fprintf(&b, "semantics=%s\n", req.Semantics)
	fmt.Fprintf(&b, "widthmult=%s\n", canonicalFloat(req.WidthMult))
	fmt.Fprintf(&b, "inputsize=%d\n", req.InputSize)
	fmt.Fprintf(&b, "samples=%d\n", req.Samples)
	fmt.Fprintf(&b, "rounds=%d\n", req.Rounds)
	fmt.Fprintf(&b, "seed=%d\n", req.Seed)
	fmt.Fprintf(&b, "tilef4=%t\n", req.TileF4)
	bers := make([]string, len(req.BERs))
	for i, ber := range req.BERs {
		bers[i] = canonicalFloat(ber)
	}
	// Sweep order is part of the result (points come back in request
	// order), so BERs keep their order in the key.
	fmt.Fprintf(&b, "bers=%s\n", strings.Join(bers, ","))
	fmt.Fprintf(&b, "layers=%t\n", req.Layers)
	names := make([]string, 0, len(req.Protection))
	for name, fr := range req.Protection {
		if fr == ([2]float64{}) {
			continue // no protection at all: same campaign as an absent entry
		}
		if strings.ContainsAny(name, "\n|:") {
			return "", fmt.Errorf("service: protection layer name %q contains reserved characters", name)
		}
		if math.IsNaN(fr[0]) || math.IsInf(fr[0], 0) || math.IsNaN(fr[1]) || math.IsInf(fr[1], 0) {
			return "", fmt.Errorf("service: protection fractions for %q are not finite", name)
		}
		if fr[0] < 0 || fr[0] > 1 || fr[1] < 0 || fr[1] > 1 {
			return "", fmt.Errorf("service: protection fractions for %q out of [0,1]: %v", name, fr)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	prot := make([]string, len(names))
	for i, name := range names {
		fr := req.Protection[name]
		prot[i] = fmt.Sprintf("%s:%s,%s", name, canonicalFloat(fr[0]), canonicalFloat(fr[1]))
	}
	fmt.Fprintf(&b, "protection=%s\n", strings.Join(prot, "|"))
	if scenario != nil {
		fmt.Fprintf(&b, "scenario=%s\n", scenario.Kind)
		switch scenario.Kind {
		case "stuckpe":
			fmt.Fprintf(&b, "scenario.pe=%d,%d\n", scenario.Row, scenario.Col)
			fmt.Fprintf(&b, "scenario.bit=%d\n", scenario.Bit)
		case "burst":
			fmt.Fprintf(&b, "scenario.span=%d\n", scenario.Span)
		case "voltregion":
			fmt.Fprintf(&b, "scenario.region=%d,%d,%d,%d\n",
				scenario.Row0, scenario.Col0, scenario.Row1, scenario.Col1)
			fmt.Fprintf(&b, "scenario.v=%s\n", canonicalFloat(scenario.V))
		}
	}
	return b.String(), nil
}

// Key returns the content address of a campaign request: the SHA-256 of its
// canonical serialization, in hex. Identical campaigns — regardless of field
// spelling, JSON key order, map iteration order or worker count — share one
// key; any result-affecting difference changes it.
func Key(req winofault.CampaignRequest) (string, error) {
	canon, err := Canonical(req)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:]), nil
}
