package service

import (
	"context"
	"sync"
	"time"

	winofault "repro"
	"repro/internal/obs"
)

// Job is one submitted campaign moving through the queue. Identical
// concurrent submissions coalesce onto a single Job, so a stampede of equal
// requests costs one execution; every waiter observes the same result.
type Job struct {
	// Key is the campaign's content address (see Key); it doubles as the
	// job's public ID.
	Key string

	req    winofault.CampaignRequest
	ctx    context.Context
	cancel context.CancelFunc

	// tenant and priority place the job in the fair-share scheduler; both
	// are fixed at submission. Coalesced waiters share the first submitter's
	// placement — the job is the content address, not the caller.
	tenant   string
	priority int
	// viewers is the set of tenants that submitted this job (the original
	// submitter plus every coalesced one); it gates who may observe the job
	// over HTTP. nil means unrestricted (cache-synthesized jobs).
	viewers map[string]struct{}

	// Observability, all set by Submit before enqueue and read only by the
	// single runJob goroutine that dequeues the job — no locking needed.
	// o carries the job's trace and the service metrics into the execution
	// path (also threaded through j.ctx for the dist/local runners).
	o obs.Obs
	// queueSpan is the open queue-wait span; runJob ends it at dequeue.
	queueSpan *obs.Span
	// enqueuedAt timestamps admission for the queue-wait and end-to-end
	// latency histograms. Zero for jobs that never entered the queue.
	enqueuedAt time.Time
	// deficit is the tenant's remaining DRR credit observed at dequeue,
	// stamped by the scheduler for the queue-wait span.
	deficit int

	mu     sync.Mutex
	state  string // StateQueued -> StateRunning -> StateDone/StateFailed
	cached bool
	batch  int // sequence number of the unit batch done/total describe
	done   int
	total  int
	units  int // completed units of earlier batches (served-units accounting)
	data   []byte
	err    error
	subs   map[chan winofault.CampaignStatus]struct{}
	doneCh chan struct{}
}

func newJob(parent context.Context, key string, req winofault.CampaignRequest, tenant string, priority int) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		Key:      key,
		req:      req,
		ctx:      ctx,
		cancel:   cancel,
		tenant:   tenant,
		priority: priority,
		viewers:  map[string]struct{}{tenant: {}},
		state:    winofault.StateQueued,
		subs:     map[chan winofault.CampaignStatus]struct{}{},
		doneCh:   make(chan struct{}),
	}
}

// cachedJob wraps an already-cached result as a completed job so cache hits
// and fresh runs share one shape all the way to the HTTP layer.
func cachedJob(key string, data []byte) *Job {
	j := &Job{
		Key:    key,
		state:  winofault.StateDone,
		cached: true,
		data:   data,
		doneCh: make(chan struct{}),
	}
	close(j.doneCh)
	return j
}

// Status snapshots the job as its wire envelope (without result bytes; see
// StatusWithResult).
func (j *Job) Status() winofault.CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() winofault.CampaignStatus {
	st := winofault.CampaignStatus{
		ID:     j.Key,
		State:  j.state,
		Cached: j.cached,
		Done:   j.done,
		Total:  j.total,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// StatusWithResult is Status plus the raw result bytes once the job is done.
func (j *Job) StatusWithResult() winofault.CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.statusLocked()
	if j.state == winofault.StateDone {
		st.Result = j.data
	}
	return st
}

// Wait blocks until the job finishes or ctx is canceled, returning the raw
// result bytes.
func (j *Job) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-j.doneCh:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.data, j.err
}

// Subscribe registers a progress listener: the channel receives a status
// snapshot for every progress update and a final one when the job finishes,
// then closes. Slow listeners drop intermediate snapshots (the channel is
// conflated), never block the campaign. The returned func unsubscribes.
func (j *Job) Subscribe() (<-chan winofault.CampaignStatus, func()) {
	ch := make(chan winofault.CampaignStatus, 8)
	j.mu.Lock()
	finished := j.state == winofault.StateDone || j.state == winofault.StateFailed
	if !finished {
		j.subs[ch] = struct{}{}
	}
	st := j.statusLocked()
	if j.state == winofault.StateDone {
		st.Result = j.data
	}
	// The initial snapshot must go out under the lock: once j.mu drops, a
	// concurrent finish may close ch, and a send would panic. The fresh
	// buffered channel makes the locked send non-blocking.
	ch <- st
	j.mu.Unlock()
	if finished {
		close(ch)
		return ch, func() {}
	}
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// addViewer grants a coalescing submitter's tenant visibility of this job.
func (j *Job) addViewer(tenant string) {
	j.mu.Lock()
	if j.viewers != nil {
		j.viewers[tenant] = struct{}{}
	}
	j.mu.Unlock()
}

// visibleTo reports whether a caller running as tenant may observe this job
// (status, result, events, cancel). Campaign IDs are deterministic request
// hashes, so without this check any tenant that can guess another's request
// parameters could read its results or cancel its runs. Two viewer sets are
// unrestricted by design: cache-synthesized jobs (nil set — resubmitting the
// request would hand the caller the same bytes anyway) and jobs submitted by
// the trusted in-process path as the default tenant (recovery resubmissions
// after a coordinator restart, which cannot know the original submitter).
func (j *Job) visibleTo(tenant string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.viewers == nil {
		return true
	}
	if _, ok := j.viewers[DefaultTenant]; ok {
		return true
	}
	_, ok := j.viewers[tenant]
	return ok
}

// broadcastLocked fans a snapshot out to subscribers without blocking.
func (j *Job) broadcastLocked(st winofault.CampaignStatus) {
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = winofault.StateRunning
	j.broadcastLocked(j.statusLocked())
	j.mu.Unlock()
}

// batchesPerAttempt is the batch-numbering stride between execution attempts
// of one campaign: attempt n reports its phases under batches
// [n*batchesPerAttempt, (n+1)*batchesPerAttempt). runCampaign's dist→local
// fallback starts attempt 1 by remapping local batches up a stride, and
// progress uses the same stride to tell "next phase of this attempt" (bank
// its completed units) from "restarted unit space" (drop them — the rerun
// re-reports every unit, so banking the abandoned attempt's partial count
// would double-bill the tenant's served-units total).
const batchesPerAttempt = 2

func (j *Job) progress(batch, done, total int) {
	j.mu.Lock()
	// Scheduler workers report concurrently, so done values can arrive out
	// of order; within one batch (fixed total) only forward progress is
	// published. Batches are explicitly sequence-numbered by the runner
	// (sweep, then layer sensitivity), so a new batch resets the count even
	// when its unit total happens to equal the previous batch's.
	if batch < j.batch || (batch == j.batch && total == j.total && done <= j.done) {
		j.mu.Unlock()
		return
	}
	if batch > j.batch {
		if batch/batchesPerAttempt > j.batch/batchesPerAttempt {
			// A new attempt restarts the campaign's unit space from zero.
			j.units = 0
		} else {
			// The next phase of the same attempt: bank the finished phase's
			// completed units for served-units accounting.
			j.units += j.done
		}
	}
	j.batch, j.done, j.total = batch, done, total
	j.broadcastLocked(j.statusLocked())
	j.mu.Unlock()
}

// servedUnits totals the campaign work units this job executed across all
// its batches — the tenant accounting currency.
func (j *Job) servedUnits() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int64(j.units + j.done)
}

// finish resolves the job exactly once; err nil means success with data as
// the result bytes. All subscribers get the final snapshot and are closed.
func (j *Job) finish(data []byte, err error) {
	j.mu.Lock()
	if j.state == winofault.StateDone || j.state == winofault.StateFailed {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.state = winofault.StateFailed
		j.err = err
	} else {
		j.state = winofault.StateDone
		j.data = data
	}
	st := j.statusLocked()
	if err == nil {
		st.Result = data
	}
	// Final snapshot must not be dropped: deliver to every subscriber's
	// buffer after conflating whatever stale snapshot still occupies it.
	for ch := range j.subs {
		for {
			select {
			case ch <- st:
			default:
				// Buffer full: drop one stale snapshot and retry. The job
				// is the only sender, so the retry always terminates.
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
		close(ch)
		delete(j.subs, ch)
	}
	j.mu.Unlock()
	close(j.doneCh)
	if j.cancel != nil {
		j.cancel()
	}
}
