package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	winofault "repro"
)

// TestParseTenantTable pins the key-file grammar: comments, attributes,
// shared tenants, and the malformed lines that must be rejected.
func TestParseTenantTable(t *testing.T) {
	table, err := ParseTenantTable(`
# production tenants
key-a alice weight=3 quota=10
key-b bob
key-a2 alice weight=3 quota=10
`)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := table.Lookup("key-a")
	if !ok || a.Name != "alice" || a.Weight != 3 || a.Quota != 10 {
		t.Fatalf("key-a resolved to %+v", a)
	}
	a2, _ := table.Lookup("key-a2")
	if a2 != a {
		t.Error("two keys of one tenant resolved to distinct tenants")
	}
	b, ok := table.Lookup("key-b")
	if !ok || b.Name != "bob" || b.Weight != 1 || b.Quota != 0 {
		t.Fatalf("key-b resolved to %+v (want defaults weight=1 quota=0)", b)
	}
	if _, ok := table.Lookup("nope"); ok {
		t.Error("unknown key resolved")
	}
	if _, ok := table.Lookup(""); ok {
		t.Error("empty key resolved")
	}

	for _, bad := range []string{
		"",                             // no entries
		"just-a-key",                   // missing tenant
		"k t weight=zero",              // non-numeric attribute
		"k t weight=0",                 // weight < 1
		"k t shards=3",                 // unknown attribute
		"k1 t weight=2\nk2 t weight=3", // conflicting redeclaration
		"k1 alice\nk1 bob",             // duplicate key
	} {
		if _, err := ParseTenantTable(bad); err == nil {
			t.Errorf("ParseTenantTable(%q) accepted, want error", bad)
		}
	}
}

// TestFairShareNoStarvation: a heavy tenant with a deep backlog cannot
// starve a light tenant — DRR gives the light tenant a slot after at most
// the heavy tenant's weight worth of campaigns.
func TestFairShareNoStarvation(t *testing.T) {
	table, err := ParseTenantTable("wk warm\nhk heavy weight=3\nlk light")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 16, Tenants: table},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			if req.Seed == 999 {
				<-gate // holds the single worker while the backlog builds
			} else {
				mu.Lock()
				order = append(order, req.Seed)
				mu.Unlock()
			}
			return []byte(`{"points":[]}`), nil
		})

	gateJob, err := s.SubmitFor(sweepReq(999), "wk")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the gate job occupies the worker so every later submission
	// queues behind it in a deterministic order.
	waitForState(t, gateJob, winofault.StateRunning)

	var jobs []*Job
	for seed := uint64(1); seed <= 4; seed++ {
		j, err := s.SubmitFor(sweepReq(seed), "hk")
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	light, err := s.SubmitFor(sweepReq(100), "lk")
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, light)
	close(gate)
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	// Weight-3 heavy bursts three campaigns, then the cursor moves on: the
	// light tenant runs fourth, ahead of heavy's remaining backlog.
	want := []uint64{1, 2, 3, 100, 4}
	if len(order) != len(want) {
		t.Fatalf("executed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (light tenant starved past heavy's weight)", order, want)

		}
	}

	st := s.Stats()
	byName := map[string]TenantStat{}
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	if byName["heavy"].Admitted != 4 || byName["light"].Admitted != 1 {
		t.Errorf("tenant admission counters wrong: %+v", st.Tenants)
	}
}

// TestPriorityWithinTenant: priorities reorder one tenant's own queue —
// highest first — without touching other tenants.
func TestPriorityWithinTenant(t *testing.T) {
	table, err := ParseTenantTable("wk warm\ntk tenant")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 16, Tenants: table},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			if req.Seed == 999 {
				<-gate
			} else {
				mu.Lock()
				order = append(order, req.Seed)
				mu.Unlock()
			}
			return []byte(`{"points":[]}`), nil
		})

	gateJob, err := s.SubmitFor(sweepReq(999), "wk")
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, gateJob, winofault.StateRunning)

	low := sweepReq(1) // priority 0, submitted first
	urgent := sweepReq(2)
	urgent.Priority = 9
	j1, err := s.SubmitFor(low, "tk")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.SubmitFor(urgent, "tk")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, j := range []*Job{j1, j2} {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("execution order %v, want urgent (seed 2) before low (seed 1)", order)
	}
}

// TestTenantQuota429: a tenant at its quota gets 429 + Retry-After over
// HTTP; other tenants and unknown keys see their own statuses (202 / 401),
// and capacity frees once the tenant's campaign finishes.
func TestTenantQuota429(t *testing.T) {
	table, err := ParseTenantTable("qk capped quota=1\nfk free")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 16, Tenants: table},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			if req.Seed == 999 {
				<-gate
			}
			return []byte(`{"points":[]}`), nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed uint64, apiKey string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(sweepReq(seed))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp
	}

	// Hold the worker so the capped tenant's campaign stays in flight.
	gateJob, err := s.Submit(sweepReq(999))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, gateJob, winofault.StateRunning)

	if resp := submit(1, "qk"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("capped tenant's first campaign returned %d, want 202", resp.StatusCode)
	}
	resp := submit(2, "qk")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	// The quota is per tenant: another tenant is untouched, and bad keys
	// are a 401, not a quota problem.
	if resp := submit(3, "fk"); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant returned %d, want 202", resp.StatusCode)
	}
	if resp := submit(4, "intruder"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown key returned %d, want 401", resp.StatusCode)
	}
	if resp := submit(5, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("missing key returned %d, want 401", resp.StatusCode)
	}

	// Directly at the service layer the same rejection is typed.
	if _, err := s.SubmitFor(sweepReq(6), "qk"); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("SubmitFor over quota returned %v, want ErrQuotaExceeded", err)
	}

	// Draining the tenant's in-flight campaign frees its quota.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.SubmitFor(sweepReq(7), "qk"); err == nil {
			break
		} else if !errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("resubmission after drain failed with %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never freed after the campaign finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignRoutesScopedToTenant: on a keyed server every /campaigns*
// route demands a valid API key, and status/result/cancel are visible only
// to tenants that submitted the campaign. Campaign IDs are deterministic
// request hashes, so without this scope any tenant that guessed another's
// request parameters could read its results or cancel its runs.
func TestCampaignRoutesScopedToTenant(t *testing.T) {
	table, err := ParseTenantTable("ka acme\nkb rival")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 16, Tenants: table},
		func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
			<-gate
			return []byte(`{"points":[]}`), nil
		})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, path, apiKey string) int {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	submit := func(apiKey string) string {
		t.Helper()
		body, _ := json.Marshal(sweepReq(41))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", apiKey)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission as %q returned %d, want 202", apiKey, resp.StatusCode)
		}
		var st winofault.CampaignStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}

	id := submit("ka")
	for _, route := range []string{"/campaigns/" + id, "/campaigns/" + id + "/result", "/campaigns/" + id + "/events"} {
		if code := do(http.MethodGet, route, ""); code != http.StatusUnauthorized {
			t.Errorf("keyless GET %s returned %d, want 401", route, code)
		}
		if code := do(http.MethodGet, route, "intruder"); code != http.StatusUnauthorized {
			t.Errorf("bad-key GET %s returned %d, want 401", route, code)
		}
		if code := do(http.MethodGet, route, "kb"); code != http.StatusNotFound {
			t.Errorf("cross-tenant GET %s returned %d, want 404", route, code)
		}
	}
	if code := do(http.MethodGet, "/campaigns/"+id, "ka"); code != http.StatusOK {
		t.Errorf("submitter's status poll returned %d, want 200", code)
	}
	if code := do(http.MethodDelete, "/campaigns/"+id, ""); code != http.StatusUnauthorized {
		t.Errorf("keyless cancel returned %d, want 401", code)
	}
	if code := do(http.MethodDelete, "/campaigns/"+id, "kb"); code != http.StatusNotFound {
		t.Errorf("cross-tenant cancel returned %d, want 404", code)
	}
	j, ok := s.Job(id)
	if !ok {
		t.Fatal("submitted job vanished")
	}
	if st := j.Status().State; st == winofault.StateFailed {
		t.Fatalf("cross-tenant DELETE canceled the campaign (state %s)", st)
	}

	// A coalescing submitter becomes a viewer of the shared job.
	if id2 := submit("kb"); id2 != id {
		t.Fatalf("identical request got a different ID: %s vs %s", id2, id)
	}
	if code := do(http.MethodGet, "/campaigns/"+id, "kb"); code != http.StatusOK {
		t.Errorf("coalesced tenant's status poll returned %d, want 200", code)
	}
	if code := do(http.MethodDelete, "/campaigns/"+id, "ka"); code != http.StatusOK {
		t.Errorf("submitter's cancel returned %d, want 200", code)
	}
}

// TestKeyIgnoresPriority: like Workers/DeltaExec/Backend, Priority is a
// scheduling hint — it must not change a campaign's content address.
func TestKeyIgnoresPriority(t *testing.T) {
	plain := sweepReq(1)
	hot := sweepReq(1)
	hot.Priority = 9
	k1, err := Key(plain)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(hot)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("priority changed the cache key: %.12s vs %.12s", k1, k2)
	}
}

// waitForState polls a job until it reaches state (the scheduler hands jobs
// to workers asynchronously).
func waitForState(t *testing.T, j *Job, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status().State == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %.12s never reached %s (now %s)", j.Key, state, j.Status().State)
}
