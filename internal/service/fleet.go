package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// FleetReporter is optionally implemented by a Distributor that federates
// per-worker metrics (internal/dist.Coordinator): the service type-asserts
// it to serve GET /fleet and the wffleet_* series on /metrics. Distributors
// without it simply don't get a fleet page.
type FleetReporter interface {
	Fleet() FleetStatus
}

// FleetStatus is the federated fleet view served by GET /fleet.
type FleetStatus struct {
	// Epoch is the coordinator incarnation (shard IDs and traces carry it).
	Epoch string `json:"epoch"`
	// StragglerFactor is the flagging threshold: a worker whose per-unit exec
	// EWMA exceeds this multiple of MedianUnitSeconds is a straggler.
	StragglerFactor float64 `json:"stragglerFactor"`
	// MedianUnitSeconds is the fleet's (lower) median per-unit exec EWMA.
	MedianUnitSeconds float64       `json:"medianUnitSeconds"`
	Workers           []FleetWorker `json:"workers"`
}

// FleetWorker is one worker's row in the fleet view: coordinator-side state
// (liveness, merged shard count, straggler flag) joined with the node's last
// heartbeat snapshot (exec histogram, runtime gauges).
type FleetWorker struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Epoch string `json:"epoch"`
	Live  bool   `json:"live"`
	// Straggler marks a worker the coordinator has benched for running
	// slower than StragglerFactor× the fleet median.
	Straggler bool `json:"straggler"`
	// Shards counts shard results the coordinator merged from this worker —
	// the coordinator's number, deterministic under heartbeat timing.
	Shards int64 `json:"shards"`
	// LastHeartbeat is seconds since the worker was last heard from.
	LastHeartbeat float64 `json:"lastHeartbeatSeconds"`
	// UnitSeconds is the coordinator's per-unit exec EWMA for this worker.
	UnitSeconds float64 `json:"unitSeconds"`
	// Inflight/Goroutines/HeapBytes come from the worker's own heartbeat
	// snapshot (zero until an instrumented worker heartbeats).
	Inflight   int64  `json:"inflight"`
	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heapBytes"`
	// Exec is the worker's shard execution histogram as last reported; P50
	// and P99 are quantile estimates over it, in seconds.
	Exec obs.HistogramSnapshot `json:"exec"`
	P50  float64               `json:"p50"`
	P99  float64               `json:"p99"`
}

// WriteText renders the fleet as the fixed-width table GET /fleet?format=text
// serves and wftop displays: one row per worker, stragglers marked.
func (fs FleetStatus) WriteText(w io.Writer) {
	fmt.Fprintf(w, "fleet epoch %s  (workers: %d, median %s/unit, straggler > %gx median)\n",
		fs.Epoch, len(fs.Workers), fmtSeconds(fs.MedianUnitSeconds), fs.StragglerFactor)
	fmt.Fprintf(w, "%-8s %-16s %-12s %5s %10s %7s %10s %10s %s\n",
		"WORKER", "NAME", "EPOCH", "LIVE", "HEARTBEAT", "SHARDS", "P50", "P99", "FLAGS")
	rows := make([]FleetWorker, len(fs.Workers))
	copy(rows, fs.Workers)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	for _, fw := range rows {
		live := "no"
		if fw.Live {
			live = "yes"
		}
		flags := "-"
		if fw.Straggler {
			flags = "STRAGGLER"
		}
		fmt.Fprintf(w, "%-8s %-16.16s %-12s %5s %9.1fs %7d %10s %10s %s\n",
			fw.ID, fw.Name, fw.Epoch, live, fw.LastHeartbeat, fw.Shards,
			fmtSeconds(fw.P50), fmtSeconds(fw.P99), flags)
	}
}

// fmtSeconds renders a seconds value at a human scale (µs/ms/s).
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// fleet resolves the configured Distributor's FleetReporter, or nil: the
// fleet view only exists on a coordinator-backed (wfserve -dist) service.
func (s *Service) fleet() FleetReporter {
	if fr, ok := s.cfg.Distributor.(FleetReporter); ok {
		return fr
	}
	return nil
}

// writeFleetMetrics renders the federated wffleet_* series for /metrics:
// per-worker gauges from coordinator state and heartbeat snapshots, plus one
// wffleet_shard_exec_seconds histogram family with a label set per worker.
// Worker names arrive from the network, so every label value is escaped.
func writeFleetMetrics(w io.Writer, fs FleetStatus) {
	labels := func(fw FleetWorker) []obs.Attr {
		return []obs.Attr{{K: "worker", V: fw.Name}, {K: "id", V: fw.ID}}
	}
	gauge := func(name, help string, value func(FleetWorker) string) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, fw := range fs.Workers {
			fmt.Fprintf(w, "%s{worker=\"%s\",id=\"%s\"} %s\n",
				name, obs.EscapeLabel(fw.Name), obs.EscapeLabel(fw.ID), value(fw))
		}
	}
	fmt.Fprintln(w, "# HELP wffleet_worker_shards_total Shard results merged per fleet worker (federated).")
	fmt.Fprintln(w, "# TYPE wffleet_worker_shards_total counter")
	for _, fw := range fs.Workers {
		fmt.Fprintf(w, "wffleet_worker_shards_total{worker=\"%s\",id=\"%s\"} %d\n",
			obs.EscapeLabel(fw.Name), obs.EscapeLabel(fw.ID), fw.Shards)
	}
	gauge("wffleet_worker_live", "Whether the worker's last contact is within the lease TTL.",
		func(fw FleetWorker) string { return fmt.Sprint(boolGauge(fw.Live)) })
	gauge("wffleet_worker_straggler", "Whether the coordinator has flagged the worker as a straggler.",
		func(fw FleetWorker) string { return fmt.Sprint(boolGauge(fw.Straggler)) })
	gauge("wffleet_worker_last_heartbeat_seconds", "Seconds since the worker was last heard from.",
		func(fw FleetWorker) string { return fmt.Sprintf("%g", fw.LastHeartbeat) })
	gauge("wffleet_worker_unit_seconds", "Per-unit shard execution EWMA the straggler detector tracks, in seconds.",
		func(fw FleetWorker) string { return fmt.Sprintf("%g", fw.UnitSeconds) })
	gauge("wffleet_worker_inflight_shards", "Shards executing on the worker, per its last heartbeat snapshot.",
		func(fw FleetWorker) string { return fmt.Sprint(fw.Inflight) })
	gauge("wffleet_worker_goroutines", "Goroutines on the worker, per its last heartbeat snapshot.",
		func(fw FleetWorker) string { return fmt.Sprint(fw.Goroutines) })
	gauge("wffleet_worker_heap_bytes", "Heap bytes allocated on the worker, per its last heartbeat snapshot.",
		func(fw FleetWorker) string { return fmt.Sprint(fw.HeapBytes) })
	wroteHeader := false
	for _, fw := range fs.Workers {
		if fw.Exec.Count == 0 && len(fw.Exec.Bounds) == 0 {
			continue
		}
		if !wroteHeader {
			fmt.Fprintln(w, "# HELP wffleet_shard_exec_seconds Per-worker shard execution latency, federated from heartbeat snapshots.")
			fmt.Fprintln(w, "# TYPE wffleet_shard_exec_seconds histogram")
			wroteHeader = true
		}
		fw.Exec.WriteSamples(w, "wffleet_shard_exec_seconds", labels(fw)...)
	}
}

// handleFleet serves the federated fleet view:
//
//	GET /fleet              JSON FleetStatus
//	GET /fleet?format=text  fixed-width table (wftop's data source)
//
// The view is tenant-agnostic — it describes infrastructure, not campaigns —
// but on a keyed server it still demands some valid API key, so the fleet's
// shape never leaks to unauthenticated callers. Without a FleetReporter
// (no -dist) the route answers 404.
func (s *Service) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tenants != nil {
		if _, ok := s.cfg.Tenants.Lookup(requestAPIKey(r)); !ok {
			httpError(w, http.StatusUnauthorized, ErrUnauthorized)
			return
		}
	}
	fr := s.fleet()
	if fr == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no fleet: this server runs without a distributor"))
		return
	}
	fs := fr.Fleet()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fs.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(fs)
}
