package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	winofault "repro"
	"repro/internal/obs"
)

// spanNames flattens a snapshot's span tree into a name set.
func spanNames(spans []obs.SpanSnapshot) map[string]int {
	names := map[string]int{}
	var walk func([]obs.SpanSnapshot)
	walk = func(ss []obs.SpanSnapshot) {
		for _, sp := range ss {
			names[sp.Name]++
			walk(sp.Children)
		}
	}
	walk(spans)
	return names
}

// findSpan returns the first span with name anywhere in the tree.
func findSpan(spans []obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if sp := findSpan(spans[i].Children, name); sp != nil {
			return sp
		}
	}
	return nil
}

func getTrace(t *testing.T, url string, headers map[string]string) (*http.Response, obs.TraceSnapshot) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.TraceSnapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("bad trace payload: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, snap
}

// TestTraceEndpointLocalCampaign: a real local campaign leaves a complete
// span timeline — submit-time validation, the cache probe, queue wait with
// the DRR deficit, both execution phases on the local path, and the cache
// write — queryable as JSON and as a text waterfall.
func TestTraceEndpointLocalCampaign(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 8})
	req := tinyReq()
	req.Layers = true
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, snap := getTrace(t, ts.URL+"/campaigns/"+j.Key+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if snap.Campaign != j.Key {
		t.Errorf("trace campaign %q, want %q", snap.Campaign, j.Key)
	}
	if !snap.Complete {
		t.Error("finished campaign's trace is not complete")
	}
	names := spanNames(snap.Spans)
	for _, want := range []string{"validate", "cache-probe", "queue-wait", "phase", "cache-write"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (have %v)", want, names)
		}
	}
	if names["phase"] != 2 {
		t.Errorf("trace has %d phase spans, want 2 (sweep + layers)", names["phase"])
	}
	if ph := findSpan(snap.Spans, "phase"); ph.Attrs["path"] != "local" {
		t.Errorf("phase path attr %q, want local", ph.Attrs["path"])
	}
	if qw := findSpan(snap.Spans, "queue-wait"); qw.Open {
		t.Error("queue-wait span never ended")
	} else if _, ok := qw.Attrs["deficit"]; !ok {
		t.Errorf("queue-wait lacks the deficit attr: %v", qw.Attrs)
	}
	if cp := findSpan(snap.Spans, "cache-probe"); cp.Attrs["hit"] != "false" {
		t.Errorf("cache-probe hit attr %q, want false", cp.Attrs["hit"])
	}

	// The text rendering is a waterfall carrying the same span names.
	tresp, err := http.Get(ts.URL + "/campaigns/" + j.Key + "/trace?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "complete") || !strings.Contains(text, "queue-wait") || !strings.Contains(text, "phase=sweep") {
		t.Errorf("text waterfall missing expected content:\n%s", text)
	}
}

// TestTraceCacheHitSynthetic: a campaign answered straight from the cache
// (no job, no queue) still gets a probe-only trace, so /trace explains the
// fast path instead of 404ing.
func TestTraceCacheHitSynthetic(t *testing.T) {
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := sweepReq(404)
	key, err := Key(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cache.Put(key, []byte(`{"points":[]}`)); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); !st.Cached {
		t.Fatalf("pre-seeded cache not hit: %+v", st)
	}

	resp, snap := getTrace(t, ts.URL+"/campaigns/"+key+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d for cache hit", resp.StatusCode)
	}
	if !snap.Complete {
		t.Error("synthetic cache-hit trace not complete")
	}
	names := spanNames(snap.Spans)
	if names["cache-probe"] == 0 || names["validate"] == 0 {
		t.Errorf("synthetic trace spans %v, want validate + cache-probe", names)
	}
	if names["queue-wait"] != 0 {
		t.Error("cache hit recorded a queue-wait span — it never queued")
	}
	if cp := findSpan(snap.Spans, "cache-probe"); cp.Attrs["hit"] != "true" {
		t.Errorf("cache-probe hit attr %q, want true", cp.Attrs["hit"])
	}
}

// TestTraceCoalescedSharesRunnerTimeline: coalesced submitters share one
// execution, so they share one trace — and the coalescing tenant gains
// visibility of it.
func TestTraceCoalescedSharesRunnerTimeline(t *testing.T) {
	gate := make(chan struct{})
	tenants := &TenantTable{byKey: map[string]*Tenant{
		"key-a": {Name: "alice", Weight: 1},
		"key-b": {Name: "bob", Weight: 1},
	}}
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8, Tenants: tenants}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		<-gate
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := sweepReq(505)
	ja, err := s.SubmitFor(req, "key-a")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.SubmitFor(req, "key-b")
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatal("identical submissions did not coalesce")
	}
	if n := s.trace.Len(); n != 1 {
		t.Fatalf("coalesced submissions recorded %d traces, want 1", n)
	}
	close(gate)
	if _, err := ja.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"key-a", "key-b"} {
		resp, snap := getTrace(t, ts.URL+"/campaigns/"+ja.Key+"/trace", map[string]string{"X-API-Key": key})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace status %d for %s", resp.StatusCode, key)
		}
		if names := spanNames(snap.Spans); names["queue-wait"] == 0 {
			t.Errorf("%s sees trace without the runner's queue-wait span: %v", key, names)
		}
	}
}

// TestTraceCrossTenant404: a tenant that never submitted a campaign gets the
// same 404 for its trace as for the campaign itself — existence must not
// leak through the trace route.
func TestTraceCrossTenant404(t *testing.T) {
	tenants := &TenantTable{byKey: map[string]*Tenant{
		"key-a": {Name: "alice", Weight: 1},
		"key-b": {Name: "bob", Weight: 1},
	}}
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8, Tenants: tenants}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.SubmitFor(sweepReq(606), "key-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	if resp, _ := getTrace(t, ts.URL+"/campaigns/"+j.Key+"/trace", map[string]string{"X-API-Key": "key-a"}); resp.StatusCode != http.StatusOK {
		t.Errorf("submitter's trace status %d, want 200", resp.StatusCode)
	}
	if resp, _ := getTrace(t, ts.URL+"/campaigns/"+j.Key+"/trace", map[string]string{"X-API-Key": "key-b"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant trace status %d, want 404", resp.StatusCode)
	}
	if resp, _ := getTrace(t, ts.URL+"/campaigns/"+j.Key+"/trace", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated trace status %d, want 401", resp.StatusCode)
	}
}

// TestMetricsExpositionValid: the full /metrics page — gauges, escaped
// tenant labels, latency histograms, build info — parses under the strict
// exposition validator, even with a tenant name that needs escaping.
func TestMetricsExpositionValid(t *testing.T) {
	weird := `back\slash"quoted"`
	tenants := &TenantTable{byKey: map[string]*Tenant{
		"key-w": {Name: weird, Weight: 2, Quota: 4},
	}}
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8, Tenants: tenants}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		progress(0, 1, 1)
		return []byte(`{"points":[]}`), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.SubmitFor(sweepReq(707), "key-w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queue-wait and campaign histograms are observed by the runJob goroutine
	// after the job resolves; wait for them to land.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.Campaign.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics failed strict validation: %v", err)
	}
	for _, fam := range []string{
		"wfserve_queue_depth", "wfserve_cache_hits_total",
		"wfserve_tenant_served_units_total",
		"wfserve_campaign_seconds", "wfserve_queue_wait_seconds",
		"wfserve_cache_probe_seconds",
		"wfserve_build_info", "wfserve_uptime_seconds",
	} {
		if exp.Types[fam] == "" {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	// The weird tenant name survives the escaper round-trip on both the
	// hand-written gauges and the histogram vec.
	foundGauge, foundHist := false, false
	for _, sm := range exp.Find("wfserve_tenant_served_units_total") {
		if sm.Labels["tenant"] == weird {
			foundGauge = true
		}
	}
	for _, sm := range exp.Find("wfserve_queue_wait_seconds_count") {
		if sm.Labels["tenant"] == weird {
			foundHist = true
		}
	}
	if !foundGauge {
		t.Error("escaped tenant label did not round-trip on the served-units counter")
	}
	if !foundHist {
		t.Error("escaped tenant label did not round-trip on the queue-wait histogram")
	}
}
