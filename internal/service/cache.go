package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: an in-memory LRU over the
// marshaled result bytes, optionally backed by a persistence directory with
// one file per key. The cached bytes are served verbatim, which is what
// makes repeated identical requests byte-identical.
//
// Eviction only trims memory; the on-disk copy survives and is promoted
// back into the LRU on the next Get, so a restarted or memory-pressured
// server still answers warm requests in O(1) campaign work.
type Cache struct {
	// hits/misses count Get outcomes (memory and disk tiers together) for
	// /metrics. Internal re-checks (getMemory) are not counted: one logical
	// lookup is one count.
	hits, misses atomic.Int64

	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	bytes   int64  // resident bytes of the in-memory tier (sum of data lens)
	dir     string // "" = memory only
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache holding at most max entries in memory (min 1),
// persisting entries under dir when it is non-empty (the directory is
// created if needed).
func NewCache(max int, dir string) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{max: max, ll: list.New(), entries: map[string]*list.Element{}, dir: dir}, nil
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached bytes for key, falling back to the persistence
// directory on a memory miss (and promoting the loaded entry).
func (c *Cache) Get(key string) ([]byte, bool) {
	if data, ok := c.getMemory(key); ok {
		c.hits.Add(1)
		return data, true
	}
	if c.dir == "" {
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.insert(key, data)
	c.hits.Add(1)
	return data, true
}

// Hits reports how many Get probes found their key (memory or disk).
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses reports how many Get probes found nothing.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// getMemory is the I/O-free half of Get: the in-memory LRU alone, for
// callers that hold locks they must not sleep under.
func (c *Cache) getMemory(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, true
	}
	return nil, false
}

// Put stores the bytes for key in memory and, when persistence is enabled,
// atomically on disk (temp file + rename, so readers never see a torn
// entry). The disk write error, if any, is returned after the memory insert
// — a persistence failure degrades durability, not correctness.
func (c *Cache) Put(key string, data []byte) error {
	c.insert(key, data)
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("service: persist %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: persist %s: %w", key, err)
	}
	return nil
}

func (c *Cache) insert(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.bytes += int64(len(data))
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*cacheEntry)
		c.bytes -= int64(len(e.data))
		delete(c.entries, e.key)
	}
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the resident result bytes of the in-memory tier — the
// LRU-pressure gauge next to Len on /metrics (the persistent tier is
// unbounded by design and not counted here).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
