package service

import (
	"context"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	winofault "repro"
)

func quiet(cfg Config) Config {
	cfg.Logger = slog.New(slog.DiscardHandler)
	return cfg
}

// newStubService builds a service whose campaign runner is replaced by fn,
// so queue/coalescing/cancellation behavior is testable without forward
// passes.
func newStubService(t *testing.T, cfg Config, fn func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error)) *Service {
	t.Helper()
	s, err := New(quiet(cfg))
	if err != nil {
		t.Fatal(err)
	}
	s.run = fn
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

func sweepReq(seed uint64) winofault.CampaignRequest {
	return winofault.CampaignRequest{Model: "vgg19", Seed: seed, BERs: []float64{1e-9, 1e-8}}
}

// TestCoalescingIdenticalSubmits: N concurrent submissions of the same
// campaign must execute it exactly once, and every waiter must observe that
// one result.
func TestCoalescingIdenticalSubmits(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s := newStubService(t, Config{Jobs: 2, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		runs.Add(1)
		<-gate
		return []byte(`{"points":[]}`), nil
	})

	const submitters = 16
	results := make([][]byte, submitters)
	errs := make([]error, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(sweepReq(42))
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = j.Wait(context.Background())
		}(i)
	}
	// Let every submitter reach Wait before releasing the single execution.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("identical submissions ran %d times, want 1", got)
	}
	for i := 0; i < submitters; i++ {
		if errs[i] != nil {
			t.Errorf("submitter %d: %v", i, errs[i])
		} else if string(results[i]) != `{"points":[]}` {
			t.Errorf("submitter %d got %q", i, results[i])
		}
	}
}

// TestDistinctRequestsDoNotCoalesce: different campaign content must not
// share an execution.
func TestDistinctRequestsDoNotCoalesce(t *testing.T) {
	var runs atomic.Int64
	s := newStubService(t, Config{Jobs: 2, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		runs.Add(1)
		return []byte(`{}`), nil
	})
	for _, seed := range []uint64{1, 2, 3} {
		j, err := s.Submit(sweepReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("3 distinct campaigns ran %d times", got)
	}
}

// TestCacheHitSkipsExecution: a finished campaign is served from the cache
// with Cached=true and zero additional executions.
func TestCacheHitSkipsExecution(t *testing.T) {
	var runs atomic.Int64
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		runs.Add(1)
		return []byte(`{"points":[{"BER":1e-9,"Accuracy":0.5}]}`), nil
	})
	j1, err := s.Submit(sweepReq(7))
	if err != nil {
		t.Fatal(err)
	}
	data1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(sweepReq(7))
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if !st.Cached || st.State != winofault.StateDone {
		t.Errorf("second submission not served from cache: %+v", st)
	}
	data2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(data1) != string(data2) {
		t.Errorf("cache served different bytes: %q vs %q", data1, data2)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("campaign executed %d times, want 1", got)
	}
}

// TestCancellationLeavesCacheClean: a campaign canceled mid-run must fail
// its waiters with the cancellation error and leave no trace in the memory
// cache or the persistence directory.
func TestCancellationLeavesCacheClean(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8, CacheDir: dir}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		if !first.CompareAndSwap(true, false) {
			return []byte(`{}`), nil // the resubmission at the end of the test
		}
		close(started)
		<-ctx.Done() // a cooperative campaign: stops scheduling units on cancel
		return nil, ctx.Err()
	})
	req := sweepReq(9)
	key, err := Key(req)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !s.Cancel(j.Key) {
		t.Fatal("Cancel found no in-flight job")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Error("canceled campaign reached the memory cache")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); !os.IsNotExist(err) {
		t.Errorf("canceled campaign reached the persistence dir: %v", err)
	}
	// The failure is not sticky: the same campaign can be resubmitted.
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 == j {
		t.Error("failed job was returned instead of a fresh submission")
	}
}

// TestUncooperativeRunNeverCached: even if a runner ignores cancellation and
// returns a result, the service must refuse to cache or serve it.
func TestUncooperativeRunNeverCached(t *testing.T) {
	started := make(chan struct{})
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return []byte(`{"points":[]}`), nil // ignores the cancellation
	})
	req := sweepReq(10)
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Cancel(j.Key)
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	key, _ := Key(req)
	if _, ok := s.cache.Get(key); ok {
		t.Error("result produced under cancellation was cached")
	}
}

// TestQueueBounded: submissions beyond queue capacity fail fast with
// ErrQueueFull instead of queueing unbounded work.
func TestQueueBounded(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 1}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		started <- struct{}{}
		<-gate
		return []byte(`{}`), nil
	})
	defer close(gate)
	if _, err := s.Submit(sweepReq(1)); err != nil { // runs
		t.Fatal(err)
	}
	<-started // the first job left the queue; the next fills the single slot
	if _, err := s.Submit(sweepReq(2)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(sweepReq(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission returned %v, want ErrQueueFull", err)
	}
	// Coalescing does not consume capacity: resubmitting queued content
	// succeeds even with a full queue.
	if _, err := s.Submit(sweepReq(2)); err != nil {
		t.Errorf("coalesced submission rejected: %v", err)
	}
}

// TestCloseDrainsInFlight: Close with a live context lets queued and
// running jobs finish and their results reach the cache.
func TestCloseDrainsInFlight(t *testing.T) {
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8}))
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	s.run = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		runs.Add(1)
		return []byte(`{}`), nil
	}
	var jobs []*Job
	for seed := uint64(1); seed <= 3; seed++ {
		j, err := s.Submit(sweepReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("drain completed %d jobs, want 3", got)
	}
	for i, j := range jobs {
		if st := j.Status(); st.State != winofault.StateDone {
			t.Errorf("job %d state %s after drain", i, st.State)
		}
	}
	if _, err := s.Submit(sweepReq(4)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submission returned %v, want ErrClosed", err)
	}
}

// TestCloseCancelsOnExpiredContext: when the drain budget is already spent,
// Close cancels in-flight jobs instead of blocking forever.
func TestCloseCancelsOnExpiredContext(t *testing.T) {
	started := make(chan struct{})
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8}))
	if err != nil {
		t.Fatal(err)
	}
	s.run = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	j, err := s.Submit(sweepReq(5))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Close(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close returned %v, want context.Canceled", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("in-flight job resolved with %v, want context.Canceled", err)
	}
}

// TestRunnerPanicFailsJobNotProcess: a panic inside a campaign runner must
// resolve that job as failed and leave the service (and its worker
// goroutine) able to run subsequent campaigns — one malformed request must
// never take down the process.
func TestRunnerPanicFailsJobNotProcess(t *testing.T) {
	s := newStubService(t, Config{Jobs: 1, QueueDepth: 8}, func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		if req.Seed == 666 {
			panic("need at least 2 classes and 1 image")
		}
		return []byte(`{}`), nil
	})
	j, err := s.Submit(sweepReq(666))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking campaign resolved with %v, want a panic error", err)
	}
	if st := j.Status(); st.State != winofault.StateFailed {
		t.Errorf("panicking campaign ended %s, want %s", st.State, winofault.StateFailed)
	}
	if _, ok := s.cache.Get(j.Key); ok {
		t.Error("panicking campaign reached the cache")
	}
	// The same worker goroutine survived and serves the next campaign.
	j2, err := s.Submit(sweepReq(667))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Errorf("campaign after a panic failed: %v", err)
	}
}

// TestProgressBatchSequencing: a new batch with the same unit total as the
// previous one must still publish its early reports — batch identity comes
// from the explicit sequence number, not from a changed total.
func TestProgressBatchSequencing(t *testing.T) {
	j := newJob(context.Background(), "k", sweepReq(1), DefaultTenant, 0)
	j.progress(0, 4, 4) // sweep batch finishes: 4/4
	j.progress(1, 1, 4) // layer batch with the SAME total reports early progress
	if st := j.Status(); st.Done != 1 || st.Total != 4 {
		t.Errorf("second batch progress suppressed: got %d/%d, want 1/4", st.Done, st.Total)
	}
	j.progress(0, 4, 4) // a straggler report from the finished sweep batch
	if st := j.Status(); st.Done != 1 {
		t.Errorf("stale batch report regressed progress to %d/%d", st.Done, st.Total)
	}
	j.progress(1, 3, 4)
	j.progress(1, 2, 4) // out-of-order within the batch: no regression
	if st := j.Status(); st.Done != 3 {
		t.Errorf("out-of-order report regressed progress to %d/%d", st.Done, st.Total)
	}
	j.finish(nil, errors.New("end"))
}

func TestClampWorkers(t *testing.T) {
	cases := []struct{ ask, budget, want int }{
		{0, 0, 0},  // both default: GOMAXPROCS
		{4, 0, 4},  // unlimited budget honors the ask
		{0, 2, 2},  // no ask: the budget
		{8, 2, 2},  // ask above budget: clamped
		{1, 2, 1},  // ask below budget: honored
		{-3, 2, 2}, // nonsense ask: the budget
	}
	for _, c := range cases {
		if got := clampWorkers(c.ask, c.budget); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.ask, c.budget, got, c.want)
		}
	}
}
