package service

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIDPathTraversalRejected: campaign IDs reach the persistence layer as
// file names, so anything that is not a 64-hex content address — in
// particular encoded path fragments, which ServeMux decodes inside the
// {id} wildcard — must 404 without touching the filesystem.
func TestIDPathTraversalRejected(t *testing.T) {
	dir := t.TempDir()
	// A secret .json file one level above the cache dir.
	cacheDir := filepath.Join(dir, "cache")
	secret := filepath.Join(dir, "secret.json")
	if err := os.WriteFile(secret, []byte(`{"points":[{"BER":1,"Accuracy":1}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Jobs: 1, QueueDepth: 4, CacheDir: cacheDir})

	for _, id := range []string{
		"..%2Fsecret",
		"..%2F..%2Fetc%2Fpasswd",
		strings.Repeat("a", 63) + "G", // right length, not hex
		strings.Repeat("A", 64),       // uppercase hex is not canonical
	} {
		for _, path := range []string{"/campaigns/" + id, "/campaigns/" + id + "/result"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
			}
			if strings.Contains(string(body), "Accuracy") {
				t.Errorf("GET %s leaked file contents: %s", path, body)
			}
		}
	}
}

func TestValidKey(t *testing.T) {
	if !validKey(strings.Repeat("0123456789abcdef", 4)) {
		t.Error("canonical key rejected")
	}
	for _, id := range []string{"", "abc", strings.Repeat("g", 64), "../x", strings.Repeat("A", 64)} {
		if validKey(id) {
			t.Errorf("validKey(%q) = true", id)
		}
	}
}
