package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	winofault "repro"
)

// stubDistributor scripts Distributor behavior for fallback tests.
type stubDistributor struct {
	data    []byte
	err     error
	report  func(progress func(int, int, int)) // optional progress script
	workers []WorkerStat
	runs    int
}

func (d *stubDistributor) Run(ctx context.Context, key string, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
	d.runs++
	if d.report != nil {
		d.report(progress)
	}
	if d.err != nil {
		return nil, d.err
	}
	return d.data, nil
}

func (d *stubDistributor) Workers() []WorkerStat { return d.workers }

// distService builds a service whose distributed path is the stub and whose
// local path records whether it ran.
func distService(t *testing.T, d *stubDistributor, localRan *int) *Service {
	t.Helper()
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8, Distributor: d}))
	if err != nil {
		t.Fatal(err)
	}
	s.local = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		*localRan++
		return []byte(`{"points":[{"ber":0,"accuracy":1}]}`), nil
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

// TestDistributedResultSkipsLocal: a successful fleet run is the job's
// result; the local engine never spins up.
func TestDistributedResultSkipsLocal(t *testing.T) {
	localRan := 0
	d := &stubDistributor{data: []byte(`{"points":[]}`)}
	s := distService(t, d, &localRan)
	j, err := s.Submit(sweepReq(1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"points":[]}` {
		t.Errorf("job served %q, want the distributed result", data)
	}
	if d.runs != 1 || localRan != 0 {
		t.Errorf("dist ran %d times, local %d times; want 1 and 0", d.runs, localRan)
	}
}

// TestNoWorkersFallsBackToLocal: ErrNoWorkers silently reroutes to the
// in-process engine — distribution is an optimization, not a dependency.
func TestNoWorkersFallsBackToLocal(t *testing.T) {
	localRan := 0
	s := distService(t, &stubDistributor{err: ErrNoWorkers}, &localRan)
	j, err := s.Submit(sweepReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if localRan != 1 {
		t.Errorf("local ran %d times, want 1", localRan)
	}
}

// TestDistFailureFallsBackToLocal: any fleet failure (worker crashes, shard
// retry exhaustion) falls back to local execution — the campaign still
// completes with identical bytes.
func TestDistFailureFallsBackToLocal(t *testing.T) {
	localRan := 0
	s := distService(t, &stubDistributor{err: errors.New("fleet evaporated")}, &localRan)
	j, err := s.Submit(sweepReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if localRan != 1 {
		t.Errorf("local ran %d times, want 1", localRan)
	}
}

// TestFallbackProgressNotSuppressed: a distributor that already published
// late-batch progress must not freeze the local fallback's reports — the
// re-run gets fresh batch numbers past Job.progress's monotonic guard.
func TestFallbackProgressNotSuppressed(t *testing.T) {
	d := &stubDistributor{
		err: errors.New("fleet evaporated mid-layers"),
		report: func(progress func(int, int, int)) {
			progress(1, 5, 5) // distributed run reached the layer phase
		},
	}
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8, Distributor: d}))
	if err != nil {
		t.Fatal(err)
	}
	localProgressed := make(chan struct{})
	s.local = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		progress(0, 1, 3) // the local re-run starts over at its sweep batch
		close(localProgressed)
		return []byte(`{}`), nil
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	j, err := s.Submit(sweepReq(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-localProgressed
	// The final pre-completion snapshot must reflect the local run's 1/3,
	// not the fleet's stale 5/5.
	if st := j.Status(); st.Done != 1 || st.Total != 3 {
		t.Errorf("fallback progress suppressed: %d/%d, want 1/3", st.Done, st.Total)
	}
}

// TestFallbackDoesNotDoubleCountServedUnits: a dist→local fallback restarts
// the campaign's unit space and the rerun re-reports every unit, so the
// abandoned distributed attempt's partial progress must be dropped from
// served-units accounting, not banked on top of the rerun's full total.
func TestFallbackDoesNotDoubleCountServedUnits(t *testing.T) {
	d := &stubDistributor{
		err: errors.New("fleet evaporated mid-sweep"),
		report: func(progress func(int, int, int)) {
			progress(0, 4, 10) // the fleet merged 4 of 10 sweep units, then died
		},
	}
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8, Distributor: d}))
	if err != nil {
		t.Fatal(err)
	}
	s.local = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		progress(0, 10, 10) // full sweep rerun
		progress(1, 3, 3)   // layer phase
		return []byte(`{}`), nil
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	j, err := s.Submit(sweepReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := j.servedUnits(); got != 13 {
		t.Errorf("servedUnits = %d, want 13 (the rerun's 10+3 only, not the fleet's banked 4)", got)
	}
}

// TestCanceledDistDoesNotFallBack: when the campaign itself was canceled,
// falling back to local would resurrect canceled work.
func TestCanceledDistDoesNotFallBack(t *testing.T) {
	localRan := 0
	d := &stubDistributor{}
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8, Distributor: d}))
	if err != nil {
		t.Fatal(err)
	}
	canceled := make(chan struct{})
	d.err = context.Canceled
	s.run = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		<-canceled // the DELETE below lands before the distributor "runs"
		return s.runCampaign(ctx, req, progress)
	}
	s.local = func(ctx context.Context, req winofault.CampaignRequest, progress func(int, int, int)) ([]byte, error) {
		localRan++
		return []byte(`{}`), nil
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	j, err := s.Submit(sweepReq(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(j.Key)
	close(canceled)
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job resolved with %v", err)
	}
	if localRan != 0 {
		t.Errorf("canceled campaign fell back to local execution")
	}
}

// TestHealthzReportsDrainState: serving is a 200 "serving", a draining
// coordinator answers 503 "draining" so load balancers and fleet workers
// stop routing to it, and new submissions are refused.
func TestHealthzReportsDrainState(t *testing.T) {
	s, ts := testServer(t, Config{Jobs: 1, QueueDepth: 8})
	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"state":"serving"`) {
		t.Errorf("serving healthz = %d %q", code, body)
	}
	s.BeginDrain()
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, `"state":"draining"`) {
		t.Errorf("draining healthz = %d %q", code, body)
	}
	if _, err := s.Submit(tinyReq()); !errors.Is(err, ErrClosed) {
		t.Errorf("submission during drain returned %v, want ErrClosed", err)
	}
}

// TestMetricsEndpoint: the Prometheus text surface carries queue/cache
// counters and the per-worker shard counts of the fleet.
func TestMetricsEndpoint(t *testing.T) {
	d := &stubDistributor{
		data: []byte(`{"points":[]}`),
		workers: []WorkerStat{
			{ID: "w-1", Name: "alpha", Live: true, Shards: 3},
			{ID: "w-2", Name: "beta", Live: false, Shards: 2},
		},
	}
	s, err := New(quiet(Config{Jobs: 1, QueueDepth: 8, Distributor: d}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL

	// One miss (fresh submit) then one hit (resubmit after completion).
	j, err := s.Submit(sweepReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(sweepReq(5)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	for _, want := range []string{
		"wfserve_queue_depth 0",
		"wfserve_jobs_inflight 0",
		"wfserve_cache_hits_total 1",
		// One completed campaign resident: the stub's 13 result bytes.
		"wfserve_cache_entries 1",
		"wfserve_cache_resident_bytes 13",
		"wfserve_draining 0",
		"wfserve_workers_live 1",
		`wfserve_worker_shards_total{worker="alpha",id="w-1"} 3`,
		`wfserve_worker_shards_total{worker="beta",id="w-2"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(string(body), "wfserve_cache_misses_total") {
		t.Errorf("/metrics missing miss counter:\n%s", body)
	}
}
