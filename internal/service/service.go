package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	winofault "repro"
	"repro/internal/obs"
)

// Config sizes the campaign service.
type Config struct {
	// Jobs is the number of campaigns executed concurrently (default 1;
	// each campaign already parallelizes internally via the faultsim pool).
	Jobs int
	// QueueDepth bounds the number of campaigns waiting to run (default
	// 16); submissions beyond it fail fast with ErrQueueFull instead of
	// accumulating unbounded work.
	QueueDepth int
	// Workers is the per-job faultsim worker budget (0 = GOMAXPROCS). A
	// request's own Workers value is honored only up to this budget.
	Workers int
	// CacheEntries caps the in-memory result cache (default 256).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk so cache contents
	// survive restarts.
	CacheDir string
	// Logger receives service events (default slog.Default(); tests use
	// slog.DiscardHandler).
	Logger *slog.Logger
	// TraceCap bounds how many campaign traces stay queryable via
	// /campaigns/{id}/trace (default obs.DefaultTraceCap). Memory is
	// O(campaigns retained), never O(rounds).
	TraceCap int
	// TraceDir, when non-empty, spills finished campaign traces to a bounded
	// on-disk store (obs.TraceStore): /campaigns/{id}/trace then survives
	// both ring eviction and process restarts. Empty keeps traces
	// memory-only, exactly as before.
	TraceDir string
	// Tenants, when set, turns on multi-tenancy: SubmitFor resolves API keys
	// against it (unknown keys get ErrUnauthorized) and the fair-share
	// scheduler apportions execution slots by tenant weight. nil leaves the
	// API open — every submission runs as the built-in default tenant.
	Tenants *TenantTable
	// Distributor, when set, executes cache-miss campaigns across a remote
	// worker fleet (see internal/dist). Distribution is an optimization,
	// never a requirement: any distributed failure other than the campaign's
	// own cancellation falls back to local execution, which produces
	// bit-identical bytes by the scheduler's determinism guarantee.
	Distributor Distributor
}

// Distributor executes campaigns on a remote worker fleet by sharding their
// flattened unit index space. Implementations must return bytes identical to
// the local runner's for the same request (internal/dist achieves this by
// merging per-unit agreement counts in index order) — the content-addressed
// cache stores whichever path ran first.
type Distributor interface {
	// Run executes the campaign remotely. key is the campaign's content
	// address (already validated by Submit); workers re-derive it from req
	// to verify both sides agree on the campaign's identity. Returning
	// ErrNoWorkers means no fleet is available and the caller should run
	// locally.
	Run(ctx context.Context, key string, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error)
	// Workers reports the fleet for /metrics: every registered worker with
	// its liveness and completed shard count.
	Workers() []WorkerStat
}

// WorkerStat is one registered fleet worker as reported by /metrics.
type WorkerStat struct {
	ID   string
	Name string
	// Live reports a fresh heartbeat; dead workers stay listed (their shard
	// counts remain part of the totals) until the registry prunes them.
	Live bool
	// Shards is the number of shard results this worker delivered.
	Shards int64
}

// DurableDistributor is optionally implemented by a Distributor with a
// durable campaign registry (internal/dist with a journal). The service
// notifies it when a campaign reaches a terminal, client-visible state —
// for successes only after the result is in the content-addressed cache, so
// a crash between finishing and caching still resumes the campaign.
type DurableDistributor interface {
	CampaignDone(key string)
}

// Sentinel errors surfaced by Submit and Distributor.Run.
var (
	ErrQueueFull = errors.New("service: job queue is full")
	ErrClosed    = errors.New("service: shutting down")
	// ErrQuotaExceeded reports that the submitting tenant is at its campaign
	// quota (HTTP 429); other tenants are unaffected.
	ErrQuotaExceeded = errors.New("service: tenant campaign quota exceeded")
	// ErrUnauthorized reports an unknown or missing API key on a service
	// running with a key table (HTTP 401).
	ErrUnauthorized = errors.New("service: invalid or missing API key")
	// ErrNoWorkers reports that a Distributor has no live workers; the
	// service transparently falls back to local execution.
	ErrNoWorkers = errors.New("service: no live workers registered")
)

// defaultTenant is the principal for open deployments and trusted in-process
// submissions (recovery resubmits, tests): weight 1, no quota.
var defaultTenant = &Tenant{Name: DefaultTenant, Weight: 1}

// maxFinished bounds how many finished jobs stay addressable for status
// polls; older ones age out (done results remain in the cache regardless).
const maxFinished = 256

// Service is the campaign server: a bounded queue of jobs in front of the
// deterministic faultsim engine, deduplicated by content-addressed cache
// and in-flight coalescing.
type Service struct {
	cfg   Config
	cache *Cache

	// trace retains recent campaign span trees for /campaigns/{id}/trace;
	// metrics is the fixed-bucket histogram set /metrics exposes. Both are
	// handed to runners through the job context (obs.With), never through
	// extra parameters. traceStore is the durable spill tier (nil without
	// Config.TraceDir — every use is nil-safe).
	trace      *obs.Recorder
	traceStore *obs.TraceStore
	metrics    *obs.Metrics
	start      time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// draining flips when shutdown begins: submissions are refused and
	// /healthz reports "draining" so load balancers and fleet workers stop
	// routing here while in-flight work finishes.
	draining atomic.Bool
	// inflight counts campaigns currently executing on worker goroutines
	// (exported via /metrics).
	inflight atomic.Int64

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // queued, running, and a bounded tail of finished
	finished []string        // FIFO of finished keys for eviction
	// sched is the fair-share dispatcher: per-tenant priority queues drained
	// by deficit round robin, globally bounded by QueueDepth. Its mutex nests
	// strictly inside s.mu.
	sched *scheduler
	wg    sync.WaitGroup

	// run executes one campaign; tests substitute it to observe coalescing
	// and cancellation without paying for real forward passes. The progress
	// callback tags each report with a batch sequence number (0 = sweep,
	// 1 = layer sensitivity) so phases with equal unit totals stay distinct.
	run func(ctx context.Context, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error)
	// local is the in-process execution path runCampaign falls back to when
	// distribution is off or fails; tests substitute it to observe fallback
	// decisions without real forward passes.
	local func(ctx context.Context, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error)
}

// New builds and starts a service; stop it with Close.
func New(cfg Config) (*Service, error) {
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	var traceStore *obs.TraceStore
	if cfg.TraceDir != "" {
		traceStore, err = obs.NewTraceStore(cfg.TraceDir, 0)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		cache:      cache,
		trace:      obs.NewRecorder(cfg.TraceCap),
		traceStore: traceStore,
		metrics:    obs.NewMetrics(),
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		sched:      newScheduler(cfg.QueueDepth),
	}
	s.run = s.runCampaign
	s.local = s.runLocal
	for i := 0; i < cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit validates a campaign request and returns its job. Cache hits and
// coalesced submissions come back instantly: a cached key returns an
// already-done job, and a key currently queued or running returns that same
// in-flight job. Only genuinely new work consumes queue capacity.
//
// Submit is the trusted in-process path (tests, recovery resubmissions): it
// runs as the built-in default tenant with no quota. The HTTP layer goes
// through SubmitFor instead.
func (s *Service) Submit(req winofault.CampaignRequest) (*Job, error) {
	return s.submit(req, defaultTenant)
}

// SubmitFor is Submit on behalf of an API key. Authentication comes first —
// before even the cache probe, so an unauthenticated caller learns nothing
// about what the cache holds. Without a key table every key (including none)
// maps to the default tenant.
func (s *Service) SubmitFor(req winofault.CampaignRequest, apiKey string) (*Job, error) {
	t := defaultTenant
	if s.cfg.Tenants != nil {
		ten, ok := s.cfg.Tenants.Lookup(apiKey)
		if !ok {
			return nil, ErrUnauthorized
		}
		t = ten
	}
	return s.submit(req, t)
}

func (s *Service) submit(req winofault.CampaignRequest, t *Tenant) (*Job, error) {
	vStart := time.Now()
	key, err := Key(req)
	vDur := time.Since(vStart)
	if err != nil {
		return nil, err
	}
	// Content hit first: finished campaigns are always in the cache, so a
	// repeated request is answered from there (Cached=true) without
	// consuming queue capacity. This probe may touch disk, so it runs
	// before taking the service mutex.
	pStart := time.Now()
	data, hit := s.cache.Get(key)
	pDur := time.Since(pStart)
	s.metrics.CacheProbe.Observe(pDur.Seconds())
	if hit {
		s.traceCacheHit(key, vStart, vDur, pStart, pDur)
		return cachedJob(key, data), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining.Load() {
		return nil, ErrClosed
	}
	if j, ok := s.jobs[key]; ok {
		if st := j.Status(); st.State == winofault.StateQueued || st.State == winofault.StateRunning {
			// Coalesce onto the in-flight execution; the coalescing tenant
			// becomes a viewer so it can observe the job it now shares. The
			// waiters share the runner's trace — one execution, one timeline.
			j.addViewer(t.Name)
			return j, nil
		}
		// Finished jobs: done ones were served by the cache checks (unless
		// evicted with persistence off — then re-running is the only way to
		// answer); failed ones are retryable. Resubmit both.
	}
	// Re-check memory only (no I/O under the lock): the campaign may have
	// finished between the disk probe above and taking the mutex.
	if data, ok := s.cache.getMemory(key); ok {
		s.traceCacheHit(key, vStart, vDur, pStart, pDur)
		return cachedJob(key, data), nil
	}
	j := newJob(s.baseCtx, key, req, t.Name, clampPriority(req.Priority))
	// Begin the campaign's timeline: submit-time work recorded
	// retroactively, then an open queue-wait span that runJob closes when a
	// worker dequeues the job. The Obs handles ride the job context so the
	// distributor and local runner record into the same trace.
	tr := s.trace.Begin(key)
	tr.Record("validate", vStart, vDur)
	tr.Record("cache-probe", pStart, pDur, obs.A("hit", false))
	j.o = obs.Obs{Trace: tr, Metrics: s.metrics}
	j.ctx = obs.With(j.ctx, j.o)
	j.queueSpan = tr.Start("queue-wait", obs.A("tenant", t.Name), obs.A("priority", j.priority))
	j.enqueuedAt = time.Now()
	if err := s.sched.enqueue(j, t); err != nil {
		j.cancel() // release the job's context registration on baseCtx
		j.queueSpan.SetAttr("err", err.Error())
		j.queueSpan.End()
		tr.Finish()
		return nil, err
	}
	s.jobs[key] = j
	return j, nil
}

// traceCacheHit synthesizes a probe-only trace for a campaign answered
// straight from the cache — unless a real run already recorded a richer
// timeline for the key (in the ring, or spilled to disk by a previous
// incarnation), which a synthetic one must never overwrite or shadow.
func (s *Service) traceCacheHit(key string, vStart time.Time, vDur time.Duration, pStart time.Time, pDur time.Duration) {
	if s.trace.Lookup(key) != nil || s.traceStore.Has(key) {
		return
	}
	tr := s.trace.Begin(key)
	tr.Record("validate", vStart, vDur)
	tr.Record("cache-probe", pStart, pDur, obs.A("hit", true))
	tr.Finish()
}

// clampPriority folds a request's priority ask into the scheduler's range;
// like Workers, it is a scheduling hint, never part of campaign identity.
func clampPriority(p int) int {
	if p < 0 {
		return 0
	}
	if p > MaxPriority {
		return MaxPriority
	}
	return p
}

// validKey reports whether id has the shape of a campaign content address
// (64 lowercase hex digits). Anything else — in particular path fragments
// smuggled through URL encoding — must never reach the cache, whose
// persistence layer maps keys to file names.
func validKey(id string) bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Job returns the job addressed by id: in-flight or recently finished, else
// synthesized from the result cache.
func (s *Service) Job(id string) (*Job, bool) {
	if !validKey(id) {
		return nil, false
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		return j, true
	}
	if data, ok := s.cache.Get(id); ok {
		return cachedJob(id, data), true
	}
	return nil, false
}

// Cancel aborts an in-flight job. Identical submissions coalesce onto one
// execution, so cancellation is deliberately shared: the job IS the content
// address, and aborting it aborts it for every waiter — each sees
// context.Canceled. That is the price of the shared-cache model (one key,
// one execution); the failure is not sticky, so any waiter that still wants
// the result simply resubmits. Canceling an already-finished job is a
// no-op; the result (if done) stays cached.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok || j.cancel == nil {
		return false
	}
	j.cancel()
	return true
}

// rememberFinishedLocked keeps a finished job addressable for status polls,
// aging out the oldest entries beyond maxFinished.
func (s *Service) rememberFinishedLocked(j *Job) {
	s.jobs[j.Key] = j
	s.finished = append(s.finished, j.Key)
	for len(s.finished) > maxFinished {
		old := s.finished[0]
		s.finished = s.finished[1:]
		if held, ok := s.jobs[old]; ok && held != j {
			if st := held.Status(); st.State == winofault.StateDone || st.State == winofault.StateFailed {
				delete(s.jobs, old)
			}
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.next()
		if j == nil {
			return // closed and drained
		}
		s.runJob(j)
	}
}

func (s *Service) runJob(j *Job) {
	// The queue-wait span opened at submission ends here: the deficit attr is
	// the tenant's remaining DRR credit stamped at dequeue, so a starved
	// tenant's waits are attributable to fair-share arithmetic, not guessed.
	j.queueSpan.SetAttr("deficit", j.deficit)
	j.queueSpan.End()
	if !j.enqueuedAt.IsZero() {
		s.metrics.ObserveQueueWait(j.tenant, time.Since(j.enqueuedAt).Seconds())
	}
	j.setRunning()
	s.inflight.Add(1)
	execStart := time.Now()
	data, err := s.runGuarded(j)
	execDur := time.Since(execStart)
	s.inflight.Add(-1)
	if err == nil {
		if cerr := j.ctx.Err(); cerr != nil {
			// Belt and braces: a canceled campaign must never be cached,
			// even if the runner missed the cancellation.
			err = cerr
		} else if data == nil {
			err = fmt.Errorf("service: campaign produced no result")
		}
	}
	if err == nil {
		wStart := time.Now()
		perr := s.cache.Put(j.Key, data)
		j.o.Trace.Record("cache-write", wStart, time.Since(wStart), obs.A("bytes", len(data)))
		if perr != nil {
			// Persistence failures degrade durability, not the response.
			s.cfg.Logger.Error("service: cache persist failed", "campaign", shortKey(j.Key), "err", perr)
		}
	}
	// Every outcome below is terminal and client-visible (a success is now
	// cached; failures and cancellations surface to waiters), so a durable
	// coordinator may retire the campaign from its journal.
	if d, ok := s.cfg.Distributor.(DurableDistributor); ok {
		d.CampaignDone(j.Key)
	}
	units := j.servedUnits()
	s.sched.done(j, units)
	if err == nil && execDur > 0 && units > 0 {
		s.metrics.Throughput.Observe(float64(units) / execDur.Seconds())
	}
	if !j.enqueuedAt.IsZero() {
		s.metrics.Campaign.ObserveSince(j.enqueuedAt)
	}
	j.o.Trace.Finish()
	// Spill the finished timeline to the durable store (nil-safe no-op
	// without -trace-dir): after a restart the trace is served from disk,
	// byte-identical — the snapshot round-trips JSON stably (sorted map keys,
	// shortest floats, offset-preserving RFC3339 times).
	if s.traceStore != nil {
		if serr := s.traceStore.Put(j.o.Trace.Snapshot()); serr != nil {
			s.cfg.Logger.Error("service: trace persist failed", "campaign", shortKey(j.Key), "err", serr)
		}
	}
	s.mu.Lock()
	if err != nil {
		// The failed job stays addressable for status polls but is
		// retryable: Submit replaces it. Nothing touches the cache.
		s.cfg.Logger.Warn("service: campaign failed", "campaign", shortKey(j.Key), "tenant", j.tenant, "err", err)
	}
	s.rememberFinishedLocked(j)
	s.mu.Unlock()
	j.finish(data, err)
}

// shortKey truncates a campaign content address for log attrs.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// runGuarded executes one campaign on the worker goroutine, converting a
// runner panic into a failed job: the service must outlive any single
// malformed request, so a panic fails that job alone instead of killing the
// process. Submit-time validation (Canonical) makes this a last line of
// defense, not the expected path.
func (s *Service) runGuarded(j *Job) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Logger.Error("service: campaign panicked",
				"campaign", shortKey(j.Key), "panic", r, "stack", string(debug.Stack()))
			data, err = nil, fmt.Errorf("service: campaign panicked: %v", r)
		}
	}()
	return s.run(j.ctx, j.req, j.progress)
}

// runCampaign executes one real campaign: across the worker fleet when a
// Distributor with live workers is configured, locally otherwise. The two
// paths produce byte-identical results (merged shard counts reduce in unit
// index order, exactly as the local scheduler does), so falling back is
// always safe — a fleet failure costs wall-clock time, never correctness.
func (s *Service) runCampaign(ctx context.Context, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error) {
	if d := s.cfg.Distributor; d != nil {
		// Key cannot fail here: Submit already canonicalized this request.
		key, err := Key(req)
		if err != nil {
			return nil, err
		}
		data, derr := d.Run(ctx, key, req, progress)
		if derr == nil {
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, derr
		}
		if !errors.Is(derr, ErrNoWorkers) {
			s.cfg.Logger.Warn("service: distributed campaign failed; falling back to local execution",
				"campaign", shortKey(key), "err", derr)
		}
		// Mark the transition in the timeline: everything after this span is
		// the local attempt re-running the campaign from unit zero.
		obs.From(ctx).Trace.Record("dist-fallback", time.Now(), 0, obs.A("err", derr.Error()))
		// The distributed attempt may already have published batch 0/1
		// progress; Job.progress is batch-monotonic, so the local re-run
		// reports under the next attempt's batch numbers or its early
		// progress would be suppressed (frozen SSE/status) until it overtook
		// the fleet's. The stride also tells served-units accounting to drop
		// the abandoned attempt's partial units instead of double-billing.
		inner := progress
		progress = func(batch, done, total int) { inner(batch+batchesPerAttempt, done, total) }
	}
	return s.local(ctx, req, progress)
}

// runLocal executes one campaign in-process through the winofault facade.
func (s *Service) runLocal(ctx context.Context, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error) {
	// The request's own worker ask is honored only up to the service's
	// per-job budget; the budget is the default.
	req.Workers = clampWorkers(req.Workers, s.cfg.Workers)
	cfg, err := req.SystemConfig()
	if err != nil {
		return nil, err
	}
	sys, err := winofault.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.SetProtection(req.Protection); err != nil {
		return nil, err
	}
	o := obs.From(ctx)
	sys.OnProgress(func(done, total int) { progress(0, done, total) })
	ph := o.Trace.Start("phase",
		obs.A("phase", "sweep"), obs.A("path", "local"), obs.A("units", sys.SweepUnits(req.BERs)))
	pts, err := sys.SweepCtx(ctx, req.BERs)
	if err != nil {
		ph.SetAttr("err", err.Error())
		ph.End()
		return nil, err
	}
	ph.End()
	res := winofault.CampaignResult{Points: pts}
	if req.Layers {
		// The layer-sensitivity phase is a new unit batch; tagging it with
		// the next sequence number keeps its progress visible even when its
		// unit total happens to equal the sweep's.
		sys.OnProgress(func(done, total int) { progress(1, done, total) })
		mid := req.BERs[len(req.BERs)/2]
		ph := o.Trace.Start("phase",
			obs.A("phase", "layers"), obs.A("path", "local"), obs.A("units", sys.LayerUnits(mid)))
		base, layers, err := sys.LayerSensitivitiesCtx(ctx, mid)
		if err != nil {
			ph.SetAttr("err", err.Error())
			ph.End()
			return nil, err
		}
		ph.End()
		res.Baseline = base
		res.Layers = layers
	}
	return json.Marshal(res)
}

// clampWorkers resolves a request's worker ask against the service budget.
func clampWorkers(ask, budget int) int {
	if budget <= 0 {
		return ask // unlimited budget: the request's ask stands (0 = GOMAXPROCS)
	}
	if ask <= 0 || ask > budget {
		return budget
	}
	return ask
}

// BeginDrain flips the service into its terminating state without stopping
// work: subsequent submissions fail with ErrClosed, /healthz reports
// "draining" with a 503 (so load balancers and fleet workers stop routing
// here), and in-flight jobs keep running until Close. Calling it more than
// once is harmless.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether shutdown has begun (BeginDrain or Close).
func (s *Service) Draining() bool { return s.draining.Load() }

// Stats is the /metrics snapshot of the service.
type Stats struct {
	// QueueDepth is the number of campaigns waiting in the bounded queue.
	QueueDepth int
	// Inflight is the number of campaigns currently executing.
	Inflight int64
	// CacheHits / CacheMisses count content-addressed cache probes.
	CacheHits, CacheMisses int64
	// CacheEntries / CacheBytes gauge the in-memory cache tier (entry count
	// and resident result bytes), so operators can see LRU pressure rather
	// than only hit/miss flow.
	CacheEntries int
	CacheBytes   int64
	// Workers is the distributed fleet (nil without a Distributor).
	Workers []WorkerStat
	// Tenants is the per-tenant fair-share view: every tenant that has ever
	// submitted, with occupancy and admission counters.
	Tenants []TenantStat
}

// Stats snapshots the service counters for the /metrics endpoint.
func (s *Service) Stats() Stats {
	st := Stats{
		QueueDepth:   s.sched.depthNow(),
		Inflight:     s.inflight.Load(),
		CacheHits:    s.cache.Hits(),
		CacheMisses:  s.cache.Misses(),
		CacheEntries: s.cache.Len(),
		CacheBytes:   s.cache.Bytes(),
	}
	if s.cfg.Distributor != nil {
		st.Workers = s.cfg.Distributor.Workers()
	}
	st.Tenants = s.sched.stats()
	return st
}

// Close drains the service: no new submissions are accepted, queued and
// running jobs finish normally, then workers exit. If ctx is canceled while
// draining, every remaining job's context is canceled (their waiters see
// context.Canceled, nothing reaches the cache) and Close returns ctx.Err()
// once the workers have exited.
func (s *Service) Close(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.sched.close()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}
