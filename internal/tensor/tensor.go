// Package tensor provides the minimal NCHW tensor types shared by the
// convolution engines: a float64 reference tensor used for calibration and
// golden checks, and a quantized tensor storing Q-format integers, which is
// what the fault-injection engines actually operate on.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/fixed"
	"repro/internal/rng"
)

// Shape describes an NCHW tensor extent. FC activations use H = W = 1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the total number of elements.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Valid reports whether all extents are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string {
	return fmt.Sprintf("[%dx%dx%dx%d]", s.N, s.C, s.H, s.W)
}

// Index converts NCHW coordinates to a flat offset.
func (s Shape) Index(n, c, h, w int) int {
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// Tensor is a dense float64 NCHW tensor.
type Tensor struct {
	Shape Shape
	Data  []float64
}

// New allocates a zero tensor of the given shape.
func New(s Shape) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Data: make([]float64, s.Elems())}
}

// At returns the element at (n,c,h,w).
func (t *Tensor) At(n, c, h, w int) float64 { return t.Data[t.Shape.Index(n, c, h, w)] }

// Set stores v at (n,c,h,w).
func (t *Tensor) Set(n, c, h, w int, v float64) { t.Data[t.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape)
	copy(out.Data, t.Data)
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// MaxAbs returns the largest absolute element value (0 for empty data).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Random fills the tensor with N(0, std²) values from the stream and
// returns it, for deterministic synthetic weights and inputs.
func (t *Tensor) Random(r *rng.Stream, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = r.NormFloat64() * std
	}
	return t
}

// Pad2D returns a copy of t with p rows/columns of zeros added on every
// spatial side. p == 0 returns a clone.
func (t *Tensor) Pad2D(p int) *Tensor {
	if p < 0 {
		panic("tensor: negative padding")
	}
	if p == 0 {
		return t.Clone()
	}
	s := t.Shape
	out := New(Shape{s.N, s.C, s.H + 2*p, s.W + 2*p})
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				srcBase := s.Index(n, c, h, 0)
				dstBase := out.Shape.Index(n, c, h+p, p)
				copy(out.Data[dstBase:dstBase+s.W], t.Data[srcBase:srcBase+s.W])
			}
		}
	}
	return out
}

// L2Diff returns the root-mean-square difference between two tensors of the
// same shape.
func L2Diff(a, b *Tensor) float64 {
	if a.Shape != b.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var sum float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a.Data)))
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Shape != b.Shape {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether all elements differ by at most tol.
func AllClose(a, b *Tensor, tol float64) bool { return MaxAbsDiff(a, b) <= tol }

// QTensor is a quantized NCHW tensor: Data holds Q-format stored integers
// interpreted through Fmt.
type QTensor struct {
	Shape Shape
	Fmt   fixed.Format
	Data  []int32
}

// NewQ allocates a zero quantized tensor.
func NewQ(s Shape, f fixed.Format) *QTensor {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &QTensor{Shape: s, Fmt: f, Data: make([]int32, s.Elems())}
}

// At returns the stored integer at (n,c,h,w).
func (q *QTensor) At(n, c, h, w int) int32 { return q.Data[q.Shape.Index(n, c, h, w)] }

// Set stores v at (n,c,h,w).
func (q *QTensor) Set(n, c, h, w int, v int32) { q.Data[q.Shape.Index(n, c, h, w)] = v }

// Clone returns a deep copy.
func (q *QTensor) Clone() *QTensor {
	out := NewQ(q.Shape, q.Fmt)
	copy(out.Data, q.Data)
	return out
}

// Quantize converts a float tensor into the given format with
// round-half-away-from-zero and saturation.
func Quantize(t *Tensor, f fixed.Format) *QTensor {
	q := NewQ(t.Shape, f)
	for i, v := range t.Data {
		q.Data[i] = f.Quantize(v)
	}
	return q
}

// Dequantize converts a quantized tensor back to floats.
func Dequantize(q *QTensor) *Tensor {
	t := New(q.Shape)
	scale := q.Fmt.Scale()
	for i, v := range q.Data {
		t.Data[i] = float64(v) * scale
	}
	return t
}

// Pad2D returns a zero-padded copy (zero is exact in Q-format).
func (q *QTensor) Pad2D(p int) *QTensor {
	if p < 0 {
		panic("tensor: negative padding")
	}
	if p == 0 {
		return q.Clone()
	}
	s := q.Shape
	out := NewQ(Shape{s.N, s.C, s.H + 2*p, s.W + 2*p}, q.Fmt)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				srcBase := s.Index(n, c, h, 0)
				dstBase := out.Shape.Index(n, c, h+p, p)
				copy(out.Data[dstBase:dstBase+s.W], q.Data[srcBase:srcBase+s.W])
			}
		}
	}
	return out
}

// Calibrate selects a Q-format of the given width whose integer range covers
// maxAbs with one bit of headroom, the standard symmetric power-of-two
// calibration for fixed-point DNN inference. A maxAbs of zero yields the
// maximum fractional precision.
func Calibrate(width int, maxAbs float64) fixed.Format {
	if maxAbs <= 0 {
		return fixed.Format{Width: width, Frac: width - 1}
	}
	intBits := 1 // sign
	for math.Ldexp(1, intBits-1) <= maxAbs {
		intBits++
		if intBits >= width {
			return fixed.Format{Width: width, Frac: 0}
		}
	}
	return fixed.Format{Width: width, Frac: width - intBits}
}

// CalibrateTensors picks a format of the given width covering the max
// absolute value across all the given tensors.
func CalibrateTensors(width int, ts ...*Tensor) fixed.Format {
	m := 0.0
	for _, t := range ts {
		if a := t.MaxAbs(); a > m {
			m = a
		}
	}
	return Calibrate(width, m)
}
