package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/rng"
)

func TestShapeIndexRoundTrip(t *testing.T) {
	s := Shape{2, 3, 4, 5}
	seen := make(map[int]bool)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					idx := s.Index(n, c, h, w)
					if idx < 0 || idx >= s.Elems() {
						t.Fatalf("index out of range: %d", idx)
					}
					if seen[idx] {
						t.Fatalf("index collision at %d", idx)
					}
					seen[idx] = true
				}
			}
		}
	}
	if len(seen) != s.Elems() {
		t.Fatalf("covered %d of %d elements", len(seen), s.Elems())
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 1}).Valid() {
		t.Error("unit shape should be valid")
	}
	for _, s := range []Shape{{0, 1, 1, 1}, {1, -1, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}} {
		if s.Valid() {
			t.Errorf("shape %v should be invalid", s)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid shape did not panic")
		}
	}()
	New(Shape{0, 1, 1, 1})
}

func TestAtSet(t *testing.T) {
	tt := New(Shape{1, 2, 3, 3})
	tt.Set(0, 1, 2, 1, 7.5)
	if got := tt.At(0, 1, 2, 1); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	if got := tt.At(0, 0, 0, 0); got != 0 {
		t.Errorf("zero element = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(Shape{1, 1, 2, 2})
	a.Fill(3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 3 {
		t.Error("Clone shares storage")
	}
}

func TestPad2D(t *testing.T) {
	a := New(Shape{1, 2, 2, 2})
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	p := a.Pad2D(1)
	want := Shape{1, 2, 4, 4}
	if p.Shape != want {
		t.Fatalf("padded shape = %v, want %v", p.Shape, want)
	}
	// Border must be zero.
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			if p.At(0, c, 0, i) != 0 || p.At(0, c, 3, i) != 0 ||
				p.At(0, c, i, 0) != 0 || p.At(0, c, i, 3) != 0 {
				t.Fatal("padding border not zero")
			}
		}
	}
	// Interior must match.
	for c := 0; c < 2; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				if p.At(0, c, h+1, w+1) != a.At(0, c, h, w) {
					t.Fatal("padded interior mismatch")
				}
			}
		}
	}
	// Pad 0 returns an equal, independent copy.
	z := a.Pad2D(0)
	if !AllClose(a, z, 0) {
		t.Error("Pad2D(0) changed values")
	}
	z.Data[0] = -1
	if a.Data[0] == -1 {
		t.Error("Pad2D(0) shares storage")
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	r := rng.New(1)
	a := New(Shape{1, 3, 8, 8}).Random(r, 1.0)
	f := CalibrateTensors(16, a)
	q := Quantize(a, f)
	back := Dequantize(q)
	if d := MaxAbsDiff(a, back); d > f.Scale()/2+1e-12 {
		t.Errorf("quantize round trip error %v exceeds half LSB %v", d, f.Scale()/2)
	}
}

func TestQuantizePropertyBounded(t *testing.T) {
	f := fixed.Int8
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		q := f.Quantize(x)
		return q >= f.Min() && q <= f.Max()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQPad2D(t *testing.T) {
	q := NewQ(Shape{1, 1, 2, 2}, fixed.Int16)
	q.Set(0, 0, 0, 0, 5)
	q.Set(0, 0, 1, 1, -5)
	p := q.Pad2D(2)
	if p.Shape != (Shape{1, 1, 6, 6}) {
		t.Fatalf("shape = %v", p.Shape)
	}
	if p.At(0, 0, 2, 2) != 5 || p.At(0, 0, 3, 3) != -5 {
		t.Error("interior values misplaced")
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 5, 5) != 0 {
		t.Error("padding not zero")
	}
}

func TestCalibrate(t *testing.T) {
	cases := []struct {
		width  int
		maxAbs float64
		frac   int
	}{
		{16, 0, 15},
		{16, 0.9, 15},  // fits in sign + 0 int bits? 2^0=1 > 0.9 -> intBits=1, frac=15
		{16, 1.0, 14},  // needs 2^1 range
		{16, 100, 8},   // 2^7=128 > 100 -> intBits 8, frac 8
		{16, 40000, 0}, // overflows: clamp
		{8, 6.7, 4},    // 2^3=8 > 6.7 -> intBits 4, frac 4
	}
	for _, c := range cases {
		f := Calibrate(c.width, c.maxAbs)
		if f.Frac != c.frac || f.Width != c.width {
			t.Errorf("Calibrate(%d,%v) = %v, want frac %d", c.width, c.maxAbs, f, c.frac)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("Calibrate produced invalid format: %v", err)
		}
	}
}

func TestCalibrateCoversRange(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		a := math.Abs(x)
		if math.IsNaN(a) || math.IsInf(a, 0) || a > 1e30 {
			return true
		}
		f := Calibrate(16, a)
		if f.Frac == 0 {
			return true // saturating regime is allowed for huge values
		}
		// The format must represent a without saturating (within rounding).
		q := f.Quantize(a)
		return math.Abs(f.Dequantize(q)-a) <= f.Scale()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestL2AndMaxDiff(t *testing.T) {
	a := New(Shape{1, 1, 1, 4})
	b := New(Shape{1, 1, 1, 4})
	copy(a.Data, []float64{1, 2, 3, 4})
	copy(b.Data, []float64{1, 2, 3, 8})
	if got := MaxAbsDiff(a, b); got != 4 {
		t.Errorf("MaxAbsDiff = %v", got)
	}
	if got := L2Diff(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("L2Diff = %v, want 2", got)
	}
	if !AllClose(a, b, 4) || AllClose(a, b, 3.9) {
		t.Error("AllClose thresholds wrong")
	}
}

func TestL2DiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	L2Diff(New(Shape{1, 1, 1, 2}), New(Shape{1, 1, 2, 1}))
}

func TestRandomDeterministic(t *testing.T) {
	a := New(Shape{1, 1, 4, 4}).Random(rng.New(5), 2.0)
	b := New(Shape{1, 1, 4, 4}).Random(rng.New(5), 2.0)
	if !AllClose(a, b, 0) {
		t.Error("Random with same stream seed differs")
	}
	var sum float64
	big := New(Shape{1, 4, 64, 64}).Random(rng.New(6), 2.0)
	for _, v := range big.Data {
		sum += v * v
	}
	std := math.Sqrt(sum / float64(len(big.Data)))
	if math.Abs(std-2) > 0.1 {
		t.Errorf("Random std = %v, want ~2", std)
	}
}
