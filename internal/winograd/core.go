package winograd

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// Params is one quantized stride-1 RxR winograd convolution (the DWM layer
// composes several of these for other kernel shapes). It produces
// accumulator-domain (int64) outputs at fixed-point scale
// 2^-(inFrac + wFrac + FracExtra); the caller requantizes.
//
// Operation ordering contract (census <-> fault replay), nt = n·tiles+tile:
//
//	mul index = ((nt·OC + oc)·C + c)·T² + pos
//	add index, four consecutive segments:
//	  IT:   (nt·C + c)·itAdds + s                     input transform
//	  CA:   itTotal  + ((nt·OC+oc)·(C-1) + (c-1))·T² + pos   channel accumulation
//	  OT:   +caTotal + (nt·OC + oc)·otAdds + s        output transform
//
// Bias is deliberately absent here: the composing layer owns it.
type Params struct {
	Tile  *Tile
	OutC  int
	InC   int
	U     []int32 // transformed weights, [oc][c][T*T], frac = WFrac+FracExtra
	UT    []int32 // U transposed to [pos][oc][c] for contiguous Hadamard sums
	WFrac int     // fractional bits of the original weight format
	WBits int     // width of the weight/activation operand registers
}

// NewParams transforms and quantizes the weights (shape {outC, inC, R, R})
// for the given tile. The transform runs offline in float64 and is quantized
// with FracExtra guard bits, so runtime arithmetic is pure integer.
func NewParams(w *tensor.Tensor, t *Tile, wFmt fixed.Format) *Params {
	if w.Shape.H != t.R || w.Shape.W != t.R {
		panic(fmt.Sprintf("winograd: weight %dx%d does not match %s", w.Shape.H, w.Shape.W, t.Name))
	}
	T := t.T()
	outC, inC := w.Shape.N, w.Shape.C
	p := &Params{
		Tile:  t,
		OutC:  outC,
		InC:   inC,
		U:     make([]int32, outC*inC*T*T),
		WFrac: wFmt.Frac,
		WBits: wFmt.Width,
	}
	scale := float64(int64(1) << uint(wFmt.Frac+t.FracExtra))
	g := make([]float64, t.R*t.R)
	for o := 0; o < outC; o++ {
		for c := 0; c < inC; c++ {
			for ky := 0; ky < t.R; ky++ {
				for kx := 0; kx < t.R; kx++ {
					g[ky*t.R+kx] = w.At(o, c, ky, kx)
				}
			}
			u := TransformFilter(t, g)
			base := (o*inC + c) * T * T
			for i, v := range u {
				s := v * scale
				if s >= 0 {
					p.U[base+i] = int32(s + 0.5)
				} else {
					p.U[base+i] = int32(s - 0.5)
				}
			}
		}
	}
	// The fast path accumulates over input channels at fixed (position,
	// output channel); storing the weights position-major makes that inner
	// loop walk both operands with stride 1.
	t2 := T * T
	p.UT = make([]int32, t2*outC*inC)
	for o := 0; o < outC; o++ {
		for c := 0; c < inC; c++ {
			for i := 0; i < t2; i++ {
				p.UT[(i*outC+o)*inC+c] = p.U[(o*inC+c)*t2+i]
			}
		}
	}
	return p
}

// AccFracExtra returns the extra fractional bits of the accumulator domain
// relative to a direct convolution with the same formats.
func (p *Params) AccFracExtra() int { return p.Tile.FracExtra }

// OutShape returns the stride-1 output shape for an input already including
// any padding the caller wants (Params itself applies no padding).
func (p *Params) OutShape(in tensor.Shape) tensor.Shape {
	return tensor.Shape{N: in.N, C: p.OutC, H: in.H - p.Tile.R + 1, W: in.W - p.Tile.R + 1}
}

// tileGrid returns the tile counts covering an output extent.
func (p *Params) tileGrid(out tensor.Shape) (tilesY, tilesX int) {
	m := p.Tile.M
	return (out.H + m - 1) / m, (out.W + m - 1) / m
}

// Census returns the exact op counts of one forward pass over the given
// (unpadded-by-us) input shape.
func (p *Params) Census(in tensor.Shape) fault.Census {
	return coreCensus(p.Tile, in, p.OutC)
}

// coreCensus computes a stride-1 RxR winograd core's op census from geometry
// alone (in must already include padding; in.C is the input channel count).
func coreCensus(t *Tile, in tensor.Shape, outC int) fault.Census {
	oh, ow := in.H-t.R+1, in.W-t.R+1
	m := t.M
	tilesY, tilesX := (oh+m-1)/m, (ow+m-1)/m
	nt := int64(in.N) * int64(tilesY) * int64(tilesX)
	t2 := int64(t.MulsPerTileChannel())
	muls := nt * int64(outC) * int64(in.C) * t2
	it := nt * int64(in.C) * int64(t.InputAdds())
	ca := nt * int64(outC) * int64(in.C-1) * t2
	ot := nt * int64(outC) * int64(t.OutputAdds())
	return fault.Census{Mul: muls, Add: it + ca + ot}
}

// segments returns the per-(nt) spans used to route add events.
func (p *Params) segments() (itPer, caPer, otPer int64) {
	t2 := int64(p.Tile.MulsPerTileChannel())
	itPer = int64(p.InC) * int64(p.Tile.InputAdds())
	caPer = int64(p.OutC) * int64(p.InC-1) * t2
	otPer = int64(p.OutC) * int64(p.Tile.OutputAdds())
	return
}

// tileOfEvent maps an event to its global tile index nt.
func (p *Params) tileOfEvent(ev fault.Event, ntTotal int64) int64 {
	t2 := int64(p.Tile.MulsPerTileChannel())
	if ev.Class == fault.OpMul {
		return ev.Op / (int64(p.OutC) * int64(p.InC) * t2)
	}
	itPer, caPer, otPer := p.segments()
	itTotal := ntTotal * itPer
	caTotal := ntTotal * caPer
	switch {
	case ev.Op < itTotal:
		return ev.Op / itPer
	case ev.Op < itTotal+caTotal:
		return (ev.Op - itTotal) / caPer
	default:
		return (ev.Op - itTotal - caTotal) / otPer
	}
}

// coreScratch holds every buffer one Params forward pass needs. The zero
// value is ready to use; buffers are (re)allocated on first use or geometry
// change and recycled afterwards, so steady-state passes are allocation-free.
// A coreScratch may be shared sequentially by several Params of identical
// geometry (the DWM units of one layer) but never concurrently.
type coreScratch struct {
	acc  []int64         // accumulator-domain output, outShape.Elems()
	ext  *tensor.QTensor // extended input copy (tile overhang); zero border
	d    []int64         // one TxT input tile
	v    []int64         // transformed input, [c][T²]
	vT   []int64         // v transposed to [pos][c]
	msum []int64         // Hadamard sums, [oc][T²]
	y    []int64         // one MxM output tile
	tmp  []int64         // matTransform intermediate

	// Sorted-events cursor state (event rounds only).
	evs    []fault.Event // events stably sorted by owning tile
	evTile []int64       // owning tile of evs[i], same order
	sorter tileSorter    // reusable sort.Stable adapter for large draws
}

// i64 returns a recycled []int64 of length n (contents unspecified).
func i64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	return (*buf)[:n]
}

// sortEventsByTile fills cs.evs/cs.evTile with the events stably sorted by
// their owning tile, so the tile walk can consume them with a cursor instead
// of a per-call map. Small event sets (the overwhelmingly common case) use a
// stable insertion sort with zero allocation; large high-BER draws fall back
// to sort.Stable to stay O(k·log²k).
func (p *Params) sortEventsByTile(cs *coreScratch, events []fault.Event, ntTotal int64) {
	cs.evs = append(cs.evs[:0], events...)
	if cap(cs.evTile) < len(events) {
		cs.evTile = make([]int64, len(events))
	}
	cs.evTile = cs.evTile[:len(events)]
	for i, ev := range events {
		cs.evTile[i] = p.tileOfEvent(ev, ntTotal)
	}
	if len(cs.evs) > 32 {
		cs.sorter.cs = cs
		sort.Stable(&cs.sorter)
		return
	}
	for i := 1; i < len(cs.evs); i++ {
		for j := i; j > 0 && cs.evTile[j-1] > cs.evTile[j]; j-- {
			cs.evTile[j-1], cs.evTile[j] = cs.evTile[j], cs.evTile[j-1]
			cs.evs[j-1], cs.evs[j] = cs.evs[j], cs.evs[j-1]
		}
	}
}

// tileSorter stably orders a coreScratch's event buffers by owning tile.
type tileSorter struct{ cs *coreScratch }

func (s *tileSorter) Len() int           { return len(s.cs.evs) }
func (s *tileSorter) Less(i, j int) bool { return s.cs.evTile[i] < s.cs.evTile[j] }
func (s *tileSorter) Swap(i, j int) {
	s.cs.evTile[i], s.cs.evTile[j] = s.cs.evTile[j], s.cs.evTile[i]
	s.cs.evs[i], s.cs.evs[j] = s.cs.evs[j], s.cs.evs[i]
}

// ForwardAcc computes the layer into an accumulator-domain buffer indexed by
// out.Shape.Index, applying any fault events bit-exactly. The input must be
// pre-padded by the caller. The returned buffer is freshly allocated; hot
// paths reach the scratch-reusing forwardAcc through Layer.ForwardFaultyCtx,
// whose winograd.Scratch owns the core scratch.
func (p *Params) ForwardAcc(in *tensor.QTensor, events []fault.Event) ([]int64, tensor.Shape) {
	return p.forwardAcc(&coreScratch{}, kernel.Default(), in, events)
}

// forwardAcc is ForwardAcc against a caller-owned scratch and compute backend:
// the returned slice aliases cs.acc and is valid until the next call with the
// same scratch. Only the fault-free tile path goes through bk; tiles with
// events replay on the reference census-ordered walk, so the backend can never
// perturb fault semantics.
func (p *Params) forwardAcc(cs *coreScratch, bk kernel.Backend, in *tensor.QTensor, events []fault.Event) ([]int64, tensor.Shape) {
	if in.Shape.C != p.InC {
		panic(fmt.Sprintf("winograd: input channels %d != %d", in.Shape.C, p.InC))
	}
	outShape := p.OutShape(in.Shape)
	if outShape.H <= 0 || outShape.W <= 0 {
		panic(fmt.Sprintf("winograd: input %v too small for %s", in.Shape, p.Tile.Name))
	}
	tilesY, tilesX := p.tileGrid(outShape)
	ntTotal := int64(in.Shape.N) * int64(tilesY) * int64(tilesX)

	// Extend the input so every tile reads a full TxT window. The recycled
	// buffer's overhang border is written only by NewQ's zeroing: interior
	// rows are refreshed every pass, the border is geometry-dependent only.
	t, m, T := p.Tile, p.Tile.M, p.Tile.T()
	needH := (tilesY-1)*m + T
	needW := (tilesX-1)*m + T
	ext := in
	if needH > in.Shape.H || needW > in.Shape.W {
		extShape := tensor.Shape{N: in.Shape.N, C: in.Shape.C, H: needH, W: needW}
		if cs.ext == nil || cs.ext.Shape != extShape || cs.ext.Fmt != in.Fmt {
			cs.ext = tensor.NewQ(extShape, in.Fmt)
		}
		ext = cs.ext
		for n := 0; n < in.Shape.N; n++ {
			for c := 0; c < in.Shape.C; c++ {
				for y := 0; y < in.Shape.H; y++ {
					src := in.Shape.Index(n, c, y, 0)
					dst := ext.Shape.Index(n, c, y, 0)
					copy(ext.Data[dst:dst+in.Shape.W], in.Data[src:src+in.Shape.W])
				}
			}
		}
	}

	// Route events to tiles with a sorted cursor: the tile walk below visits
	// nt in strictly increasing order, so a stably tile-sorted event slice is
	// consumed front to back and the fault-free common case pays nothing.
	// The truncation matters: a recycled scratch still holds the previous
	// event round's sorted events, which must not leak into this pass.
	evCursor := 0
	cs.evs, cs.evTile = cs.evs[:0], cs.evTile[:0]
	if len(events) > 0 {
		p.sortEventsByTile(cs, events, ntTotal)
	}

	t2 := T * T
	acc := i64(&cs.acc, outShape.Elems())
	d := i64(&cs.d, t2)
	v := i64(&cs.v, p.InC*t2)
	vT := i64(&cs.vT, t2*p.InC)
	msum := i64(&cs.msum, p.OutC*t2)
	y := i64(&cs.y, m*m)
	tmp := i64(&cs.tmp, t2)

	extW := ext.Shape.W
	extChan := ext.Shape.H * extW
	outW := outShape.W
	outChan := outShape.H * outW
	inC, outC := p.InC, p.OutC
	kt, fast := t.kernelTile()

	for n := 0; n < in.Shape.N; n++ {
		extBatch := n * inC * extChan
		outBatch := n * outC * outChan
		for ty := 0; ty < tilesY; ty++ {
			// Rows/cols of this tile row that land inside the output.
			mi := m
			if rest := outShape.H - ty*m; rest < m {
				mi = rest
			}
			for tx := 0; tx < tilesX; tx++ {
				nt := (int64(n)*int64(tilesY)+int64(ty))*int64(tilesX) + int64(tx)
				if evCursor < len(cs.evTile) && cs.evTile[evCursor] == nt {
					run := evCursor
					for run < len(cs.evTile) && cs.evTile[run] == nt {
						run++
					}
					p.replayTile(ext, acc, outShape, n, ty, tx, nt, ntTotal, cs.evs[evCursor:run])
					evCursor = run
					continue
				}
				// Fast path: input transform per channel, then transpose to
				// position-major for the Hadamard stage.
				tileBase := extBatch + ty*m*extW + tx*m
				for c := 0; c < inC; c++ {
					base := tileBase + c*extChan
					if fast {
						bk.InputRows(kt, ext.Data[base:base+(T-1)*extW+T], extW, v[c*t2:(c+1)*t2])
						continue
					}
					for i := 0; i < T; i++ {
						row := ext.Data[base : base+T : base+T]
						for j := 0; j < T; j++ {
							d[i*T+j] = int64(row[j])
						}
						base += extW
					}
					matTransform(t.BT, T, T, d, v[c*t2:(c+1)*t2], tmp)
				}
				for c := 0; c < inC; c++ {
					vb := c * t2
					for i := 0; i < t2; i++ {
						vT[i*inC+c] = v[vb+i]
					}
				}
				// Hadamard + channel accumulation. For each (position, out
				// channel) both the weight row UT[i][o][:] and the activation
				// row vT[i][:] are contiguous; every backend sums exactly that
				// product set in int64, so the results are bit-identical no
				// matter how the backend blocks the loops.
				bk.Hadamard(msum, vT, p.UT, t2, outC, inC)
				// Output transform + write-out per out channel.
				mj := m
				if rest := outShape.W - tx*m; rest < m {
					mj = rest
				}
				for o := 0; o < outC; o++ {
					if fast {
						bk.Output(kt, msum[o*t2:(o+1)*t2], y)
					} else {
						matTransform(t.AT, m, T, msum[o*t2:(o+1)*t2], y, tmp)
					}
					rowBase := outBatch + o*outChan + ty*m*outW + tx*m
					for i := 0; i < mi; i++ {
						for j := 0; j < mj; j++ {
							acc[rowBase+j] = y[i*m+j]
						}
						rowBase += outW
					}
				}
			}
		}
	}
	return acc, outShape
}
