package winograd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/tensor"
)

// Params is one quantized stride-1 RxR winograd convolution (the DWM layer
// composes several of these for other kernel shapes). It produces
// accumulator-domain (int64) outputs at fixed-point scale
// 2^-(inFrac + wFrac + FracExtra); the caller requantizes.
//
// Operation ordering contract (census <-> fault replay), nt = n·tiles+tile:
//
//	mul index = ((nt·OC + oc)·C + c)·T² + pos
//	add index, four consecutive segments:
//	  IT:   (nt·C + c)·itAdds + s                     input transform
//	  CA:   itTotal  + ((nt·OC+oc)·(C-1) + (c-1))·T² + pos   channel accumulation
//	  OT:   +caTotal + (nt·OC + oc)·otAdds + s        output transform
//
// Bias is deliberately absent here: the composing layer owns it.
type Params struct {
	Tile  *Tile
	OutC  int
	InC   int
	U     []int32 // transformed weights, [oc][c][T*T], frac = WFrac+FracExtra
	WFrac int     // fractional bits of the original weight format
	WBits int     // width of the weight/activation operand registers
}

// NewParams transforms and quantizes the weights (shape {outC, inC, R, R})
// for the given tile. The transform runs offline in float64 and is quantized
// with FracExtra guard bits, so runtime arithmetic is pure integer.
func NewParams(w *tensor.Tensor, t *Tile, wFmt fixed.Format) *Params {
	if w.Shape.H != t.R || w.Shape.W != t.R {
		panic(fmt.Sprintf("winograd: weight %dx%d does not match %s", w.Shape.H, w.Shape.W, t.Name))
	}
	T := t.T()
	outC, inC := w.Shape.N, w.Shape.C
	p := &Params{
		Tile:  t,
		OutC:  outC,
		InC:   inC,
		U:     make([]int32, outC*inC*T*T),
		WFrac: wFmt.Frac,
		WBits: wFmt.Width,
	}
	scale := float64(int64(1) << uint(wFmt.Frac+t.FracExtra))
	g := make([]float64, t.R*t.R)
	for o := 0; o < outC; o++ {
		for c := 0; c < inC; c++ {
			for ky := 0; ky < t.R; ky++ {
				for kx := 0; kx < t.R; kx++ {
					g[ky*t.R+kx] = w.At(o, c, ky, kx)
				}
			}
			u := TransformFilter(t, g)
			base := (o*inC + c) * T * T
			for i, v := range u {
				s := v * scale
				if s >= 0 {
					p.U[base+i] = int32(s + 0.5)
				} else {
					p.U[base+i] = int32(s - 0.5)
				}
			}
		}
	}
	return p
}

// AccFracExtra returns the extra fractional bits of the accumulator domain
// relative to a direct convolution with the same formats.
func (p *Params) AccFracExtra() int { return p.Tile.FracExtra }

// OutShape returns the stride-1 output shape for an input already including
// any padding the caller wants (Params itself applies no padding).
func (p *Params) OutShape(in tensor.Shape) tensor.Shape {
	return tensor.Shape{N: in.N, C: p.OutC, H: in.H - p.Tile.R + 1, W: in.W - p.Tile.R + 1}
}

// tileGrid returns the tile counts covering an output extent.
func (p *Params) tileGrid(out tensor.Shape) (tilesY, tilesX int) {
	m := p.Tile.M
	return (out.H + m - 1) / m, (out.W + m - 1) / m
}

// Census returns the exact op counts of one forward pass over the given
// (unpadded-by-us) input shape.
func (p *Params) Census(in tensor.Shape) fault.Census {
	return coreCensus(p.Tile, in, p.OutC)
}

// coreCensus computes a stride-1 RxR winograd core's op census from geometry
// alone (in must already include padding; in.C is the input channel count).
func coreCensus(t *Tile, in tensor.Shape, outC int) fault.Census {
	oh, ow := in.H-t.R+1, in.W-t.R+1
	m := t.M
	tilesY, tilesX := (oh+m-1)/m, (ow+m-1)/m
	nt := int64(in.N) * int64(tilesY) * int64(tilesX)
	t2 := int64(t.MulsPerTileChannel())
	muls := nt * int64(outC) * int64(in.C) * t2
	it := nt * int64(in.C) * int64(t.InputAdds())
	ca := nt * int64(outC) * int64(in.C-1) * t2
	ot := nt * int64(outC) * int64(t.OutputAdds())
	return fault.Census{Mul: muls, Add: it + ca + ot}
}

// segments returns the per-(nt) spans used to route add events.
func (p *Params) segments() (itPer, caPer, otPer int64) {
	t2 := int64(p.Tile.MulsPerTileChannel())
	itPer = int64(p.InC) * int64(p.Tile.InputAdds())
	caPer = int64(p.OutC) * int64(p.InC-1) * t2
	otPer = int64(p.OutC) * int64(p.Tile.OutputAdds())
	return
}

// tileOfEvent maps an event to its global tile index nt.
func (p *Params) tileOfEvent(ev fault.Event, ntTotal int64) int64 {
	t2 := int64(p.Tile.MulsPerTileChannel())
	if ev.Class == fault.OpMul {
		return ev.Op / (int64(p.OutC) * int64(p.InC) * t2)
	}
	itPer, caPer, otPer := p.segments()
	itTotal := ntTotal * itPer
	caTotal := ntTotal * caPer
	switch {
	case ev.Op < itTotal:
		return ev.Op / itPer
	case ev.Op < itTotal+caTotal:
		return (ev.Op - itTotal) / caPer
	default:
		return (ev.Op - itTotal - caTotal) / otPer
	}
}

// ForwardAcc computes the layer into an accumulator-domain buffer indexed by
// out.Shape.Index, applying any fault events bit-exactly. The input must be
// pre-padded by the caller.
func (p *Params) ForwardAcc(in *tensor.QTensor, events []fault.Event) ([]int64, tensor.Shape) {
	if in.Shape.C != p.InC {
		panic(fmt.Sprintf("winograd: input channels %d != %d", in.Shape.C, p.InC))
	}
	outShape := p.OutShape(in.Shape)
	if outShape.H <= 0 || outShape.W <= 0 {
		panic(fmt.Sprintf("winograd: input %v too small for %s", in.Shape, p.Tile.Name))
	}
	tilesY, tilesX := p.tileGrid(outShape)
	ntTotal := int64(in.Shape.N) * int64(tilesY) * int64(tilesX)

	// Extend the input so every tile reads a full TxT window.
	t, m, T := p.Tile, p.Tile.M, p.Tile.T()
	needH := (tilesY-1)*m + T
	needW := (tilesX-1)*m + T
	ext := in
	if needH > in.Shape.H || needW > in.Shape.W {
		ext = tensor.NewQ(tensor.Shape{N: in.Shape.N, C: in.Shape.C, H: needH, W: needW}, in.Fmt)
		for n := 0; n < in.Shape.N; n++ {
			for c := 0; c < in.Shape.C; c++ {
				for y := 0; y < in.Shape.H; y++ {
					src := in.Shape.Index(n, c, y, 0)
					dst := ext.Shape.Index(n, c, y, 0)
					copy(ext.Data[dst:dst+in.Shape.W], in.Data[src:src+in.Shape.W])
				}
			}
		}
	}

	byTile := map[int64][]fault.Event{}
	for _, ev := range events {
		nt := p.tileOfEvent(ev, ntTotal)
		byTile[nt] = append(byTile[nt], ev)
	}

	acc := make([]int64, outShape.Elems())
	t2 := T * T
	d := make([]int64, t2)
	v := make([]int64, p.InC*t2)
	scratch := make([]int64, t2)
	msum := make([]int64, t2)
	y := make([]int64, m*m)

	for n := 0; n < in.Shape.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				nt := (int64(n)*int64(tilesY)+int64(ty))*int64(tilesX) + int64(tx)
				if evs, ok := byTile[nt]; ok {
					p.replayTile(ext, acc, outShape, n, ty, tx, nt, ntTotal, evs)
					continue
				}
				// Fast path: input transform per channel.
				for c := 0; c < p.InC; c++ {
					for i := 0; i < T; i++ {
						base := ext.Shape.Index(n, c, ty*m+i, tx*m)
						for j := 0; j < T; j++ {
							d[i*T+j] = int64(ext.Data[base+j])
						}
					}
					matTransform(t.BT, T, T, d, v[c*t2:(c+1)*t2], scratch)
				}
				// Hadamard + channel accumulation + output transform.
				for o := 0; o < p.OutC; o++ {
					uBase := o * p.InC * t2
					for i := 0; i < t2; i++ {
						msum[i] = int64(p.U[uBase+i]) * v[i]
					}
					for c := 1; c < p.InC; c++ {
						ub := uBase + c*t2
						vb := c * t2
						for i := 0; i < t2; i++ {
							msum[i] += int64(p.U[ub+i]) * v[vb+i]
						}
					}
					matTransform(t.AT, m, T, msum, y, scratch)
					for i := 0; i < m; i++ {
						oy := ty*m + i
						if oy >= outShape.H {
							continue
						}
						rowBase := outShape.Index(n, o, oy, 0)
						for j := 0; j < m; j++ {
							ox := tx*m + j
							if ox >= outShape.W {
								continue
							}
							acc[rowBase+ox] = y[i*m+j]
						}
					}
				}
			}
		}
	}
	return acc, outShape
}
