package winograd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/tensor"
)

// Layer is a complete winograd convolution layer. For the canonical 3x3
// stride-1 case it wraps a single Params; for larger kernels or strides it
// applies the decomposable winograd method (DWM): the kernel is split by
// stride residue class and into 3x3 blocks, every block becomes a stride-1
// 3x3 winograd convolution over a gathered (subsampled + shifted) view of the
// input, and the partial results are summed in the accumulator domain before
// a single requantization — so the decomposition is lossless, matching the
// paper's claim that winograd processing incurs no accuracy penalty even for
// large kernels and strides.
//
// Event routing: per op class, unit censuses are concatenated in unit order;
// additions gain a final summation segment ordered (output element, step)
// with units-1 partial-sum adds followed by one bias add when present.
type Layer struct {
	Tile   *Tile
	Stride int
	Pad    int
	KH, KW int
	InC    int
	OutC   int
	BiasF  []float64
	OutFmt fixed.Format
	WFrac  int

	units []unit
}

type unit struct {
	p      *Params
	ry, rx int // stride residue of this sub-grid
	sy, sx int // block shift inside the sub-grid, in sub-grid pixels
}

// unitGeom is the weight-free description of one DWM sub-convolution.
type unitGeom struct {
	ry, rx, by, bx int
}

// unitGeoms enumerates the DWM decomposition of a (kh x kw, stride) kernel
// into r x r stride-1 blocks: one entry per (stride residue, block) pair.
func unitGeoms(kh, kw, stride, r int) []unitGeom {
	var out []unitGeom
	for ry := 0; ry < stride; ry++ {
		subKH := (kh - ry + stride - 1) / stride
		if subKH <= 0 {
			continue
		}
		for rx := 0; rx < stride; rx++ {
			subKW := (kw - rx + stride - 1) / stride
			if subKW <= 0 {
				continue
			}
			for by := 0; by < (subKH+r-1)/r; by++ {
				for bx := 0; bx < (subKW+r-1)/r; bx++ {
					out = append(out, unitGeom{ry: ry, rx: rx, by: by, bx: bx})
				}
			}
		}
	}
	return out
}

// CensusFor computes a full winograd layer's op census (DWM units plus the
// summation segment) from geometry alone, without materializing weights.
func CensusFor(in tensor.Shape, outC, kh, kw, stride, pad int, bias bool, t *Tile) fault.Census {
	oh := (in.H+2*pad-kh)/stride + 1
	ow := (in.W+2*pad-kw)/stride + 1
	uin := tensor.Shape{N: in.N, C: in.C, H: oh + t.R - 1, W: ow + t.R - 1}
	units := unitGeoms(kh, kw, stride, t.R)
	var c fault.Census
	for range units {
		c = c.AddCensus(coreCensus(t, uin, outC))
	}
	perOut := int64(len(units) - 1)
	if bias {
		perOut++
	}
	c.Add += int64(in.N) * int64(outC) * int64(oh) * int64(ow) * perOut
	return c
}

// NewLayer builds a winograd layer for an arbitrary odd or even square (or
// rectangular) kernel with any stride >= 1.
func NewLayer(w *tensor.Tensor, bias []float64, stride, pad int, t *Tile, wFmt, outFmt fixed.Format) *Layer {
	if stride < 1 {
		panic("winograd: stride must be >= 1")
	}
	if pad < 0 {
		panic("winograd: negative padding")
	}
	outC, inC := w.Shape.N, w.Shape.C
	if bias != nil && len(bias) != outC {
		panic(fmt.Sprintf("winograd: bias length %d != out channels %d", len(bias), outC))
	}
	l := &Layer{
		Tile:   t,
		Stride: stride,
		Pad:    pad,
		KH:     w.Shape.H,
		KW:     w.Shape.W,
		InC:    inC,
		OutC:   outC,
		BiasF:  bias,
		OutFmt: outFmt,
		WFrac:  wFmt.Frac,
	}
	r := t.R
	for _, ug := range unitGeoms(l.KH, l.KW, stride, r) {
		sub := tensor.New(tensor.Shape{N: outC, C: inC, H: r, W: r})
		for o := 0; o < outC; o++ {
			for c := 0; c < inC; c++ {
				for u := 0; u < r; u++ {
					ky := stride*(ug.by*r+u) + ug.ry
					if ky >= l.KH {
						continue
					}
					for vv := 0; vv < r; vv++ {
						kx := stride*(ug.bx*r+vv) + ug.rx
						if kx >= l.KW {
							continue
						}
						sub.Set(o, c, u, vv, w.At(o, c, ky, kx))
					}
				}
			}
		}
		l.units = append(l.units, unit{
			p:  NewParams(sub, t, wFmt),
			ry: ug.ry, rx: ug.rx,
			sy: ug.by * r, sx: ug.bx * r,
		})
	}
	return l
}

// OutShape returns the layer's output shape.
func (l *Layer) OutShape(in tensor.Shape) tensor.Shape {
	oh := (in.H+2*l.Pad-l.KH)/l.Stride + 1
	ow := (in.W+2*l.Pad-l.KW)/l.Stride + 1
	return tensor.Shape{N: in.N, C: l.OutC, H: oh, W: ow}
}

// unitInShape is the gathered input extent each unit convolves over.
func (l *Layer) unitInShape(in tensor.Shape) tensor.Shape {
	out := l.OutShape(in)
	return tensor.Shape{N: in.N, C: in.C, H: out.H + l.Tile.R - 1, W: out.W + l.Tile.R - 1}
}

// Census returns exact op counts: all unit censuses plus the accumulator
// summation segment.
func (l *Layer) Census(in tensor.Shape) fault.Census {
	uin := l.unitInShape(in)
	var c fault.Census
	for _, u := range l.units {
		c = c.AddCensus(u.p.Census(uin))
	}
	out := l.OutShape(in)
	perOut := int64(len(l.units) - 1)
	if l.BiasF != nil {
		perOut++
	}
	c.Add += int64(out.Elems()) * perOut
	return c
}

// sumAddsPerOut returns the summation-segment adds per output element.
func (l *Layer) sumAddsPerOut() int64 {
	n := int64(len(l.units) - 1)
	if l.BiasF != nil {
		n++
	}
	return n
}

// gather materializes the unit's input view: subsample by stride at residue
// (ry,rx), shift by (sy,sx) sub-grid pixels, with virtual zero padding.
func (l *Layer) gather(in *tensor.QTensor, u unit, uin tensor.Shape) *tensor.QTensor {
	g := tensor.NewQ(uin, in.Fmt)
	for n := 0; n < uin.N; n++ {
		for c := 0; c < uin.C; c++ {
			for i := 0; i < uin.H; i++ {
				yIn := l.Stride*(i+u.sy) + u.ry - l.Pad
				if yIn < 0 || yIn >= in.Shape.H {
					continue
				}
				dst := uin.Index(n, c, i, 0)
				for j := 0; j < uin.W; j++ {
					xIn := l.Stride*(j+u.sx) + u.rx - l.Pad
					if xIn < 0 || xIn >= in.Shape.W {
						continue
					}
					g.Data[dst+j] = in.At(n, c, yIn, xIn)
				}
			}
		}
	}
	return g
}

// Forward computes the fault-free layer.
func (l *Layer) Forward(in *tensor.QTensor) *tensor.QTensor {
	return l.ForwardFaulty(in, nil)
}

// ForwardFaulty computes the layer with fault events applied bit-exactly.
func (l *Layer) ForwardFaulty(in *tensor.QTensor, events []fault.Event) *tensor.QTensor {
	if in.Shape.C != l.InC {
		panic(fmt.Sprintf("winograd: input channels %d != %d", in.Shape.C, l.InC))
	}
	uin := l.unitInShape(in.Shape)
	outShape := l.OutShape(in.Shape)

	// Route events to units / summation segment.
	unitEvents := make([][]fault.Event, len(l.units))
	var sumEvents map[int64][]fault.Event
	if len(events) > 0 {
		var mulSpans, addSpans []int64
		for _, u := range l.units {
			c := u.p.Census(uin)
			mulSpans = append(mulSpans, c.Mul)
			addSpans = append(addSpans, c.Add)
		}
		sumEvents = map[int64][]fault.Event{}
		for _, ev := range events {
			spans := addSpans
			if ev.Class == fault.OpMul {
				spans = mulSpans
			}
			op := ev.Op
			routed := false
			for i, span := range spans {
				if op < span {
					rebased := ev
					rebased.Op = op
					unitEvents[i] = append(unitEvents[i], rebased)
					routed = true
					break
				}
				op -= span
			}
			if !routed {
				if ev.Class != fault.OpAdd {
					panic(fmt.Sprintf("winograd: mul event index %d beyond census", ev.Op))
				}
				rebased := ev
				rebased.Op = op
				sumEvents[op/l.sumAddsPerOut()] = append(sumEvents[op/l.sumAddsPerOut()], rebased)
			}
		}
	}

	// Run units and sum in the accumulator domain.
	acc := make([]int64, outShape.Elems())
	shift := in.Fmt.Frac + l.WFrac + l.Tile.FracExtra - l.OutFmt.Frac
	biasScale := float64(int64(1) << uint(in.Fmt.Frac+l.WFrac+l.Tile.FracExtra))
	perOut := l.sumAddsPerOut()

	for ui, u := range l.units {
		g := l.gather(in, u, uin)
		ua, us := u.p.ForwardAcc(g, unitEvents[ui])
		if us != outShape {
			panic(fmt.Sprintf("winograd: unit output %v != layer output %v", us, outShape))
		}
		if ui == 0 {
			copy(acc, ua)
			continue
		}
		step := int64(ui - 1)
		for i := range acc {
			evs := sumEvents[int64(i)]
			acc[i] = applyAdd(acc[i], ua[i], filterStep(evs, int64(i)*perOut+step))
		}
	}
	if l.BiasF != nil {
		step := int64(len(l.units) - 1)
		outs := outShape.H * outShape.W
		for i := range acc {
			oc := (i / outs) % outShape.C
			b := l.BiasF[oc] * biasScale
			var bi int64
			if b >= 0 {
				bi = int64(b + 0.5)
			} else {
				bi = int64(b - 0.5)
			}
			evs := sumEvents[int64(i)]
			acc[i] = applyAdd(acc[i], bi, filterStep(evs, int64(i)*perOut+step))
		}
	}

	out := tensor.NewQ(outShape, l.OutFmt)
	for i, a := range acc {
		out.Data[i] = l.OutFmt.RequantizeShift(a, shift)
	}
	return out
}

// filterStep selects the events whose absolute summation index equals step.
func filterStep(evs []fault.Event, step int64) []fault.Event {
	if len(evs) == 0 {
		return nil
	}
	var out []fault.Event
	for _, ev := range evs {
		if ev.Op == step {
			out = append(out, ev)
		}
	}
	return out
}

// Units reports how many 3x3 winograd sub-convolutions the DWM decomposition
// produced (1 for the native 3x3 stride-1 case).
func (l *Layer) Units() int { return len(l.units) }
