package winograd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// Layer is a complete winograd convolution layer. For the canonical 3x3
// stride-1 case it wraps a single Params; for larger kernels or strides it
// applies the decomposable winograd method (DWM): the kernel is split by
// stride residue class and into 3x3 blocks, every block becomes a stride-1
// 3x3 winograd convolution over a gathered (subsampled + shifted) view of the
// input, and the partial results are summed in the accumulator domain before
// a single requantization — so the decomposition is lossless, matching the
// paper's claim that winograd processing incurs no accuracy penalty even for
// large kernels and strides.
//
// Event routing: per op class, unit censuses are concatenated in unit order;
// additions gain a final summation segment ordered (output element, step)
// with units-1 partial-sum adds followed by one bias add when present.
type Layer struct {
	Tile   *Tile
	Stride int
	Pad    int
	KH, KW int
	InC    int
	OutC   int
	BiasF  []float64
	OutFmt fixed.Format
	WFrac  int

	units []unit
}

type unit struct {
	p      *Params
	ry, rx int // stride residue of this sub-grid
	sy, sx int // block shift inside the sub-grid, in sub-grid pixels
}

// unitGeom is the weight-free description of one DWM sub-convolution.
type unitGeom struct {
	ry, rx, by, bx int
}

// unitGeoms enumerates the DWM decomposition of a (kh x kw, stride) kernel
// into r x r stride-1 blocks: one entry per (stride residue, block) pair.
func unitGeoms(kh, kw, stride, r int) []unitGeom {
	var out []unitGeom
	for ry := 0; ry < stride; ry++ {
		subKH := (kh - ry + stride - 1) / stride
		if subKH <= 0 {
			continue
		}
		for rx := 0; rx < stride; rx++ {
			subKW := (kw - rx + stride - 1) / stride
			if subKW <= 0 {
				continue
			}
			for by := 0; by < (subKH+r-1)/r; by++ {
				for bx := 0; bx < (subKW+r-1)/r; bx++ {
					out = append(out, unitGeom{ry: ry, rx: rx, by: by, bx: bx})
				}
			}
		}
	}
	return out
}

// NumUnits reports how many stride-1 RxR sub-convolutions the DWM
// decomposition of a (kh x kw, stride) kernel produces, from geometry alone.
// It is the unit count Layer.Units() observes after construction, shared
// with the systolic cost model and the hwfault schedule mapping.
func NumUnits(kh, kw, stride, r int) int { return len(unitGeoms(kh, kw, stride, r)) }

// CensusFor computes a full winograd layer's op census (DWM units plus the
// summation segment) from geometry alone, without materializing weights.
func CensusFor(in tensor.Shape, outC, kh, kw, stride, pad int, bias bool, t *Tile) fault.Census {
	oh := (in.H+2*pad-kh)/stride + 1
	ow := (in.W+2*pad-kw)/stride + 1
	uin := tensor.Shape{N: in.N, C: in.C, H: oh + t.R - 1, W: ow + t.R - 1}
	units := unitGeoms(kh, kw, stride, t.R)
	var c fault.Census
	for range units {
		c = c.AddCensus(coreCensus(t, uin, outC))
	}
	perOut := int64(len(units) - 1)
	if bias {
		perOut++
	}
	c.Add += int64(in.N) * int64(outC) * int64(oh) * int64(ow) * perOut
	return c
}

// NewLayer builds a winograd layer for an arbitrary odd or even square (or
// rectangular) kernel with any stride >= 1.
func NewLayer(w *tensor.Tensor, bias []float64, stride, pad int, t *Tile, wFmt, outFmt fixed.Format) *Layer {
	if stride < 1 {
		panic("winograd: stride must be >= 1")
	}
	if pad < 0 {
		panic("winograd: negative padding")
	}
	outC, inC := w.Shape.N, w.Shape.C
	if bias != nil && len(bias) != outC {
		panic(fmt.Sprintf("winograd: bias length %d != out channels %d", len(bias), outC))
	}
	l := &Layer{
		Tile:   t,
		Stride: stride,
		Pad:    pad,
		KH:     w.Shape.H,
		KW:     w.Shape.W,
		InC:    inC,
		OutC:   outC,
		BiasF:  bias,
		OutFmt: outFmt,
		WFrac:  wFmt.Frac,
	}
	r := t.R
	for _, ug := range unitGeoms(l.KH, l.KW, stride, r) {
		sub := tensor.New(tensor.Shape{N: outC, C: inC, H: r, W: r})
		for o := 0; o < outC; o++ {
			for c := 0; c < inC; c++ {
				for u := 0; u < r; u++ {
					ky := stride*(ug.by*r+u) + ug.ry
					if ky >= l.KH {
						continue
					}
					for vv := 0; vv < r; vv++ {
						kx := stride*(ug.bx*r+vv) + ug.rx
						if kx >= l.KW {
							continue
						}
						sub.Set(o, c, u, vv, w.At(o, c, ky, kx))
					}
				}
			}
		}
		l.units = append(l.units, unit{
			p:  NewParams(sub, t, wFmt),
			ry: ug.ry, rx: ug.rx,
			sy: ug.by * r, sx: ug.bx * r,
		})
	}
	return l
}

// OutShape returns the layer's output shape.
func (l *Layer) OutShape(in tensor.Shape) tensor.Shape {
	oh := (in.H+2*l.Pad-l.KH)/l.Stride + 1
	ow := (in.W+2*l.Pad-l.KW)/l.Stride + 1
	return tensor.Shape{N: in.N, C: l.OutC, H: oh, W: ow}
}

// unitInShape is the gathered input extent each unit convolves over.
func (l *Layer) unitInShape(in tensor.Shape) tensor.Shape {
	out := l.OutShape(in)
	return tensor.Shape{N: in.N, C: in.C, H: out.H + l.Tile.R - 1, W: out.W + l.Tile.R - 1}
}

// Census returns exact op counts: all unit censuses plus the accumulator
// summation segment.
func (l *Layer) Census(in tensor.Shape) fault.Census {
	uin := l.unitInShape(in)
	var c fault.Census
	for _, u := range l.units {
		c = c.AddCensus(u.p.Census(uin))
	}
	out := l.OutShape(in)
	perOut := int64(len(l.units) - 1)
	if l.BiasF != nil {
		perOut++
	}
	c.Add += int64(out.Elems()) * perOut
	return c
}

// sumAddsPerOut returns the summation-segment adds per output element.
func (l *Layer) sumAddsPerOut() int64 {
	n := int64(len(l.units) - 1)
	if l.BiasF != nil {
		n++
	}
	return n
}

// Scratch is the reusable buffer arena of one Layer's forward passes: the
// per-unit gathered input views, the shared core scratch of the DWM units,
// the summation accumulator, the accumulator-domain bias vector and the
// recycled output tensor. The zero value is ready to use; a Scratch belongs
// to one (Layer, goroutine) pair and makes steady-state fault-free passes
// allocation-free. See DESIGN.md, memory model.
type Scratch struct {
	// Backend selects the compute backend for the fault-free tile paths;
	// nil means the process default (kernel.Default). Backends are
	// bit-identical by contract, and fault replay ignores this entirely.
	Backend kernel.Backend

	core    coreScratch       // shared by the units (identical geometry)
	gather  []*tensor.QTensor // per-unit gathered input views
	acc     []int64           // summation-domain accumulator
	bias    []int64           // accumulator-scale bias, cached per input fmt
	biasFmt fixed.Format      // input format the cached bias was scaled for
	biasOK  bool              // bias cache valid
	out     *tensor.QTensor   // recycled requantized output
	unitEvs [][]fault.Event   // per-unit routed events (event rounds only)
	spans   [2][]int64        // per-unit census spans by op class
}

// gather materializes the unit's input view into g: subsample by stride at
// residue (ry,rx), shift by (sy,sx) sub-grid pixels, with virtual zero
// padding. The set of written positions depends on geometry alone, so a
// recycled g whose skipped positions are still zero from allocation stays
// correct across passes.
func (l *Layer) gather(in *tensor.QTensor, u unit, uin tensor.Shape, g *tensor.QTensor) *tensor.QTensor {
	inH, inW := in.Shape.H, in.Shape.W
	for n := 0; n < uin.N; n++ {
		for c := 0; c < uin.C; c++ {
			inChan := (n*uin.C + c) * inH * inW
			for i := 0; i < uin.H; i++ {
				yIn := l.Stride*(i+u.sy) + u.ry - l.Pad
				if yIn < 0 || yIn >= inH {
					continue
				}
				dst := uin.Index(n, c, i, 0)
				inRow := inChan + yIn*inW
				if l.Stride == 1 {
					// xIn = j + off is contiguous: copy the valid segment.
					off := u.sx + u.rx - l.Pad
					j0, j1 := 0, uin.W
					if off < 0 {
						j0 = -off
					}
					if j1 > inW-off {
						j1 = inW - off
					}
					if j0 < j1 {
						copy(g.Data[dst+j0:dst+j1], in.Data[inRow+j0+off:inRow+j1+off])
					}
					continue
				}
				for j := 0; j < uin.W; j++ {
					xIn := l.Stride*(j+u.sx) + u.rx - l.Pad
					if xIn < 0 || xIn >= inW {
						continue
					}
					g.Data[dst+j] = in.Data[inRow+xIn]
				}
			}
		}
	}
	return g
}

// Forward computes the fault-free layer.
func (l *Layer) Forward(in *tensor.QTensor) *tensor.QTensor {
	return l.ForwardFaulty(in, nil)
}

// ForwardFaulty computes the layer with fault events applied bit-exactly,
// allocating fresh buffers. Hot paths use ForwardFaultyCtx with a reusable
// Scratch.
func (l *Layer) ForwardFaulty(in *tensor.QTensor, events []fault.Event) *tensor.QTensor {
	return l.ForwardFaultyCtx(&Scratch{}, in, events)
}

// accumBias returns the bias vector scaled to the accumulator domain,
// cached in sc per input format (the scale depends only on in.Fmt.Frac,
// which is constant across the rounds of a campaign).
func (l *Layer) accumBias(sc *Scratch, inFmt fixed.Format) []int64 {
	if l.BiasF == nil {
		return nil
	}
	if sc.biasOK && sc.biasFmt == inFmt {
		return sc.bias
	}
	biasScale := float64(int64(1) << uint(inFmt.Frac+l.WFrac+l.Tile.FracExtra))
	if cap(sc.bias) < len(l.BiasF) {
		sc.bias = make([]int64, len(l.BiasF))
	}
	sc.bias = sc.bias[:len(l.BiasF)]
	for oc, b := range l.BiasF {
		s := b * biasScale
		if s >= 0 {
			sc.bias[oc] = int64(s + 0.5)
		} else {
			sc.bias[oc] = int64(s - 0.5)
		}
	}
	sc.biasFmt = inFmt
	sc.biasOK = true
	return sc.bias
}

// routeEvents splits the layer's events into per-unit slices (rebased to the
// unit's own op indexing) and the summation-segment map. The per-unit slices
// recycle sc.unitEvs; the map is allocated only on event rounds.
func (l *Layer) routeEvents(sc *Scratch, uin tensor.Shape, events []fault.Event) ([][]fault.Event, map[int64][]fault.Event) {
	if len(events) == 0 {
		return nil, nil
	}
	if len(sc.unitEvs) != len(l.units) {
		sc.unitEvs = make([][]fault.Event, len(l.units))
	}
	for i := range sc.unitEvs {
		sc.unitEvs[i] = sc.unitEvs[i][:0]
	}
	mulSpans := i64(&sc.spans[0], len(l.units))
	addSpans := i64(&sc.spans[1], len(l.units))
	for i, u := range l.units {
		c := u.p.Census(uin)
		mulSpans[i] = c.Mul
		addSpans[i] = c.Add
	}
	sumEvents := map[int64][]fault.Event{}
	for _, ev := range events {
		spans := addSpans
		if ev.Class == fault.OpMul {
			spans = mulSpans
		}
		op := ev.Op
		routed := false
		for i, span := range spans {
			if op < span {
				rebased := ev
				rebased.Op = op
				sc.unitEvs[i] = append(sc.unitEvs[i], rebased)
				routed = true
				break
			}
			op -= span
		}
		if !routed {
			if ev.Class != fault.OpAdd {
				panic(fmt.Sprintf("winograd: mul event index %d beyond census", ev.Op))
			}
			rebased := ev
			rebased.Op = op
			sumEvents[op/l.sumAddsPerOut()] = append(sumEvents[op/l.sumAddsPerOut()], rebased)
		}
	}
	return sc.unitEvs, sumEvents
}

// ForwardFaultyCtx computes the layer with fault events applied bit-exactly,
// drawing every buffer from sc. Results are bit-identical to ForwardFaulty;
// the returned tensor aliases sc and is valid until the next call with the
// same scratch.
func (l *Layer) ForwardFaultyCtx(sc *Scratch, in *tensor.QTensor, events []fault.Event) *tensor.QTensor {
	if sc == nil {
		sc = &Scratch{}
	}
	if in.Shape.C != l.InC {
		panic(fmt.Sprintf("winograd: input channels %d != %d", in.Shape.C, l.InC))
	}
	uin := l.unitInShape(in.Shape)
	outShape := l.OutShape(in.Shape)
	bk := sc.Backend
	if bk == nil {
		bk = kernel.Default()
	}

	unitEvents, sumEvents := l.routeEvents(sc, uin, events)

	// Run units and sum in the accumulator domain.
	acc := i64(&sc.acc, outShape.Elems())
	shift := in.Fmt.Frac + l.WFrac + l.Tile.FracExtra - l.OutFmt.Frac
	perOut := l.sumAddsPerOut()
	if len(sc.gather) != len(l.units) {
		sc.gather = make([]*tensor.QTensor, len(l.units))
	}

	for ui, u := range l.units {
		if sc.gather[ui] == nil || sc.gather[ui].Shape != uin || sc.gather[ui].Fmt != in.Fmt {
			sc.gather[ui] = tensor.NewQ(uin, in.Fmt)
		}
		g := l.gather(in, u, uin, sc.gather[ui])
		var uevs []fault.Event
		if unitEvents != nil {
			uevs = unitEvents[ui]
		}
		ua, us := u.p.forwardAcc(&sc.core, bk, g, uevs)
		if us != outShape {
			panic(fmt.Sprintf("winograd: unit output %v != layer output %v", us, outShape))
		}
		if ui == 0 {
			copy(acc, ua)
			continue
		}
		if sumEvents == nil {
			for i, a := range ua {
				acc[i] += a
			}
			continue
		}
		step := int64(ui - 1)
		for i := range acc {
			evs := sumEvents[int64(i)]
			acc[i] = applyAdd(acc[i], ua[i], filterStep(evs, int64(i)*perOut+step))
		}
	}
	if bias := l.accumBias(sc, in.Fmt); bias != nil {
		outs := outShape.H * outShape.W
		if sumEvents == nil {
			i := 0
			for n := 0; n < outShape.N; n++ {
				for oc := 0; oc < outShape.C; oc++ {
					b := bias[oc]
					for e := 0; e < outs; e++ {
						acc[i] += b
						i++
					}
				}
			}
		} else {
			step := int64(len(l.units) - 1)
			for i := range acc {
				oc := (i / outs) % outShape.C
				evs := sumEvents[int64(i)]
				acc[i] = applyAdd(acc[i], bias[oc], filterStep(evs, int64(i)*perOut+step))
			}
		}
	}

	if sc.out == nil || sc.out.Shape != outShape || sc.out.Fmt != l.OutFmt {
		sc.out = tensor.NewQ(outShape, l.OutFmt)
	}
	out := sc.out
	for i, a := range acc {
		out.Data[i] = l.OutFmt.RequantizeShift(a, shift)
	}
	return out
}

// filterStep selects the events whose absolute summation index equals step.
func filterStep(evs []fault.Event, step int64) []fault.Event {
	if len(evs) == 0 {
		return nil
	}
	var out []fault.Event
	for _, ev := range evs {
		if ev.Op == step {
			out = append(out, ev)
		}
	}
	return out
}

// Units reports how many 3x3 winograd sub-convolutions the DWM decomposition
// produced (1 for the native 3x3 stride-1 case).
func (l *Layer) Units() int { return len(l.units) }
