package winograd

import (
	"fmt"

	"repro/internal/tensor"
)

// TransformFilter computes the 2D filter transform U = G g Gᵀ for one RxR
// kernel, returning a TxT matrix. Used offline for weight preparation and by
// the float reference path.
func TransformFilter(t *Tile, g []float64) []float64 {
	T := t.T()
	if len(g) != t.R*t.R {
		panic(fmt.Sprintf("winograd: kernel size %d != %dx%d", len(g), t.R, t.R))
	}
	tmp := make([]float64, T*t.R) // G·g, T x R
	for r := 0; r < T; r++ {
		for c := 0; c < t.R; c++ {
			var acc float64
			for k := 0; k < t.R; k++ {
				acc += t.G[r][k] * g[k*t.R+c]
			}
			tmp[r*t.R+c] = acc
		}
	}
	u := make([]float64, T*T) // (G·g)·Gᵀ
	for r := 0; r < T; r++ {
		for c := 0; c < T; c++ {
			var acc float64
			for k := 0; k < t.R; k++ {
				acc += tmp[r*t.R+k] * t.G[c][k]
			}
			u[r*T+c] = acc
		}
	}
	return u
}

// ForwardFloat computes a stride-1 winograd convolution in float64, the
// mathematical reference the quantized engine is validated against. Weight
// shape is {outC, inC, R, R}; output spatial size is H+2p-R+1.
func ForwardFloat(in, w *tensor.Tensor, bias []float64, pad int, t *Tile) *tensor.Tensor {
	if w.Shape.H != t.R || w.Shape.W != t.R {
		panic(fmt.Sprintf("winograd: weight %dx%d does not match tile %s", w.Shape.H, w.Shape.W, t.Name))
	}
	if in.Shape.C != w.Shape.C {
		panic("winograd: channel mismatch")
	}
	T, m := t.T(), t.M
	oh := in.Shape.H + 2*pad - t.R + 1
	ow := in.Shape.W + 2*pad - t.R + 1
	tilesY := (oh + m - 1) / m
	tilesX := (ow + m - 1) / m

	// Extended padding so every tile reads a full TxT window.
	needH := (tilesY-1)*m + T
	needW := (tilesX-1)*m + T
	ext := tensor.New(tensor.Shape{N: in.Shape.N, C: in.Shape.C, H: needH, W: needW})
	for n := 0; n < in.Shape.N; n++ {
		for c := 0; c < in.Shape.C; c++ {
			for y := 0; y < in.Shape.H; y++ {
				for x := 0; x < in.Shape.W; x++ {
					ext.Set(n, c, y+pad, x+pad, in.At(n, c, y, x))
				}
			}
		}
	}

	// Offline filter transforms.
	outC, inC := w.Shape.N, w.Shape.C
	u := make([][]float64, outC*inC)
	for o := 0; o < outC; o++ {
		for c := 0; c < inC; c++ {
			g := make([]float64, t.R*t.R)
			for ky := 0; ky < t.R; ky++ {
				for kx := 0; kx < t.R; kx++ {
					g[ky*t.R+kx] = w.At(o, c, ky, kx)
				}
			}
			u[o*inC+c] = TransformFilter(t, g)
		}
	}

	out := tensor.New(tensor.Shape{N: in.Shape.N, C: outC, H: oh, W: ow})
	btF, atF := toFloat(t.BT), toFloat(t.AT)
	d := make([]float64, T*T)
	v := make([]float64, inC*T*T)
	tmp := make([]float64, T*T)
	msum := make([]float64, T*T)
	y := make([]float64, m*m)

	for n := 0; n < in.Shape.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				for c := 0; c < inC; c++ {
					for i := 0; i < T; i++ {
						for j := 0; j < T; j++ {
							d[i*T+j] = ext.At(n, c, ty*m+i, tx*m+j)
						}
					}
					matTransformF(btF, T, T, d, v[c*T*T:(c+1)*T*T], tmp)
				}
				for o := 0; o < outC; o++ {
					for i := range msum {
						msum[i] = 0
					}
					for c := 0; c < inC; c++ {
						uoc := u[o*inC+c]
						vc := v[c*T*T:]
						for i := 0; i < T*T; i++ {
							msum[i] += uoc[i] * vc[i]
						}
					}
					matTransformF(atF, m, T, msum, y, tmp)
					var b float64
					if bias != nil {
						b = bias[o]
					}
					for i := 0; i < m; i++ {
						oy := ty*m + i
						if oy >= oh {
							continue
						}
						for j := 0; j < m; j++ {
							ox := tx*m + j
							if ox >= ow {
								continue
							}
							out.Set(n, o, oy, ox, y[i*m+j]+b)
						}
					}
				}
			}
		}
	}
	return out
}

// matTransformF is the float twin of matTransform: out = mat·in·matᵀ with
// mat rows x T and in T x T.
func matTransformF(mat [][]float64, rows, t int, in, out, scratch []float64) {
	for r := 0; r < rows; r++ {
		for col := 0; col < t; col++ {
			var acc float64
			for k := 0; k < t; k++ {
				if c := mat[r][k]; c != 0 {
					acc += c * in[k*t+col]
				}
			}
			scratch[r*t+col] = acc
		}
	}
	for r := 0; r < rows; r++ {
		for c2 := 0; c2 < rows; c2++ {
			var acc float64
			for k := 0; k < t; k++ {
				if c := mat[c2][k]; c != 0 {
					acc += c * scratch[r*t+k]
				}
			}
			out[r*rows+c2] = acc
		}
	}
}

func toFloat(m [][]int64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = float64(v)
		}
	}
	return out
}
