package winograd

import (
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/tensor"
)

// Replay shares the result-flip marker with the conv package: events sampled
// under ResultFlip semantics carry the top bit of Operand set (see
// conv.MarkResultFlip; campaigns mark events once, engines only read it).
const resultFlipMark = 0x80

func isResultFlip(ev fault.Event) bool { return ev.Operand&resultFlipMark != 0 }

// applyAdd performs one census-counted addition acc+term with any fault
// events for this step applied: operand flips before the add, result flips
// after, all in the W-bit datapath register model (see fault.SurfaceBits).
func applyAdd(acc, term int64, evs []fault.Event) int64 {
	for _, ev := range evs {
		if isResultFlip(ev) {
			continue
		}
		if ev.Operand == 0 {
			acc = fixed.FlipBit(acc, uint(ev.Bit))
		} else {
			term = fixed.FlipBit(term, uint(ev.Bit))
		}
	}
	acc += term
	for _, ev := range evs {
		if isResultFlip(ev) {
			acc = fixed.FlipBit(acc, uint(ev.Bit))
		}
	}
	return acc
}

// matTransformReplay is the scalar twin of matTransform that walks the adds
// in census order, consuming steps from evs (keyed by absolute add index).
// step is the absolute index of the next add; the final value is returned.
func matTransformReplay(mat [][]int64, rows, t int, in, out []int64, evs map[int64][]fault.Event, step int64) int64 {
	scratch := make([]int64, rows*t)
	for r := 0; r < rows; r++ {
		row := mat[r]
		for col := 0; col < t; col++ {
			var acc int64
			first := true
			for k := 0; k < t; k++ {
				c := row[k]
				if c == 0 {
					continue
				}
				term := c * in[k*t+col]
				if first {
					acc = term
					first = false
					continue
				}
				acc = applyAdd(acc, term, evs[step])
				step++
			}
			scratch[r*t+col] = acc
		}
	}
	for r := 0; r < rows; r++ {
		for c2 := 0; c2 < rows; c2++ {
			row := mat[c2]
			var acc int64
			first := true
			for k := 0; k < t; k++ {
				c := row[k]
				if c == 0 {
					continue
				}
				term := c * scratch[r*t+k]
				if first {
					acc = term
					first = false
					continue
				}
				acc = applyAdd(acc, term, evs[step])
				step++
			}
			out[r*rows+c2] = acc
		}
	}
	return step
}

// replayTile recomputes one tile in census op order with its fault events
// applied, writing accumulator-domain outputs.
func (p *Params) replayTile(ext *tensor.QTensor, acc []int64, outShape tensor.Shape, n, ty, tx int, nt, ntTotal int64, evs []fault.Event) {
	t, m, T := p.Tile, p.Tile.M, p.Tile.T()
	t2 := T * T
	itPer, caPer, otPer := p.segments()
	itTotal := ntTotal * itPer
	caTotal := ntTotal * caPer
	mulPerTile := int64(p.OutC) * int64(p.InC) * int64(t2)

	// Partition events into per-segment maps keyed by tile-local index.
	mulEvs := map[int64][]fault.Event{}
	itEvs := map[int64][]fault.Event{}
	caEvs := map[int64][]fault.Event{}
	otEvs := map[int64][]fault.Event{}
	for _, ev := range evs {
		if ev.Class == fault.OpMul {
			mulEvs[ev.Op-nt*mulPerTile] = append(mulEvs[ev.Op-nt*mulPerTile], ev)
			continue
		}
		switch {
		case ev.Op < itTotal:
			local := ev.Op - nt*itPer
			itEvs[local] = append(itEvs[local], ev)
		case ev.Op < itTotal+caTotal:
			local := ev.Op - itTotal - nt*caPer
			caEvs[local] = append(caEvs[local], ev)
		default:
			local := ev.Op - itTotal - caTotal - nt*otPer
			otEvs[local] = append(otEvs[local], ev)
		}
	}

	// Input transform with IT faults, channel-major census order.
	d := make([]int64, t2)
	v := make([]int64, p.InC*t2)
	for c := 0; c < p.InC; c++ {
		for i := 0; i < T; i++ {
			base := ext.Shape.Index(n, c, ty*m+i, tx*m)
			for j := 0; j < T; j++ {
				d[i*T+j] = int64(ext.Data[base+j])
			}
		}
		matTransformReplay(t.BT, T, T, d, v[c*t2:(c+1)*t2], itEvs, int64(c)*int64(t.InputAdds()))
	}

	msum := make([]int64, t2)
	y := make([]int64, m*m)
	for o := 0; o < p.OutC; o++ {
		uBase := o * p.InC * t2
		mulBase := int64(o) * int64(p.InC) * int64(t2)
		caBase := int64(o) * int64(p.InC-1) * int64(t2)
		for i := 0; i < t2; i++ {
			msum[i] = p.hadamard(uBase, 0, i, t2, v, mulEvs[mulBase+int64(i)])
		}
		for c := 1; c < p.InC; c++ {
			for i := 0; i < t2; i++ {
				prod := p.hadamard(uBase, c, i, t2, v, mulEvs[mulBase+int64(c*t2+i)])
				msum[i] = applyAdd(msum[i], prod, caEvs[caBase+int64((c-1)*t2+i)])
			}
		}
		matTransformReplay(t.AT, m, T, msum, y, otEvs, int64(o)*int64(t.OutputAdds()))
		for i := 0; i < m; i++ {
			oy := ty*m + i
			if oy >= outShape.H {
				continue
			}
			rowBase := outShape.Index(n, o, oy, 0)
			for j := 0; j < m; j++ {
				ox := tx*m + j
				if ox >= outShape.W {
					continue
				}
				acc[rowBase+ox] = y[i*m+j]
			}
		}
	}
}

// hadamard computes one transform-domain product U[oc,c,pos] * V[c,pos] with
// any fault events applied: operand 0 is the transformed activation, operand
// 1 the transformed weight, both modelled as WBits-wide registers; result
// flips hit the 2·WBits product register.
func (p *Params) hadamard(uBase, c, pos, t2 int, v []int64, evs []fault.Event) int64 {
	a := v[c*t2+pos]
	b := int64(p.U[uBase+c*t2+pos])
	for _, ev := range evs {
		if isResultFlip(ev) {
			continue
		}
		if ev.Operand == 0 {
			a = fixed.FlipBit(a, uint(ev.Bit))
		} else {
			b = fixed.FlipBit(b, uint(ev.Bit))
		}
	}
	prod := a * b
	for _, ev := range evs {
		if isResultFlip(ev) {
			prod = fixed.FlipBit(prod, uint(ev.Bit))
		}
	}
	return prod
}
