// Package winograd implements winograd convolution over quantized tensors —
// the paper's subject — including the F(2x2,3x3) and F(4x4,3x3) tile
// algorithms, an exact operation census, bit-exact operation-level fault
// replay, and the DWM (decomposable winograd method, Huang et al. AAAI'20)
// decomposition that extends winograd to larger kernels and strides without
// accuracy penalty, as the paper relies on.
//
// The 2D algorithm is Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A (paper Eq. 1). G carries
// the only fractional coefficients; since the filter transform happens once,
// offline, transformed weights are stored with extra fractional bits and the
// runtime arithmetic is pure integer: input transform and output transform
// are shift-and-add networks (counted as additions, as in the winograd
// literature), and the only multiplications are the T²-per-tile Hadamard
// products — the 2.25x (F2) / 4x (F4) multiplication reduction that the
// paper's fault-tolerance argument builds on.
package winograd

// Tile describes one F(MxM, RxR) winograd algorithm via its constant
// transform matrices. BT and AT are integer matrices (their entries are
// implemented in hardware as shift-adds); G is fractional and used only for
// the offline filter transform.
type Tile struct {
	Name string
	M    int // output tile edge
	R    int // kernel edge (3 for both standard tiles)
	// FracExtra is the number of extra fractional bits given to transformed
	// weights so the G-transform's fractions survive quantization (2 bits
	// make F2 exact; 6 bits keep F4's 1/24-multiples to within 1/3 LSB).
	FracExtra int
	BT        [][]int64   // T x T input transform (transposed B)
	G         [][]float64 // T x R filter transform
	AT        [][]int64   // M x T output transform (transposed A)

	// inXform/outXform are straight-line specializations of matTransform for
	// this tile's constant BT/AT (shift-add networks, exactly as hardware
	// implements them). int64 addition and multiplication form a commutative
	// ring, so their reassociated sums are bit-identical to the generic
	// loops'. nil falls back to matTransform; the fault-replay path always
	// uses the generic census-ordered walk.
	inXform  func(d, out []int64)
	outXform func(msum, out []int64)
	// inXformRows is inXform fused with the tile load: it reads the TxT
	// window directly from the quantized activation rows at src (row pitch
	// stride), skipping the int64 staging buffer.
	inXformRows func(src []int32, stride int, out []int64)
}

// T returns the input tile edge M + R - 1.
func (t *Tile) T() int { return t.M + t.R - 1 }

// rowAdds counts Σ_r (nnz(row r) - 1): the additions needed to apply the
// matrix to one length-T vector.
func rowAdds(m [][]int64) int {
	total := 0
	for _, row := range m {
		nnz := 0
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
		if nnz > 1 {
			total += nnz - 1
		}
	}
	return total
}

// InputAdds returns the additions of one 2D input transform Bᵀ d B
// (both 1D passes over all rows/columns of the TxT tile).
func (t *Tile) InputAdds() int { return 2 * t.T() * rowAdds(t.BT) }

// OutputAdds returns the additions of one 2D output transform Aᵀ M A:
// T columns through Aᵀ, then M rows through Aᵀ again.
func (t *Tile) OutputAdds() int { return (t.T() + t.M) * rowAdds(t.AT) }

// MulsPerTileChannel returns the Hadamard multiplications per (tile, input
// channel, output channel): T².
func (t *Tile) MulsPerTileChannel() int { return t.T() * t.T() }

// F2 is F(2x2, 3x3): 16 multiplications produce a 2x2 output tile that
// direct convolution computes with 36, the 2.25x reduction quoted throughout
// the paper. Transform matrices follow Lavin & Gray (CVPR'16).
var F2 = &Tile{
	Name:      "F(2x2,3x3)",
	M:         2,
	R:         3,
	FracExtra: 2,
	BT: [][]int64{
		{1, 0, -1, 0},
		{0, 1, 1, 0},
		{0, -1, 1, 0},
		{0, 1, 0, -1},
	},
	G: [][]float64{
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.5, -0.5, 0.5},
		{0, 0, 1},
	},
	AT: [][]int64{
		{1, 1, 1, 0},
		{0, 1, -1, -1},
	},
}

// F4 is F(4x4, 3x3): 36 multiplications replace the 144 of direct
// convolution (4x reduction) at the price of larger transform constants,
// which amplify transform-domain errors — the tile-size ablation quantifies
// that trade-off.
var F4 = &Tile{
	Name:      "F(4x4,3x3)",
	M:         4,
	R:         3,
	FracExtra: 6,
	BT: [][]int64{
		{4, 0, -5, 0, 1, 0},
		{0, -4, -4, 1, 1, 0},
		{0, 4, -4, -1, 1, 0},
		{0, -2, -1, 2, 1, 0},
		{0, 2, -1, -2, 1, 0},
		{0, 4, 0, -5, 0, 1},
	},
	G: [][]float64{
		{1.0 / 4, 0, 0},
		{-1.0 / 6, -1.0 / 6, -1.0 / 6},
		{-1.0 / 6, 1.0 / 6, -1.0 / 6},
		{1.0 / 24, 1.0 / 12, 1.0 / 6},
		{1.0 / 24, -1.0 / 12, 1.0 / 6},
		{0, 0, 1},
	},
	AT: [][]int64{
		{1, 1, 1, 1, 1, 0},
		{0, 1, -1, 2, -2, 0},
		{0, 1, 1, 4, 4, 0},
		{0, 1, -1, 8, -8, 1},
	},
}

// Tiles lists the supported tile algorithms.
var Tiles = []*Tile{F2, F4}

func init() {
	F2.inXform = f2InputTransform
	F2.outXform = f2OutputTransform
	F2.inXformRows = f2InputTransformRows
	F4.inXform = f4InputTransform
	F4.outXform = f4OutputTransform
	F4.inXformRows = f4InputTransformRows
}

// f2InputTransform computes out = BT·d·BTᵀ for F(2x2,3x3): per 1D pass
// r0 = x0-x2, r1 = x1+x2, r2 = x2-x1, r3 = x1-x3.
func f2InputTransform(d, out []int64) {
	var s [16]int64
	_ = d[15]
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[c], d[4+c], d[8+c], d[12+c]
		s[c] = d0 - d2
		s[4+c] = d1 + d2
		s[8+c] = d2 - d1
		s[12+c] = d1 - d3
	}
	_ = out[15]
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := s[r*4], s[r*4+1], s[r*4+2], s[r*4+3]
		out[r*4] = s0 - s2
		out[r*4+1] = s1 + s2
		out[r*4+2] = s2 - s1
		out[r*4+3] = s1 - s3
	}
}

// f2InputTransformRows is f2InputTransform reading the 4x4 window straight
// from four activation rows of pitch stride.
func f2InputTransformRows(src []int32, stride int, out []int64) {
	var s [16]int64
	r0 := src[0:4:4]
	r1 := src[stride : stride+4 : stride+4]
	r2 := src[2*stride : 2*stride+4 : 2*stride+4]
	r3 := src[3*stride : 3*stride+4 : 3*stride+4]
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := int64(r0[c]), int64(r1[c]), int64(r2[c]), int64(r3[c])
		s[c] = d0 - d2
		s[4+c] = d1 + d2
		s[8+c] = d2 - d1
		s[12+c] = d1 - d3
	}
	_ = out[15]
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := s[r*4], s[r*4+1], s[r*4+2], s[r*4+3]
		out[r*4] = s0 - s2
		out[r*4+1] = s1 + s2
		out[r*4+2] = s2 - s1
		out[r*4+3] = s1 - s3
	}
}

// f2OutputTransform computes out = AT·msum·ATᵀ for F(2x2,3x3): per 1D pass
// r0 = x0+x1+x2, r1 = x1-x2-x3.
func f2OutputTransform(msum, out []int64) {
	var s [8]int64
	_ = msum[15]
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := msum[c], msum[4+c], msum[8+c], msum[12+c]
		s[c] = m0 + m1 + m2
		s[4+c] = m1 - m2 - m3
	}
	_ = out[3]
	for r := 0; r < 2; r++ {
		s0, s1, s2, s3 := s[r*4], s[r*4+1], s[r*4+2], s[r*4+3]
		out[r*2] = s0 + s1 + s2
		out[r*2+1] = s1 - s2 - s3
	}
}

// f4InputTransform is the F(4x4,3x3) input transform: per 1D pass
//
//	r0 = 4x0 - 5x2 + x4
//	r1 = -4x1 - 4x2 + x3 + x4
//	r2 = 4x1 - 4x2 - x3 + x4
//	r3 = -2x1 - x2 + 2x3 + x4
//	r4 = 2x1 - x2 - 2x3 + x4
//	r5 = 4x1 - 5x3 + x5
func f4InputTransform(d, out []int64) {
	var s [36]int64
	_ = d[35]
	for c := 0; c < 6; c++ {
		d0, d1, d2, d3, d4, d5 := d[c], d[6+c], d[12+c], d[18+c], d[24+c], d[30+c]
		s[c] = 4*d0 - 5*d2 + d4
		s[6+c] = -4*d1 - 4*d2 + d3 + d4
		s[12+c] = 4*d1 - 4*d2 - d3 + d4
		s[18+c] = -2*d1 - d2 + 2*d3 + d4
		s[24+c] = 2*d1 - d2 - 2*d3 + d4
		s[30+c] = 4*d1 - 5*d3 + d5
	}
	_ = out[35]
	for r := 0; r < 6; r++ {
		s0, s1, s2, s3, s4, s5 := s[r*6], s[r*6+1], s[r*6+2], s[r*6+3], s[r*6+4], s[r*6+5]
		out[r*6] = 4*s0 - 5*s2 + s4
		out[r*6+1] = -4*s1 - 4*s2 + s3 + s4
		out[r*6+2] = 4*s1 - 4*s2 - s3 + s4
		out[r*6+3] = -2*s1 - s2 + 2*s3 + s4
		out[r*6+4] = 2*s1 - s2 - 2*s3 + s4
		out[r*6+5] = 4*s1 - 5*s3 + s5
	}
}

// f4InputTransformRows is f4InputTransform reading the 6x6 window straight
// from six activation rows of pitch stride.
func f4InputTransformRows(src []int32, stride int, out []int64) {
	var s [36]int64
	for c := 0; c < 6; c++ {
		d0 := int64(src[c])
		d1 := int64(src[stride+c])
		d2 := int64(src[2*stride+c])
		d3 := int64(src[3*stride+c])
		d4 := int64(src[4*stride+c])
		d5 := int64(src[5*stride+c])
		s[c] = 4*d0 - 5*d2 + d4
		s[6+c] = -4*d1 - 4*d2 + d3 + d4
		s[12+c] = 4*d1 - 4*d2 - d3 + d4
		s[18+c] = -2*d1 - d2 + 2*d3 + d4
		s[24+c] = 2*d1 - d2 - 2*d3 + d4
		s[30+c] = 4*d1 - 5*d3 + d5
	}
	_ = out[35]
	for r := 0; r < 6; r++ {
		s0, s1, s2, s3, s4, s5 := s[r*6], s[r*6+1], s[r*6+2], s[r*6+3], s[r*6+4], s[r*6+5]
		out[r*6] = 4*s0 - 5*s2 + s4
		out[r*6+1] = -4*s1 - 4*s2 + s3 + s4
		out[r*6+2] = 4*s1 - 4*s2 - s3 + s4
		out[r*6+3] = -2*s1 - s2 + 2*s3 + s4
		out[r*6+4] = 2*s1 - s2 - 2*s3 + s4
		out[r*6+5] = 4*s1 - 5*s3 + s5
	}
}

// f4OutputTransform is the F(4x4,3x3) output transform: per 1D pass
//
//	r0 = x0 + x1 + x2 + x3 + x4
//	r1 = x1 - x2 + 2x3 - 2x4
//	r2 = x1 + x2 + 4x3 + 4x4
//	r3 = x1 - x2 + 8x3 - 8x4 + x5
func f4OutputTransform(msum, out []int64) {
	var s [24]int64
	_ = msum[35]
	for c := 0; c < 6; c++ {
		m0, m1, m2, m3, m4, m5 := msum[c], msum[6+c], msum[12+c], msum[18+c], msum[24+c], msum[30+c]
		s[c] = m0 + m1 + m2 + m3 + m4
		s[6+c] = m1 - m2 + 2*m3 - 2*m4
		s[12+c] = m1 + m2 + 4*m3 + 4*m4
		s[18+c] = m1 - m2 + 8*m3 - 8*m4 + m5
	}
	_ = out[15]
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3, s4, s5 := s[r*6], s[r*6+1], s[r*6+2], s[r*6+3], s[r*6+4], s[r*6+5]
		out[r*4] = s0 + s1 + s2 + s3 + s4
		out[r*4+1] = s1 - s2 + 2*s3 - 2*s4
		out[r*4+2] = s1 + s2 + 4*s3 + 4*s4
		out[r*4+3] = s1 - s2 + 8*s3 - 8*s4 + s5
	}
}

// matTransform computes out = mat · in · matᵀ for a TxT input, where mat is
// rows x T; out is rows x rows. It is the shared fast path for both the
// input transform (mat = BT) and output transform (mat = AT).
func matTransform(mat [][]int64, rows, t int, in, out, scratch []int64) {
	// scratch holds the rows x T intermediate mat·in.
	for r := 0; r < rows; r++ {
		row := mat[r]
		for col := 0; col < t; col++ {
			var acc int64
			for k := 0; k < t; k++ {
				if c := row[k]; c != 0 {
					acc += c * in[k*t+col]
				}
			}
			scratch[r*t+col] = acc
		}
	}
	// out[r][c2] = Σ_k scratch[r][k] * mat[c2][k]
	for r := 0; r < rows; r++ {
		for c2 := 0; c2 < rows; c2++ {
			row := mat[c2]
			var acc int64
			for k := 0; k < t; k++ {
				if c := row[k]; c != 0 {
					acc += c * scratch[r*t+k]
				}
			}
			out[r*rows+c2] = acc
		}
	}
}
