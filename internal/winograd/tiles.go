// Package winograd implements winograd convolution over quantized tensors —
// the paper's subject — including the F(2x2,3x3) and F(4x4,3x3) tile
// algorithms, an exact operation census, bit-exact operation-level fault
// replay, and the DWM (decomposable winograd method, Huang et al. AAAI'20)
// decomposition that extends winograd to larger kernels and strides without
// accuracy penalty, as the paper relies on.
//
// The 2D algorithm is Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A (paper Eq. 1). G carries
// the only fractional coefficients; since the filter transform happens once,
// offline, transformed weights are stored with extra fractional bits and the
// runtime arithmetic is pure integer: input transform and output transform
// are shift-and-add networks (counted as additions, as in the winograd
// literature), and the only multiplications are the T²-per-tile Hadamard
// products — the 2.25x (F2) / 4x (F4) multiplication reduction that the
// paper's fault-tolerance argument builds on.
package winograd

import "repro/internal/kernel"

// Tile describes one F(MxM, RxR) winograd algorithm via its constant
// transform matrices. BT and AT are integer matrices (their entries are
// implemented in hardware as shift-adds); G is fractional and used only for
// the offline filter transform.
type Tile struct {
	Name string
	M    int // output tile edge
	R    int // kernel edge (3 for both standard tiles)
	// FracExtra is the number of extra fractional bits given to transformed
	// weights so the G-transform's fractions survive quantization (2 bits
	// make F2 exact; 6 bits keep F4's 1/24-multiples to within 1/3 LSB).
	FracExtra int
	BT        [][]int64   // T x T input transform (transposed B)
	G         [][]float64 // T x R filter transform
	AT        [][]int64   // M x T output transform (transposed A)
}

// kernelTile maps the tile onto the compute-backend transform entry points
// (internal/kernel): straight-line specializations of matTransform for the
// constant BT/AT (shift-add networks, exactly as hardware implements them).
// int64 addition and multiplication form a commutative ring, so their
// reassociated sums are bit-identical to the generic loops'. Unmapped tiles
// fall back to matTransform; the fault-replay path always uses the generic
// census-ordered walk regardless.
func (t *Tile) kernelTile() (kernel.Tile, bool) {
	switch t {
	case F2:
		return kernel.F2, true
	case F4:
		return kernel.F4, true
	}
	return 0, false
}

// T returns the input tile edge M + R - 1.
func (t *Tile) T() int { return t.M + t.R - 1 }

// rowAdds counts Σ_r (nnz(row r) - 1): the additions needed to apply the
// matrix to one length-T vector.
func rowAdds(m [][]int64) int {
	total := 0
	for _, row := range m {
		nnz := 0
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
		if nnz > 1 {
			total += nnz - 1
		}
	}
	return total
}

// InputAdds returns the additions of one 2D input transform Bᵀ d B
// (both 1D passes over all rows/columns of the TxT tile).
func (t *Tile) InputAdds() int { return 2 * t.T() * rowAdds(t.BT) }

// OutputAdds returns the additions of one 2D output transform Aᵀ M A:
// T columns through Aᵀ, then M rows through Aᵀ again.
func (t *Tile) OutputAdds() int { return (t.T() + t.M) * rowAdds(t.AT) }

// MulsPerTileChannel returns the Hadamard multiplications per (tile, input
// channel, output channel): T².
func (t *Tile) MulsPerTileChannel() int { return t.T() * t.T() }

// F2 is F(2x2, 3x3): 16 multiplications produce a 2x2 output tile that
// direct convolution computes with 36, the 2.25x reduction quoted throughout
// the paper. Transform matrices follow Lavin & Gray (CVPR'16).
var F2 = &Tile{
	Name:      "F(2x2,3x3)",
	M:         2,
	R:         3,
	FracExtra: 2,
	BT: [][]int64{
		{1, 0, -1, 0},
		{0, 1, 1, 0},
		{0, -1, 1, 0},
		{0, 1, 0, -1},
	},
	G: [][]float64{
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.5, -0.5, 0.5},
		{0, 0, 1},
	},
	AT: [][]int64{
		{1, 1, 1, 0},
		{0, 1, -1, -1},
	},
}

// F4 is F(4x4, 3x3): 36 multiplications replace the 144 of direct
// convolution (4x reduction) at the price of larger transform constants,
// which amplify transform-domain errors — the tile-size ablation quantifies
// that trade-off.
var F4 = &Tile{
	Name:      "F(4x4,3x3)",
	M:         4,
	R:         3,
	FracExtra: 6,
	BT: [][]int64{
		{4, 0, -5, 0, 1, 0},
		{0, -4, -4, 1, 1, 0},
		{0, 4, -4, -1, 1, 0},
		{0, -2, -1, 2, 1, 0},
		{0, 2, -1, -2, 1, 0},
		{0, 4, 0, -5, 0, 1},
	},
	G: [][]float64{
		{1.0 / 4, 0, 0},
		{-1.0 / 6, -1.0 / 6, -1.0 / 6},
		{-1.0 / 6, 1.0 / 6, -1.0 / 6},
		{1.0 / 24, 1.0 / 12, 1.0 / 6},
		{1.0 / 24, -1.0 / 12, 1.0 / 6},
		{0, 0, 1},
	},
	AT: [][]int64{
		{1, 1, 1, 1, 1, 0},
		{0, 1, -1, 2, -2, 0},
		{0, 1, 1, 4, 4, 0},
		{0, 1, -1, 8, -8, 1},
	},
}

// Tiles lists the supported tile algorithms.
var Tiles = []*Tile{F2, F4}

// matTransform computes out = mat · in · matᵀ for a TxT input, where mat is
// rows x T; out is rows x rows. It is the shared fast path for both the
// input transform (mat = BT) and output transform (mat = AT).
func matTransform(mat [][]int64, rows, t int, in, out, scratch []int64) {
	// scratch holds the rows x T intermediate mat·in.
	for r := 0; r < rows; r++ {
		row := mat[r]
		for col := 0; col < t; col++ {
			var acc int64
			for k := 0; k < t; k++ {
				if c := row[k]; c != 0 {
					acc += c * in[k*t+col]
				}
			}
			scratch[r*t+col] = acc
		}
	}
	// out[r][c2] = Σ_k scratch[r][k] * mat[c2][k]
	for r := 0; r < rows; r++ {
		for c2 := 0; c2 < rows; c2++ {
			row := mat[c2]
			var acc int64
			for k := 0; k < t; k++ {
				if c := row[k]; c != 0 {
					acc += c * scratch[r*t+k]
				}
			}
			out[r*rows+c2] = acc
		}
	}
}
