package winograd

import (
	"fmt"
	"testing"

	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// mkLayer builds a small winograd layer and a quantized input for replay tests.
func mkLayer(seed uint64, tile *Tile, k, stride, pad int) (*Layer, *tensor.QTensor) {
	r := rng.New(seed)
	w := tensor.New(tensor.Shape{N: 3, C: 2, H: k, W: k}).Random(r, 0.4)
	bias := []float64{0.2, -0.1, 0.05}
	l := NewLayer(w, bias, stride, pad, tile, fixed.Int16, fixed.Int16)
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 10, W: 10}).Random(r, 1)
	return l, tensor.Quantize(in, fixed.Int16)
}

func TestForwardFaultyNilEqualsForward(t *testing.T) {
	l, in := mkLayer(1, F2, 3, 1, 1)
	a, b := l.Forward(in), l.ForwardFaulty(in, nil)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("nil events changed output")
		}
	}
}

// TestDuplicateEventCancels is the central replay-correctness property: a
// bit flip applied twice at the same site restores the golden value, for
// every op class and semantics, across the entire census index space. If
// event routing mapped the two copies to different sites they would not
// cancel, so this exercises the full index decode logic of core, replay and
// DWM summation.
func TestDuplicateEventCancels(t *testing.T) {
	configs := []struct {
		name           string
		tile           *Tile
		k, stride, pad int
	}{
		{"F2-3x3-s1", F2, 3, 1, 1},
		{"F4-3x3-s1", F4, 3, 1, 1},
		{"F2-5x5-s1", F2, 5, 1, 2},
		{"F2-7x7-s2", F2, 7, 2, 3},
		{"F2-3x3-s2", F2, 3, 2, 1},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			l, in := mkLayer(2, cfg.tile, cfg.k, cfg.stride, cfg.pad)
			golden := l.Forward(in)
			census := l.Census(in.Shape)
			r := rng.New(77)
			for trial := 0; trial < 150; trial++ {
				cl := fault.OpMul
				span := census.Mul
				if trial%2 == 1 {
					cl = fault.OpAdd
					span = census.Add
				}
				ev := fault.Event{
					Class:   cl,
					Op:      r.Int63n(span),
					Bit:     uint8(r.Intn(16)),
					Operand: uint8(r.Intn(2)),
				}
				if trial%3 == 0 {
					// Exercise result-flip semantics too.
					ev.Operand = 0
					evs := []fault.Event{ev, ev}
					conv.MarkResultFlip(evs)
					checkCancels(t, l, in, golden, evs, trial)
					continue
				}
				checkCancels(t, l, in, golden, []fault.Event{ev, ev}, trial)
			}
		})
	}
}

func checkCancels(t *testing.T, l *Layer, in, golden *tensor.QTensor, evs []fault.Event, trial int) {
	t.Helper()
	out := l.ForwardFaulty(in, evs)
	for i := range out.Data {
		if out.Data[i] != golden.Data[i] {
			t.Fatalf("trial %d: duplicated event %+v did not cancel (idx %d: %d vs %d)",
				trial, evs[0], i, out.Data[i], golden.Data[i])
		}
	}
}

func TestSingleEventsUsuallyPerturb(t *testing.T) {
	l, in := mkLayer(3, F2, 3, 1, 1)
	golden := l.Forward(in)
	census := l.Census(in.Shape)
	r := rng.New(5)
	perturbed := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		ev := fault.Event{
			Class: fault.OpMul,
			Op:    r.Int63n(census.Mul),
			Bit:   uint8(8 + r.Intn(8)), // high operand bits
		}
		out := l.ForwardFaulty(in, []fault.Event{ev})
		for i := range out.Data {
			if out.Data[i] != golden.Data[i] {
				perturbed++
				break
			}
		}
	}
	if perturbed < trials/4 {
		t.Errorf("only %d/%d high-bit mul faults perturbed the output", perturbed, trials)
	}
}

func TestMulFaultBlastRadius(t *testing.T) {
	// A Hadamard-product fault touches exactly one (tile, oc): at most M²
	// output elements.
	l, in := mkLayer(4, F2, 3, 1, 1)
	golden := l.Forward(in)
	census := l.Census(in.Shape)
	r := rng.New(6)
	for trial := 0; trial < 120; trial++ {
		ev := fault.Event{Class: fault.OpMul, Op: r.Int63n(census.Mul), Bit: uint8(r.Intn(16)), Operand: uint8(r.Intn(2))}
		out := l.ForwardFaulty(in, []fault.Event{ev})
		diffs := 0
		for i := range out.Data {
			if out.Data[i] != golden.Data[i] {
				diffs++
			}
		}
		if diffs > F2.M*F2.M {
			t.Fatalf("mul fault changed %d outputs (> M²=%d)", diffs, F2.M*F2.M)
		}
	}
}

func TestInputTransformFaultSharedAcrossOutputChannels(t *testing.T) {
	// An input-transform fault corrupts V, which all output channels of the
	// tile consume: the blast radius may span several channels (that is the
	// winograd-specific propagation the operation-level platform captures),
	// but never beyond one tile's M²·OC elements.
	l, in := mkLayer(5, F2, 3, 1, 1)
	golden := l.Forward(in)
	r := rng.New(7)
	itSpan := int64(l.units[0].p.InC) * int64(F2.InputAdds())
	uin := l.unitInShape(in.Shape)
	out := l.OutShape(in.Shape)
	_ = uin
	tilesPerImage := itSpan // placeholder to satisfy the linter in case of drift
	_ = tilesPerImage
	maxBlast := F2.M * F2.M * l.OutC
	sawMultiChannel := false
	for trial := 0; trial < 200; trial++ {
		// Sample inside the IT segment of the (single) unit.
		ntTotal := int64(in.Shape.N) * int64((out.H+1)/2) * int64((out.W+1)/2)
		op := r.Int63n(ntTotal * itSpan)
		ev := fault.Event{Class: fault.OpAdd, Op: op, Bit: uint8(20 + r.Intn(8))}
		faulty := l.ForwardFaulty(in, []fault.Event{ev})
		channels := map[int]bool{}
		diffs := 0
		for i := range faulty.Data {
			if faulty.Data[i] != golden.Data[i] {
				diffs++
				channels[(i/(out.H*out.W))%out.C] = true
			}
		}
		if diffs > maxBlast {
			t.Fatalf("IT fault changed %d outputs (> %d)", diffs, maxBlast)
		}
		if len(channels) > 1 {
			sawMultiChannel = true
		}
	}
	if !sawMultiChannel {
		t.Error("no IT fault ever spanned multiple output channels; V sharing seems broken")
	}
}

func TestHadamardResultFlipPredictedDelta(t *testing.T) {
	// For C=1, OC=1 the accumulator-domain effect of a result flip on the
	// Hadamard product at position (i,j) is analytically A^T E A where E has
	// the product delta at (i,j).
	r := rng.New(8)
	w := tensor.New(tensor.Shape{N: 1, C: 1, H: 3, W: 3}).Random(r, 0.4)
	p := NewParams(w, F2, fixed.Int16)
	inF := tensor.New(tensor.Shape{N: 1, C: 1, H: 4, W: 4}).Random(r, 1)
	in := tensor.Quantize(inF, fixed.Int16)

	goldenAcc, outShape := p.ForwardAcc(in, nil)
	T := F2.T()
	for pos := 0; pos < T*T; pos++ {
		for _, bit := range []uint8{0, 7, 15, 30} {
			ev := []fault.Event{{Class: fault.OpMul, Op: int64(pos), Bit: bit}}
			conv.MarkResultFlip(ev)
			faultyAcc, _ := p.ForwardAcc(in, ev)

			// Reconstruct the product to get its delta.
			d := make([]int64, T*T)
			for i := 0; i < T; i++ {
				for j := 0; j < T; j++ {
					d[i*T+j] = int64(in.At(0, 0, i, j))
				}
			}
			v := make([]int64, T*T)
			scratch := make([]int64, T*T)
			matTransform(F2.BT, T, T, d, v, scratch)
			prod := v[pos] * int64(p.U[pos])
			delta := fixed.FlipBit(prod, uint(bit)) - prod

			pi, pj := pos/T, pos%T
			for oy := 0; oy < outShape.H; oy++ {
				for ox := 0; ox < outShape.W; ox++ {
					want := goldenAcc[outShape.Index(0, 0, oy, ox)] +
						delta*F2.AT[oy][pi]*F2.AT[ox][pj]
					got := faultyAcc[outShape.Index(0, 0, oy, ox)]
					if got != want {
						t.Fatalf("pos %d bit %d out(%d,%d): got %d want %d", pos, bit, oy, ox, got, want)
					}
				}
			}
		}
	}
}

func TestLayerValidation(t *testing.T) {
	w := tensor.New(tensor.Shape{N: 2, C: 2, H: 3, W: 3})
	for name, fn := range map[string]func(){
		"stride0": func() { NewLayer(w, nil, 0, 1, F2, fixed.Int16, fixed.Int16) },
		"negPad":  func() { NewLayer(w, nil, 1, -1, F2, fixed.Int16, fixed.Int16) },
		"badBias": func() { NewLayer(w, []float64{1}, 1, 1, F2, fixed.Int16, fixed.Int16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChannelMismatchPanics(t *testing.T) {
	l, _ := mkLayer(9, F2, 3, 1, 1)
	bad := tensor.NewQ(tensor.Shape{N: 1, C: 5, H: 10, W: 10}, fixed.Int16)
	defer func() {
		if recover() == nil {
			t.Error("no panic on channel mismatch")
		}
	}()
	l.Forward(bad)
}

func TestInt8Pipeline(t *testing.T) {
	r := rng.New(10)
	w := tensor.New(tensor.Shape{N: 4, C: 3, H: 3, W: 3}).Random(r, 0.3)
	inF := tensor.New(tensor.Shape{N: 1, C: 3, H: 12, W: 12}).Random(r, 1)
	l := NewLayer(w, nil, 1, 1, F2, fixed.Int8, fixed.Int8)
	inQ := tensor.Quantize(inF, fixed.Int8)
	got := tensor.Dequantize(l.Forward(inQ))
	want := conv.ForwardFloat(inF, w, nil, 1, 1)
	// int8 is coarse; just require the outputs to correlate strongly.
	var num, da, db float64
	for i := range got.Data {
		num += got.Data[i] * want.Data[i]
		da += got.Data[i] * got.Data[i]
		db += want.Data[i] * want.Data[i]
	}
	corr := num / (sqrt(da) * sqrt(db))
	if corr < 0.95 {
		t.Errorf("int8 winograd correlation with reference = %v", corr)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

func BenchmarkWinogradF2_16x16x64(b *testing.B) {
	r := rng.New(1)
	w := tensor.New(tensor.Shape{N: 64, C: 64, H: 3, W: 3}).Random(r, 0.1)
	l := NewLayer(w, nil, 1, 1, F2, fixed.Int16, fixed.Int16)
	in := tensor.New(tensor.Shape{N: 1, C: 64, H: 16, W: 16}).Random(r, 1)
	inQ := tensor.Quantize(in, fixed.Int16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(inQ)
	}
}

func ExampleLayer_Units() {
	w := tensor.New(tensor.Shape{N: 1, C: 1, H: 7, W: 7})
	l := NewLayer(w, nil, 2, 3, F2, fixed.Int16, fixed.Int16)
	fmt.Println(l.Units())
	// Output: 9
}
