package winograd

import (
	"fmt"
	"testing"

	"repro/internal/conv"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func randT(seed uint64, s tensor.Shape, std float64) *tensor.Tensor {
	return tensor.New(s).Random(rng.New(seed), std)
}

func TestTileDerivedCounts(t *testing.T) {
	if F2.T() != 4 || F4.T() != 6 {
		t.Fatal("tile T wrong")
	}
	if F2.InputAdds() != 32 {
		t.Errorf("F2 InputAdds = %d, want 32 (Lavin)", F2.InputAdds())
	}
	if F2.OutputAdds() != 24 {
		t.Errorf("F2 OutputAdds = %d, want 24", F2.OutputAdds())
	}
	if F2.MulsPerTileChannel() != 16 || F4.MulsPerTileChannel() != 36 {
		t.Error("Hadamard mul counts wrong")
	}
	// F4: BT rows nnz = 3,4,4,4,4,3 -> rowAdds = 2+3+3+3+3+2 = 16; IT = 2*6*16.
	if F4.InputAdds() != 192 {
		t.Errorf("F4 InputAdds = %d, want 192", F4.InputAdds())
	}
	// F4: AT rows nnz = 5,4,4,6... rows: {1,1,1,1,1,0}=5, {0,1,-1,2,-2,0}=4,
	// {0,1,1,4,4,0}=4, {0,1,-1,8,-8,1}=5 -> rowAdds = 4+3+3+4 = 14; OT = (6+4)*14.
	if F4.OutputAdds() != 140 {
		t.Errorf("F4 OutputAdds = %d, want 140", F4.OutputAdds())
	}
}

func TestFloatWinogradMatchesDirect(t *testing.T) {
	for _, tile := range Tiles {
		t.Run(tile.Name, func(t *testing.T) {
			in := randT(1, tensor.Shape{N: 2, C: 3, H: 13, W: 11}, 1)
			w := randT(2, tensor.Shape{N: 4, C: 3, H: 3, W: 3}, 0.5)
			bias := []float64{0.1, -0.2, 0.3, 0}
			for _, pad := range []int{0, 1} {
				got := ForwardFloat(in, w, bias, pad, tile)
				want := conv.ForwardFloat(in, w, bias, 1, pad)
				if got.Shape != want.Shape {
					t.Fatalf("pad %d: shape %v != %v", pad, got.Shape, want.Shape)
				}
				if d := tensor.MaxAbsDiff(got, want); d > 1e-9 {
					t.Errorf("pad %d: winograd/direct diff %v", pad, d)
				}
			}
		})
	}
}

func TestTransformFilterF2Exact(t *testing.T) {
	// For F2 the filter transform of the identity-center kernel is known.
	g := []float64{0, 0, 0, 0, 1, 0, 0, 0, 0}
	u := TransformFilter(F2, g)
	// U = G g G^T with g = e22: column 2 of G outer column 2 of G:
	// Gcol2 = [0, .5, -.5, 0] -> U[i][j] = Gcol2[i]*Gcol2[j].
	want := []float64{
		0, 0, 0, 0,
		0, 0.25, -0.25, 0,
		0, -0.25, 0.25, 0,
		0, 0, 0, 0,
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("U[%d] = %v, want %v", i, u[i], want[i])
		}
	}
}

// quantized layer vs float direct reference, for various kernel/stride combos
// exercising the DWM decomposition.
func TestQuantizedLayerMatchesReference(t *testing.T) {
	cases := []struct {
		name           string
		k, stride, pad int
		units          int
	}{
		{"3x3-s1-p1", 3, 1, 1, 1},
		{"3x3-s1-p0", 3, 1, 0, 1},
		{"5x5-s1-p2", 5, 1, 2, 4},
		{"7x7-s2-p3", 7, 2, 3, 9},
		{"3x3-s2-p1", 3, 2, 1, 4},
		{"1x1-s1-p0", 1, 1, 0, 1},
		{"2x2-s2-p0", 2, 2, 0, 4},
	}
	for _, tile := range Tiles {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/%s", tile.Name, c.name), func(t *testing.T) {
				inF := randT(3, tensor.Shape{N: 1, C: 3, H: 14, W: 14}, 1)
				wF := randT(4, tensor.Shape{N: 4, C: 3, H: c.k, W: c.k}, 0.4)
				bias := []float64{0.5, -0.5, 0.25, 0}
				l := NewLayer(wF, bias, c.stride, c.pad, tile, fixed.Int16, fixed.Int16)
				if got := l.Units(); got != c.units {
					t.Fatalf("Units() = %d, want %d", got, c.units)
				}
				inQ := tensor.Quantize(inF, fixed.Int16)
				got := tensor.Dequantize(l.Forward(inQ))
				want := conv.ForwardFloat(inF, wF, bias, c.stride, c.pad)
				if got.Shape != want.Shape {
					t.Fatalf("shape %v != %v", got.Shape, want.Shape)
				}
				// F4's larger BT/AT constants amplify the transformed-weight
				// rounding error, so its tolerance is proportionally wider.
				tileFactor := 8.0
				if tile == F4 {
					tileFactor = 48.0
				}
				k := float64(3 * c.k * c.k)
				bound := k * tileFactor * fixed.Int16.Scale()
				if d := tensor.MaxAbsDiff(got, want); d > bound {
					t.Errorf("max diff %v exceeds %v", d, bound)
				}
			})
		}
	}
}

func TestWinogradVsDirectQuantizedAgree(t *testing.T) {
	// The two engines quantize independently but must agree within a few LSB:
	// this is the "lossless conversion" premise of the paper (Section 3.1).
	inF := randT(5, tensor.Shape{N: 1, C: 8, H: 16, W: 16}, 1)
	wF := randT(6, tensor.Shape{N: 8, C: 8, H: 3, W: 3}, 0.3)
	inQ := tensor.Quantize(inF, fixed.Int16)
	wg := NewLayer(wF, nil, 1, 1, F2, fixed.Int16, fixed.Int16)
	st := conv.NewParams(wF, nil, 1, 1, fixed.Int16, fixed.Int16)
	a := tensor.Dequantize(wg.Forward(inQ))
	b := tensor.Dequantize(conv.Forward(inQ, st))
	if d := tensor.MaxAbsDiff(a, b); d > 100*fixed.Int16.Scale() {
		t.Errorf("winograd and direct quantized outputs diverge: %v", d)
	}
}

func TestCensusCountsF2(t *testing.T) {
	// Single 3x3 s1 layer, C=2, OC=3, input 6x6 pad 1 -> out 6x6, tiles 3x3=9.
	w := randT(7, tensor.Shape{N: 3, C: 2, H: 3, W: 3}, 0.5)
	l := NewLayer(w, nil, 1, 1, F2, fixed.Int16, fixed.Int16)
	in := tensor.Shape{N: 1, C: 2, H: 6, W: 6}
	c := l.Census(in)
	nt := int64(9)
	wantMul := nt * 3 * 2 * 16
	if c.Mul != wantMul {
		t.Errorf("muls = %d, want %d", c.Mul, wantMul)
	}
	it := nt * 2 * 32
	ca := nt * 3 * 1 * 16
	ot := nt * 3 * 24
	if c.Add != it+ca+ot {
		t.Errorf("adds = %d, want %d", c.Add, it+ca+ot)
	}
}

func TestCensusWithBiasAndDWM(t *testing.T) {
	w := randT(8, tensor.Shape{N: 2, C: 2, H: 5, W: 5}, 0.5)
	bias := []float64{1, 2}
	l := NewLayer(w, bias, 1, 2, F2, fixed.Int16, fixed.Int16)
	in := tensor.Shape{N: 1, C: 2, H: 8, W: 8}
	out := l.OutShape(in)
	if out != (tensor.Shape{N: 1, C: 2, H: 8, W: 8}) {
		t.Fatalf("out shape %v", out)
	}
	c := l.Census(in)
	// 4 units; each unit sees a 10x10 gathered input -> out 8x8, tiles 4x4=16.
	unitIn := l.unitInShape(in)
	var want int64
	for range l.units {
		want += l.units[0].p.Census(unitIn).Mul
	}
	if c.Mul != want {
		t.Errorf("muls = %d, want %d", c.Mul, want)
	}
	// Summation adds: (4-1) partials + 1 bias per output element.
	sumAdds := int64(out.Elems()) * 4
	var unitAdds int64
	for _, u := range l.units {
		unitAdds += u.p.Census(unitIn).Add
	}
	if c.Add != unitAdds+sumAdds {
		t.Errorf("adds = %d, want %d", c.Add, unitAdds+sumAdds)
	}
}

func TestMulReductionVsDirect(t *testing.T) {
	// F2 must cut multiplications by ~2.25x on an aligned 3x3 layer.
	w := randT(9, tensor.Shape{N: 16, C: 16, H: 3, W: 3}, 0.2)
	in := tensor.Shape{N: 1, C: 16, H: 16, W: 16}
	wg := NewLayer(w, nil, 1, 1, F2, fixed.Int16, fixed.Int16)
	st := conv.NewParams(w, nil, 1, 1, fixed.Int16, fixed.Int16)
	wgC, stC := wg.Census(in), st.Census(in)
	ratio := float64(stC.Mul) / float64(wgC.Mul)
	if ratio < 2.0 || ratio > 2.5 {
		t.Errorf("mul reduction ratio = %v, want ~2.25", ratio)
	}
	// And more additions relative to its own muls.
	if wgC.Add <= wgC.Mul {
		t.Errorf("winograd should be addition-dominated: mul %d add %d", wgC.Mul, wgC.Add)
	}
	_ = stC
}

func TestCensusForMatchesLayerCensus(t *testing.T) {
	// The geometry-only census must agree exactly with the materialized
	// layer's census for every decomposition shape.
	cases := []struct{ k, stride, pad int }{
		{3, 1, 1}, {5, 1, 2}, {7, 2, 3}, {3, 2, 1}, {1, 1, 0}, {2, 2, 0},
	}
	in := tensor.Shape{N: 2, C: 3, H: 14, W: 14}
	for _, tile := range Tiles {
		for _, c := range cases {
			w := randT(11, tensor.Shape{N: 4, C: 3, H: c.k, W: c.k}, 0.3)
			for _, bias := range []bool{true, false} {
				var bs []float64
				if bias {
					bs = make([]float64, 4)
				}
				l := NewLayer(w, bs, c.stride, c.pad, tile, fixed.Int16, fixed.Int16)
				got := CensusFor(in, 4, c.k, c.k, c.stride, c.pad, bias, tile)
				want := l.Census(in)
				if got != want {
					t.Errorf("%s k%d s%d bias=%v: CensusFor %v != Census %v",
						tile.Name, c.k, c.stride, bias, got, want)
				}
			}
		}
	}
}
