package hwfault

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/systolic"
	"repro/internal/tensor"
	"repro/internal/volt"
	"repro/internal/winograd"
)

// smallArray keeps exhaustive bijection walks cheap while still exercising
// fold wraparound (reduction depths and channel counts exceed the array).
var smallArray = systolic.Array{Rows: 4, Cols: 4, VectorLanes: 4}

func shp(n, c, h, w int) tensor.Shape { return tensor.Shape{N: n, C: c, H: h, W: w} }

func schedules(t *testing.T, kind nn.EngineKind, a systolic.Array, batch int) (*models.Arch, []*LayerSchedule) {
	t.Helper()
	arch, err := models.ByName("vgg19", models.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return arch, NetworkSchedules(a, arch, kind, winograd.F2, batch)
}

// TestMulsMatchEngineCensus: the schedule's mul space must be exactly the
// engine census's — otherwise scenario events would index outside the
// replay contract. NetworkSchedules re-walks the same per-node lowering
// (engine-selection predicate included) as models.Census and nn.NewConv, so
// this is checked over the whole zoo and both engines: any divergence in
// the winograd-eligibility rule or the batch fold shows up here. The
// runtime census at batch b is the geometry census times b (every census
// term is linear in N).
func TestMulsMatchEngineCensus(t *testing.T) {
	const batch = 3
	for _, model := range []string{"vgg19", "resnet50", "densenet169", "googlenet"} {
		arch, err := models.ByName(model, models.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
			for _, tile := range []*winograd.Tile{winograd.F2, winograd.F4} {
				sched := NetworkSchedules(systolic.DNNEngine16, arch, kind, tile, batch)
				census := models.Census(arch, kind, tile)
				for i, s := range sched {
					if s == nil {
						if k := arch.Ops[i].Kind; k == "conv" || k == "fc" {
							t.Errorf("%s/%v node %d (%s) has no schedule", model, kind, i, k)
						}
						continue
					}
					if want := census[i].Mul * batch; s.Muls() != want {
						t.Errorf("%s/%v/%s node %d (%s): schedule muls %d != census %d",
							model, kind, tile.Name, i, arch.Ops[i].Name, s.Muls(), want)
					}
				}
			}
		}
	}
}

// TestScheduleBijection: over every PE, the slots enumerate distinct mul
// indices covering the whole census exactly once, and PEOf/SlotOf invert
// MulOnPE — the property every scenario generator rests on.
func TestScheduleBijection(t *testing.T) {
	cases := []struct {
		name string
		s    *LayerSchedule
	}{
		{"direct", newDirectSchedule(smallArray, shp(2, 5, 6, 6), 7, 3, 3, 1, 1)},
		{"direct-stride", newDirectSchedule(smallArray, shp(1, 3, 9, 9), 5, 5, 5, 2, 2)},
		{"fc", newDirectSchedule(smallArray, shp(3, 11, 1, 1), 6, 1, 1, 1, 0)},
		{"winograd", newWinogradSchedule(smallArray, shp(2, 5, 6, 6), 7, 3, 3, 1, 1, winograd.F2)},
		{"winograd-dwm", newWinogradSchedule(smallArray, shp(1, 3, 9, 9), 5, 5, 5, 2, 2, winograd.F2)},
	}
	for _, tc := range cases {
		seen := make(map[int64]PE, tc.s.Muls())
		var covered int64
		for r := 0; r < smallArray.Rows; r++ {
			for c := 0; c < smallArray.Cols; c++ {
				pe := PE{Row: r, Col: c}
				n := tc.s.OpsOnPE(pe)
				covered += n
				for slot := int64(0); slot < n; slot++ {
					op := tc.s.MulOnPE(pe, slot)
					if op < 0 || op >= tc.s.Muls() {
						t.Fatalf("%s: PE %v slot %d -> op %d outside [0,%d)", tc.name, pe, slot, op, tc.s.Muls())
					}
					if prev, dup := seen[op]; dup {
						t.Fatalf("%s: op %d mapped from both %v and %v", tc.name, op, prev, pe)
					}
					seen[op] = pe
					if got := tc.s.PEOf(op); got != pe {
						t.Fatalf("%s: PEOf(%d) = %v, want %v", tc.name, op, got, pe)
					}
					if got := tc.s.SlotOf(op); got != slot {
						t.Fatalf("%s: SlotOf(%d) = %d, want %d", tc.name, op, got, slot)
					}
				}
			}
		}
		if covered != tc.s.Muls() {
			t.Errorf("%s: PEs cover %d ops, census has %d", tc.name, covered, tc.s.Muls())
		}
	}
}

// TestRegionCoverage: region + complement coverages partition the census.
func TestRegionCoverage(t *testing.T) {
	s := newWinogradSchedule(smallArray, shp(2, 6, 8, 8), 9, 3, 3, 1, 1, winograd.F2)
	rg := Region{Row0: 1, Col0: 0, Row1: 2, Col1: 1}
	in := coverage(s, rg.Contains)
	out := coverage(s, func(pe PE) bool { return !rg.Contains(pe) })
	if in.total+out.total != s.Muls() {
		t.Fatalf("coverage split %d + %d != %d", in.total, out.total, s.Muls())
	}
	for slot := int64(0); slot < in.total; slot++ {
		pe, local := in.locate(slot)
		if !rg.Contains(pe) {
			t.Fatalf("region slot %d landed outside the region at %v", slot, pe)
		}
		if op := s.MulOnPE(pe, local); s.PEOf(op) != pe {
			t.Fatalf("region slot %d round-trips to PE %v", slot, s.PEOf(op))
		}
	}
}

func injection(t *testing.T, sc Scenario, kind nn.EngineKind, seed uint64) (*Injection, []*LayerSchedule) {
	t.Helper()
	_, sched := schedules(t, kind, systolic.DNNEngine16, 2)
	inj, err := NewInjection(sc, systolic.DNNEngine16, fixed.Int16, sched, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj, sched
}

// eventsOf collects one round's events across all nodes.
func eventsOf(inj *Injection, round uint64, ber, keep float64) map[int][]fault.Event {
	r := rng.New(11).Split(round)
	out := map[int][]fault.Event{}
	for li := range inj.sched {
		if evs := inj.Events(li, r, ber, keep); len(evs) > 0 {
			out[li] = evs
		}
	}
	return out
}

// TestStuckPEEvents: a stuck PE corrupts exactly its scheduled ops, at the
// pinned bit, identically in every round — and node order must not matter.
func TestStuckPEEvents(t *testing.T) {
	sc := Scenario{Kind: StuckPE, PE: PE{Row: 0, Col: 0}, Bit: 20}
	for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
		inj, sched := injection(t, sc, kind, 1)
		got := eventsOf(inj, 0, 1e-9, 1)
		if len(got) == 0 {
			t.Fatalf("%v: stuck PE (0,0) produced no events", kind)
		}
		var n int64
		for li, evs := range got {
			s := sched[li]
			want := s.OpsOnPE(PE{Row: 0, Col: 0})
			if int64(len(evs)) != want {
				t.Errorf("%v node %d: %d events, want %d", kind, li, len(evs), want)
			}
			n += int64(len(evs))
			for _, ev := range evs {
				if ev.Class != fault.OpMul || ev.Bit != 20 {
					t.Fatalf("%v node %d: event %+v not a bit-20 mul flip", kind, li, ev)
				}
				if pe := s.PEOf(ev.Op); pe != (PE{Row: 0, Col: 0}) {
					t.Fatalf("%v node %d: op %d maps to %v, not the stuck PE", kind, li, ev.Op, pe)
				}
			}
		}
		if want := inj.EventsPerRound(1e-9); float64(n) != want {
			t.Errorf("%v: %d events, EventsPerRound says %v", kind, n, want)
		}
		// Permanent fault: every round identical.
		again := eventsOf(inj, 7, 1e-9, 1)
		if len(again) != len(got) {
			t.Fatalf("%v: round changed the stuck event set", kind)
		}
		for li, evs := range got {
			for i, ev := range evs {
				if again[li][i] != ev {
					t.Fatalf("%v node %d: stuck events differ across rounds", kind, li)
				}
			}
		}
	}
}

// TestStuckPESampled: negative PE/bit coordinates resolve deterministically
// from the seed, and different seeds pick different elements.
func TestStuckPESampled(t *testing.T) {
	sc := Scenario{Kind: StuckPE, PE: PE{Row: -1, Col: -1}, Bit: -1}
	a, _ := injection(t, sc, nn.Direct, 5)
	b, _ := injection(t, sc, nn.Direct, 5)
	peA, bitA := a.StuckAt()
	peB, bitB := b.StuckAt()
	if peA != peB || bitA != bitB {
		t.Fatalf("same seed resolved different stuck elements: %v/%d vs %v/%d", peA, bitA, peB, bitB)
	}
	if peA.Row < 0 || peA.Row >= 16 || peA.Col < 0 || peA.Col >= 16 || bitA < 0 || bitA >= 32 {
		t.Fatalf("sampled stuck element %v bit %d out of range", peA, bitA)
	}
	differs := false
	for seed := uint64(6); seed < 16; seed++ {
		c, _ := injection(t, sc, nn.Direct, seed)
		if pe, bit := c.StuckAt(); pe != peA || bit != bitA {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("ten different seeds all resolved the same stuck element")
	}
}

// TestBurstEvents: exactly one (PE, window) per round across the whole
// network, contiguous on its PE's schedule, varying with the round.
func TestBurstEvents(t *testing.T) {
	sc := Scenario{Kind: BurstSEU, Span: 16}
	inj, sched := injection(t, sc, nn.Winograd, 3)
	rounds := map[int]bool{}
	for round := uint64(0); round < 8; round++ {
		got := eventsOf(inj, round, 1e-9, 1)
		if len(got) != 1 {
			t.Fatalf("round %d: burst hit %d nodes, want exactly 1", round, len(got))
		}
		for li, evs := range got {
			rounds[li] = true
			s := sched[li]
			if len(evs) == 0 || len(evs) > 16 {
				t.Fatalf("round %d node %d: burst size %d outside (0,16]", round, li, len(evs))
			}
			pe := s.PEOf(evs[0].Op)
			base := s.SlotOf(evs[0].Op)
			for i, ev := range evs {
				if got := s.PEOf(ev.Op); got != pe {
					t.Fatalf("round %d: burst spans PEs %v and %v", round, pe, got)
				}
				if slot := s.SlotOf(ev.Op); slot != base+int64(i) {
					t.Fatalf("round %d: burst not contiguous: slot %d at position %d (base %d)", round, slot, i, base)
				}
			}
		}
	}
	if len(rounds) < 2 {
		t.Errorf("8 rounds placed every burst in the same node %v; placement not varying", rounds)
	}
}

// TestVoltRegionEvents: region ops draw at the volt-model BER, the rest at
// the campaign BER. With a safe region voltage and zero background there are
// no events at all; with a stressed region and zero background every event
// lands inside the region.
func TestVoltRegionEvents(t *testing.T) {
	rg := Region{Row0: 0, Col0: 0, Row1: 7, Col1: 7}
	safe := Scenario{Kind: VoltRegion, Region: rg, V: volt.DNNEngine.VSafe}
	inj, _ := injection(t, safe, nn.Direct, 1)
	if got := eventsOf(inj, 0, 0, 1); len(got) != 0 {
		t.Fatalf("safe-voltage region with zero background produced events: %v", got)
	}

	hot := Scenario{Kind: VoltRegion, Region: rg, V: 0.72}
	inj, sched := injection(t, hot, nn.Direct, 1)
	got := eventsOf(inj, 0, 0, 1)
	if len(got) == 0 {
		t.Fatal("stressed region at 0.72V produced no events")
	}
	for li, evs := range got {
		for _, ev := range evs {
			if pe := sched[li].PEOf(ev.Op); !rg.Contains(pe) {
				t.Fatalf("node %d: event at %v escaped the stressed region", li, pe)
			}
		}
	}
}

// TestEventsDeterministic: same (seed, round) -> identical events for every
// scenario; protection keep == 0 silences everything.
func TestEventsDeterministic(t *testing.T) {
	scs := []Scenario{
		{Kind: StuckPE, PE: PE{Row: 2, Col: 3}, Bit: 10},
		{Kind: BurstSEU},
		{Kind: VoltRegion, Region: Region{Row1: 3, Col1: 3}, V: 0.74},
	}
	for _, sc := range scs {
		inj, _ := injection(t, sc, nn.Winograd, 9)
		a := eventsOf(inj, 4, 1e-9, 0.5)
		b := eventsOf(inj, 4, 1e-9, 0.5)
		if len(a) != len(b) {
			t.Fatalf("%v: replay changed the node set", sc.Kind)
		}
		for li, evs := range a {
			if len(b[li]) != len(evs) {
				t.Fatalf("%v node %d: replay changed the event count", sc.Kind, li)
			}
			for i := range evs {
				if evs[i] != b[li][i] {
					t.Fatalf("%v node %d: replay changed event %d", sc.Kind, li, i)
				}
			}
		}
		if got := eventsOf(inj, 4, 1e-9, 0); len(got) != 0 {
			t.Errorf("%v: fully protected round still produced events", sc.Kind)
		}
	}
}

// TestScenarioValidation pins the rejection surface.
func TestScenarioValidation(t *testing.T) {
	a := systolic.DNNEngine16
	bad := map[string]Scenario{
		"unknown kind":    {},
		"pe row high":     {Kind: StuckPE, PE: PE{Row: 16}},
		"pe col high":     {Kind: StuckPE, PE: PE{Col: 16}},
		"bit high":        {Kind: StuckPE, Bit: 32},
		"negative span":   {Kind: BurstSEU, Span: -1},
		"region inverted": {Kind: VoltRegion, Region: Region{Row0: 3, Row1: 1}, V: 0.8},
		"region outside":  {Kind: VoltRegion, Region: Region{Row1: 16, Col1: 3}, V: 0.8},
		"zero voltage":    {Kind: VoltRegion, Region: Region{Row1: 1, Col1: 1}},
		"high voltage":    {Kind: VoltRegion, Region: Region{Row1: 1, Col1: 1}, V: 1.2},
	}
	for name, sc := range bad {
		if err := sc.WithDefaults().Validate(a, fixed.Int16); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, sc)
		}
	}
	good := []Scenario{
		{Kind: StuckPE, PE: PE{Row: -1, Col: -1}, Bit: -1},
		{Kind: StuckPE, PE: PE{Row: 15, Col: 15}, Bit: 31},
		{Kind: BurstSEU},
		{Kind: VoltRegion, Region: Region{Row1: 15, Col1: 15}, V: volt.DNNEngine.VMin},
	}
	for _, sc := range good {
		if err := sc.WithDefaults().Validate(a, fixed.Int16); err != nil {
			t.Errorf("Validate rejected %+v: %v", sc, err)
		}
	}
}
