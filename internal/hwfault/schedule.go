// Package hwfault maps fault-injection campaigns onto the physical layout of
// the systolic accelerator (paper Section 4.2): instead of drawing i.i.d. bit
// flips uniformly over a layer's op census, faults are located on the PE
// array — a permanently stuck processing element, a burst of SEUs clustered
// in one (PE, cycle window), or a voltage-stressed array region with locally
// elevated BER.
//
// The bridge between the two worlds is the schedule mapping in this file: a
// deterministic bijection between each layer's flat multiplication index
// space (the contract between engine census and fault replay, see
// internal/conv and internal/winograd) and the (PE, cycle) slots of the
// weight-stationary schedule that systolic.Array.GEMM costs. Scenarios pick
// slots on the array and compile them down to ordinary fault.Event values,
// so engine replay, bit-exactness, worker-count invariance and distributed
// sharding all come for free.
//
// Only multiplications are mapped: they are the MACs executed by the PE
// array. Winograd transform additions and the accumulator chains run on the
// vector unit / output datapath in the cost model, which hardware scenarios
// model as fault-free — a scenario *replaces* the statistical sampler for
// its node, so under an active scenario no addition events are generated at
// all (the matched-intensity experiment sets AddFaultFree on its
// statistical arm for exactly this parity).
package hwfault

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// PE identifies one processing element of the array.
type PE struct {
	Row int // reduction (weight-row) dimension
	Col int // output-channel dimension
}

// Region is an inclusive rectangle of PEs.
type Region struct {
	Row0, Col0 int
	Row1, Col1 int
}

// Contains reports whether the region covers pe.
func (rg Region) Contains(pe PE) bool {
	return pe.Row >= rg.Row0 && pe.Row <= rg.Row1 && pe.Col >= rg.Col0 && pe.Col <= rg.Col1
}

// Validate checks the region against an array geometry.
func (rg Region) Validate(a systolic.Array) error {
	if rg.Row0 < 0 || rg.Col0 < 0 || rg.Row0 > rg.Row1 || rg.Col0 > rg.Col1 ||
		rg.Row1 >= a.Rows || rg.Col1 >= a.Cols {
		return fmt.Errorf("hwfault: region (%d,%d)-(%d,%d) outside %dx%d array",
			rg.Row0, rg.Col0, rg.Row1, rg.Col1, a.Rows, a.Cols)
	}
	return nil
}

// LayerSchedule is the weight-stationary schedule of one conv/FC node: a
// bijection between the node's flat multiplication index space and (PE,
// slot) pairs, where a PE's slots enumerate the MACs it executes in cycle
// order. Direct convolutions and FC layers lower to one im2col GEMM; a
// winograd node lowers to units·T² transform-domain GEMMs (one per DWM unit
// and tile position), in census order.
type LayerSchedule struct {
	arr systolic.Array
	d   *directSched
	w   *wgSched
}

// directSched is the im2col GEMM of a direct conv / FC node:
// M = batch·pixels input vectors stream through a (K x OC) weight matrix
// tiled into ceil(K/Rows)·ceil(OC/Cols) folds. The engine's mul index is
// flatOut·K + k with flatOut = ((img·OC+oc)·OH+oy)·OW+ox (see package conv).
type directSched struct {
	k   int   // reduction depth IC·KH·KW
	oc  int   // output channels (GEMM N)
	pix int   // output pixels per image, OH·OW
	m   int64 // GEMM M = batch·pix
}

// wgSched is the transform-domain GEMM family of a winograd node: per DWM
// unit and tile position one GEMM with M = nt tiles, K = inC, N = outC. The
// engine's mul index is unit·ntTotal·outC·inC·T² + ((nt·outC+oc)·inC+c)·T² +
// pos (see internal/winograd core.go).
type wgSched struct {
	units int   // DWM decomposition units
	t2    int   // tile positions T²
	inC   int   // GEMM K
	outC  int   // GEMM N
	nt    int64 // tiles per GEMM, batch included
}

// countMod returns how many x in [0, n) satisfy x mod m == r.
func countMod(n, m, r int) int64 {
	if r >= n {
		return 0
	}
	return int64((n - r + m - 1) / m)
}

// newDirectSchedule builds the schedule of a direct conv (or, with kh = kw =
// 1, an FC layer) whose input shape already includes the evaluation batch.
func newDirectSchedule(a systolic.Array, in tensor.Shape, outC, kh, kw, stride, pad int) *LayerSchedule {
	oh := (in.H+2*pad-kh)/stride + 1
	ow := (in.W+2*pad-kw)/stride + 1
	return &LayerSchedule{arr: a, d: &directSched{
		k:   in.C * kh * kw,
		oc:  outC,
		pix: oh * ow,
		m:   int64(in.N) * int64(oh) * int64(ow),
	}}
}

// newWinogradSchedule builds the schedule of a winograd conv node whose
// input shape already includes the evaluation batch.
func newWinogradSchedule(a systolic.Array, in tensor.Shape, outC, kh, kw, stride, pad int, t *winograd.Tile) *LayerSchedule {
	oh := (in.H+2*pad-kh)/stride + 1
	ow := (in.W+2*pad-kw)/stride + 1
	tilesY := (oh + t.M - 1) / t.M
	tilesX := (ow + t.M - 1) / t.M
	return &LayerSchedule{arr: a, w: &wgSched{
		units: winograd.NumUnits(kh, kw, stride, t.R),
		t2:    t.MulsPerTileChannel(),
		inC:   in.C,
		outC:  outC,
		nt:    int64(in.N) * int64(tilesY) * int64(tilesX),
	}}
}

// NetworkSchedules maps every conv/FC node of an architecture onto the
// array for the given engine kind and evaluation batch size; non-array nodes
// (pooling, activations, ...) get nil entries. The mul index space of entry
// i matches the runtime op census of node i exactly — Muls() equals the
// engine census Mul count — which is what lets scenario events replay
// bit-exactly.
func NetworkSchedules(a systolic.Array, arch *models.Arch, kind nn.EngineKind, tile *winograd.Tile, batch int) []*LayerSchedule {
	if tile == nil {
		tile = winograd.F2
	}
	if batch < 1 {
		batch = 1
	}
	shapes := models.Shapes(arch)
	out := make([]*LayerSchedule, len(arch.Ops))
	for i, d := range arch.Ops {
		in := arch.In
		if d.Inputs[0] != nn.InputNode {
			in = shapes[d.Inputs[0]]
		}
		in.N *= batch
		switch d.Kind {
		case "conv":
			if kind == nn.Winograd && d.K >= 2 {
				out[i] = newWinogradSchedule(a, in, d.OutC, d.K, d.K, d.Stride, d.Pad, tile)
			} else {
				out[i] = newDirectSchedule(a, in, d.OutC, d.K, d.K, d.Stride, d.Pad)
			}
		case "fc":
			out[i] = newDirectSchedule(a, in, d.OutC, 1, 1, 1, 0)
		}
	}
	return out
}

// Array returns the PE array geometry the schedule maps onto.
func (s *LayerSchedule) Array() systolic.Array { return s.arr }

// Muls returns the node's total multiplication count (== the engine census).
func (s *LayerSchedule) Muls() int64 {
	if s.d != nil {
		return s.d.m * int64(s.d.k) * int64(s.d.oc)
	}
	w := s.w
	return int64(w.units) * w.nt * int64(w.outC) * int64(w.inC) * int64(w.t2)
}

// OpsOnPE returns how many multiplications the schedule places on pe.
func (s *LayerSchedule) OpsOnPE(pe PE) int64 {
	if pe.Row < 0 || pe.Row >= s.arr.Rows || pe.Col < 0 || pe.Col >= s.arr.Cols {
		return 0
	}
	if s.d != nil {
		return countMod(s.d.k, s.arr.Rows, pe.Row) * countMod(s.d.oc, s.arr.Cols, pe.Col) * s.d.m
	}
	w := s.w
	return int64(w.units) * int64(w.t2) *
		countMod(w.inC, s.arr.Rows, pe.Row) * countMod(w.outC, s.arr.Cols, pe.Col) * w.nt
}

// MulOnPE returns the engine mul index of pe's slot-th multiplication, slots
// enumerating the PE's MACs in schedule (cycle) order: GEMMs in census
// order, folds within a GEMM in (reduction, output-channel) order, and the
// M input vectors streaming through each fold. It is the inverse of
// (PEOf, SlotOf) and panics outside [0, OpsOnPE(pe)).
func (s *LayerSchedule) MulOnPE(pe PE, slot int64) int64 {
	if slot < 0 || slot >= s.OpsOnPE(pe) {
		panic(fmt.Sprintf("hwfault: slot %d outside PE (%d,%d) with %d ops", slot, pe.Row, pe.Col, s.OpsOnPE(pe)))
	}
	if s.d != nil {
		d := s.d
		occ := countMod(d.oc, s.arr.Cols, pe.Col)
		perFold := occ * d.m
		fk := slot / perFold
		rem := slot % perFold
		fn := rem / d.m
		mm := rem % d.m
		k := int64(pe.Row) + fk*int64(s.arr.Rows)
		oc := int64(pe.Col) + fn*int64(s.arr.Cols)
		img := mm / int64(d.pix)
		p := mm % int64(d.pix)
		flat := (img*int64(d.oc)+oc)*int64(d.pix) + p
		return flat*int64(d.k) + k
	}
	w := s.w
	cc := countMod(w.inC, s.arr.Rows, pe.Row)
	oc2 := countMod(w.outC, s.arr.Cols, pe.Col)
	perGEMM := cc * oc2 * w.nt
	perUnit := int64(w.t2) * perGEMM
	u := slot / perUnit
	r1 := slot % perUnit
	pos := r1 / perGEMM
	r2 := r1 % perGEMM
	fk := r2 / (oc2 * w.nt)
	r3 := r2 % (oc2 * w.nt)
	fn := r3 / w.nt
	nt := r3 % w.nt
	c := int64(pe.Row) + fk*int64(s.arr.Rows)
	oc := int64(pe.Col) + fn*int64(s.arr.Cols)
	mulsPerUnit := w.nt * int64(w.outC) * int64(w.inC) * int64(w.t2)
	return u*mulsPerUnit + ((nt*int64(w.outC)+oc)*int64(w.inC)+c)*int64(w.t2) + pos
}

// PEOf returns the PE that executes the given engine mul index.
func (s *LayerSchedule) PEOf(op int64) PE {
	if op < 0 || op >= s.Muls() {
		panic(fmt.Sprintf("hwfault: mul index %d outside census %d", op, s.Muls()))
	}
	if s.d != nil {
		d := s.d
		k := int(op % int64(d.k))
		oc := int((op / int64(d.k) / int64(d.pix)) % int64(d.oc))
		return PE{Row: k % s.arr.Rows, Col: oc % s.arr.Cols}
	}
	w := s.w
	mulsPerUnit := w.nt * int64(w.outC) * int64(w.inC) * int64(w.t2)
	r := op % mulsPerUnit
	t := r / int64(w.t2)
	c := int(t % int64(w.inC))
	oc := int((t / int64(w.inC)) % int64(w.outC))
	return PE{Row: c % s.arr.Rows, Col: oc % s.arr.Cols}
}

// SlotOf returns the schedule-order slot of the given mul index on its own
// PE, the inverse of MulOnPE.
func (s *LayerSchedule) SlotOf(op int64) int64 {
	pe := s.PEOf(op) // validates op
	if s.d != nil {
		d := s.d
		k := op % int64(d.k)
		flat := op / int64(d.k)
		p := flat % int64(d.pix)
		tmp := flat / int64(d.pix)
		oc := tmp % int64(d.oc)
		img := tmp / int64(d.oc)
		mm := img*int64(d.pix) + p
		occ := countMod(d.oc, s.arr.Cols, pe.Col)
		fk := k / int64(s.arr.Rows)
		fn := oc / int64(s.arr.Cols)
		return (fk*occ+fn)*d.m + mm
	}
	w := s.w
	mulsPerUnit := w.nt * int64(w.outC) * int64(w.inC) * int64(w.t2)
	u := op / mulsPerUnit
	r := op % mulsPerUnit
	pos := r % int64(w.t2)
	t := r / int64(w.t2)
	c := t % int64(w.inC)
	rest := t / int64(w.inC)
	oc := rest % int64(w.outC)
	nt := rest / int64(w.outC)
	cc := countMod(w.inC, s.arr.Rows, pe.Row)
	oc2 := countMod(w.outC, s.arr.Cols, pe.Col)
	fk := c / int64(s.arr.Rows)
	fn := oc / int64(s.arr.Cols)
	return u*int64(w.t2)*cc*oc2*w.nt + pos*cc*oc2*w.nt + fk*oc2*w.nt + fn*w.nt + nt
}
