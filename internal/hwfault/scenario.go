package hwfault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/systolic"
	"repro/internal/volt"
)

// Kind selects a hardware-located fault scenario.
type Kind uint8

const (
	// StuckPE is a permanent fault in one processing element: every
	// multiplication scheduled onto the PE has one product-register bit
	// corrupted. A true stuck-at pins the bit to a constant; compiling to
	// the platform's flip events models the worst case in which the pinned
	// value always disagrees with the computed bit (a "stuck-inverted"
	// fault), which upper-bounds the real stuck-at-0/1 damage.
	StuckPE Kind = iota + 1
	// BurstSEU is one single-event upset burst per Monte-Carlo round: a
	// (PE, cycle-window) pair is sampled over the whole network's schedule
	// and a contiguous run of the PE's MAC slots is corrupted, one random
	// product bit each — spatially and temporally clustered faults, unlike
	// the i.i.d. statistical model.
	BurstSEU
	// VoltRegion is a voltage-stressed rectangular PE region: MACs mapped
	// inside the region draw Bernoulli bit flips at the timing-error rate
	// volt.Accelerator.BER(V), while the rest of the array keeps the
	// campaign's nominal (swept) BER.
	VoltRegion
)

func (k Kind) String() string {
	switch k {
	case StuckPE:
		return "stuckpe"
	case BurstSEU:
		return "burst"
	case VoltRegion:
		return "voltregion"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// DefaultBurstSpan is the burst cluster length when Scenario.Span is 0.
const DefaultBurstSpan = 64

// Scenario describes one hardware-located fault configuration.
type Scenario struct {
	Kind Kind

	// PE is the stuck element (StuckPE). A negative Row or Col is sampled
	// deterministically from the injection seed.
	PE PE
	// Bit is the corrupted product-register bit (StuckPE); negative values
	// are sampled deterministically from the injection seed.
	Bit int

	// Span is the number of consecutive MAC slots a burst corrupts
	// (BurstSEU); 0 means DefaultBurstSpan.
	Span int64

	// Region is the stressed rectangle (VoltRegion).
	Region Region
	// V is the region's supply voltage (VoltRegion).
	V float64
	// Acc is the voltage/BER model (VoltRegion); nil means volt.DNNEngine.
	Acc *volt.Accelerator
}

// WithDefaults returns the scenario with zero-valued optional fields
// replaced by the platform defaults and every "sampled from seed" negative
// stuck coordinate clamped to exactly -1, so equivalent spellings of one
// scenario canonicalize (and therefore cache) identically.
func (s Scenario) WithDefaults() Scenario {
	if s.Kind == StuckPE {
		if s.PE.Row < 0 {
			s.PE.Row = -1
		}
		if s.PE.Col < 0 {
			s.PE.Col = -1
		}
		if s.Bit < 0 {
			s.Bit = -1
		}
	}
	if s.Kind == BurstSEU && s.Span == 0 {
		s.Span = DefaultBurstSpan
	}
	if s.Kind == VoltRegion && s.Acc == nil {
		s.Acc = &volt.DNNEngine
	}
	return s
}

// Validate checks the scenario against an array geometry and the operand
// format whose product register the events flip.
func (s Scenario) Validate(a systolic.Array, f fixed.Format) error {
	switch s.Kind {
	case StuckPE:
		if s.PE.Row >= a.Rows || s.PE.Col >= a.Cols {
			return fmt.Errorf("hwfault: stuck PE (%d,%d) outside %dx%d array", s.PE.Row, s.PE.Col, a.Rows, a.Cols)
		}
		if s.Bit >= f.ProductBits() {
			return fmt.Errorf("hwfault: stuck bit %d outside %d-bit product register", s.Bit, f.ProductBits())
		}
	case BurstSEU:
		if s.Span < 0 {
			return fmt.Errorf("hwfault: burst span %d is negative", s.Span)
		}
	case VoltRegion:
		if err := s.Region.Validate(a); err != nil {
			return err
		}
		if math.IsNaN(s.V) || math.IsInf(s.V, 0) || s.V <= 0 {
			return fmt.Errorf("hwfault: region voltage %v is not a positive finite value", s.V)
		}
		if s.Acc != nil {
			if err := s.Acc.Validate(); err != nil {
				return err
			}
			if s.V > s.Acc.VNom {
				return fmt.Errorf("hwfault: region voltage %v above nominal %v", s.V, s.Acc.VNom)
			}
		}
	default:
		return fmt.Errorf("hwfault: unknown scenario kind %d", s.Kind)
	}
	return nil
}

// Stream-split labels: every scenario draw derives from the campaign's
// (seed, round) stream through fixed labels, so events are a pure function
// of campaign identity — independent of workers, shards and layer order.
const (
	seedLabel  = 0x68775345 // "hwSE": build-time PE/bit sampling
	layerLabel = 0x68774c59 // "hwLY": per-(round, layer) draws
	burstLabel = 0x68774255 // "hwBU": the round's global burst placement
)

// peCoverage maps a contiguous slot space onto a PE subset of one layer:
// slots [cum[i-1], cum[i]) belong to pes[i]. It is how uniform sampling
// over "all MACs in a region" (or its complement) finds concrete ops.
type peCoverage struct {
	pes   []PE
	cum   []int64
	total int64
}

func coverage(s *LayerSchedule, member func(PE) bool) peCoverage {
	var cov peCoverage
	for r := 0; r < s.arr.Rows; r++ {
		for c := 0; c < s.arr.Cols; c++ {
			pe := PE{Row: r, Col: c}
			if !member(pe) {
				continue
			}
			n := s.OpsOnPE(pe)
			if n == 0 {
				continue
			}
			cov.total += n
			cov.pes = append(cov.pes, pe)
			cov.cum = append(cov.cum, cov.total)
		}
	}
	return cov
}

// locate maps a slot in [0, total) to its PE and PE-local slot.
func (cov *peCoverage) locate(slot int64) (PE, int64) {
	i := sort.Search(len(cov.cum), func(i int) bool { return cov.cum[i] > slot })
	prev := int64(0)
	if i > 0 {
		prev = cov.cum[i-1]
	}
	return cov.pes[i], slot - prev
}

// Injection binds a scenario to one network's layer schedules. It is built
// once per system (sampled choices resolved from the seed at build time) and
// is safe for concurrent use: Events only reads it.
type Injection struct {
	sc    Scenario
	arr   systolic.Array
	sched []*LayerSchedule
	pbits int // product-register width the events flip bits in

	pe  PE    // resolved stuck PE
	bit uint8 // resolved stuck bit

	start []int64 // per-node first global mul index (burst layer lookup)
	total int64   // network mul ops on the array

	regionBER float64      // volt-model BER inside the region
	region    []peCoverage // per-node in-region slot spaces
	outside   []peCoverage // per-node complement slot spaces
}

// NewInjection resolves a scenario against a network's schedules: defaults
// applied, geometry validated, sampled choices (stuck PE/bit) drawn
// deterministically from seed. Every process that builds an Injection from
// the same (scenario, schedules, seed) generates identical events.
func NewInjection(sc Scenario, a systolic.Array, f fixed.Format, sched []*LayerSchedule, seed uint64) (*Injection, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(a, f); err != nil {
		return nil, err
	}
	inj := &Injection{sc: sc, arr: a, sched: sched, pbits: f.ProductBits()}
	inj.start = make([]int64, len(sched))
	for i, s := range sched {
		inj.start[i] = inj.total
		if s != nil {
			inj.total += s.Muls()
		}
	}
	switch sc.Kind {
	case StuckPE:
		r := rng.New(seed).Split(seedLabel)
		inj.pe = sc.PE
		if inj.pe.Row < 0 {
			inj.pe.Row = r.Intn(a.Rows)
		}
		if inj.pe.Col < 0 {
			inj.pe.Col = r.Intn(a.Cols)
		}
		if sc.Bit >= 0 {
			inj.bit = uint8(sc.Bit)
		} else {
			inj.bit = uint8(r.Intn(inj.pbits))
		}
	case BurstSEU:
		if inj.total == 0 {
			return nil, fmt.Errorf("hwfault: network schedules no ops on the array")
		}
	case VoltRegion:
		inj.regionBER = sc.Acc.BER(sc.V)
		inj.region = make([]peCoverage, len(sched))
		inj.outside = make([]peCoverage, len(sched))
		for i, s := range sched {
			if s == nil {
				continue
			}
			inj.region[i] = coverage(s, sc.Region.Contains)
			inj.outside[i] = coverage(s, func(pe PE) bool { return !sc.Region.Contains(pe) })
		}
	}
	return inj, nil
}

// Scenario returns the defaults-applied scenario the injection executes.
func (inj *Injection) Scenario() Scenario { return inj.sc }

// StuckAt reports the resolved (PE, bit) of a StuckPE injection.
func (inj *Injection) StuckAt() (PE, int) { return inj.pe, int(inj.bit) }

// Events generates node li's fault events for one Monte-Carlo round. round
// is the campaign's (seed, round) stream, shared across the round's nodes;
// Events derives per-layer and network-global sub-streams from it by fixed
// labels (splitting never advances the parent), so the event set is a pure
// function of (campaign seed, round, node) — bit-identical for any worker
// count, shard split or execution order.
//
// campaignBER is the round's statistical bit error rate: it governs the
// nominal background outside a VoltRegion and is ignored by the
// deterministic StuckPE and the burst process. keep is the unprotected
// multiplication fraction (1 - TMR coverage); candidate events are thinned
// by it, mirroring the statistical sampler's protection model.
//
// All events flip bits of multiplication product registers (the PE array's
// MACs); callers mark them ResultFlip before handing them to the engines.
func (inj *Injection) Events(li int, round *rng.Stream, campaignBER, keep float64) []fault.Event {
	if li < 0 || li >= len(inj.sched) || inj.sched[li] == nil {
		return nil
	}
	if keep > 1 {
		keep = 1
	}
	if keep <= 0 {
		return nil
	}
	switch inj.sc.Kind {
	case StuckPE:
		return inj.stuckEvents(li, round, keep)
	case BurstSEU:
		return inj.burstEvents(li, round, keep)
	default:
		return inj.regionEvents(li, round, campaignBER, keep)
	}
}

func (inj *Injection) layerStream(li int, round *rng.Stream) *rng.Stream {
	return round.Split(layerLabel).Split(uint64(li))
}

// stuckEvents flips the pinned bit of every multiplication the schedule
// places on the stuck PE. With full TMR coverage gaps (keep == 1) the event
// set is deterministic — identical in every round, the signature of a
// permanent fault; partial protection thins it per round like the
// statistical sampler's uniformly re-drawn protected subset.
func (inj *Injection) stuckEvents(li int, round *rng.Stream, keep float64) []fault.Event {
	s := inj.sched[li]
	n := s.OpsOnPE(inj.pe)
	if n == 0 {
		return nil
	}
	var ls *rng.Stream
	if keep < 1 {
		ls = inj.layerStream(li, round)
	}
	events := make([]fault.Event, 0, n)
	for slot := int64(0); slot < n; slot++ {
		if ls != nil && !ls.Bernoulli(keep) {
			continue
		}
		events = append(events, fault.Event{
			Class: fault.OpMul,
			Op:    s.MulOnPE(inj.pe, slot),
			Bit:   inj.bit,
		})
	}
	return events
}

// burstEvents places one burst per round over the whole network: a global
// MAC slot is sampled (weighting PEs by occupancy), and the burst corrupts
// the following Span slots of that PE's schedule within the owning layer.
// Every node of the round derives the same placement from the round stream,
// and only the owning node emits events.
func (inj *Injection) burstEvents(li int, round *rng.Stream, keep float64) []fault.Event {
	g := round.Split(burstLabel).Int63n(inj.total)
	owner := sort.Search(len(inj.start), func(i int) bool { return inj.start[i] > g }) - 1
	for owner >= 0 && inj.sched[owner] == nil { // starts repeat across non-array nodes
		owner--
	}
	if owner != li {
		return nil
	}
	s := inj.sched[li]
	op := g - inj.start[li]
	pe := s.PEOf(op)
	slot := s.SlotOf(op)
	end := slot + inj.sc.Span
	if n := s.OpsOnPE(pe); end > n {
		end = n
	}
	ls := inj.layerStream(li, round)
	var events []fault.Event
	for ; slot < end; slot++ {
		bit := uint8(ls.Intn(inj.pbits))
		if keep < 1 && !ls.Bernoulli(keep) {
			continue
		}
		events = append(events, fault.Event{Class: fault.OpMul, Op: s.MulOnPE(pe, slot), Bit: bit})
	}
	return events
}

// regionEvents samples two thinned Bernoulli processes over the layer's MAC
// product bits: the stressed region at the volt-model BER, the complement at
// the campaign's nominal BER — the statistical model's own Binomial-then-
// place decomposition, restricted to PE subsets.
func (inj *Injection) regionEvents(li int, round *rng.Stream, campaignBER, keep float64) []fault.Event {
	ls := inj.layerStream(li, round)
	s := inj.sched[li]
	events := inj.sampleCoverage(ls, s, &inj.region[li], inj.regionBER*keep, nil)
	return inj.sampleCoverage(ls, s, &inj.outside[li], campaignBER*keep, events)
}

func (inj *Injection) sampleCoverage(ls *rng.Stream, s *LayerSchedule, cov *peCoverage, p float64, events []fault.Event) []fault.Event {
	if cov.total == 0 || p <= 0 {
		return events
	}
	k := ls.Binomial(cov.total*int64(inj.pbits), p)
	for i := int64(0); i < k; i++ {
		pe, local := cov.locate(ls.Int63n(cov.total))
		events = append(events, fault.Event{
			Class: fault.OpMul,
			Op:    s.MulOnPE(pe, local),
			Bit:   uint8(ls.Intn(inj.pbits)),
		})
	}
	return events
}

// EventsPerRound returns the expected number of fault events one round
// generates across the network at the given campaign BER: exact for StuckPE
// (deterministic) and VoltRegion (Binomial means); for BurstSEU the span,
// an upper bound tight except when the burst start lands near the end of a
// PE's schedule. It is what the experiments use to match the statistical
// model's intensity to a hardware scenario.
func (inj *Injection) EventsPerRound(campaignBER float64) float64 {
	switch inj.sc.Kind {
	case StuckPE:
		var n int64
		for _, s := range inj.sched {
			if s != nil {
				n += s.OpsOnPE(inj.pe)
			}
		}
		return float64(n)
	case BurstSEU:
		return float64(inj.sc.Span)
	default:
		var e float64
		for i, s := range inj.sched {
			if s == nil {
				continue
			}
			e += float64(inj.region[i].total*int64(inj.pbits)) * inj.regionBER
			e += float64(inj.outside[i].total*int64(inj.pbits)) * campaignBER
		}
		return e
	}
}

// TotalMuls returns the network's array-mapped multiplication count (the
// denominator of a matched statistical BER).
func (inj *Injection) TotalMuls() int64 { return inj.total }
