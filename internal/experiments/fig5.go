package experiments

import (
	"context"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/nn"
	"repro/internal/tmr"
)

// fig5StartBER is the paper's TMR study error rate, used as the starting
// point of the stress calibration: the paper's 3e-10 put their VGG19 at
// ~45-50% accuracy; our golden-agreement metric is more forgiving, so the
// harness searches for the BER with the equivalent degradation and reports
// it (same protection-vs-accuracy trade-off, honestly recalibrated x-axis).
const fig5StartBER = 3e-10

// stressBER finds a BER where unprotected accuracy lands in [0.45, 0.65] of
// golden, matching the operating point of the paper's Fig. 5.
func stressBER(r *rig, opts faultsim.Options, rounds int) float64 {
	ber := fig5StartBER
	for i := 0; i < 14; i++ {
		acc := r.runner.Accuracy(context.Background(), ber, opts, rounds)
		switch {
		case acc > 0.65:
			ber *= 3
		case acc < 0.45:
			ber /= 2.5
		default:
			return ber
		}
	}
	return ber
}

// fig5Targets are the paper's accuracy goals (45%..70%) expressed as
// fractions of the original 72.6% VGG19 accuracy; our golden-agreement
// baseline is 100%, so the goals map to the same fractions of golden.
var fig5Targets = []float64{45, 50, 55, 60, 65, 70}

const fig5Original = 72.6

// fig5Row is one accuracy-target datapoint of the TMR study.
type fig5Row struct {
	TargetPaper float64 // paper axis value (45..70)
	Target      float64 // golden-agreement target fraction
	STOverhead  int64
	WOOverhead  int64 // winograd without awareness of its fault tolerance
	WOAccuracy  float64
	WOverhead   int64 // winograd with awareness
}

// fig5Cache memoizes fig5Data per config within one process, so the
// headline experiment reuses the (expensive) TMR study instead of redoing it.
var fig5Cache = map[Config]fig5Result{}

type fig5Result struct {
	rows []fig5Row
	ber  float64
}

// fig5Data runs the three TMR configurations of Figure 5, returning the
// rows and the calibrated stress BER. Results are memoized per config.
func fig5Data(cfg Config) ([]fig5Row, float64) {
	if r, ok := fig5Cache[cfg]; ok {
		return r.rows, r.ber
	}
	rows, ber := fig5DataUncached(cfg)
	fig5Cache[cfg] = fig5Result{rows: rows, ber: ber}
	return rows, ber
}

func fig5DataUncached(cfg Config) ([]fig5Row, float64) {
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	stOpts, wgOpts := st.opts(cfg), wg.opts(cfg)
	fig5BER := stressBER(st, stOpts, cfg.Rounds)

	ctx := context.Background()
	stVF := tmr.Vulnerability(ctx, st.runner, fig5BER, stOpts, cfg.Rounds)
	wgVF := tmr.Vulnerability(ctx, wg.runner, fig5BER, wgOpts, cfg.Rounds)
	stConv := st.runner.Net.ConvNodes()
	wgConv := wg.runner.Net.ConvNodes()

	var rows []fig5Row
	var stPrev, wPrev map[int]fault.Protection
	for _, tp := range fig5Targets {
		target := tp / fig5Original
		stPlan := (&tmr.Optimizer{Runner: st.runner, Opts: stOpts, BER: fig5BER,
			Rounds: cfg.Rounds, VF: stVF, Step: 0.25, Initial: stPrev}).Optimize(ctx, target, 600)
		stPrev = stPlan.Protection

		// WG-Conv-W/O-AFT: replay the ST protection decision on the winograd
		// execution — same per-layer fractions, applied to far fewer
		// multiplications, with no awareness of winograd's own tolerance.
		woPlan, err := tmr.ApplyFractions(stPlan, stConv, wgConv)
		if err != nil {
			panic(err)
		}
		woOpts := wgOpts
		woOpts.Protection = woPlan.Protection
		woAcc := wg.runner.Accuracy(context.Background(), fig5BER, woOpts, cfg.Rounds)

		// WG-Conv-W/AFT: optimize directly against the winograd network.
		// The aware designer's strategy set also contains the replayed
		// (unaware) plan, so when that plan already meets the goal more
		// cheaply than the search result, awareness takes it — awareness is
		// strictly additional information and never costs more.
		wPlan := (&tmr.Optimizer{Runner: wg.runner, Opts: wgOpts, BER: fig5BER,
			Rounds: cfg.Rounds, VF: wgVF, Step: 0.25, Initial: wPrev}).Optimize(ctx, target, 600)
		wPrev = wPlan.Protection
		wOverhead := wPlan.Overhead(wg.intensity)
		if woOH := woPlan.Overhead(wg.intensity); woAcc >= target && woOH < wOverhead {
			wOverhead = woOH
		}

		rows = append(rows, fig5Row{
			TargetPaper: tp,
			Target:      target,
			STOverhead:  stPlan.Overhead(st.intensity),
			WOOverhead:  woPlan.Overhead(wg.intensity),
			WOAccuracy:  woAcc,
			WOverhead:   wOverhead,
		})
	}
	return rows, fig5BER
}

// Fig5 reproduces Figure 5: normalized TMR overhead needed to reach each
// accuracy goal for ST-Conv, WG-Conv-W/O-AFT and WG-Conv-W/AFT at BER 3e-10.
func Fig5(cfg Config) []*Figure {
	rows, ber := fig5Data(cfg)
	fig := &Figure{
		ID:     "fig5",
		Title:  "Normalized fine-grained TMR overhead vs accuracy goal (VGG19 int16)",
		XLabel: "accuracy goal %",
		YLabel: "overhead / ST-Conv",
	}
	stS := Series{Name: "ST-Conv"}
	woS := Series{Name: "WG-w/o-AFT"}
	wS := Series{Name: "WG-w/-AFT"}
	var sumWO, sumW float64
	var n int
	for _, r := range rows {
		stS.X = append(stS.X, r.TargetPaper)
		woS.X = append(woS.X, r.TargetPaper)
		wS.X = append(wS.X, r.TargetPaper)
		if r.STOverhead == 0 {
			stS.Y = append(stS.Y, 0)
			woS.Y = append(woS.Y, 0)
			wS.Y = append(wS.Y, 0)
			continue
		}
		stS.Y = append(stS.Y, 1)
		rwo := float64(r.WOOverhead) / float64(r.STOverhead)
		rw := float64(r.WOverhead) / float64(r.STOverhead)
		woS.Y = append(woS.Y, rwo)
		wS.Y = append(wS.Y, rw)
		sumWO += rwo
		sumW += rw
		n++
	}
	fig.Series = []Series{stS, woS, wS}
	fig.Notes = append(fig.Notes,
		note("stress BER calibrated to %.2e (paper operated at 3e-10; see DESIGN.md)", ber))
	if n > 0 {
		meanWO, meanW := sumWO/float64(n), sumW/float64(n)
		fig.Notes = append(fig.Notes,
			note("mean overhead vs ST: WG-w/o-AFT %.1f%%, WG-w/-AFT %.1f%%", meanWO*100, meanW*100),
			note("WG-w/-AFT saves %.1f%% vs ST (paper 61.21%%) and %.1f%% vs WG-w/o-AFT (paper 27.49%%)",
				(1-meanW)*100, (1-meanW/meanWO)*100))
	}
	return []*Figure{fig}
}
