package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke-level structural checks: every experiment runs, renders, and shows
// the paper's qualitative shape where that is cheap to assert.

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "headline", "semantics", "tile", "hwfault"}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() = %v", IDs())
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := Run("nope", Smoke(), &bytes.Buffer{}); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestFig1Shape(t *testing.T) {
	figs := Fig1(Smoke())
	if len(figs) != 1 {
		t.Fatalf("fig count %d", len(figs))
	}
	f := figs[0]
	if len(f.Series) != 4 {
		t.Fatalf("series count %d, want 4", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != len(fig1BERs) || len(s.Y) != len(fig1BERs) {
			t.Errorf("series %s has %d/%d points", s.Name, len(s.X), len(s.Y))
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Errorf("series %s accuracy %v out of range", s.Name, y)
			}
		}
	}
	// Neuron-level series must track each other closely.
	var gap float64
	for i := range fig1BERs {
		d := f.Series[3].Y[i] - f.Series[2].Y[i]
		if d < 0 {
			d = -d
		}
		gap += d
	}
	// Smoke runs 8 samples x 1 round: one diverging sample is 12.5 pp, so
	// only a persistent >2-sample gap counts as a failure here (the tight
	// assertion lives in faultsim's TestNeuronLevelCannotDistinguish).
	if gap/float64(len(fig1BERs)) > 26 {
		t.Errorf("neuron-level ST/WG gap too large: %v pp", gap/float64(len(fig1BERs)))
	}
}

func TestFig2Shape(t *testing.T) {
	cfg := Smoke()
	figs := Fig2(cfg)
	if len(figs) != 4 {
		t.Fatalf("want 4 panels, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 6 {
			t.Fatalf("%s: series count %d, want 6", f.ID, len(f.Series))
		}
		// Accuracy should broadly degrade with BER for the measured series.
		for _, si := range []int{0, 1, 3, 4} {
			s := f.Series[si]
			if s.Y[0] < s.Y[len(s.Y)-1]-5 {
				t.Errorf("%s/%s: accuracy increases with BER: %v", f.ID, s.Name, s.Y)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	figs := Fig3(Smoke())
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("series count %d", len(f.Series))
	}
	if len(f.Series[0].X) != 16 {
		t.Errorf("VGG19 should have 16 conv layers, got %d", len(f.Series[0].X))
	}
	// Multiplication counts must be positive and vary across layers.
	muls := f.Series[2].Y
	first, varies := muls[0], false
	for _, m := range muls {
		if m <= 0 {
			t.Fatalf("non-positive mul count %v", m)
		}
		if m != first {
			varies = true
		}
	}
	if !varies {
		t.Error("per-layer mul counts are constant; full-scale census wiring broken")
	}
}

func TestFig4Shape(t *testing.T) {
	figs := Fig4(Smoke())
	f := figs[0]
	if len(f.Series) != 4 || len(f.Series[0].X) != len(fig4Configs) {
		t.Fatalf("malformed fig4: %d series, %d configs", len(f.Series), len(f.Series[0].X))
	}
	// Aggregate check: mul-fault-free recovers at least as much as
	// add-fault-free on average (the paper's central Fig. 4 claim).
	var mulSum, addSum float64
	for i := range f.Series[0].X {
		addSum += f.Series[0].Y[i] + f.Series[2].Y[i]
		mulSum += f.Series[1].Y[i] + f.Series[3].Y[i]
	}
	if mulSum < addSum {
		t.Errorf("fault-free muls (%v) recovered less than fault-free adds (%v)", mulSum, addSum)
	}
}

func TestFig5Shape(t *testing.T) {
	figs := Fig5(Smoke())
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("series count %d", len(f.Series))
	}
	// At smoke scale the Monte-Carlo quanta (12.5 pp with 8 samples) make
	// the optimizer's per-target ratios noisy, so only structural sanity is
	// asserted here; the WG<ST ordering is asserted with a proper budget in
	// the tmr package tests and holds in quick/full runs.
	for i := range f.Series[0].X {
		st, wo, w := f.Series[0].Y[i], f.Series[1].Y[i], f.Series[2].Y[i]
		if st != 0 && st != 1 {
			t.Errorf("target %v: ST column must be 0 or 1, got %v", f.Series[0].X[i], st)
		}
		if wo < 0 || w < 0 {
			t.Errorf("target %v: negative overhead ratios %v %v", f.Series[0].X[i], wo, w)
		}
		if st == 0 && (wo != 0 || w != 0) {
			t.Errorf("target %v: zero ST overhead but nonzero ratios", f.Series[0].X[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	figs := Fig6(Smoke())
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("series count %d", len(f.Series))
	}
	ber, st, wg := f.Series[0], f.Series[1], f.Series[2]
	for i := 1; i < len(ber.X); i++ {
		if ber.Y[i] > ber.Y[i-1] {
			t.Error("BER must not increase with voltage")
		}
	}
	// Smoke scale has +-12.5 pp Monte-Carlo quanta; only gross inversions
	// are errors (the WG>=ST claim is asserted tightly in faultsim's tests).
	for i := range st.Y {
		if wg.Y[i] < st.Y[i]-26 {
			t.Errorf("WG accuracy far below ST at %vV", st.X[i])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	figs := Fig7(Smoke())
	f := figs[0]
	if len(f.Series) != 5 {
		t.Fatalf("series count %d", len(f.Series))
	}
	for i := range f.Series[0].X {
		st, wo, w := f.Series[0].Y[i], f.Series[1].Y[i], f.Series[2].Y[i]
		if !(st <= 1+1e-9) {
			t.Errorf("scaled ST energy %v above baseline", st)
		}
		if wo > st {
			t.Errorf("WG-w/o energy %v above ST %v (winograd runs fewer cycles)", wo, st)
		}
		if w > wo+1e-9 {
			t.Errorf("WG-w/ energy %v above WG-w/o %v", w, wo)
		}
	}
	// Energy must not decrease when the loss budget tightens.
	for i := 1; i < len(f.Series[2].Y); i++ {
		if f.Series[2].Y[i] > f.Series[2].Y[i-1]+1e-9 {
			t.Error("energy should not increase with a looser loss budget")
		}
	}
}

func TestHeadlineRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("headline", Smoke(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"61.21%", "27.49%", "42.89%", "7.19%"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline output missing paper anchor %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	sem := AblationSemantics(Smoke())[0]
	if len(sem.Series) != 3 {
		t.Fatalf("semantics series %d", len(sem.Series))
	}
	tile := AblationTile(Smoke())[0]
	if len(tile.Series) != 2 {
		t.Fatalf("tile series %d", len(tile.Series))
	}
	if len(tile.Notes) == 0 || !strings.Contains(tile.Notes[0], "direct") {
		t.Error("tile ablation missing census note")
	}
}

// TestAblationHWFault: two arms per engine, on a shared region-edge axis,
// with the expected-event parity recorded in the notes.
func TestAblationHWFault(t *testing.T) {
	hw := AblationHWFault(Smoke())[0]
	if len(hw.Series) != 4 {
		t.Fatalf("hwfault series %d, want 4 (hw+stat per engine)", len(hw.Series))
	}
	for _, s := range hw.Series {
		if len(s.Y) != len(hw.Series[0].X) {
			t.Errorf("series %s has %d points for %d region sizes", s.Name, len(s.Y), len(hw.Series[0].X))
		}
		for _, y := range s.Y {
			if y < 0 || y > 100 {
				t.Errorf("series %s accuracy %v outside [0,100]", s.Name, y)
			}
		}
	}
	if len(hw.Notes) == 0 || !strings.Contains(strings.Join(hw.Notes, " "), "expected") {
		t.Error("hwfault ablation missing expected-event parity notes")
	}
}

func TestRenderOutput(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", XLabel: "ber",
		Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "ber", "a", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}
