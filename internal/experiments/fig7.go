package experiments

import (
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/volt"
	"repro/internal/winograd"
)

// fig7Losses are the paper's accuracy-loss constraints (percent).
var fig7Losses = []float64{1, 3, 5, 10}

// fig7Row is one accuracy-loss datapoint of the energy study.
type fig7Row struct {
	LossPct  float64
	VST, VWG float64
	EST      float64 // ST-Conv, voltage scaled (normalized to unscaled ST)
	EWO      float64 // WG-Conv-W/O-AFT: winograd cycles, ST-chosen voltage
	EW       float64 // WG-Conv-W/AFT: winograd cycles, WG-chosen voltage
}

// fig7Cache memoizes fig7Data per config within one process.
var fig7Cache = map[Config]fig7Result{}

type fig7Result struct {
	rows   []fig7Row
	st, wg systolic.Cost
}

// fig7Data explores voltage-scaled energy under the three implementations.
// Results are memoized per config (the headline experiment reuses them).
func fig7Data(cfg Config) ([]fig7Row, systolic.Cost, systolic.Cost) {
	if r, ok := fig7Cache[cfg]; ok {
		return r.rows, r.st, r.wg
	}
	rows, st, wg := fig7DataUncached(cfg)
	fig7Cache[cfg] = fig7Result{rows: rows, st: st, wg: wg}
	return rows, st, wg
}

func fig7DataUncached(cfg Config) ([]fig7Row, systolic.Cost, systolic.Cost) {
	acc := volt.DNNEngine
	array := systolic.DNNEngine16
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	stCurve := accuracyCurve(cfg, st)
	wgCurve := accuracyCurve(cfg, wg)

	// Runtime of the full-size VGG19 per engine (throughput batch of 16).
	const batch = 16
	stCost := array.NetworkCost(st.fullArch, nn.Direct, nil, batch)
	wgCost := array.NetworkCost(wg.fullArch, nn.Winograd, winograd.F2, batch)

	baseline := acc.Energy(stCost.Cycles, acc.VNom) // unscaled ST-Conv
	grid := volt.VoltageGrid(acc.VMin, acc.VNom, 0.002)

	var rows []fig7Row
	for _, loss := range fig7Losses {
		minAcc := 1 - loss/100
		vst, ok := acc.MinVoltage(stCurve, minAcc, grid)
		if !ok {
			vst = acc.VNom
		}
		vwg, ok := acc.MinVoltage(wgCurve, minAcc, grid)
		if !ok {
			vwg = acc.VNom
		}
		// The fault-tolerance-aware design can always fall back to the
		// unaware voltage, so Monte-Carlo noise in the measured curves never
		// makes awareness look worse than ignorance.
		if vwg > vst {
			vwg = vst
		}
		rows = append(rows, fig7Row{
			LossPct: loss,
			VST:     vst,
			VWG:     vwg,
			EST:     acc.Energy(stCost.Cycles, vst) / baseline,
			// W/O-AFT picks the voltage from the ST accuracy curve (it is
			// "a straightforward implementation of ST-Conv") but executes
			// the cheaper winograd cycle count.
			EWO: acc.Energy(wgCost.Cycles, vst) / baseline,
			EW:  acc.Energy(wgCost.Cycles, vwg) / baseline,
		})
	}
	return rows, stCost, wgCost
}

// Fig7 reproduces Figure 7: normalized energy of VGG19 under voltage scaling
// with ST-Conv, WG-Conv-W/O-AFT and WG-Conv-W/AFT across accuracy-loss
// constraints, relative to unscaled (0.9 V) standard convolution.
func Fig7(cfg Config) []*Figure {
	rows, stCost, wgCost := fig7Data(cfg)
	fig := &Figure{
		ID:     "fig7",
		Title:  "Voltage-scaling energy vs accuracy-loss constraint (VGG19 int16)",
		XLabel: "loss %",
		YLabel: "energy / ST@0.9V",
	}
	stS := Series{Name: "ST-Conv"}
	woS := Series{Name: "WG-w/o-AFT"}
	wS := Series{Name: "WG-w/-AFT"}
	vstS := Series{Name: "V(ST)"}
	vwgS := Series{Name: "V(WG)"}
	var sumSTgain, sumWOgain float64
	for _, r := range rows {
		for _, s := range []*Series{&stS, &woS, &wS, &vstS, &vwgS} {
			s.X = append(s.X, r.LossPct)
		}
		stS.Y = append(stS.Y, r.EST)
		woS.Y = append(woS.Y, r.EWO)
		wS.Y = append(wS.Y, r.EW)
		vstS.Y = append(vstS.Y, r.VST)
		vwgS.Y = append(vwgS.Y, r.VWG)
		sumSTgain += 1 - r.EW/r.EST
		sumWOgain += 1 - r.EW/r.EWO
	}
	fig.Series = []Series{stS, woS, wS, vstS, vwgS}
	n := float64(len(rows))
	fig.Notes = append(fig.Notes,
		note("full-size VGG19 cycles/batch: direct %d, winograd %d (%.2fx)",
			stCost.Cycles, wgCost.Cycles, float64(stCost.Cycles)/float64(wgCost.Cycles)),
		note("WG-w/-AFT energy reduction: %.1f%% vs ST-scaled (paper 42.89%%), %.1f%% vs WG-w/o-AFT (paper 7.19%%)",
			sumSTgain/n*100, sumWOgain/n*100))
	return []*Figure{fig}
}
