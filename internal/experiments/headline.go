package experiments

// Headline reproduces the paper's summary numbers (abstract / Section 5):
// the TMR overhead reductions (61.21% vs standard convolution, 27.49% vs
// winograd without fault-tolerance awareness) and the energy reductions
// (42.89% and 7.19% respectively), derived from the Fig. 5 and Fig. 7
// experiments.
func Headline(cfg Config) []*Figure {
	fig := &Figure{
		ID:    "headline",
		Title: "Summary: fault-tolerance-aware winograd savings (paper abstract numbers)",
	}

	tmrRows, _ := fig5Data(cfg)
	var sumWO, sumW float64
	var n int
	for _, r := range tmrRows {
		if r.STOverhead == 0 {
			continue
		}
		sumWO += float64(r.WOOverhead) / float64(r.STOverhead)
		sumW += float64(r.WOverhead) / float64(r.STOverhead)
		n++
	}
	if n > 0 {
		meanWO, meanW := sumWO/float64(n), sumW/float64(n)
		fig.Notes = append(fig.Notes,
			note("TMR overhead reduction, WG-w/-AFT vs ST-Conv:    measured %.2f%%  (paper 61.21%%)", (1-meanW)*100),
			note("TMR overhead reduction, WG-w/-AFT vs WG-w/o-AFT: measured %.2f%%  (paper 27.49%%)", (1-meanW/meanWO)*100))
	}

	energyRows, _, _ := fig7Data(cfg)
	var gST, gWO float64
	for _, r := range energyRows {
		gST += 1 - r.EW/r.EST
		gWO += 1 - r.EW/r.EWO
	}
	m := float64(len(energyRows))
	fig.Notes = append(fig.Notes,
		note("energy reduction, WG-w/-AFT vs ST-Conv scaled:   measured %.2f%%  (paper 42.89%%)", gST/m*100),
		note("energy reduction, WG-w/-AFT vs WG-w/o-AFT:       measured %.2f%%  (paper 7.19%%)", gWO/m*100))
	return []*Figure{fig}
}
