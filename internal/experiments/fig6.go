package experiments

import (
	"context"
	"repro/internal/nn"
	"repro/internal/volt"
)

// curveBERs is the BER grid the voltage experiments measure accuracy on;
// accuracy at intermediate voltages interpolates log-linearly between them.
var curveBERs = []float64{1e-12, 1e-11, 1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 1e-7}

// accuracyCurve measures the rig's BER->accuracy curve with a tripled
// Monte-Carlo budget (the voltage explorer is sensitive to the curve's top
// region) and projects it onto the monotone non-increasing cone.
func accuracyCurve(cfg Config, r *rig) *volt.AccuracyCurve {
	pts := r.runner.Sweep(context.Background(), curveBERs, r.opts(cfg), 3*cfg.Rounds)
	accs := make([]float64, len(pts))
	for i, p := range pts {
		accs[i] = p.Accuracy
	}
	return volt.NewAccuracyCurve(curveBERs, volt.Isotonic(accs))
}

// Fig6 reproduces Figure 6: the accelerator's voltage->BER curve together
// with VGG19 (int16, CIFAR-100) accuracy under both engines across the
// 0.77-0.82 V window.
func Fig6(cfg Config) []*Figure {
	acc := volt.DNNEngine
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	stCurve := accuracyCurve(cfg, st)
	wgCurve := accuracyCurve(cfg, wg)

	grid := volt.VoltageGrid(0.77, 0.82, 0.005)
	fig := &Figure{
		ID:     "fig6",
		Title:  "Accelerator BER and VGG19 accuracy vs supply voltage",
		XLabel: "voltage V",
		YLabel: "BER / accuracy %",
	}
	berS := Series{Name: "BER"}
	stS := Series{Name: "ST accuracy"}
	wgS := Series{Name: "WG accuracy"}
	for _, v := range grid {
		ber := acc.BER(v)
		berS.X = append(berS.X, v)
		berS.Y = append(berS.Y, ber)
		stS.X = append(stS.X, v)
		stS.Y = append(stS.Y, stCurve.At(ber)*100)
		wgS.X = append(wgS.X, v)
		wgS.Y = append(wgS.Y, wgCurve.At(ber)*100)
	}
	fig.Series = []Series{berS, stS, wgS}
	fig.Notes = append(fig.Notes,
		"paper: BER climbs ~1e-12 to ~1e-8 as supply drops 0.82->0.77 V;"+
			" WG accuracy stays above ST at every voltage")
	return []*Figure{fig}
}
