package experiments

import (
	"context"

	"repro/internal/nn"
)

// Fig3 reproduces Figure 3: VGG19 (int16, CIFAR-100) accuracy with exactly
// one layer kept fault-free while the rest of the network is injected at a
// stress BER, for both engines, alongside the per-layer multiplication count
// of the full-size network that the paper correlates the sensitivity with.
// The paper ran at BER 3e-10; like Fig. 5, the harness calibrates the BER so
// the all-faulty baseline sits at the paper's operating point (the
// golden-agreement metric shifts the cliff; see EXPERIMENTS.md).
func Fig3(cfg Config) []*Figure {
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	fig3BER := stressBER(st, st.opts(cfg), cfg.Rounds)

	ctx := context.Background()
	stBase, stPer := st.runner.LayerSensitivity(ctx, fig3BER, st.opts(cfg), cfg.Rounds)
	wgBase, wgPer := wg.runner.LayerSensitivity(ctx, fig3BER, wg.opts(cfg), cfg.Rounds)

	// The paper's layer axis covers the 16 spatial convolutions; FC layers
	// (also ConvOps internally) are excluded.
	var convNodes []int
	for _, li := range st.runner.Net.ConvNodes() {
		if st.arch.Ops[li].Kind == "conv" {
			convNodes = append(convNodes, li)
		}
	}
	wgConvNodes := convNodes // identical graph indices across engines

	fig := &Figure{
		ID:     "fig3",
		Title:  "Layer-wise sensitivity: one fault-free layer, rest faulty (VGG19 int16)",
		XLabel: "conv layer #",
		YLabel: "accuracy % / op count",
	}
	var xs, stY, wgY, muls []float64
	for i, li := range convNodes {
		xs = append(xs, float64(i+1))
		stY = append(stY, stPer[li]*100)
		wgY = append(wgY, wgPer[wgConvNodes[i]]*100)
		// Full-size multiplication count of this layer (direct engine), the
		// paper's secondary axis (in 1e8 units to keep columns readable).
		muls = append(muls, float64(st.intensity[li].Mul)/1e8)
	}
	fig.Series = []Series{
		{Name: "ST-Conv", X: xs, Y: stY},
		{Name: "WG-Conv", X: xs, Y: wgY},
		{Name: "#Mul(1e8)", X: xs, Y: muls},
	}
	fig.Notes = append(fig.Notes,
		note("stress BER calibrated to %.2e (paper operated at 3e-10)", fig3BER),
		note("ST-Conv-Base %.1f%%, WG-Conv-Base %.1f%% (all layers faulty)", stBase*100, wgBase*100),
		"paper: mid-network layers with the most multiplications are the most sensitive;"+
			" WG-Conv sits above ST-Conv at every layer")
	return []*Figure{fig}
}
