package experiments

import (
	"repro/internal/fault"
	"repro/internal/nn"
)

// fig1BERs is the paper's Fig. 1 bit-error-rate axis, extended one decade to
// the right: our golden-agreement metric shifts the degradation cliff (see
// EXPERIMENTS.md, known deltas), and the extension makes the op-level ST/WG
// separation visible on the same plot without leaving the paper's points out.
var fig1BERs = []float64{7e-11, 1e-10, 3e-10, 5e-10, 7e-10, 9e-10, 3e-9, 9e-9}

// Fig1 reproduces Figure 1: operation-level fault injection separates
// standard from winograd convolution while neuron-level injection cannot.
// Benchmark: VGG19 int16 on CIFAR-100.
func Fig1(cfg Config) []*Figure {
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)

	opSemantics := cfg.Semantics
	fig := &Figure{
		ID:     "fig1",
		Title:  "Neuron-level vs operation-level fault injection (VGG19 int16, CIFAR-100)",
		XLabel: "BER",
		YLabel: "accuracy %",
	}

	opCfg := cfg
	opCfg.Semantics = opSemantics
	fig.Series = append(fig.Series,
		st.accuracySeries(opCfg, "ST op-level", fig1BERs, st.opts(opCfg)),
		wg.accuracySeries(opCfg, "WG op-level", fig1BERs, wg.opts(opCfg)),
	)

	neuronCfg := cfg
	neuronCfg.Semantics = fault.NeuronFlip
	fig.Series = append(fig.Series,
		st.accuracySeries(neuronCfg, "ST neuron-level", fig1BERs, st.opts(neuronCfg)),
		wg.accuracySeries(neuronCfg, "WG neuron-level", fig1BERs, wg.opts(neuronCfg)),
	)

	// Quantify the separations the paper reports: neuron-level FI sees no
	// ST/WG difference; operation-level FI does.
	var opGap, neuGap float64
	for i := range fig1BERs {
		opGap += fig.Series[1].Y[i] - fig.Series[0].Y[i]
		neuGap += fig.Series[3].Y[i] - fig.Series[2].Y[i]
	}
	opGap /= float64(len(fig1BERs))
	neuGap /= float64(len(fig1BERs))
	fig.Notes = append(fig.Notes,
		note("mean WG-ST accuracy gap: op-level %.2f pp, neuron-level %.2f pp", opGap, neuGap),
		"paper: op-level separates the engines, neuron-level cannot")
	return []*Figure{fig}
}
