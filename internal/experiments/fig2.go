package experiments

import (
	"repro/internal/fixed"
	"repro/internal/nn"
)

// fig2BERs is the paper's Fig. 2 bit-error-rate axis (0 is implicit: the
// golden accuracy is 100% by construction).
var fig2BERs = []float64{1e-11, 1e-10, 1e-9, 1e-8, 1e-7}

// fig2Models lists the four benchmark networks in the paper's panel order.
var fig2Models = []string{"densenet169", "resnet50", "vgg19", "googlenet"}

// Fig2 reproduces Figure 2: accuracy of the benchmark networks under
// standard and winograd convolution at int8/int16 across the BER sweep, with
// the winograd-over-standard improvement as an extra series per format.
func Fig2(cfg Config) []*Figure {
	var out []*Figure
	for _, model := range fig2Models {
		fig := &Figure{
			ID:     "fig2-" + model,
			Title:  "Accuracy vs BER, ST vs WG (" + model + ")",
			XLabel: "BER",
			YLabel: "accuracy %",
		}
		for _, f := range []fixed.Format{int8Fmt, int16Fmt} {
			tag := "int8"
			if f == int16Fmt {
				tag = "int16"
			}
			st := makeRig(cfg, model, nn.Direct, f)
			wg := makeRig(cfg, model, nn.Winograd, f)
			sST := st.accuracySeries(cfg, "ST-"+tag, fig2BERs, st.opts(cfg))
			sWG := wg.accuracySeries(cfg, "WG-"+tag, fig2BERs, wg.opts(cfg))
			diff := Series{Name: "WG-ST-" + tag, X: fig2BERs}
			for i := range sST.Y {
				diff.Y = append(diff.Y, sWG.Y[i]-sST.Y[i])
			}
			fig.Series = append(fig.Series, sST, sWG, diff)
		}
		// Summary stats for quick shape checks.
		var maxImp16, maxImp8 float64
		for i := range fig2BERs {
			if d := fig.Series[5].Y[i]; d > maxImp16 {
				maxImp16 = d
			}
			if d := fig.Series[2].Y[i]; d > maxImp8 {
				maxImp8 = d
			}
		}
		fig.Notes = append(fig.Notes,
			note("max WG improvement: int8 %.1f pp, int16 %.1f pp (paper: up to ~35 pp)", maxImp8, maxImp16))
		out = append(out, fig)
	}
	return out
}
