package experiments

import (
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/winograd"
)

// ablationBERs is the sweep used by the reproduction-specific ablations.
var ablationBERs = []float64{1e-10, 1e-9, 1e-8}

// AblationSemantics compares the three injection semantics on VGG19 int16:
// the winograd advantage must appear under both operation-level semantics
// (operand and result flips) and vanish under neuron-level injection —
// evidence that the paper's conclusion is not an artifact of one fault
// model.
func AblationSemantics(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "ablation-semantics",
		Title:  "Fault-semantics ablation: WG-ST accuracy gap per injection model (VGG19 int16)",
		XLabel: "BER",
		YLabel: "accuracy gap pp",
	}
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	for _, sem := range []fault.Semantics{fault.OperandFlip, fault.ResultFlip, fault.NeuronFlip} {
		c := cfg
		c.Semantics = sem
		sST := st.accuracySeries(c, "st", ablationBERs, st.opts(c))
		sWG := wg.accuracySeries(c, "wg", ablationBERs, wg.opts(c))
		gap := Series{Name: sem.String(), X: ablationBERs}
		for i := range sST.Y {
			gap.Y = append(gap.Y, sWG.Y[i]-sST.Y[i])
		}
		fig.Series = append(fig.Series, gap)
	}
	fig.Notes = append(fig.Notes,
		"positive gap = winograd more fault tolerant; the neuron column should be ~0")
	return []*Figure{fig}
}

// AblationTile compares F(2x2,3x3) against F(4x4,3x3): the larger tile cuts
// multiplications further (4x vs 2.25x) but its bigger transform constants
// spread and amplify transform-domain errors — the design trade-off noted in
// DESIGN.md.
func AblationTile(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "ablation-tile",
		Title:  "Winograd tile-size ablation: accuracy vs BER (VGG19 int16)",
		XLabel: "BER",
		YLabel: "accuracy %",
	}
	for _, tile := range []*winograd.Tile{winograd.F2, winograd.F4} {
		c := cfg
		c.Tile = tile
		r := makeRig(c, "vgg19", nn.Winograd, int16Fmt)
		fig.Series = append(fig.Series, r.accuracySeries(c, tile.Name, ablationBERs, r.opts(c)))
	}
	// Census comparison at full scale.
	full, _ := models.ByName("vgg19", models.Options{})
	c2 := models.TotalCensus(full, nn.Winograd, winograd.F2)
	c4 := models.TotalCensus(full, nn.Winograd, winograd.F4)
	cd := models.TotalCensus(full, nn.Direct, nil)
	fig.Notes = append(fig.Notes,
		note("full-size muls: direct %.2fG, F2 %.2fG, F4 %.2fG",
			float64(cd.Mul)/1e9, float64(c2.Mul)/1e9, float64(c4.Mul)/1e9))
	return []*Figure{fig}
}
