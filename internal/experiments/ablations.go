package experiments

import (
	"context"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/hwfault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/winograd"
)

// ablationBERs is the sweep used by the reproduction-specific ablations.
var ablationBERs = []float64{1e-10, 1e-9, 1e-8}

// AblationSemantics compares the three injection semantics on VGG19 int16:
// the winograd advantage must appear under both operation-level semantics
// (operand and result flips) and vanish under neuron-level injection —
// evidence that the paper's conclusion is not an artifact of one fault
// model.
func AblationSemantics(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "ablation-semantics",
		Title:  "Fault-semantics ablation: WG-ST accuracy gap per injection model (VGG19 int16)",
		XLabel: "BER",
		YLabel: "accuracy gap pp",
	}
	st := makeRig(cfg, "vgg19", nn.Direct, int16Fmt)
	wg := makeRig(cfg, "vgg19", nn.Winograd, int16Fmt)
	for _, sem := range []fault.Semantics{fault.OperandFlip, fault.ResultFlip, fault.NeuronFlip} {
		c := cfg
		c.Semantics = sem
		sST := st.accuracySeries(c, "st", ablationBERs, st.opts(c))
		sWG := wg.accuracySeries(c, "wg", ablationBERs, wg.opts(c))
		gap := Series{Name: sem.String(), X: ablationBERs}
		for i := range sST.Y {
			gap.Y = append(gap.Y, sWG.Y[i]-sST.Y[i])
		}
		fig.Series = append(fig.Series, gap)
	}
	fig.Notes = append(fig.Notes,
		"positive gap = winograd more fault tolerant; the neuron column should be ~0")
	return []*Figure{fig}
}

// AblationTile compares F(2x2,3x3) against F(4x4,3x3): the larger tile cuts
// multiplications further (4x vs 2.25x) but its bigger transform constants
// spread and amplify transform-domain errors — the design trade-off noted in
// DESIGN.md.
func AblationTile(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "ablation-tile",
		Title:  "Winograd tile-size ablation: accuracy vs BER (VGG19 int16)",
		XLabel: "BER",
		YLabel: "accuracy %",
	}
	for _, tile := range []*winograd.Tile{winograd.F2, winograd.F4} {
		c := cfg
		c.Tile = tile
		r := makeRig(c, "vgg19", nn.Winograd, int16Fmt)
		fig.Series = append(fig.Series, r.accuracySeries(c, tile.Name, ablationBERs, r.opts(c)))
	}
	// Census comparison at full scale.
	full, _ := models.ByName("vgg19", models.Options{})
	c2 := models.TotalCensus(full, nn.Winograd, winograd.F2)
	c4 := models.TotalCensus(full, nn.Winograd, winograd.F4)
	cd := models.TotalCensus(full, nn.Direct, nil)
	fig.Notes = append(fig.Notes,
		note("full-size muls: direct %.2fG, F2 %.2fG, F4 %.2fG",
			float64(cd.Mul)/1e9, float64(c2.Mul)/1e9, float64(c4.Mul)/1e9))
	return []*Figure{fig}
}

// AblationHWFault compares hardware-located degradation against the
// statistical i.i.d. model at equal expected fault counts (VGG19 int16):
// voltage-stressed PE regions of growing edge length inject spatially
// correlated MAC faults, while the matched statistical arm draws the same
// expected number of multiplication result flips uniformly over the op
// census. Locality matters: the same fault mass concentrated on an array
// region hits the same output channels over and over, so the two curves
// separate — the effect the purely statistical platform cannot express.
func AblationHWFault(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "ablation-hwfault",
		Title:  "Hardware-located vs statistical faults at equal expected counts (VGG19 int16, region at 0.75V)",
		XLabel: "region edge PEs",
		YLabel: "accuracy %",
	}
	ctx := context.Background()
	array := systolic.DNNEngine16
	surface := float64(fixed.Int16.ProductBits())
	edges := []float64{1, 2, 4, 8}
	const vRegion = 0.75
	// The background (outside-region) BER: small enough to contribute ~no
	// events, positive so the unit space schedules the campaigns.
	const backBER = 1e-15

	var expected []string
	for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
		r := makeRig(cfg, "vgg19", kind, int16Fmt)
		sched := hwfault.NetworkSchedules(array, r.arch, kind, cfg.tile(), cfg.Samples)
		hwSeries := Series{Name: kind.String() + "-hw", X: edges}
		stSeries := Series{Name: kind.String() + "-stat", X: edges}
		for _, e := range edges {
			sc := hwfault.Scenario{
				Kind:   hwfault.VoltRegion,
				Region: hwfault.Region{Row1: int(e) - 1, Col1: int(e) - 1},
				V:      vRegion,
			}
			inj, err := hwfault.NewInjection(sc, array, int16Fmt, sched, cfg.Seed)
			if err != nil {
				panic(err)
			}
			// Both arms run over the scaled model's own op census (no
			// full-size intensity substitution) so the matched BER and the
			// schedule describe the same op population.
			hwOpts := r.opts(cfg)
			hwOpts.Intensity, hwOpts.NeuronIntensity = nil, nil
			hwOpts.HW = inj
			hwSeries.Y = append(hwSeries.Y, 100*r.runner.Accuracy(ctx, backBER, hwOpts, cfg.Rounds))

			events := inj.EventsPerRound(backBER)
			matched := events / (float64(inj.TotalMuls()) * surface)
			stOpts := r.opts(cfg)
			stOpts.Intensity, stOpts.NeuronIntensity = nil, nil
			stOpts.AddFaultFree = true // hardware events are MAC mul flips
			stSeries.Y = append(stSeries.Y, 100*r.runner.Accuracy(ctx, matched, stOpts, cfg.Rounds))

			if kind == nn.Winograd {
				expected = append(expected, note("edge %d: %.1f expected faults/round", int(e), events))
			}
		}
		fig.Series = append(fig.Series, hwSeries, stSeries)
	}
	fig.Notes = append(fig.Notes, expected...)
	fig.Notes = append(fig.Notes,
		"each -stat column draws the -hw column's expected event count i.i.d. over the census (mul result flips only)")
	return []*Figure{fig}
}
