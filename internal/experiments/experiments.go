// Package experiments regenerates every table and figure of the paper's
// evaluation: Fig. 1 (operation- vs neuron-level fault injection), Fig. 2
// (network-wise accuracy under BER sweeps), Fig. 3 (layer-wise sensitivity),
// Fig. 4 (operation-type sensitivity), Fig. 5 (fine-grained TMR overhead),
// Fig. 6 (accelerator voltage vs BER vs accuracy), Fig. 7 (voltage-scaled
// energy), the headline summary numbers, and two reproduction-specific
// ablations (fault semantics, winograd tile size).
//
// Experiments run on width/resolution-scaled models whose fault intensities
// are pinned to the full-size architectures' operation counts, so the BER
// axes match the paper (see DESIGN.md). Accuracy is golden-agreement
// accuracy in percent; paper accuracy targets are mapped to the same
// fractions of the fault-free accuracy.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/fixed"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/winograd"
)

// Config sets the scale/sampling budget of an experiment run.
type Config struct {
	// Scale is the model scaling used for simulation (full-size intensities
	// are always derived from the unscaled architectures).
	Scale models.Options
	// Samples is the number of evaluation images.
	Samples int
	// Rounds is the Monte-Carlo fault rounds per accuracy point.
	Rounds int
	// Seed drives datasets, weights and fault sampling.
	Seed uint64
	// Semantics is the operation-level injection semantics (ResultFlip is
	// the platform default, matching the paper's stated methodology).
	Semantics fault.Semantics
	// Tile is the winograd algorithm (F2 default).
	Tile *winograd.Tile
	// Workers caps the fault-campaign parallelism (0 = GOMAXPROCS). Figures
	// are bit-identical for every worker count.
	Workers int
}

// Quick is the default experiment budget: eighth-width models at 32x32 with
// a modest Monte-Carlo budget. One figure regenerates in seconds to minutes.
func Quick() Config {
	return Config{
		Scale:   models.Options{WidthMult: 0.125, InputSize: 32},
		Samples: 24,
		Rounds:  2,
		Seed:    1,
	}
}

// Smoke is the tiny budget used by unit tests and -short benchmarks.
func Smoke() Config {
	return Config{
		Scale:   models.Options{WidthMult: 0.125, InputSize: 16},
		Samples: 8,
		Rounds:  1,
		Seed:    1,
	}
}

func (c Config) tile() *winograd.Tile {
	if c.Tile == nil {
		return winograd.F2
	}
	return c.Tile
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced figure: series plus free-form notes, rendered as
// aligned text columns.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes the figure as a column table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		fmt.Fprintf(w, "%-14s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%16s", s.Name)
		}
		fmt.Fprintln(w)
		for i := range f.Series[0].X {
			fmt.Fprintf(w, "%-14.3g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(w, "%16.4g", s.Y[i])
				} else {
					fmt.Fprintf(w, "%16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// Shared format shorthands.
var (
	int16Fmt = fixed.Int16
	int8Fmt  = fixed.Int8
)

// note formats a figure annotation.
func note(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// rig bundles one evaluated network configuration.
type rig struct {
	name      string
	kind      nn.EngineKind
	fmtW      fixed.Format
	arch      *models.Arch
	fullArch  *models.Arch
	runner    *faultsim.Runner
	intensity []fault.Census
	neurons   []int64
}

// makeRig builds a scaled network of the given engine kind plus its
// paper-scale fault intensities and an evaluation set.
func makeRig(cfg Config, model string, kind nn.EngineKind, f fixed.Format) *rig {
	arch, err := models.ByName(model, cfg.Scale)
	if err != nil {
		panic(err)
	}
	full, _ := models.ByName(model, models.Options{})
	netCfg := nn.Config{Kind: kind, Tile: cfg.tile(), ActFmt: f, WFmt: f, Seed: cfg.Seed ^ 0xabcdef}
	net := models.Build(arch, netCfg)
	set := dataset.ForModel(arch.Dataset, cfg.Samples, arch.In.H, cfg.Seed^0x5eed, f)
	return &rig{
		name:      model,
		kind:      kind,
		fmtW:      f,
		arch:      arch,
		fullArch:  full,
		runner:    faultsim.New(net, set.Batch(0, cfg.Samples)),
		intensity: models.IntensityFor(arch, full, kind, cfg.tile()),
		neurons:   models.NeuronIntensityFor(arch, full),
	}
}

// opts returns campaign options for the rig under the config's semantics.
func (r *rig) opts(cfg Config) faultsim.Options {
	return faultsim.Options{
		Semantics:       cfg.Semantics,
		Seed:            cfg.Seed ^ uint64(len(r.name))<<32 ^ uint64(r.kind),
		Intensity:       r.intensity,
		NeuronIntensity: r.neurons,
		Workers:         cfg.Workers,
	}
}

// accuracySeries sweeps BER and returns a percent-accuracy series.
func (r *rig) accuracySeries(cfg Config, name string, bers []float64, opts faultsim.Options) Series {
	pts := r.runner.Sweep(context.Background(), bers, opts, cfg.Rounds)
	s := Series{Name: name, X: bers}
	for _, p := range pts {
		s.Y = append(s.Y, p.Accuracy*100)
	}
	return s
}

// Registry maps experiment IDs to their runner functions.
type Runner func(cfg Config) []*Figure

// Registry lists all reproducible experiments by ID.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":      Fig1,
		"fig2":      Fig2,
		"fig3":      Fig3,
		"fig4":      Fig4,
		"fig5":      Fig5,
		"fig6":      Fig6,
		"fig7":      Fig7,
		"headline":  Headline,
		"semantics": AblationSemantics,
		"tile":      AblationTile,
		"hwfault":   AblationHWFault,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	r := Registry()
	ids := make([]string, 0, len(r))
	for id := range r {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID and renders it to w.
func Run(id string, cfg Config, w io.Writer) error {
	fn, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (want one of %s)", id, strings.Join(IDs(), ", "))
	}
	for _, f := range fn(cfg) {
		f.Render(w)
	}
	return nil
}
