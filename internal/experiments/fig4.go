package experiments

import (
	"context"
	"repro/internal/faultsim"
	"repro/internal/fixed"
	"repro/internal/nn"
)

// fig4Configs are the paper's Fig. 4 (network, width, BER) panels.
var fig4Configs = []struct {
	Model string
	Fmt   fixed.Format
	BER   float64
}{
	{"densenet169", fixed.Int16, 1e-11},
	{"densenet169", fixed.Int8, 2e-10},
	{"vgg19", fixed.Int16, 2e-10},
	{"vgg19", fixed.Int8, 3e-10},
	{"resnet50", fixed.Int16, 5e-10},
	{"resnet50", fixed.Int8, 1e-9},
	{"googlenet", fixed.Int16, 5e-10},
	{"googlenet", fixed.Int8, 9e-8},
}

// Fig4 reproduces Figure 4: accuracy with fault-free additions vs fault-free
// multiplications for each benchmark/width, under both engines. Higher
// accuracy when a class is fault-free means that class is more vulnerable.
func Fig4(cfg Config) []*Figure {
	fig := &Figure{
		ID:     "fig4",
		Title:  "Operation-type sensitivity: fault-free Add vs fault-free Mul",
		XLabel: "config #",
		YLabel: "accuracy %",
	}
	var xs []float64
	series := map[string]*Series{}
	for _, name := range []string{"ST-Add", "ST-Mul", "WG-Add", "WG-Mul"} {
		series[name] = &Series{Name: name}
	}
	var labels []string
	for i, c := range fig4Configs {
		xs = append(xs, float64(i+1))
		tag := "int8"
		if c.Fmt == fixed.Int16 {
			tag = "int16"
		}
		labels = append(labels, note("%d=%s@%s BER %.0e", i+1, c.Model, tag, c.BER))
		for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
			r := makeRig(cfg, c.Model, kind, c.Fmt)
			prefix := "ST"
			if kind == nn.Winograd {
				prefix = "WG"
			}
			addFree := r.opts(cfg)
			addFree.AddFaultFree = true
			mulFree := r.opts(cfg)
			mulFree.MulFaultFree = true
			// Both op-class campaigns share one scheduler batch.
			accs := r.runner.AccuracyBatch(context.Background(), []faultsim.Campaign{
				{BER: c.BER, Opts: addFree},
				{BER: c.BER, Opts: mulFree},
			}, cfg.Rounds)
			series[prefix+"-Add"].Y = append(series[prefix+"-Add"].Y, accs[0]*100)
			series[prefix+"-Mul"].Y = append(series[prefix+"-Mul"].Y, accs[1]*100)
		}
	}
	for _, name := range []string{"ST-Add", "ST-Mul", "WG-Add", "WG-Mul"} {
		s := series[name]
		s.X = xs
		fig.Series = append(fig.Series, *s)
	}
	fig.Notes = append(fig.Notes, labels...)
	fig.Notes = append(fig.Notes,
		"columns show accuracy when that op class is fault-free; Mul >> Add means"+
			" multiplications are the vulnerable class (paper's finding for both engines)")
	return []*Figure{fig}
}
