package tmr

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/fixed"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/winograd"
)

func rig(t *testing.T, kind nn.EngineKind) (*faultsim.Runner, []fault.Census, faultsim.Options) {
	t.Helper()
	arch := models.VGG19(models.Tiny)
	full := models.VGG19(models.Options{})
	cfg := nn.Config{Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 21}
	net := models.Build(arch, cfg)
	set := dataset.ForModel("cifar100", 10, arch.In.H, 5, fixed.Int16)
	runner := faultsim.New(net, set.Batch(0, 10))
	intensity := models.IntensityFor(arch, full, kind, winograd.F2)
	opts := faultsim.Options{Semantics: fault.OperandFlip, Seed: 11, Intensity: intensity}
	return runner, models.Census(arch, kind, winograd.F2), opts
}

func TestOverheadAccounting(t *testing.T) {
	census := []fault.Census{{Mul: 100, Add: 200}, {Mul: 50, Add: 50}}
	p := &Plan{Protection: map[int]fault.Protection{
		0: {MulFrac: 1, AddFrac: 0.5},
		1: {MulFrac: 0.5},
	}}
	// 2*(100 + 100 + 25) = 450
	if got := p.Overhead(census); got != 450 {
		t.Errorf("overhead = %d, want 450", got)
	}
	if got := TotalOps(census); got != 400 {
		t.Errorf("TotalOps = %d, want 400", got)
	}
	empty := &Plan{Protection: map[int]fault.Protection{}}
	if empty.Overhead(census) != 0 {
		t.Error("empty plan must have zero overhead")
	}
}

func TestVulnerabilityFactors(t *testing.T) {
	runner, _, opts := rig(t, nn.Direct)
	vf := Vulnerability(context.Background(), runner, 2e-9, opts, 2)
	if len(vf) != len(runner.Net.ConvNodes()) {
		t.Fatalf("vf entries %d, want %d", len(vf), len(runner.Net.ConvNodes()))
	}
	anyPositive := false
	for _, v := range vf {
		if v > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("no layer has positive vulnerability factor")
	}
}

func TestOptimizeReachesTarget(t *testing.T) {
	runner, census, opts := rig(t, nn.Direct)
	const ber = 5e-9
	o := &Optimizer{
		Runner: runner,
		Opts:   opts,
		BER:    ber,
		Rounds: 2,
		VF:     Vulnerability(context.Background(), runner, ber, opts, 2),
		Step:   0.25,
	}
	unprotected := runner.Accuracy(context.Background(), ber, opts, 2)
	target := unprotected + (1-unprotected)*0.6
	plan := o.Optimize(context.Background(), target, 0)
	if plan.Accuracy < target {
		t.Errorf("plan accuracy %v below target %v", plan.Accuracy, target)
	}
	oh := plan.Overhead(census)
	if oh <= 0 {
		t.Error("plan has zero overhead but improved accuracy")
	}
	full := 2 * TotalOps(census)
	if oh >= full {
		t.Errorf("plan overhead %d not below full TMR %d", oh, full)
	}
}

func TestOptimizeZeroTargetIsFree(t *testing.T) {
	runner, census, opts := rig(t, nn.Direct)
	o := &Optimizer{Runner: runner, Opts: opts, BER: 1e-9, Rounds: 1,
		VF: map[int]float64{}, Step: 0.25}
	plan := o.Optimize(context.Background(), 0, 0)
	if plan.Overhead(census) != 0 || plan.Iterations != 0 {
		t.Errorf("zero target should need no protection: %+v", plan)
	}
}

func TestOptimizeProtectsMulsFirst(t *testing.T) {
	runner, _, opts := rig(t, nn.Direct)
	const ber = 5e-9
	o := &Optimizer{Runner: runner, Opts: opts, BER: ber, Rounds: 2,
		VF: Vulnerability(context.Background(), runner, ber, opts, 2), Step: 0.25}
	unprotected := runner.Accuracy(context.Background(), ber, opts, 2)
	plan := o.Optimize(context.Background(), unprotected+(1-unprotected)*0.4, 0)
	for li, p := range plan.Protection {
		if p.AddFrac > 0 && p.MulFrac < 1 {
			t.Errorf("layer %d protects adds (%v) before saturating muls (%v)", li, p.AddFrac, p.MulFrac)
		}
	}
}

func TestApplyFractions(t *testing.T) {
	src := &Plan{Protection: map[int]fault.Protection{3: {MulFrac: 0.5}, 7: {MulFrac: 1, AddFrac: 0.25}}}
	dst, err := ApplyFractions(src, []int{3, 7, 9}, []int{4, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if dst.Protection[4].MulFrac != 0.5 || dst.Protection[8].AddFrac != 0.25 {
		t.Errorf("fractions not transferred: %+v", dst.Protection)
	}
	if _, err := ApplyFractions(src, []int{3}, []int{4, 5}); err == nil {
		t.Error("length mismatch not caught")
	}
	bad := &Plan{Protection: map[int]fault.Protection{99: {}}}
	if _, err := ApplyFractions(bad, []int{3}, []int{4}); err == nil {
		t.Error("non-conv protected node not caught")
	}
}

// TestWinogradNeedsLessProtection is the Fig. 5 ordering on a small scale:
// to reach the same absolute accuracy, the winograd network needs less TMR
// overhead than the direct one.
func TestWinogradNeedsLessProtection(t *testing.T) {
	stRunner, stCensus, stOpts := rig(t, nn.Direct)
	wgRunner, wgCensus, wgOpts := rig(t, nn.Winograd)
	const ber = 5e-9
	target := 0.9

	stPlan := (&Optimizer{Runner: stRunner, Opts: stOpts, BER: ber, Rounds: 2,
		VF: Vulnerability(context.Background(), stRunner, ber, stOpts, 2), Step: 0.25}).Optimize(context.Background(), target, 0)
	wgPlan := (&Optimizer{Runner: wgRunner, Opts: wgOpts, BER: ber, Rounds: 2,
		VF: Vulnerability(context.Background(), wgRunner, ber, wgOpts, 2), Step: 0.25}).Optimize(context.Background(), target, 0)

	stOH := stPlan.Overhead(stCensus)
	wgOH := wgPlan.Overhead(wgCensus)
	if stOH == 0 {
		t.Skip("direct network already meets target unprotected at this scale")
	}
	if wgOH >= stOH {
		t.Errorf("winograd TMR overhead %d not below direct %d", wgOH, stOH)
	}
}

// TestMulFirstBeatsUniform is the op-selection policy ablation (DESIGN.md
// §6): because multiplications carry nearly all the vulnerability, the
// mul-first heuristic reaches the same accuracy goal with no more (and
// typically far less) protection overhead than protecting both classes in
// lockstep.
func TestMulFirstBeatsUniform(t *testing.T) {
	runner, census, opts := rig(t, nn.Direct)
	const ber = 5e-9
	vf := Vulnerability(context.Background(), runner, ber, opts, 2)
	unprotected := runner.Accuracy(context.Background(), ber, opts, 2)
	target := unprotected + (1-unprotected)*0.5

	mulFirst := (&Optimizer{Runner: runner, Opts: opts, BER: ber, Rounds: 2,
		VF: vf, Step: 0.25, Policy: MulFirst}).Optimize(context.Background(), target, 0)
	uniform := (&Optimizer{Runner: runner, Opts: opts, BER: ber, Rounds: 2,
		VF: vf, Step: 0.25, Policy: Uniform}).Optimize(context.Background(), target, 0)

	mo, uo := mulFirst.Overhead(census), uniform.Overhead(census)
	if mo == 0 && uo == 0 {
		t.Skip("target met without protection at this scale")
	}
	// Allow Monte-Carlo slack; the systematic effect is a large gap.
	if float64(mo) > 1.25*float64(uo) {
		t.Errorf("mul-first overhead %d not competitive with uniform %d", mo, uo)
	}
}

func TestUniformPolicySaturatesBothClasses(t *testing.T) {
	runner, _, opts := rig(t, nn.Direct)
	o := &Optimizer{Runner: runner, Opts: opts, BER: 1e-7, Rounds: 1,
		VF: Vulnerability(context.Background(), runner, 1e-7, opts, 1), Step: 0.5, Policy: Uniform}
	plan := o.Optimize(context.Background(), 0.99, 40)
	for li, p := range plan.Protection {
		if p.MulFrac != p.AddFrac {
			t.Errorf("layer %d: uniform policy diverged: mul %v add %v", li, p.MulFrac, p.AddFrac)
		}
	}
}
