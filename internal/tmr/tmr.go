// Package tmr implements the paper's fine-grained triple-modular-redundancy
// protection (Section 4.1): layers are ranked by their vulnerability factor
// (the accuracy recovered when the layer is fault-free), and inside a layer
// only a randomly-chosen fraction of operations is triplicated —
// multiplications first, because the operation-type analysis shows they are
// far more vulnerable — iterating until the accuracy goal is met.
package tmr

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

// Plan is a complete protection assignment for a network.
type Plan struct {
	// Protection maps node index to the protected op fractions.
	Protection map[int]fault.Protection
	// Accuracy is the evaluated accuracy of the plan at the campaign BER.
	Accuracy float64
	// Iterations is how many protect-evaluate steps the optimizer used.
	Iterations int
}

// Overhead returns the TMR computing overhead of the plan in extra executed
// operations: every protected op runs two additional times (plus voting,
// which the paper also neglects).
func (p *Plan) Overhead(census []fault.Census) int64 {
	var total float64
	for li, prot := range p.Protection {
		c := census[li]
		total += 2 * (prot.Frac(fault.OpMul)*float64(c.Mul) + prot.Frac(fault.OpAdd)*float64(c.Add))
	}
	return int64(total)
}

// TotalOps returns the unprotected op count of a census list (the
// normalization base for overhead ratios).
func TotalOps(census []fault.Census) int64 {
	var t int64
	for _, c := range census {
		t += c.Total()
	}
	return t
}

// Optimizer searches for the cheapest plan meeting an accuracy target.
type Optimizer struct {
	Runner *faultsim.Runner
	// Opts is the fault campaign the plan must survive (its Protection field
	// is owned by the optimizer).
	Opts faultsim.Options
	// BER is the soft-error rate of the campaign.
	BER float64
	// Rounds is the Monte-Carlo rounds per accuracy evaluation.
	Rounds int
	// VF holds the layer vulnerability factors used for ranking. Populate
	// with Vulnerability (aware mode) or copy another implementation's
	// factors (the paper's WG-Conv-W/O-AFT reuses ST-Conv's analysis).
	VF map[int]float64
	// Step is the op fraction protected per iteration (default 0.125).
	Step float64
	// Initial seeds the search with an existing plan's protection (the
	// target sweep of Fig. 5 warm-starts each goal from the previous one;
	// protection only ever grows with the goal).
	Initial map[int]fault.Protection
	// Policy selects how operations inside a layer are chosen.
	Policy Policy
}

// Policy is the op-selection strategy inside a layer.
type Policy int

const (
	// MulFirst protects multiplications before any addition — the paper's
	// heuristic, justified by the Fig. 4 operation-type analysis.
	MulFirst Policy = iota
	// Uniform protects both op classes in lockstep, the policy-ablation
	// baseline showing what ignoring the operation-type analysis costs.
	Uniform
)

// Vulnerability measures each conv layer's vulnerability factor: the
// accuracy when the layer is fault-free minus the all-faulty baseline
// (paper Section 4.1, derived from the Fig. 3 analysis).
func Vulnerability(ctx context.Context, r *faultsim.Runner, ber float64, opts faultsim.Options, rounds int) map[int]float64 {
	base, per := r.LayerSensitivity(ctx, ber, opts, rounds)
	vf := make(map[int]float64, len(per))
	for li, acc := range per {
		vf[li] = acc - base
	}
	return vf
}

// rankedLayers returns conv nodes ordered by descending vulnerability.
func (o *Optimizer) rankedLayers() []int {
	layers := o.Runner.Net.ConvNodes()
	sort.SliceStable(layers, func(i, j int) bool {
		return o.VF[layers[i]] > o.VF[layers[j]]
	})
	return layers
}

// Optimize grows protection until the accuracy target is reached or the
// whole network is protected. It returns the final plan; Plan.Accuracy
// records the achieved accuracy (which may be below target only in the
// fully-protected corner case, where it equals the fault-free accuracy).
// Canceling ctx abandons the search; the returned plan is partial and the
// caller must check ctx.Err() before trusting it.
func (o *Optimizer) Optimize(ctx context.Context, target float64, maxIters int) *Plan {
	step := o.Step
	if step <= 0 {
		step = 0.125
	}
	if maxIters <= 0 {
		maxIters = 1 << 20
	}
	layers := o.rankedLayers()
	if len(layers) == 0 {
		panic("tmr: network has no conv layers")
	}
	prot := map[int]fault.Protection{}
	for li, p := range o.Initial {
		prot[li] = p
	}
	opts := o.Opts
	opts.Protection = prot
	// The stop decision is confirmed with an independently-seeded
	// evaluation so a single lucky Monte-Carlo draw cannot end the search
	// prematurely; the two draws are averaged (taking the minimum would
	// systematically inflate the requirement and over-protect).
	confirmOpts := opts
	confirmOpts.Seed ^= 0xC0FFEE

	plan := &Plan{Protection: prot}
	// When the pool has enough idle workers to absorb both campaigns'
	// rounds in one wave, the main and confirmation draws are submitted as
	// one batch so the confirmation rides along for free; otherwise the
	// confirmation stays lazy, only evaluated once the main draw reaches
	// the target (it is discarded below target, so computing it eagerly on
	// a saturated pool would nearly double the search cost). Both paths
	// return identical values.
	rounds := o.Rounds
	if rounds < 1 {
		rounds = 1
	}
	batchEval := opts.ResolvedWorkers() >= 2*rounds
	measure := func() float64 {
		if batchEval {
			accs := o.Runner.AccuracyBatch(ctx, []faultsim.Campaign{
				{BER: o.BER, Opts: opts},
				{BER: o.BER, Opts: confirmOpts},
			}, o.Rounds)
			if accs[0] < target {
				return accs[0]
			}
			return (accs[0] + accs[1]) / 2
		}
		acc := o.Runner.Accuracy(ctx, o.BER, opts, o.Rounds)
		if acc < target {
			return acc
		}
		confirm := o.Runner.Accuracy(ctx, o.BER, confirmOpts, o.Rounds)
		return (acc + confirm) / 2
	}
	acc := measure()
	cursor := 0
	for iter := 0; acc < target && iter < maxIters && ctx.Err() == nil; iter++ {
		li := layers[cursor]
		p := prot[li]
		switch {
		case o.Policy == Uniform && (p.MulFrac < 1 || p.AddFrac < 1):
			p.MulFrac = min1(p.MulFrac + step)
			p.AddFrac = min1(p.AddFrac + step)
		case o.Policy == MulFirst && p.MulFrac < 1:
			// Multiplications first: highest per-op payoff.
			p.MulFrac = min1(p.MulFrac + step)
		case o.Policy == MulFirst && p.AddFrac < 1:
			p.AddFrac = min1(p.AddFrac + step)
		default:
			// Layer saturated; move to the next most vulnerable one.
			if cursor+1 < len(layers) {
				cursor++
				continue
			}
			// Everything protected: accuracy equals fault-free.
			plan.Accuracy = acc
			plan.Iterations = iter
			return plan
		}
		prot[li] = p
		acc = measure()
		plan.Iterations = iter + 1
	}
	plan.Accuracy = acc
	return plan
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// ApplyFractions builds a plan from an existing plan's per-layer fractions,
// mapped onto (possibly different) node indices by position in the conv-node
// list. This models the paper's WG-Conv-W/O-AFT: the protection option is
// decided on the standard-convolution network and replayed verbatim on the
// winograd one.
func ApplyFractions(src *Plan, srcConvNodes, dstConvNodes []int) (*Plan, error) {
	if len(srcConvNodes) != len(dstConvNodes) {
		return nil, fmt.Errorf("tmr: conv node lists differ: %d vs %d", len(srcConvNodes), len(dstConvNodes))
	}
	pos := make(map[int]int, len(srcConvNodes))
	for i, li := range srcConvNodes {
		pos[li] = i
	}
	out := &Plan{Protection: map[int]fault.Protection{}}
	for li, p := range src.Protection {
		i, ok := pos[li]
		if !ok {
			return nil, fmt.Errorf("tmr: protected node %d is not a conv node", li)
		}
		out.Protection[dstConvNodes[i]] = p
	}
	return out, nil
}
