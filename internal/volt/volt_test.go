package volt

import (
	"math"
	"testing"
)

func TestDNNEngineValid(t *testing.T) {
	if err := DNNEngine.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := DNNEngine
	bad.VSafe = 0.95
	if bad.Validate() == nil {
		t.Error("VSafe > VNom not caught")
	}
	bad = DNNEngine
	bad.Freq = 0
	if bad.Validate() == nil {
		t.Error("zero freq not caught")
	}
}

func TestBERCurveShape(t *testing.T) {
	a := DNNEngine
	if a.BER(0.9) != 0 || a.BER(0.82) != 0 {
		t.Error("BER above VSafe must be 0")
	}
	b81, b79, b77 := a.BER(0.81), a.BER(0.79), a.BER(0.77)
	if !(b81 < b79 && b79 < b77) {
		t.Errorf("BER not monotone: %v %v %v", b81, b79, b77)
	}
	// Paper Fig. 6 anchors: ~1e-8 at 0.77 V.
	if b77 < 1e-9 || b77 > 1e-7 {
		t.Errorf("BER(0.77) = %v, want ~1e-8", b77)
	}
	// Clamps below VMin.
	if a.BER(0.5) != a.BER(a.VMin) {
		t.Error("BER below VMin must clamp")
	}
}

func TestPowerQuadratic(t *testing.T) {
	a := DNNEngine
	if p := a.Power(a.VNom); math.Abs(p-(a.PDynNom+a.PLeakNom)) > 1e-12 {
		t.Errorf("nominal power = %v", p)
	}
	// 0.45/0.9 = 1/2 -> dynamic quarter, leakage half.
	want := a.PDynNom/4 + a.PLeakNom/2
	if p := a.Power(0.45); math.Abs(p-want) > 1e-12 {
		t.Errorf("half-voltage power = %v, want %v", p, want)
	}
	if a.Power(0.77) >= a.Power(0.9) {
		t.Error("power must decrease with voltage")
	}
}

func TestEnergy(t *testing.T) {
	a := DNNEngine
	e := a.Energy(667e6, 0.9) // one second of cycles
	if math.Abs(e-a.Power(0.9)) > 1e-9 {
		t.Errorf("energy of 1s = %v, want %v", e, a.Power(0.9))
	}
	if a.Energy(1000, 0.77) >= a.Energy(1000, 0.9) {
		t.Error("lower voltage must cost less energy at fixed cycles")
	}
}

func TestVoltageGrid(t *testing.T) {
	g := VoltageGrid(0.77, 0.82, 0.01)
	if len(g) != 6 || g[0] != 0.77 || g[5] != 0.82 {
		t.Errorf("grid = %v", g)
	}
}

func TestAccuracyCurveInterpolation(t *testing.T) {
	c := NewAccuracyCurve([]float64{1e-10, 1e-8}, []float64{0.9, 0.3})
	if got := c.At(0); got != 1 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(1e-10); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("At(anchor) = %v", got)
	}
	if got := c.At(1e-8); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("At(last) = %v", got)
	}
	if got := c.At(1e-6); got != 0.3 {
		t.Errorf("At(beyond) = %v", got)
	}
	mid := c.At(1e-9) // halfway in log space
	if math.Abs(mid-0.6) > 1e-9 {
		t.Errorf("At(mid) = %v, want 0.6", mid)
	}
	// Monotone in between.
	prev := 2.0
	for _, b := range []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7} {
		v := c.At(b)
		if v > prev+1e-9 {
			t.Errorf("curve not non-increasing at %v: %v > %v", b, v, prev)
		}
		prev = v
	}
}

func TestAccuracyCurveValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { NewAccuracyCurve(nil, nil) },
		"mismatch":   func() { NewAccuracyCurve([]float64{1e-9}, []float64{1, 2}) },
		"descending": func() { NewAccuracyCurve([]float64{1e-8, 1e-9}, []float64{1, 1}) },
		"nonpos":     func() { NewAccuracyCurve([]float64{0, 1e-9}, []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMinVoltage(t *testing.T) {
	a := DNNEngine
	// A curve that tolerates up to 1e-9 at 95% accuracy.
	c := NewAccuracyCurve([]float64{1e-12, 1e-9, 1e-7}, []float64{1, 0.96, 0.2})
	grid := VoltageGrid(a.VMin, a.VNom, 0.005)
	v, ok := a.MinVoltage(c, 0.95, grid)
	if !ok {
		t.Fatal("no voltage found")
	}
	if v >= a.VSafe {
		t.Errorf("min voltage %v did not exploit fault tolerance (VSafe %v)", v, a.VSafe)
	}
	if c.At(a.BER(v)) < 0.95 {
		t.Errorf("accuracy constraint violated at %v", v)
	}
	// A stricter curve needs a higher voltage.
	strict := NewAccuracyCurve([]float64{1e-12, 1e-10}, []float64{0.96, 0.5})
	v2, ok2 := a.MinVoltage(strict, 0.95, grid)
	if !ok2 || v2 < v {
		t.Errorf("stricter curve voltage %v not above %v", v2, v)
	}
	// Impossible constraint.
	never := NewAccuracyCurve([]float64{1e-12}, []float64{0.5})
	if _, ok := a.MinVoltage(never, 0.95, VoltageGrid(a.VMin, a.VSafe-0.001, 0.005)); ok {
		t.Error("impossible constraint satisfied")
	}
}

// TestMoreTolerantCurveSavesEnergy is the paper's energy argument in one
// property: a network tolerating 10x higher BER at the accuracy bound gets a
// lower minimum voltage and therefore lower energy at fixed cycles.
func TestMoreTolerantCurveSavesEnergy(t *testing.T) {
	a := DNNEngine
	grid := VoltageGrid(a.VMin, a.VNom, 0.002)
	weak := NewAccuracyCurve([]float64{1e-11, 1e-9}, []float64{0.99, 0.5})
	strong := NewAccuracyCurve([]float64{1e-10, 1e-8}, []float64{0.99, 0.5})
	vw, _ := a.MinVoltage(weak, 0.97, grid)
	vs, _ := a.MinVoltage(strong, 0.97, grid)
	if !(vs < vw) {
		t.Fatalf("tolerant curve voltage %v not below %v", vs, vw)
	}
	if a.Energy(1e9, vs) >= a.Energy(1e9, vw) {
		t.Error("tolerant curve did not save energy")
	}
}

func TestIsotonic(t *testing.T) {
	cases := []struct {
		in, want []float64
	}{
		{[]float64{1, 0.9, 0.8}, []float64{1, 0.9, 0.8}},           // already monotone
		{[]float64{0.8, 0.9}, []float64{0.85, 0.85}},               // single violation pools
		{[]float64{1, 0.5, 0.7, 0.2}, []float64{1, 0.6, 0.6, 0.2}}, // interior pool
		{[]float64{0.2, 0.4, 0.6}, []float64{0.4, 0.4, 0.4}},       // all-increasing pools to mean
		{[]float64{0.9}, []float64{0.9}},                           // singleton
	}
	for _, c := range cases {
		got := Isotonic(c.in)
		if len(got) != len(c.in) {
			t.Fatalf("Isotonic(%v) length %d", c.in, len(got))
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("Isotonic(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestIsotonicProperties(t *testing.T) {
	// Non-increasing output and mean preservation, for arbitrary inputs.
	in := []float64{0.3, 0.9, 0.1, 0.8, 0.8, 0.05, 0.5}
	out := Isotonic(in)
	var sumIn, sumOut float64
	for i := range in {
		sumIn += in[i]
		sumOut += out[i]
		if i > 0 && out[i] > out[i-1]+1e-12 {
			t.Fatalf("output not monotone at %d: %v", i, out)
		}
	}
	if math.Abs(sumIn-sumOut) > 1e-9 {
		t.Errorf("mean not preserved: %v vs %v", sumIn, sumOut)
	}
}

// TestBERProperties: the properties the voltage model promises — BER(v) is
// monotonically non-increasing in v, exactly zero at and above VSafe, and
// continuous at VSafe within one decade (no cliff between the first
// sub-safe sample and BERAtSafe).
func TestBERProperties(t *testing.T) {
	accs := []Accelerator{DNNEngine, {
		VNom: 1.0, VMin: 0.6, Freq: 1e9, PDynNom: 0.5, PLeakNom: 0.05,
		VSafe: 0.85, BERAtSafe: 1e-10, DecadesPerVolt: 40,
	}}
	for _, a := range accs {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		const step = 1e-4
		prev := math.Inf(1)
		for v := a.VMin - 0.05; v <= a.VNom+0.05; v += step {
			ber := a.BER(v)
			if ber > prev {
				t.Fatalf("BER not non-increasing: BER(%v) = %v > BER(%v) = %v", v, ber, v-step, prev)
			}
			if v >= a.VSafe && ber != 0 {
				t.Fatalf("BER(%v) = %v above VSafe %v, want exactly 0", v, ber, a.VSafe)
			}
			if v < a.VSafe && ber <= 0 {
				t.Fatalf("BER(%v) = %v below VSafe %v, want positive", v, ber, a.VSafe)
			}
			prev = ber
		}
		// Continuity at VSafe: approaching from below must land within one
		// decade of BERAtSafe (the exponential's anchor), not jump past it.
		just := a.BER(a.VSafe - 1e-6)
		if just < a.BERAtSafe || just > 10*a.BERAtSafe {
			t.Errorf("BER just below VSafe = %v, want within one decade of %v", just, a.BERAtSafe)
		}
	}
}

// TestValidateRejectsInvertedOrderings: every violation of
// VMin < VSafe <= VNom must be rejected.
func TestValidateRejectsInvertedOrderings(t *testing.T) {
	base := DNNEngine
	bad := map[string]func(*Accelerator){
		"VMin == VSafe":  func(a *Accelerator) { a.VMin = a.VSafe },
		"VMin > VSafe":   func(a *Accelerator) { a.VMin = a.VSafe + 0.01 },
		"VSafe > VNom":   func(a *Accelerator) { a.VSafe = a.VNom + 0.01 },
		"VMin > VNom":    func(a *Accelerator) { a.VMin = a.VNom + 0.1 },
		"all descending": func(a *Accelerator) { a.VMin, a.VSafe, a.VNom = 0.9, 0.8, 0.7 },
	}
	for name, mutate := range bad {
		a := base
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, a)
		}
	}
}
