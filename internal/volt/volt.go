// Package volt models the voltage-scaled DNN accelerator of the paper's
// energy study (Section 4.2): a Whatmough-style 28nm DNN Engine running at
// 667 MHz whose supply can be scaled from 0.9 V down to 0.7 V. Lowering the
// voltage cuts power quadratically but raises the timing-error bit error
// rate exponentially (paper Fig. 6: ~1e-12 at 0.82 V up to ~1e-8 at 0.77 V);
// the network's fault tolerance decides how low the voltage may go.
package volt

import (
	"fmt"
	"math"
)

// Accelerator is the parametric voltage/power/error model.
type Accelerator struct {
	// VNom is the nominal (error-free) supply, 0.9 V for the DNN Engine.
	VNom float64
	// VMin is the lowest supported supply.
	VMin float64
	// Freq is the clock frequency in Hz (voltage scaling at iso-frequency,
	// as in the paper's 667 MHz setup).
	Freq float64
	// PDynNom and PLeakNom are dynamic and leakage power at VNom, in watts.
	PDynNom, PLeakNom float64
	// VSafe is the highest voltage at which timing errors appear; above it
	// the BER is zero.
	VSafe float64
	// BERAtSafe is the BER just below VSafe.
	BERAtSafe float64
	// DecadesPerVolt is the exponential slope of BER growth as voltage
	// drops below VSafe (paper Fig. 6: ~4 decades over 0.05 V -> 80 /V).
	DecadesPerVolt float64
}

// DNNEngine reproduces the paper's accelerator configuration: 0.9-0.7 V at
// 667 MHz with first timing errors near 0.82 V and ~1e-8 BER at 0.77 V.
var DNNEngine = Accelerator{
	VNom:           0.90,
	VMin:           0.70,
	Freq:           667e6,
	PDynNom:        0.30,
	PLeakNom:       0.03,
	VSafe:          0.82,
	BERAtSafe:      1e-12,
	DecadesPerVolt: 80,
}

// Validate checks model consistency.
func (a Accelerator) Validate() error {
	if !(a.VMin < a.VSafe && a.VSafe <= a.VNom) {
		return fmt.Errorf("volt: need VMin < VSafe <= VNom, got %v < %v <= %v", a.VMin, a.VSafe, a.VNom)
	}
	if a.Freq <= 0 || a.PDynNom <= 0 || a.DecadesPerVolt <= 0 || a.BERAtSafe <= 0 {
		return fmt.Errorf("volt: non-positive model parameter")
	}
	return nil
}

// BER returns the timing-error bit error rate at supply v.
func (a Accelerator) BER(v float64) float64 {
	if v >= a.VSafe {
		return 0
	}
	if v < a.VMin {
		v = a.VMin
	}
	return a.BERAtSafe * math.Pow(10, (a.VSafe-v)*a.DecadesPerVolt)
}

// Power returns total power at supply v: dynamic scales with V², leakage
// roughly linearly (iso-frequency).
func (a Accelerator) Power(v float64) float64 {
	r := v / a.VNom
	return a.PDynNom*r*r + a.PLeakNom*r
}

// Energy returns the energy in joules of running the given cycle count at
// supply v.
func (a Accelerator) Energy(cycles int64, v float64) float64 {
	return a.Power(v) * float64(cycles) / a.Freq
}

// VoltageGrid returns supplies from lo to hi inclusive at the given step.
func VoltageGrid(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, math.Round(v*1000)/1000)
	}
	return out
}

// AccuracyCurve maps BER to accuracy via log-linear interpolation over
// measured sweep points; it is how the energy explorer converts a voltage
// (through BER) into expected model accuracy without re-running fault
// injection at every candidate voltage.
type AccuracyCurve struct {
	bers []float64 // ascending, > 0
	accs []float64
}

// NewAccuracyCurve builds a curve from (ber, accuracy) samples; bers must be
// ascending and positive (the implicit BER-0 point has accuracy 1).
func NewAccuracyCurve(bers, accs []float64) *AccuracyCurve {
	if len(bers) != len(accs) || len(bers) == 0 {
		panic("volt: malformed accuracy curve")
	}
	for i, b := range bers {
		if b <= 0 || (i > 0 && b <= bers[i-1]) {
			panic("volt: curve BERs must be positive ascending")
		}
	}
	return &AccuracyCurve{bers: bers, accs: accs}
}

// At returns the interpolated accuracy at the given BER.
func (c *AccuracyCurve) At(ber float64) float64 {
	if ber <= 0 {
		return 1
	}
	if ber <= c.bers[0] {
		// Interpolate toward the implicit (ber->0, acc 1) asymptote.
		f := math.Log10(ber/c.bers[0]/0.01) / 2 // two decades to reach 1
		if f < 0 {
			return 1
		}
		return 1 + (c.accs[0]-1)*f
	}
	last := len(c.bers) - 1
	if ber >= c.bers[last] {
		return c.accs[last]
	}
	for i := 1; i <= last; i++ {
		if ber <= c.bers[i] {
			f := math.Log10(ber/c.bers[i-1]) / math.Log10(c.bers[i]/c.bers[i-1])
			return c.accs[i-1] + (c.accs[i]-c.accs[i-1])*f
		}
	}
	return c.accs[last]
}

// Isotonic projects a measured accuracy sequence onto the non-increasing
// cone (pool-adjacent-violators): the true BER->accuracy curve is monotone,
// so this removes Monte-Carlo inversions before interpolation without
// biasing the level.
func Isotonic(accs []float64) []float64 {
	out := make([]float64, len(accs))
	copy(out, accs)
	weights := make([]float64, len(accs))
	for i := range weights {
		weights[i] = 1
	}
	// Pool adjacent violators for a non-increasing fit.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			continue
		}
		// Merge backwards while the monotonicity is violated.
		j := i
		for j > 0 && out[j] > out[j-1] {
			merged := (out[j]*weights[j] + out[j-1]*weights[j-1]) / (weights[j] + weights[j-1])
			w := weights[j] + weights[j-1]
			out[j-1], weights[j-1] = merged, w
			copy(out[j:], out[j+1:])
			copy(weights[j:], weights[j+1:])
			out = out[:len(out)-1]
			weights = weights[:len(weights)-1]
			j--
		}
		i = j
	}
	// Expand pooled blocks back to full length.
	full := make([]float64, len(accs))
	k := 0
	for b := 0; b < len(out); b++ {
		n := int(weights[b] + 0.5)
		for c := 0; c < n && k < len(full); c++ {
			full[k] = out[b]
			k++
		}
	}
	for ; k < len(full); k++ { // guard against rounding drift
		full[k] = full[k-1]
	}
	return full
}

// MinVoltage returns the lowest supply on the grid whose induced BER keeps
// the curve's accuracy at or above minAcc, and whether any voltage
// qualifies. Grids should be ascending.
func (a Accelerator) MinVoltage(curve *AccuracyCurve, minAcc float64, grid []float64) (float64, bool) {
	for _, v := range grid {
		if curve.At(a.BER(v)) >= minAcc {
			return v, true
		}
	}
	return 0, false
}
