package conv

import (
	"fmt"

	"repro/internal/tensor"
)

// ForwardFloat is the float64 reference convolution used for golden checks
// and quantization-error bounds in tests. Weight shape is {outC, inC, kh, kw}.
func ForwardFloat(in, w *tensor.Tensor, bias []float64, stride, pad int) *tensor.Tensor {
	if in.Shape.C != w.Shape.C {
		panic(fmt.Sprintf("conv: input channels %d != weight channels %d", in.Shape.C, w.Shape.C))
	}
	if stride < 1 {
		panic("conv: stride must be >= 1")
	}
	padded := in.Pad2D(pad)
	oh := (in.Shape.H+2*pad-w.Shape.H)/stride + 1
	ow := (in.Shape.W+2*pad-w.Shape.W)/stride + 1
	out := tensor.New(tensor.Shape{N: in.Shape.N, C: w.Shape.N, H: oh, W: ow})
	for n := 0; n < out.Shape.N; n++ {
		for o := 0; o < out.Shape.C; o++ {
			var b float64
			if bias != nil {
				b = bias[o]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := b
					for c := 0; c < w.Shape.C; c++ {
						for ky := 0; ky < w.Shape.H; ky++ {
							for kx := 0; kx < w.Shape.W; kx++ {
								acc += padded.At(n, c, oy*stride+ky, ox*stride+kx) * w.At(o, c, ky, kx)
							}
						}
					}
					out.Set(n, o, oy, ox, acc)
				}
			}
		}
	}
	return out
}
