// Package conv implements standard (direct) convolution over quantized
// tensors: the fast fault-free path, the exact operation census used by the
// statistical fault sampler, and the bit-exact replay path that applies
// sampled fault events to individual multiply/accumulate operations.
//
// Operation ordering (the contract between Census and fault replay):
//
//	mul index  = ((((n·OC+oc)·OH+oy)·OW+ox)·K + k,   k over (ic,ky,kx) row-major
//	add index  = (((n·OC+oc)·OH+oy)·OW+ox)·A + s
//
// where K = IC·KH·KW products feed each output, and A = K-1 accumulation adds
// plus one bias add when a bias is present. Add step s<K-1 merges product s+1
// into the running partial; the final step adds the bias.
package conv

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// Params holds the immutable configuration of one convolution layer.
type Params struct {
	Weight *tensor.QTensor // Shape{N: outC, C: inC, H: kh, W: kw}
	BiasF  []float64       // per-out-channel bias in real units; nil for none
	Stride int
	Pad    int
	OutFmt fixed.Format
}

// NewParams quantizes a float weight tensor into wFmt and bundles the layer
// configuration. The bias stays in real units and is requantized per call to
// the accumulator scale of the incoming activation format.
func NewParams(w *tensor.Tensor, bias []float64, stride, pad int, wFmt, outFmt fixed.Format) *Params {
	if stride < 1 {
		panic("conv: stride must be >= 1")
	}
	if pad < 0 {
		panic("conv: negative padding")
	}
	if bias != nil && len(bias) != w.Shape.N {
		panic(fmt.Sprintf("conv: bias length %d != out channels %d", len(bias), w.Shape.N))
	}
	return &Params{
		Weight: tensor.Quantize(w, wFmt),
		BiasF:  bias,
		Stride: stride,
		Pad:    pad,
		OutFmt: outFmt,
	}
}

// OutShape returns the output shape for an input shape.
func (p *Params) OutShape(in tensor.Shape) tensor.Shape {
	kh, kw := p.Weight.Shape.H, p.Weight.Shape.W
	oh := (in.H+2*p.Pad-kh)/p.Stride + 1
	ow := (in.W+2*p.Pad-kw)/p.Stride + 1
	return tensor.Shape{N: in.N, C: p.Weight.Shape.N, H: oh, W: ow}
}

// Census returns the exact primitive-operation counts of one forward pass.
func (p *Params) Census(in tensor.Shape) fault.Census {
	return CensusFor(in, p.Weight.Shape.N, p.Weight.Shape.H, p.Weight.Shape.W,
		p.Stride, p.Pad, p.BiasF != nil)
}

// CensusFor computes the direct-convolution op census from geometry alone,
// without materializing weights — used to derive full-size (paper-scale)
// fault intensities for scaled-down models.
func CensusFor(in tensor.Shape, outC, kh, kw, stride, pad int, bias bool) fault.Census {
	oh := (in.H+2*pad-kh)/stride + 1
	ow := (in.W+2*pad-kw)/stride + 1
	k := int64(in.C) * int64(kh) * int64(kw)
	outs := int64(in.N) * int64(outC) * int64(oh) * int64(ow)
	adds := k - 1
	if bias {
		adds++
	}
	return fault.Census{Mul: outs * k, Add: outs * adds}
}

// accumBias returns the bias vector scaled to the accumulator's fixed-point
// scale 2^(inFrac+wFrac).
func (p *Params) accumBias(inFmt fixed.Format) []int64 {
	if p.BiasF == nil {
		return nil
	}
	shift := inFmt.Frac + p.Weight.Fmt.Frac
	out := make([]int64, len(p.BiasF))
	for i, b := range p.BiasF {
		v := b * float64(int64(1)<<uint(shift))
		if v >= 0 {
			out[i] = int64(v + 0.5)
		} else {
			out[i] = int64(v - 0.5)
		}
	}
	return out
}

// Scratch is the reusable buffer arena of one layer's forward passes: the
// padded-input copy, the recycled output tensor, the accumulator-row buffer
// and the accumulator-scale bias cache. The zero value is ready to use; a
// Scratch belongs to one (Params, goroutine) pair and makes steady-state
// passes allocation-free. See DESIGN.md, memory model.
//
// Backend selects the compute backend for the fault-free fast path (see
// internal/kernel); nil means the process default. Every backend is
// bit-identical, so the choice can never change a result — the fault-replay
// path ignores it entirely and always runs the reference scalar code.
type Scratch struct {
	Backend kernel.Backend

	padded  *tensor.QTensor
	out     *tensor.QTensor
	accRow  []int64
	bias    []int64
	biasFmt fixed.Format
	biasOK  bool
}

// cachedBias returns accumBias through the scratch cache (the scale depends
// only on in.Fmt.Frac, constant across a campaign's rounds).
func (p *Params) cachedBias(sc *Scratch, inFmt fixed.Format) []int64 {
	if p.BiasF == nil {
		return nil
	}
	if !sc.biasOK || sc.biasFmt != inFmt {
		sc.bias = p.accumBias(inFmt)
		sc.biasFmt = inFmt
		sc.biasOK = true
	}
	return sc.bias
}

// padInput returns the input extended by p.Pad zero rows/columns on every
// spatial side, recycled from sc. For Pad == 0 the input itself is returned
// (it is only ever read). The recycled buffer's zero border is written only
// at allocation: interior rows are refreshed every pass and the border is
// geometry-dependent only.
func (p *Params) padInput(sc *Scratch, in *tensor.QTensor) *tensor.QTensor {
	if p.Pad == 0 {
		return in
	}
	s := in.Shape
	ps := tensor.Shape{N: s.N, C: s.C, H: s.H + 2*p.Pad, W: s.W + 2*p.Pad}
	if sc.padded == nil || sc.padded.Shape != ps || sc.padded.Fmt != in.Fmt {
		sc.padded = tensor.NewQ(ps, in.Fmt)
	}
	dst := sc.padded
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				srcBase := s.Index(n, c, h, 0)
				dstBase := ps.Index(n, c, h+p.Pad, p.Pad)
				copy(dst.Data[dstBase:dstBase+s.W], in.Data[srcBase:srcBase+s.W])
			}
		}
	}
	return dst
}

// Forward computes the fault-free convolution.
func Forward(in *tensor.QTensor, p *Params) *tensor.QTensor {
	return ForwardFaulty(in, p, nil)
}

// ForwardFaulty computes the convolution with the given fault events applied
// bit-exactly at their op sites, allocating fresh buffers. Hot paths use
// ForwardFaultyCtx with a reusable Scratch.
func ForwardFaulty(in *tensor.QTensor, p *Params, events []fault.Event) *tensor.QTensor {
	return ForwardFaultyCtx(&Scratch{}, in, p, events)
}

// ForwardFaultyCtx is ForwardFaulty drawing every buffer from sc. The fast
// path computes the whole layer through sc's compute backend (see
// internal/kernel; every backend is bit-identical), then every output
// element touched by an event is recomputed through the scalar replay path
// with its events applied in op order. The returned tensor aliases sc and is
// valid until the next call with the same scratch.
func ForwardFaultyCtx(sc *Scratch, in *tensor.QTensor, p *Params, events []fault.Event) *tensor.QTensor {
	if sc == nil {
		sc = &Scratch{}
	}
	bk := sc.Backend
	if bk == nil {
		bk = kernel.Default()
	}
	ws := p.Weight.Shape
	if in.Shape.C != ws.C {
		panic(fmt.Sprintf("conv: input channels %d != weight channels %d", in.Shape.C, ws.C))
	}
	padded := p.padInput(sc, in)
	outShape := p.OutShape(in.Shape)
	if sc.out == nil || sc.out.Shape != outShape || sc.out.Fmt != p.OutFmt {
		sc.out = tensor.NewQ(outShape, p.OutFmt)
	}
	out := sc.out
	bias := p.cachedBias(sc, in.Fmt)
	shift := in.Fmt.Frac + p.Weight.Fmt.Frac - p.OutFmt.Frac

	oc, oh, ow := outShape.C, outShape.H, outShape.W
	ic, kh, kw := ws.C, ws.H, ws.W
	ph, pw := padded.Shape.H, padded.Shape.W

	if kh == 1 && kw == 1 && ph == 1 && pw == 1 {
		// Fully-connected case (1x1 kernel over a 1x1 plane): both operand
		// rows are contiguous, so the whole output element is one dot.
		for n := 0; n < outShape.N; n++ {
			a := padded.Data[n*ic : (n+1)*ic]
			for o := 0; o < oc; o++ {
				var b int64
				if bias != nil {
					b = bias[o]
				}
				acc := bk.Dot(a, p.Weight.Data[o*ic:(o+1)*ic], b)
				out.Data[n*oc+o] = p.OutFmt.RequantizeShift(acc, shift)
			}
		}
	} else {
		if cap(sc.accRow) < ow {
			sc.accRow = make([]int64, ow)
		}
		accRow := sc.accRow[:ow]
		chanStride := ph * pw
		for n := 0; n < outShape.N; n++ {
			for o := 0; o < oc; o++ {
				var b int64
				if bias != nil {
					b = bias[o]
				}
				wBase := o * ic * kh * kw
				wRow := p.Weight.Data[wBase : wBase+ic*kh*kw]
				for oy := 0; oy < oh; oy++ {
					inBase := (n*in.Shape.C*ph + oy*p.Stride) * pw
					bk.ConvRow(accRow, padded.Data, wRow, b, inBase, p.Stride, ic, kh, kw, chanStride, pw)
					outRow := outShape.Index(n, o, oy, 0)
					for ox := 0; ox < ow; ox++ {
						out.Data[outRow+ox] = p.OutFmt.RequantizeShift(accRow[ox], shift)
					}
				}
			}
		}
	}

	if len(events) > 0 {
		p.replayFaults(padded, in.Fmt, out, bias, shift, events)
	}
	return out
}

// outputOfEvent maps a fault event to the flat index of the output element it
// corrupts.
func (p *Params) outputOfEvent(ev fault.Event, outShape tensor.Shape) int {
	k := int64(p.Weight.Shape.C) * int64(p.Weight.Shape.H) * int64(p.Weight.Shape.W)
	if ev.Class == fault.OpMul {
		return int(ev.Op / k)
	}
	adds := k - 1
	if p.BiasF != nil {
		adds++
	}
	return int(ev.Op / adds)
}

func (p *Params) replayFaults(padded *tensor.QTensor, inFmt fixed.Format, out *tensor.QTensor, bias []int64, shift int, events []fault.Event) {
	outShape := out.Shape
	byOutput := make(map[int][]fault.Event)
	for _, ev := range events {
		o := p.outputOfEvent(ev, outShape)
		byOutput[o] = append(byOutput[o], ev)
	}
	for flat, evs := range byOutput {
		ox := flat % outShape.W
		oy := (flat / outShape.W) % outShape.H
		o := (flat / (outShape.W * outShape.H)) % outShape.C
		n := flat / (outShape.W * outShape.H * outShape.C)
		out.Data[flat] = p.replayOutput(padded, inFmt, bias, shift, n, o, oy, ox, flat, evs)
	}
}

// replayOutput recomputes one output element executing the MAC chain in op
// order, applying the events that target it. Events are matched by their
// local op step; the semantics (operand vs result flip) is encoded by the
// Operand field being meaningful only for OperandFlip samples, so replay
// distinguishes them via the Params' caller contract: events sampled with
// ResultFlip always carry Operand == 0 and bit indices covering the result
// register, which replay interprets through applyMulFault/applyAddFault.
func (p *Params) replayOutput(padded *tensor.QTensor, inFmt fixed.Format, bias []int64, shift int, n, o, oy, ox, flat int, evs []fault.Event) int32 {
	ws := p.Weight.Shape
	ic, kh, kw := ws.C, ws.H, ws.W
	k := ic * kh * kw
	addsPerOut := k - 1
	if p.BiasF != nil {
		addsPerOut++
	}
	mulBase := int64(flat) * int64(k)
	addBase := int64(flat) * int64(addsPerOut)

	// Index events by local step for O(1) lookup during the chain walk.
	mulEvents := make(map[int64][]fault.Event)
	addEvents := make(map[int64][]fault.Event)
	for _, ev := range evs {
		if ev.Class == fault.OpMul {
			mulEvents[ev.Op-mulBase] = append(mulEvents[ev.Op-mulBase], ev)
		} else {
			addEvents[ev.Op-addBase] = append(addEvents[ev.Op-addBase], ev)
		}
	}

	w := p.Weight
	iy0, ix0 := oy*p.Stride, ox*p.Stride
	ph, pw := padded.Shape.H, padded.Shape.W

	var acc int64
	step := int64(0) // product index
	for c := 0; c < ic; c++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				a := int64(padded.Data[((n*padded.Shape.C+c)*ph+iy0+ky)*pw+ix0+kx])
				b := int64(w.Data[((o*ic+c)*kh+ky)*kw+kx])
				prod := a * b
				for _, ev := range mulEvents[step] {
					prod = applyMulFault(ev, a, b, prod)
					// Subsequent events on the same op re-derive operands
					// from the current product only for result flips; operand
					// flips recompute from the (already corrupted) operands.
					// With independent uniform sampling, coincident events on
					// one op are vanishingly rare; sequential application is
					// the documented tie-break.
					a, b = opAfterMulFault(ev, a, b)
				}
				if step == 0 {
					acc = prod
				} else {
					addStep := step - 1
					for _, ev := range addEvents[addStep] {
						acc, prod = applyAddOperandFault(ev, acc, prod)
					}
					acc += prod
					for _, ev := range addEvents[addStep] {
						if isResultFlip(ev) {
							acc = fixed.FlipBit(acc, uint(ev.Bit))
						}
					}
				}
				step++
			}
		}
	}
	if p.BiasF != nil {
		b := bias[o]
		biasStep := int64(k - 1)
		for _, ev := range addEvents[biasStep] {
			acc, b = applyAddOperandFault(ev, acc, b)
		}
		acc += b
		for _, ev := range addEvents[biasStep] {
			if isResultFlip(ev) {
				acc = fixed.FlipBit(acc, uint(ev.Bit))
			}
		}
	}
	return p.OutFmt.RequantizeShift(acc, shift)
}

// Event semantics plumbing: rather than threading the Model through every
// engine call, events carry enough information for replay. Operand-flip
// events have Bit < operand width and a meaningful Operand field; result-flip
// events are marked by the sampler with Operand == 0 and the engines are
// invoked with the semantics recorded on the campaign. To keep the engine
// self-contained we encode the semantics in the top bit of Operand.

// MarkResultFlip tags events sampled under ResultFlip semantics so engine
// replay applies them to result registers. Sample always emits Operand 0 for
// ResultFlip; campaigns call this immediately after sampling.
func MarkResultFlip(evs []fault.Event) {
	for i := range evs {
		evs[i].Operand = resultFlipMark
	}
}

const resultFlipMark = 0x80

func isResultFlip(ev fault.Event) bool { return ev.Operand&resultFlipMark != 0 }

// applyMulFault returns the corrupted product of a*b for one event. Flips
// are pure XOR at the sampled bit position: the severity comes from the bit
// position range (W bits for operands, 2W for the product register), while
// involution (flip twice = identity) holds regardless of value magnitude.
func applyMulFault(ev fault.Event, a, b, prod int64) int64 {
	if isResultFlip(ev) {
		return fixed.FlipBit(prod, uint(ev.Bit))
	}
	if ev.Operand == 0 {
		return fixed.FlipBit(a, uint(ev.Bit)) * b
	}
	return a * fixed.FlipBit(b, uint(ev.Bit))
}

// opAfterMulFault returns the operand values after an operand-flip event so
// stacked events compose.
func opAfterMulFault(ev fault.Event, a, b int64) (int64, int64) {
	if isResultFlip(ev) {
		return a, b
	}
	if ev.Operand == 0 {
		return fixed.FlipBit(a, uint(ev.Bit)), b
	}
	return a, fixed.FlipBit(b, uint(ev.Bit))
}

// applyAddOperandFault corrupts the operands of an addition for operand-flip
// events (result flips are applied after the add by the caller). Registers
// are modelled at the W-bit datapath width (see fault.SurfaceBits).
func applyAddOperandFault(ev fault.Event, partial, addend int64) (int64, int64) {
	if isResultFlip(ev) {
		return partial, addend
	}
	if ev.Operand == 0 {
		return fixed.FlipBit(partial, uint(ev.Bit)), addend
	}
	return partial, fixed.FlipBit(addend, uint(ev.Bit))
}
