package conv

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// buildLayer constructs a random quantized conv layer plus its float twin.
func buildLayer(t *testing.T, seed uint64, inC, outC, kh, kw, stride, pad int, withBias bool) (*Params, *tensor.Tensor, []float64) {
	t.Helper()
	r := rng.New(seed)
	w := tensor.New(tensor.Shape{N: outC, C: inC, H: kh, W: kw}).Random(r, 0.5)
	var bias []float64
	if withBias {
		bias = make([]float64, outC)
		for i := range bias {
			bias[i] = r.NormFloat64() * 0.2
		}
	}
	p := NewParams(w, bias, stride, pad, fixed.Int16, fixed.Int16)
	return p, w, bias
}

func randInput(seed uint64, n, c, h, w int) (*tensor.Tensor, *tensor.QTensor) {
	in := tensor.New(tensor.Shape{N: n, C: c, H: h, W: w}).Random(rng.New(seed), 1.0)
	return in, tensor.Quantize(in, fixed.Int16)
}

func TestOutShape(t *testing.T) {
	p, _, _ := buildLayer(t, 1, 3, 8, 3, 3, 1, 1, true)
	got := p.OutShape(tensor.Shape{N: 2, C: 3, H: 32, W: 32})
	if got != (tensor.Shape{N: 2, C: 8, H: 32, W: 32}) {
		t.Errorf("same-pad 3x3 shape = %v", got)
	}
	p2, _, _ := buildLayer(t, 2, 3, 8, 7, 7, 2, 3, false)
	got2 := p2.OutShape(tensor.Shape{N: 1, C: 3, H: 224, W: 224})
	if got2 != (tensor.Shape{N: 1, C: 8, H: 112, W: 112}) {
		t.Errorf("7x7/s2 shape = %v", got2)
	}
}

func TestForwardMatchesFloatReference(t *testing.T) {
	for _, cfg := range []struct {
		name                      string
		inC, outC, kh, kw, s, pad int
		h, w                      int
		bias                      bool
	}{
		{"3x3-pad1", 4, 6, 3, 3, 1, 1, 10, 10, true},
		{"1x1", 8, 4, 1, 1, 1, 0, 7, 7, false},
		{"5x5-stride2", 3, 5, 5, 5, 2, 2, 16, 16, true},
		{"7x7-stride2", 3, 4, 7, 7, 2, 3, 20, 20, false},
		{"rect-kernel", 2, 3, 1, 3, 1, 0, 6, 9, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			p, w, bias := buildLayer(t, 10, cfg.inC, cfg.outC, cfg.kh, cfg.kw, cfg.s, cfg.pad, cfg.bias)
			inF, inQ := randInput(11, 2, cfg.inC, cfg.h, cfg.w)
			got := tensor.Dequantize(Forward(inQ, p))
			want := ForwardFloat(inF, w, bias, cfg.s, cfg.pad)
			// Quantization error bound: each product carries <= LSB error from
			// each operand; K products accumulate.
			k := float64(cfg.inC * cfg.kh * cfg.kw)
			bound := k * 3 * fixed.Int16.Scale()
			if d := tensor.MaxAbsDiff(got, want); d > bound {
				t.Errorf("max diff %v exceeds quantization bound %v", d, bound)
			}
		})
	}
}

func TestCensus(t *testing.T) {
	p, _, _ := buildLayer(t, 3, 4, 8, 3, 3, 1, 1, true)
	in := tensor.Shape{N: 1, C: 4, H: 8, W: 8}
	c := p.Census(in)
	outs := int64(8 * 8 * 8)
	k := int64(4 * 3 * 3)
	if c.Mul != outs*k {
		t.Errorf("muls = %d, want %d", c.Mul, outs*k)
	}
	if c.Add != outs*k { // k-1 accumulations + 1 bias
		t.Errorf("adds = %d, want %d", c.Add, outs*k)
	}
	pNoBias, _, _ := buildLayer(t, 3, 4, 8, 3, 3, 1, 1, false)
	if got := pNoBias.Census(in).Add; got != outs*(k-1) {
		t.Errorf("adds without bias = %d, want %d", got, outs*(k-1))
	}
}

func TestForwardFaultyNoEventsEqualsForward(t *testing.T) {
	p, _, _ := buildLayer(t, 4, 3, 5, 3, 3, 1, 1, true)
	_, inQ := randInput(5, 1, 3, 12, 12)
	a := Forward(inQ, p)
	b := ForwardFaulty(inQ, p, nil)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("nil event list changed output")
		}
	}
}

// bruteForceMulResultFlip computes the layer with an explicit per-op flip at
// the given product index by redoing the arithmetic the slow, obvious way.
func bruteForceMulResultFlip(inQ *tensor.QTensor, p *Params, mulIdx int64, bit uint) *tensor.QTensor {
	padded := inQ.Pad2D(p.Pad)
	outShape := p.OutShape(inQ.Shape)
	out := tensor.NewQ(outShape, p.OutFmt)
	bias := p.accumBias(inQ.Fmt)
	shift := inQ.Fmt.Frac + p.Weight.Fmt.Frac - p.OutFmt.Frac
	ws := p.Weight.Shape
	k := int64(ws.C * ws.H * ws.W)
	var op int64
	for n := 0; n < outShape.N; n++ {
		for o := 0; o < outShape.C; o++ {
			for oy := 0; oy < outShape.H; oy++ {
				for ox := 0; ox < outShape.W; ox++ {
					var acc int64
					first := true
					for c := 0; c < ws.C; c++ {
						for ky := 0; ky < ws.H; ky++ {
							for kx := 0; kx < ws.W; kx++ {
								a := int64(padded.At(n, c, oy*p.Stride+ky, ox*p.Stride+kx))
								b := int64(p.Weight.At(o, c, ky, kx))
								prod := a * b
								if op == mulIdx {
									prod = fixed.FlipBit(prod, bit)
								}
								op++
								if first {
									acc = prod
									first = false
								} else {
									acc += prod
								}
							}
						}
					}
					_ = k
					if bias != nil {
						acc += bias[o]
					}
					out.Set(n, o, oy, ox, p.OutFmt.RequantizeShift(acc, shift))
				}
			}
		}
	}
	return out
}

func TestReplayMulResultFlipMatchesBruteForce(t *testing.T) {
	p, _, _ := buildLayer(t, 6, 2, 3, 3, 3, 1, 1, true)
	_, inQ := randInput(7, 1, 2, 6, 6)
	census := p.Census(inQ.Shape)
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		mulIdx := r.Int63n(census.Mul)
		bit := uint(r.Intn(inQ.Fmt.ProductBits()))
		ev := []fault.Event{{Class: fault.OpMul, Op: mulIdx, Bit: uint8(bit)}}
		MarkResultFlip(ev)
		got := ForwardFaulty(inQ, p, ev)
		want := bruteForceMulResultFlip(inQ, p, mulIdx, bit)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: replay mismatch at %d: got %d want %d (op %d bit %d)",
					trial, i, got.Data[i], want.Data[i], mulIdx, bit)
			}
		}
	}
}

func TestReplayOperandFlipAffectsOnlyOneOutput(t *testing.T) {
	p, _, _ := buildLayer(t, 8, 3, 4, 3, 3, 1, 1, true)
	_, inQ := randInput(9, 1, 3, 8, 8)
	census := p.Census(inQ.Shape)
	golden := Forward(inQ, p)
	r := rng.New(17)
	changedAny := false
	for trial := 0; trial < 100; trial++ {
		ev := fault.Event{
			Class:   fault.OpMul,
			Op:      r.Int63n(census.Mul),
			Bit:     uint8(r.Intn(16)),
			Operand: uint8(r.Intn(2)),
		}
		faulty := ForwardFaulty(inQ, p, []fault.Event{ev})
		diffs := 0
		for i := range golden.Data {
			if golden.Data[i] != faulty.Data[i] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("single mul fault changed %d outputs", diffs)
		}
		if diffs == 1 {
			changedAny = true
		}
	}
	if !changedAny {
		t.Error("100 operand flips never changed any output (suspicious)")
	}
}

func TestReplayAddFaultAffectsOnlyOneOutput(t *testing.T) {
	p, _, _ := buildLayer(t, 18, 3, 4, 3, 3, 1, 1, true)
	_, inQ := randInput(19, 1, 3, 8, 8)
	census := p.Census(inQ.Shape)
	golden := Forward(inQ, p)
	r := rng.New(23)
	for trial := 0; trial < 100; trial++ {
		ev := fault.Event{
			Class:   fault.OpAdd,
			Op:      r.Int63n(census.Add),
			Bit:     uint8(r.Intn(inQ.Fmt.Width)),
			Operand: uint8(r.Intn(2)),
		}
		faulty := ForwardFaulty(inQ, p, []fault.Event{ev})
		diffs := 0
		for i := range golden.Data {
			if golden.Data[i] != faulty.Data[i] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("single add fault changed %d outputs", diffs)
		}
	}
}

func TestOperandFlipMulSeverity(t *testing.T) {
	// The induced output error of an operand flip on a multiplication must
	// scale with the other operand: corrupting an activation bit against a
	// large weight must move the output more than against a tiny weight.
	f := fixed.Int16
	mk := func(wval float64) (*Params, *tensor.QTensor) {
		w := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1})
		w.Data[0] = wval
		p := NewParams(w, nil, 1, 0, f, f)
		in := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1})
		in.Data[0] = 0.5
		return p, tensor.Quantize(in, f)
	}
	errFor := func(wval float64) float64 {
		p, inQ := mk(wval)
		golden := Forward(inQ, p)
		ev := []fault.Event{{Class: fault.OpMul, Op: 0, Bit: 12, Operand: 0}}
		faulty := ForwardFaulty(inQ, p, ev)
		return math.Abs(float64(faulty.Data[0] - golden.Data[0]))
	}
	small, large := errFor(0.01), errFor(50)
	if large <= small {
		t.Errorf("operand-flip error with large weight (%v) not larger than with small weight (%v)", large, small)
	}
}

func TestStatisticalEquivalenceToBernoulli(t *testing.T) {
	// Ground truth: per-op Bernoulli injection run the brute-force way must
	// produce the same distribution of corrupted-output counts as the
	// sampled-events path. We compare the mean number of changed outputs.
	p, _, _ := buildLayer(t, 31, 2, 2, 3, 3, 1, 1, false)
	_, inQ := randInput(32, 1, 2, 6, 6)
	census := p.Census(inQ.Shape)
	golden := Forward(inQ, p)
	m := fault.Model{BER: 2e-4, Semantics: fault.ResultFlip}

	countDiffs := func(out *tensor.QTensor) int {
		d := 0
		for i := range out.Data {
			if out.Data[i] != golden.Data[i] {
				d++
			}
		}
		return d
	}

	const rounds = 800
	r := rng.New(77)
	var sampled float64
	for i := 0; i < rounds; i++ {
		evs := fault.Sample(r.Split(uint64(i)), census, census, m, inQ.Fmt, fault.Protection{})
		MarkResultFlip(evs)
		sampled += float64(countDiffs(ForwardFaulty(inQ, p, evs)))
	}
	sampled /= rounds

	// Brute force: flip each op's result bits with independent Bernoulli.
	var brute float64
	rb := rng.New(78)
	for i := 0; i < rounds; i++ {
		var evs []fault.Event
		for op := int64(0); op < census.Mul; op++ {
			for bit := 0; bit < inQ.Fmt.ProductBits(); bit++ {
				if rb.Bernoulli(m.BER) {
					evs = append(evs, fault.Event{Class: fault.OpMul, Op: op, Bit: uint8(bit)})
				}
			}
		}
		for op := int64(0); op < census.Add; op++ {
			for bit := 0; bit < inQ.Fmt.Width; bit++ {
				if rb.Bernoulli(m.BER) {
					evs = append(evs, fault.Event{Class: fault.OpAdd, Op: op, Bit: uint8(bit)})
				}
			}
		}
		MarkResultFlip(evs)
		brute += float64(countDiffs(ForwardFaulty(inQ, p, evs)))
	}
	brute /= rounds

	if brute == 0 {
		t.Fatal("brute force produced no corruption; BER too low for test")
	}
	if ratio := sampled / brute; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("sampled/brute corrupted-output ratio = %v (sampled %v, brute %v)", ratio, sampled, brute)
	}
}

func TestNewParamsValidation(t *testing.T) {
	w := tensor.New(tensor.Shape{N: 2, C: 2, H: 3, W: 3})
	for name, fn := range map[string]func(){
		"stride0": func() { NewParams(w, nil, 0, 1, fixed.Int16, fixed.Int16) },
		"negPad":  func() { NewParams(w, nil, 1, -1, fixed.Int16, fixed.Int16) },
		"badBias": func() { NewParams(w, make([]float64, 3), 1, 1, fixed.Int16, fixed.Int16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChannelMismatchPanics(t *testing.T) {
	p, _, _ := buildLayer(t, 40, 3, 2, 3, 3, 1, 1, false)
	_, inQ := randInput(41, 1, 4, 8, 8)
	defer func() {
		if recover() == nil {
			t.Error("channel mismatch did not panic")
		}
	}()
	Forward(inQ, p)
}

func BenchmarkForward16x16x64(b *testing.B) {
	r := rng.New(1)
	w := tensor.New(tensor.Shape{N: 64, C: 64, H: 3, W: 3}).Random(r, 0.1)
	p := NewParams(w, nil, 1, 1, fixed.Int16, fixed.Int16)
	in := tensor.New(tensor.Shape{N: 1, C: 64, H: 16, W: 16}).Random(r, 1)
	inQ := tensor.Quantize(in, fixed.Int16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(inQ, p)
	}
}

func TestCensusForMatchesParamsCensus(t *testing.T) {
	in := tensor.Shape{N: 2, C: 5, H: 17, W: 13}
	for _, c := range []struct{ k, s, pad int }{{3, 1, 1}, {7, 2, 3}, {1, 1, 0}, {5, 2, 2}} {
		for _, bias := range []bool{true, false} {
			var bs []float64
			if bias {
				bs = make([]float64, 4)
			}
			w := tensor.New(tensor.Shape{N: 4, C: 5, H: c.k, W: c.k})
			p := NewParams(w, bs, c.s, c.pad, fixed.Int16, fixed.Int16)
			got := CensusFor(in, 4, c.k, c.k, c.s, c.pad, bias)
			if got != p.Census(in) {
				t.Errorf("k%d s%d bias=%v: CensusFor %v != Census %v", c.k, c.s, bias, got, p.Census(in))
			}
		}
	}
}
