// Package dataset generates the deterministic synthetic evaluation sets that
// stand in for CIFAR-10/100 and ImageNet. Fault-injection outcomes depend on
// activation magnitude statistics rather than label semantics (accuracy is
// measured as agreement with the fault-free golden prediction, see
// DESIGN.md), so the sets are built from smooth per-class prototype fields
// plus noise, giving realistic spatially-correlated inputs in a known range.
package dataset

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Set is a quantized evaluation set.
type Set struct {
	Name    string
	Classes int
	Labels  []int // prototype class of each image (informational)
	Images  *tensor.QTensor
}

// N returns the number of images.
func (s *Set) N() int { return s.Images.Shape.N }

// Batch returns images [lo, hi) as an independent quantized tensor.
func (s *Set) Batch(lo, hi int) *tensor.QTensor {
	if lo < 0 || hi > s.N() || lo >= hi {
		panic(fmt.Sprintf("dataset: bad batch range [%d,%d) of %d", lo, hi, s.N()))
	}
	sh := s.Images.Shape
	per := sh.C * sh.H * sh.W
	out := tensor.NewQ(tensor.Shape{N: hi - lo, C: sh.C, H: sh.H, W: sh.W}, s.Images.Fmt)
	copy(out.Data, s.Images.Data[lo*per:hi*per])
	return out
}

// Synthetic builds a deterministic n-image set with the given geometry:
// each image is a smooth class prototype plus i.i.d. noise, normalized to
// roughly unit standard deviation (matching the calibration assumptions of
// the quantized model zoo).
func Synthetic(name string, classes, n, c, h, w int, seed uint64, f fixed.Format) *Set {
	if classes < 2 || n < 1 {
		panic("dataset: need at least 2 classes and 1 image")
	}
	root := rng.New(seed)
	protos := make([]*tensor.Tensor, classes)
	for k := range protos {
		protos[k] = smoothField(root.Split(uint64(k)), c, h, w)
	}
	imgs := tensor.New(tensor.Shape{N: n, C: c, H: h, W: w})
	labels := make([]int, n)
	noise := root.SplitString("noise")
	per := c * h * w
	for i := 0; i < n; i++ {
		k := i % classes
		labels[i] = k
		base := i * per
		p := protos[k]
		for j := 0; j < per; j++ {
			imgs.Data[base+j] = 0.7*p.Data[j] + 0.5*noise.NormFloat64()
		}
	}
	return &Set{Name: name, Classes: classes, Labels: labels, Images: tensor.Quantize(imgs, f)}
}

// smoothField returns a {1,c,h,w} tensor of spatially-correlated noise built
// by box-blurring white noise, mimicking natural-image local correlation.
func smoothField(r *rng.Stream, c, h, w int) *tensor.Tensor {
	t := tensor.New(tensor.Shape{N: 1, C: c, H: h, W: w}).Random(r, 1)
	out := tensor.New(t.Shape)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var sum float64
				var cnt int
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= h || xx < 0 || xx >= w {
							continue
						}
						sum += t.At(0, ci, yy, xx)
						cnt++
					}
				}
				out.Set(0, ci, y, x, sum/float64(cnt)*1.8)
			}
		}
	}
	return out
}

// ForModel returns the conventional stand-in set for one of the paper's
// dataset names ("cifar10", "cifar100", "imagenet") at the given image size.
func ForModel(dsName string, n, size int, seed uint64, f fixed.Format) *Set {
	classes := map[string]int{"cifar10": 10, "cifar100": 100, "imagenet": 1000}[dsName]
	if classes == 0 {
		classes = 10
	}
	// Prototype count is capped: golden-agreement accuracy does not need one
	// prototype per class, only input diversity.
	protoClasses := classes
	if protoClasses > 32 {
		protoClasses = 32
	}
	return Synthetic(dsName, protoClasses, n, 3, size, size, seed, f)
}
