package dataset

import (
	"math"
	"testing"

	"repro/internal/fixed"
)

func TestSyntheticGeometry(t *testing.T) {
	s := Synthetic("test", 10, 25, 3, 16, 16, 1, fixed.Int16)
	if s.N() != 25 {
		t.Errorf("N = %d", s.N())
	}
	if len(s.Labels) != 25 {
		t.Errorf("labels = %d", len(s.Labels))
	}
	for i, l := range s.Labels {
		if l != i%10 {
			t.Errorf("label[%d] = %d, want round-robin", i, l)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("a", 4, 6, 3, 8, 8, 7, fixed.Int16)
	b := Synthetic("b", 4, 6, 3, 8, 8, 7, fixed.Int16)
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := Synthetic("c", 4, 6, 3, 8, 8, 8, fixed.Int16)
	same := true
	for i := range a.Images.Data {
		if a.Images.Data[i] != c.Images.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestSyntheticStatistics(t *testing.T) {
	s := Synthetic("stats", 8, 64, 3, 16, 16, 3, fixed.Int16)
	var sum, sumsq float64
	for _, v := range s.Images.Data {
		x := s.Images.Fmt.Dequantize(v)
		sum += x
		sumsq += x * x
	}
	n := float64(len(s.Images.Data))
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if std < 0.4 || std > 1.6 {
		t.Errorf("std = %v, want ~unit", std)
	}
}

func TestSameClassMoreSimilar(t *testing.T) {
	// Images sharing a prototype must correlate more than images that don't.
	s := Synthetic("corr", 2, 8, 1, 16, 16, 5, fixed.Int16)
	per := 16 * 16
	img := func(i int) []int32 { return s.Images.Data[i*per : (i+1)*per] }
	corr := func(a, b []int32) float64 {
		var num, da, db float64
		for i := range a {
			num += float64(a[i]) * float64(b[i])
			da += float64(a[i]) * float64(a[i])
			db += float64(b[i]) * float64(b[i])
		}
		return num / math.Sqrt(da*db)
	}
	// 0,2,4,6 share class 0; 1,3,5,7 share class 1.
	same := corr(img(0), img(2)) + corr(img(4), img(6))
	diff := corr(img(0), img(1)) + corr(img(2), img(3))
	if same <= diff {
		t.Errorf("same-class correlation %v not above cross-class %v", same, diff)
	}
}

func TestBatch(t *testing.T) {
	s := Synthetic("batch", 4, 10, 3, 8, 8, 9, fixed.Int8)
	b := s.Batch(2, 5)
	if b.Shape.N != 3 {
		t.Errorf("batch N = %d", b.Shape.N)
	}
	per := 3 * 8 * 8
	for i := 0; i < per; i++ {
		if b.Data[i] != s.Images.Data[2*per+i] {
			t.Fatal("batch content misaligned")
		}
	}
	// Independence.
	b.Data[0]++
	if s.Images.Data[2*per] == b.Data[0] {
		t.Error("batch shares storage with set")
	}
}

func TestBatchPanicsOnBadRange(t *testing.T) {
	s := Synthetic("bad", 2, 4, 1, 4, 4, 1, fixed.Int16)
	for _, r := range [][2]int{{-1, 2}, {0, 5}, {3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", r)
				}
			}()
			s.Batch(r[0], r[1])
		}()
	}
}

func TestForModel(t *testing.T) {
	for name, classes := range map[string]int{"cifar10": 10, "cifar100": 32, "imagenet": 32} {
		s := ForModel(name, 6, 16, 1, fixed.Int16)
		if s.Classes != classes {
			t.Errorf("%s: classes = %d, want %d (capped)", name, s.Classes, classes)
		}
		if s.Images.Shape.C != 3 || s.Images.Shape.H != 16 {
			t.Errorf("%s: shape %v", name, s.Images.Shape)
		}
	}
	if s := ForModel("unknown", 4, 8, 1, fixed.Int16); s.Classes != 10 {
		t.Error("unknown dataset should default to 10 classes")
	}
}

func TestSyntheticValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-class set did not panic")
		}
	}()
	Synthetic("x", 1, 4, 1, 4, 4, 1, fixed.Int16)
}
