package kernel

func init() { Register(scalar{}) }

// scalar is the reference backend: the engines' original inner loops, moved
// here verbatim. Every other backend is validated bit-exactly against it.
type scalar struct{}

func (scalar) Name() string { return "scalar" }

func (scalar) ConvRow(acc []int64, in, w []int32, bias int64, inBase, stride, ic, kh, kw, chanStride, rowStride int) {
	for ox := range acc {
		acc[ox] = convOne(in, w, bias, inBase+ox*stride, ic, kh, kw, chanStride, rowStride)
	}
}

// convOne is the scalar MAC chain of one output element, shared with the
// blocked backend's remainder columns.
func convOne(in, w []int32, bias int64, base, ic, kh, kw, chanStride, rowStride int) int64 {
	acc := bias
	wi := 0
	for c := 0; c < ic; c++ {
		inRow := base + c*chanStride
		for ky := 0; ky < kh; ky++ {
			row := in[inRow : inRow+kw : inRow+kw]
			wRow := w[wi : wi+kw : wi+kw]
			for kx := 0; kx < kw; kx++ {
				acc += int64(row[kx]) * int64(wRow[kx])
			}
			inRow += rowStride
			wi += kw
		}
	}
	return acc
}

func (scalar) Dot(a, b []int32, bias int64) int64 {
	b = b[:len(a)]
	acc := bias
	for i, av := range a {
		acc += int64(av) * int64(b[i])
	}
	return acc
}

func (scalar) Hadamard(msum, vt []int64, ut []int32, t2, outC, inC int) {
	// For each (position, out channel) both the weight row ut[i][o][:] and
	// the activation row vt[i][:] are contiguous; summation order is
	// irrelevant to the result (int64 ring), so the 4-wide unroll is
	// bit-identical to the plain loop.
	for i := 0; i < t2; i++ {
		vRow := vt[i*inC : (i+1)*inC]
		uPos := ut[i*outC*inC : (i+1)*outC*inC]
		for o := 0; o < outC; o++ {
			uRow := uPos[o*inC : o*inC+inC]
			uRow = uRow[:len(vRow)]
			var s int64
			c := 0
			for ; c+3 < len(vRow); c += 4 {
				s += int64(uRow[c])*vRow[c] +
					int64(uRow[c+1])*vRow[c+1] +
					int64(uRow[c+2])*vRow[c+2] +
					int64(uRow[c+3])*vRow[c+3]
			}
			for ; c < len(vRow); c++ {
				s += int64(uRow[c]) * vRow[c]
			}
			msum[o*t2+i] = s
		}
	}
}

func (scalar) InputRows(t Tile, src []int32, stride int, out []int64) {
	if t == F4 {
		f4InputRows(src, stride, out)
		return
	}
	f2InputRows(src, stride, out)
}

func (scalar) Output(t Tile, msum, y []int64) {
	if t == F4 {
		f4Output(msum, y)
		return
	}
	f2Output(msum, y)
}

// The straight-line shift-add transform networks below are specializations
// of the generic matTransform for the constant BT/AT matrices of F(2x2,3x3)
// and F(4x4,3x3) — exactly as hardware implements them. They are shared by
// every backend: the transforms are pure adds with tiny constant multiplies
// and leave no blocking freedom worth a per-backend variant.

// f2InputRows computes out = BT·d·BTᵀ for F(2x2,3x3), reading the 4x4 window
// straight from four activation rows of pitch stride: per 1D pass
// r0 = x0-x2, r1 = x1+x2, r2 = x2-x1, r3 = x1-x3.
func f2InputRows(src []int32, stride int, out []int64) {
	var s [16]int64
	r0 := src[0:4:4]
	r1 := src[stride : stride+4 : stride+4]
	r2 := src[2*stride : 2*stride+4 : 2*stride+4]
	r3 := src[3*stride : 3*stride+4 : 3*stride+4]
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := int64(r0[c]), int64(r1[c]), int64(r2[c]), int64(r3[c])
		s[c] = d0 - d2
		s[4+c] = d1 + d2
		s[8+c] = d2 - d1
		s[12+c] = d1 - d3
	}
	_ = out[15]
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3 := s[r*4], s[r*4+1], s[r*4+2], s[r*4+3]
		out[r*4] = s0 - s2
		out[r*4+1] = s1 + s2
		out[r*4+2] = s2 - s1
		out[r*4+3] = s1 - s3
	}
}

// f2Output computes out = AT·msum·ATᵀ for F(2x2,3x3): per 1D pass
// r0 = x0+x1+x2, r1 = x1-x2-x3.
func f2Output(msum, out []int64) {
	var s [8]int64
	_ = msum[15]
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := msum[c], msum[4+c], msum[8+c], msum[12+c]
		s[c] = m0 + m1 + m2
		s[4+c] = m1 - m2 - m3
	}
	_ = out[3]
	for r := 0; r < 2; r++ {
		s0, s1, s2, s3 := s[r*4], s[r*4+1], s[r*4+2], s[r*4+3]
		out[r*2] = s0 + s1 + s2
		out[r*2+1] = s1 - s2 - s3
	}
}

// f4InputRows is the F(4x4,3x3) input transform reading the 6x6 window
// straight from six activation rows of pitch stride: per 1D pass
//
//	r0 = 4x0 - 5x2 + x4
//	r1 = -4x1 - 4x2 + x3 + x4
//	r2 = 4x1 - 4x2 - x3 + x4
//	r3 = -2x1 - x2 + 2x3 + x4
//	r4 = 2x1 - x2 - 2x3 + x4
//	r5 = 4x1 - 5x3 + x5
func f4InputRows(src []int32, stride int, out []int64) {
	var s [36]int64
	for c := 0; c < 6; c++ {
		d0 := int64(src[c])
		d1 := int64(src[stride+c])
		d2 := int64(src[2*stride+c])
		d3 := int64(src[3*stride+c])
		d4 := int64(src[4*stride+c])
		d5 := int64(src[5*stride+c])
		s[c] = 4*d0 - 5*d2 + d4
		s[6+c] = -4*d1 - 4*d2 + d3 + d4
		s[12+c] = 4*d1 - 4*d2 - d3 + d4
		s[18+c] = -2*d1 - d2 + 2*d3 + d4
		s[24+c] = 2*d1 - d2 - 2*d3 + d4
		s[30+c] = 4*d1 - 5*d3 + d5
	}
	_ = out[35]
	for r := 0; r < 6; r++ {
		s0, s1, s2, s3, s4, s5 := s[r*6], s[r*6+1], s[r*6+2], s[r*6+3], s[r*6+4], s[r*6+5]
		out[r*6] = 4*s0 - 5*s2 + s4
		out[r*6+1] = -4*s1 - 4*s2 + s3 + s4
		out[r*6+2] = 4*s1 - 4*s2 - s3 + s4
		out[r*6+3] = -2*s1 - s2 + 2*s3 + s4
		out[r*6+4] = 2*s1 - s2 - 2*s3 + s4
		out[r*6+5] = 4*s1 - 5*s3 + s5
	}
}

// f4Output is the F(4x4,3x3) output transform: per 1D pass
//
//	r0 = x0 + x1 + x2 + x3 + x4
//	r1 = x1 - x2 + 2x3 - 2x4
//	r2 = x1 + x2 + 4x3 + 4x4
//	r3 = x1 - x2 + 8x3 - 8x4 + x5
func f4Output(msum, out []int64) {
	var s [24]int64
	_ = msum[35]
	for c := 0; c < 6; c++ {
		m0, m1, m2, m3, m4, m5 := msum[c], msum[6+c], msum[12+c], msum[18+c], msum[24+c], msum[30+c]
		s[c] = m0 + m1 + m2 + m3 + m4
		s[6+c] = m1 - m2 + 2*m3 - 2*m4
		s[12+c] = m1 + m2 + 4*m3 + 4*m4
		s[18+c] = m1 - m2 + 8*m3 - 8*m4 + m5
	}
	_ = out[15]
	for r := 0; r < 4; r++ {
		s0, s1, s2, s3, s4, s5 := s[r*6], s[r*6+1], s[r*6+2], s[r*6+3], s[r*6+4], s[r*6+5]
		out[r*4] = s0 + s1 + s2 + s3 + s4
		out[r*4+1] = s1 - s2 + 2*s3 - 2*s4
		out[r*4+2] = s1 + s2 + 4*s3 + 4*s4
		out[r*4+3] = s1 - s2 + 8*s3 - 8*s4 + s5
	}
}
