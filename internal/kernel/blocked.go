package kernel

func init() { Register(blocked{}) }

// blocked is the hand-blocked int32 backend: 4-wide output-column MAC
// blocking for direct convolution (each loaded weight feeds four
// accumulators) and output-channel-paired, 2-wide channel-unrolled Hadamard
// accumulation (each loaded activation feeds two output channels, with two
// independent partial sums per channel for ILP).
//
// Bit-exactness is by construction, not by tolerance: every accumulator is
// an int64 sum over exactly the same set of int64 products the scalar
// reference sums, merely reassociated — and int64 addition is associative
// and commutative (wrapping two's-complement ring), so the final sums are
// bit-identical, for every input. The transforms are shared with scalar
// outright: they are straight-line adds with no blocking freedom.
type blocked struct{}

func (blocked) Name() string { return "blocked" }

func (blocked) ConvRow(acc []int64, in, w []int32, bias int64, inBase, stride, ic, kh, kw, chanStride, rowStride int) {
	ow := len(acc)
	ox := 0
	// Stride-1 3-wide kernels (the dominant conv shape) share input loads
	// across the block: the four windows overlap in 6 activations, so each
	// (channel, kernel row) costs 6 loads instead of 12. Every accumulator
	// still sums exactly its own scalar product set.
	if stride == 1 && kw == 3 {
		for ; ox+3 < ow; ox += 4 {
			base := inBase + ox
			s0, s1, s2, s3 := bias, bias, bias, bias
			wi := 0
			for c := 0; c < ic; c++ {
				inRow := base + c*chanStride
				for ky := 0; ky < kh; ky++ {
					row := in[inRow : inRow+6 : inRow+6]
					w0, w1, w2 := int64(w[wi]), int64(w[wi+1]), int64(w[wi+2])
					d0, d1, d2 := int64(row[0]), int64(row[1]), int64(row[2])
					d3, d4, d5 := int64(row[3]), int64(row[4]), int64(row[5])
					s0 += d0*w0 + d1*w1 + d2*w2
					s1 += d1*w0 + d2*w1 + d3*w2
					s2 += d2*w0 + d3*w1 + d4*w2
					s3 += d3*w0 + d4*w1 + d5*w2
					inRow += rowStride
					wi += 3
				}
			}
			acc[ox], acc[ox+1], acc[ox+2], acc[ox+3] = s0, s1, s2, s3
		}
		for ; ox < ow; ox++ {
			acc[ox] = convOne(in, w, bias, inBase+ox, ic, kh, kw, chanStride, rowStride)
		}
		return
	}
	for ; ox+3 < ow; ox += 4 {
		base := inBase + ox*stride
		s0, s1, s2, s3 := bias, bias, bias, bias
		wi := 0
		for c := 0; c < ic; c++ {
			inRow := base + c*chanStride
			for ky := 0; ky < kh; ky++ {
				wRow := w[wi : wi+kw : wi+kw]
				for kx := 0; kx < kw; kx++ {
					wv := int64(wRow[kx])
					p := inRow + kx
					s0 += int64(in[p]) * wv
					s1 += int64(in[p+stride]) * wv
					s2 += int64(in[p+2*stride]) * wv
					s3 += int64(in[p+3*stride]) * wv
				}
				inRow += rowStride
				wi += kw
			}
		}
		acc[ox], acc[ox+1], acc[ox+2], acc[ox+3] = s0, s1, s2, s3
	}
	for ; ox < ow; ox++ {
		acc[ox] = convOne(in, w, bias, inBase+ox*stride, ic, kh, kw, chanStride, rowStride)
	}
}

func (blocked) Dot(a, b []int32, bias int64) int64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += int64(a[i]) * int64(b[i])
		s1 += int64(a[i+1]) * int64(b[i+1])
		s2 += int64(a[i+2]) * int64(b[i+2])
		s3 += int64(a[i+3]) * int64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int64(a[i]) * int64(b[i])
	}
	return bias + (s0 + s1) + (s2 + s3)
}

func (blocked) Hadamard(msum, vt []int64, ut []int32, t2, outC, inC int) {
	for i := 0; i < t2; i++ {
		vRow := vt[i*inC : (i+1)*inC]
		uPos := ut[i*outC*inC : (i+1)*outC*inC]
		o := 0
		for ; o+1 < outC; o += 2 {
			u0 := uPos[o*inC : o*inC+inC]
			u1 := uPos[(o+1)*inC : (o+1)*inC+inC]
			u0 = u0[:len(vRow)]
			u1 = u1[:len(vRow)]
			var a0, b0, a1, b1 int64
			c := 0
			for ; c+1 < len(vRow); c += 2 {
				v0, v1 := vRow[c], vRow[c+1]
				a0 += int64(u0[c]) * v0
				b0 += int64(u0[c+1]) * v1
				a1 += int64(u1[c]) * v0
				b1 += int64(u1[c+1]) * v1
			}
			if c < len(vRow) {
				v0 := vRow[c]
				a0 += int64(u0[c]) * v0
				a1 += int64(u1[c]) * v0
			}
			msum[o*t2+i] = a0 + b0
			msum[(o+1)*t2+i] = a1 + b1
		}
		if o < outC {
			uRow := uPos[o*inC : o*inC+inC]
			uRow = uRow[:len(vRow)]
			var s int64
			for c, v := range vRow {
				s += int64(uRow[c]) * v
			}
			msum[o*t2+i] = s
		}
	}
}

func (blocked) InputRows(t Tile, src []int32, stride int, out []int64) {
	if t == F4 {
		f4InputRows(src, stride, out)
		return
	}
	f2InputRows(src, stride, out)
}

func (blocked) Output(t Tile, msum, y []int64) {
	if t == F4 {
		f4Output(msum, y)
		return
	}
	f2Output(msum, y)
}
