// Package kernel is the pluggable compute-backend seam of the engines: a
// small Backend interface over the fault-free hot paths — the direct-conv
// MAC chain, the FC dot product, the winograd f2/f4 input/output transforms
// and the per-tile Hadamard accumulation — with a registry so alternative
// implementations (blocked today; asm or SIMD tomorrow) are a one-package
// drop-in behind a name.
//
// The contract every Backend must honor is bit-exactness, not approximate
// equality: int64 addition and multiplication form a commutative ring
// (wrapping two's-complement), so any implementation that sums the SAME SET
// of int64 products per accumulator — in any association or order — and
// leaves requantization to the caller produces results bit-identical to the
// scalar reference. Backends may therefore block, unroll, and reassociate
// freely, but must never round intermediates, change the product set, or
// requantize early. The fault-replay paths (conv.replayOutput,
// winograd.replayTile and the summation-segment walk) deliberately stay on
// the reference scalar code: events are rare and their op-order contract is
// correctness-critical, so they are not part of this interface.
package kernel

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Tile names a winograd tile algorithm for the transform entry points.
type Tile int

const (
	// F2 is F(2x2,3x3): 4x4 input tiles, 2x2 output tiles.
	F2 Tile = iota
	// F4 is F(4x4,3x3): 6x6 input tiles, 4x4 output tiles.
	F4
)

// Backend implements the fault-free hot-path kernels. All methods are pure
// integer arithmetic over caller-owned buffers: implementations must not
// allocate (the zero-allocation steady state is pinned by alloc tests) and
// must return accumulator sums bit-identical to the scalar reference.
type Backend interface {
	// Name is the registry key ("scalar", "blocked").
	Name() string

	// ConvRow computes one direct-convolution output row of accumulators:
	// for each ox in [0, len(acc)),
	//
	//	acc[ox] = bias + Σ_{c,ky,kx} in[inBase + c·chanStride + ky·rowStride + ox·stride + kx] · w[(c·kh+ky)·kw + kx]
	//
	// where in is the padded activation plane, w the ic·kh·kw weight block of
	// one output channel, inBase the flat index of the row's top-left input
	// element in channel 0, chanStride the input channel pitch and rowStride
	// the input row pitch. The caller requantizes.
	ConvRow(acc []int64, in, w []int32, bias int64, inBase, stride, ic, kh, kw, chanStride, rowStride int)

	// Dot returns bias + Σ a[i]·b[i] — the fully-connected (1x1 conv over a
	// 1x1 plane) special case where both operand rows are contiguous.
	Dot(a, b []int32, bias int64) int64

	// Hadamard computes the per-tile winograd Hadamard products with channel
	// accumulation: msum[o·t2+i] = Σ_c ut[(i·outC+o)·inC + c] · vt[i·inC + c]
	// for every (position i, output channel o). ut is the position-major
	// transposed weight block UT, vt the position-major transformed input.
	Hadamard(msum, vt []int64, ut []int32, t2, outC, inC int)

	// InputRows computes the 2D winograd input transform BT·d·BTᵀ of tile t,
	// reading the TxT input window directly from activation rows at src with
	// row pitch stride, into the T² accumulator-domain outputs.
	InputRows(t Tile, src []int32, stride int, out []int64)

	// Output computes the 2D winograd output transform AT·msum·ATᵀ of tile t
	// into the M² accumulator-domain outputs.
	Output(t Tile, msum, y []int64)
}

var (
	regMu    sync.RWMutex
	backends = map[string]Backend{}

	defaultOnce sync.Once
	defaultBk   Backend
)

// Register adds a backend under its Name. It panics on an empty or duplicate
// name; backends register from init functions, so a collision is a build
// defect, not a runtime condition.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("kernel: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("kernel: backend %q registered twice", name))
	}
	backends[name] = b
}

// Get resolves a backend by name. The empty string means the process default
// (see Default). Unknown names return a descriptive error listing the
// registered backends, so misspellings surface at configuration time rather
// than as silently-scalar campaigns.
func Get(name string) (Backend, error) {
	if name == "" {
		return Default(), nil
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if b, ok := backends[name]; ok {
		return b, nil
	}
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("kernel: unknown backend %q (have %s)", name, strings.Join(names, ", "))
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default returns the process-default backend: scalar — the bit-exactness
// reference — unless the WF_BACKEND environment variable names another
// registered backend. The env override is the forcing seam CI's
// backend-matrix job uses to run the whole test suite through an alternate
// backend without touching any call site; because every backend is
// bit-identical, the suite must pass unchanged. A WF_BACKEND naming no
// registered backend panics: silently falling back would defeat the forcing.
func Default() Backend {
	defaultOnce.Do(func() {
		defaultBk = scalar{}
		if name := os.Getenv("WF_BACKEND"); name != "" {
			regMu.RLock()
			b, ok := backends[name]
			regMu.RUnlock()
			if !ok {
				panic(fmt.Sprintf("kernel: WF_BACKEND=%q is not a registered backend", name))
			}
			defaultBk = b
		}
	})
	return defaultBk
}
