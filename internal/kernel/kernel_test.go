package kernel

import (
	"math/rand"
	"testing"
)

// randInts fills a slice with full-range int16-ish operand values (the
// engines never feed the kernels anything wider than the quantized formats,
// but the ring argument holds for any int32, so test the full range).
func randInts(r *rand.Rand, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Uint32())
	}
	return out
}

func randInt64s(r *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(int32(r.Uint32()))
	}
	return out
}

// TestRegistry pins the registry contract: both shipped backends resolve by
// name, the empty name resolves to the default, and unknown names error with
// the available set.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"scalar", "blocked"} {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := Get(""); err != nil || b == nil {
		t.Errorf("Get(\"\") = %v, %v; want the default backend", b, err)
	}
	if _, err := Get("simd-avx512"); err == nil {
		t.Error("Get of an unregistered backend did not error")
	}
	names := Names()
	if len(names) < 2 || names[0] != "blocked" || names[1] != "scalar" {
		t.Errorf("Names() = %v, want sorted [blocked scalar ...]", names)
	}
}

// TestConvRowBitIdentical drives both backends over randomized geometries
// and operands and requires byte-equal accumulator rows. This is the
// kernel-level half of the cross-backend differential guarantee; the
// engine-level half lives in the repo-root backend tests.
func TestConvRowBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sc, bl := scalar{}, blocked{}
	for trial := 0; trial < 200; trial++ {
		ic := 1 + r.Intn(5)
		kh := 1 + r.Intn(4)
		kw := 1 + r.Intn(4)
		stride := 1 + r.Intn(3)
		ow := 1 + r.Intn(11) // exercises the 4-wide blocks and all remainders
		rowStride := kw + (ow-1)*stride + r.Intn(3)
		chanStride := rowStride * (kh + r.Intn(3))
		in := randInts(r, chanStride*ic)
		w := randInts(r, ic*kh*kw)
		bias := int64(int32(r.Uint32()))
		want := make([]int64, ow)
		got := make([]int64, ow)
		sc.ConvRow(want, in, w, bias, 0, stride, ic, kh, kw, chanStride, rowStride)
		bl.ConvRow(got, in, w, bias, 0, stride, ic, kh, kw, chanStride, rowStride)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d (ic=%d kh=%d kw=%d stride=%d ow=%d): acc[%d] scalar %d != blocked %d",
					trial, ic, kh, kw, stride, ow, i, want[i], got[i])
			}
		}
	}
}

// TestDotBitIdentical: the FC dot must agree for every length (unroll blocks
// plus remainders) including the empty row.
func TestDotBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sc, bl := scalar{}, blocked{}
	for n := 0; n <= 37; n++ {
		a := randInts(r, n)
		b := randInts(r, n)
		bias := int64(int32(r.Uint32()))
		if want, got := sc.Dot(a, b, bias), bl.Dot(a, b, bias); want != got {
			t.Fatalf("Dot len %d: scalar %d != blocked %d", n, want, got)
		}
	}
}

// TestHadamardBitIdentical covers odd/even channel counts on both tile
// sizes, so the paired-output-channel and 2-wide-channel remainders are all
// exercised.
func TestHadamardBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sc, bl := scalar{}, blocked{}
	for _, t2 := range []int{16, 36} {
		for _, outC := range []int{1, 2, 3, 8, 13} {
			for _, inC := range []int{1, 2, 3, 4, 7, 16} {
				vt := randInt64s(r, t2*inC)
				ut := randInts(r, t2*outC*inC)
				want := make([]int64, outC*t2)
				got := make([]int64, outC*t2)
				sc.Hadamard(want, vt, ut, t2, outC, inC)
				bl.Hadamard(got, vt, ut, t2, outC, inC)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("t2=%d outC=%d inC=%d: msum[%d] scalar %d != blocked %d",
							t2, outC, inC, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestTransformsShared: the transform entry points must agree across
// backends (they share one implementation; this pins that they keep doing
// so if a backend ever specializes them).
func TestTransformsShared(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	sc, bl := scalar{}, blocked{}
	for _, tc := range []struct {
		tile Tile
		t, m int
	}{{F2, 4, 2}, {F4, 6, 4}} {
		stride := tc.t + 3
		src := randInts(r, (tc.t-1)*stride+tc.t)
		a := make([]int64, tc.t*tc.t)
		b := make([]int64, tc.t*tc.t)
		sc.InputRows(tc.tile, src, stride, a)
		bl.InputRows(tc.tile, src, stride, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tile %v: InputRows[%d] %d != %d", tc.tile, i, a[i], b[i])
			}
		}
		msum := randInt64s(r, tc.t*tc.t)
		ya := make([]int64, tc.m*tc.m)
		yb := make([]int64, tc.m*tc.m)
		sc.Output(tc.tile, msum, ya)
		bl.Output(tc.tile, msum, yb)
		for i := range ya {
			if ya[i] != yb[i] {
				t.Fatalf("tile %v: Output[%d] %d != %d", tc.tile, i, ya[i], yb[i])
			}
		}
	}
}
