package nn

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

func qIn(seed uint64, n, c, h, w int, f fixed.Format) *tensor.QTensor {
	t := tensor.New(tensor.Shape{N: n, C: c, H: h, W: w}).Random(rng.New(seed), 1)
	return tensor.Quantize(t, f)
}

func TestReLU(t *testing.T) {
	in := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 1, W: 4}, fixed.Int16)
	copy(in.Data, []int32{-5, 0, 3, -1})
	out := ReLU{}.Forward(nil, []*tensor.QTensor{in}, nil)
	want := []int32{0, 0, 3, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("relu[%d] = %d, want %d", i, out.Data[i], want[i])
		}
	}
	if c := (ReLU{}).Census([]tensor.Shape{in.Shape}); c.Total() != 0 {
		t.Error("relu census must be zero")
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 4, W: 4}, fixed.Int16)
	for i := range in.Data {
		in.Data[i] = int32(i)
	}
	p := MaxPool{K: 2, Stride: 2}
	out := p.Forward(nil, []*tensor.QTensor{in}, nil)
	if out.Shape != (tensor.Shape{N: 1, C: 1, H: 2, W: 2}) {
		t.Fatalf("shape %v", out.Shape)
	}
	want := []int32{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("maxpool[%d] = %d, want %d", i, out.Data[i], want[i])
		}
	}
}

func TestMaxPoolPaddingIgnoresOOB(t *testing.T) {
	in := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, fixed.Int16)
	copy(in.Data, []int32{-4, -3, -2, -1})
	p := MaxPool{K: 3, Stride: 2, Pad: 1}
	out := p.Forward(nil, []*tensor.QTensor{in}, nil)
	// All windows see only negative values; max must be negative (OOB cells
	// are not treated as zeros).
	for i, v := range out.Data {
		if v >= 0 {
			t.Errorf("maxpool with pad produced non-negative %d at %d", v, i)
		}
	}
}

func TestAvgPool(t *testing.T) {
	in := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, fixed.Int16)
	copy(in.Data, []int32{1, 3, 5, 7})
	p := AvgPool{K: 2, Stride: 2}
	out := p.Forward(nil, []*tensor.QTensor{in}, nil)
	if out.Data[0] != 4 {
		t.Errorf("avg = %d, want 4", out.Data[0])
	}
	if c := p.Census([]tensor.Shape{in.Shape}); c.Add != 3 {
		t.Errorf("avgpool census add = %d, want 3", c.Add)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.NewQ(tensor.Shape{N: 1, C: 2, H: 2, W: 2}, fixed.Int16)
	copy(in.Data, []int32{1, 2, 3, 4, 10, 20, 30, 40})
	out := GlobalAvgPool{}.Forward(nil, []*tensor.QTensor{in}, nil)
	if out.Shape != (tensor.Shape{N: 1, C: 2, H: 1, W: 1}) {
		t.Fatalf("shape %v", out.Shape)
	}
	if out.Data[0] != 3 || out.Data[1] != 25 {
		t.Errorf("gap = %v, want [3 25] (round half away)", out.Data)
	}
}

func TestAddSaturates(t *testing.T) {
	f := fixed.Int16
	a := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 1, W: 2}, f)
	b := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 1, W: 2}, f)
	a.Data[0], b.Data[0] = f.Max(), f.Max()
	a.Data[1], b.Data[1] = -100, 40
	out := Add{}.Forward(nil, []*tensor.QTensor{a, b}, nil)
	if out.Data[0] != f.Max() {
		t.Errorf("saturating add = %d, want %d", out.Data[0], f.Max())
	}
	if out.Data[1] != -60 {
		t.Errorf("add = %d, want -60", out.Data[1])
	}
}

func TestConcat(t *testing.T) {
	a := qIn(1, 1, 2, 3, 3, fixed.Int16)
	b := qIn(2, 1, 3, 3, 3, fixed.Int16)
	out := Concat{}.Forward(nil, []*tensor.QTensor{a, b}, nil)
	if out.Shape != (tensor.Shape{N: 1, C: 5, H: 3, W: 3}) {
		t.Fatalf("concat shape %v", out.Shape)
	}
	if out.At(0, 0, 1, 1) != a.At(0, 0, 1, 1) || out.At(0, 3, 2, 2) != b.At(0, 1, 2, 2) {
		t.Error("concat misplaced values")
	}
}

func TestFlatten(t *testing.T) {
	in := qIn(3, 2, 3, 4, 4, fixed.Int16)
	out := Flatten{}.Forward(nil, []*tensor.QTensor{in}, nil)
	if out.Shape != (tensor.Shape{N: 2, C: 48, H: 1, W: 1}) {
		t.Fatalf("flatten shape %v", out.Shape)
	}
	if out.Data[5] != in.Data[5] {
		t.Error("flatten reordered data")
	}
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ v, n, want int64 }{
		{7, 2, 4}, {-7, 2, -4}, {6, 4, 2}, {-6, 4, -2}, {5, 4, 1}, {0, 9, 0},
	}
	for _, c := range cases {
		if got := roundDiv(c.v, c.n); got != c.want {
			t.Errorf("roundDiv(%d,%d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}

// buildTiny returns a small but representative network: conv, pool, residual
// branch, concat, FC head.
func buildTiny(kind EngineKind, seed uint64, fmtW fixed.Format) *Network {
	cfg := Config{Kind: kind, Tile: winograd.F2, ActFmt: fmtW, WFmt: fmtW, Seed: seed}
	b := NewBuilder("tiny", cfg, 3, 16, 16)
	x := b.ConvReLU("conv1", b.Input(), 8, 3, 1, 1)
	x = b.MaxPool("pool1", x, 2, 2, 0)
	// Residual block.
	y := b.ConvReLU("res.a", x, 8, 3, 1, 1)
	y = b.ConvNoBias("res.b", y, 8, 3, 1, 1)
	x = b.ReLU("res.relu", b.Add("res.add", x, y))
	// Inception-ish split.
	p := b.ConvReLU("br1", x, 4, 1, 1, 0)
	q := b.ConvReLU("br3", x, 4, 3, 1, 1)
	x = b.Concat("cat", p, q)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flat", x)
	x = b.FC("fc", x, 10)
	return b.Build(x)
}

func TestNetworkForwardShapes(t *testing.T) {
	net := buildTiny(Direct, 1, fixed.Int16)
	in := qIn(9, 2, 3, 16, 16, fixed.Int16)
	out := net.Forward(in, nil)
	if out.Shape != (tensor.Shape{N: 2, C: 10, H: 1, W: 1}) {
		t.Fatalf("output shape %v", out.Shape)
	}
	preds := Argmax(out)
	if len(preds) != 2 {
		t.Fatalf("argmax length %d", len(preds))
	}
	for _, p := range preds {
		if p < 0 || p >= 10 {
			t.Errorf("pred %d out of range", p)
		}
	}
}

func TestSameWeightsAcrossEngines(t *testing.T) {
	// Direct and winograd instantiations of the same seed must compute the
	// same neurons up to quantization noise (paper: lossless conversion).
	st := buildTiny(Direct, 7, fixed.Int16)
	wg := buildTiny(Winograd, 7, fixed.Int16)
	in := qIn(10, 2, 3, 16, 16, fixed.Int16)
	a := st.Forward(in, nil)
	b := wg.Forward(in, nil)
	maxd := int32(0)
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	// Logit scale is 2^-8; allow a few dozen LSB of accumulated divergence.
	if maxd > 64 {
		t.Errorf("ST and WG logits diverge by %d LSB", maxd)
	}
	// And predictions should agree on a clean run.
	pa, pb := Argmax(a), Argmax(b)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Errorf("sample %d: ST pred %d != WG pred %d", i, pa[i], pb[i])
		}
	}
}

func TestEngineCensusDiffers(t *testing.T) {
	st := buildTiny(Direct, 7, fixed.Int16)
	wg := buildTiny(Winograd, 7, fixed.Int16)
	in := tensor.Shape{N: 1, C: 3, H: 16, W: 16}
	cs, cw := st.TotalCensus(in), wg.TotalCensus(in)
	if cw.Mul >= cs.Mul {
		t.Errorf("winograd muls %d not fewer than direct %d", cw.Mul, cs.Mul)
	}
	if cw.Add <= cs.Add/2 {
		t.Errorf("winograd adds suspiciously low: %d vs %d", cw.Add, cs.Add)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	n := &Network{Nodes: []Node{{Name: "x", Op: ReLU{}, Inputs: []int{3}}}, Output: 0}
	if err := n.Validate(); err == nil {
		t.Error("forward reference not caught")
	}
	n = &Network{Nodes: []Node{{Name: "x", Op: nil, Inputs: []int{InputNode}}}, Output: 0}
	if err := n.Validate(); err == nil {
		t.Error("nil op not caught")
	}
	n = &Network{Nodes: []Node{{Name: "x", Op: ReLU{}, Inputs: []int{InputNode}}}, Output: 5}
	if err := n.Validate(); err == nil {
		t.Error("bad output not caught")
	}
}

// recordingInjector counts injector callbacks.
type recordingInjector struct {
	opCalls     int
	neuronCalls int
	events      []fault.Event
}

func (r *recordingInjector) OpEvents(li int, c fault.Census) []fault.Event {
	r.opCalls++
	return r.events
}
func (r *recordingInjector) Neuron(li int, q *tensor.QTensor) { r.neuronCalls++ }

func TestInjectorCallbacks(t *testing.T) {
	net := buildTiny(Direct, 3, fixed.Int16)
	in := qIn(11, 1, 3, 16, 16, fixed.Int16)
	rec := &recordingInjector{}
	net.Forward(in, rec)
	// Op events only for nodes with arithmetic: convs + FC + add + pools.
	if rec.opCalls == 0 || rec.opCalls >= len(net.Nodes) {
		t.Errorf("opCalls = %d of %d nodes", rec.opCalls, len(net.Nodes))
	}
	if rec.neuronCalls != len(net.Nodes) {
		t.Errorf("neuronCalls = %d, want %d", rec.neuronCalls, len(net.Nodes))
	}
}

func TestFaultEventsPerturbNetwork(t *testing.T) {
	net := buildTiny(Direct, 3, fixed.Int16)
	in := qIn(12, 1, 3, 16, 16, fixed.Int16)
	golden := net.Forward(in, nil)
	census := net.LayerCensus(in.Shape)
	// Find the first conv node and hit its highest product bit repeatedly.
	convIdx := net.ConvNodes()[0]
	inj := &singleLayerInjector{target: convIdx}
	for i := 0; i < 20; i++ {
		inj.ev = fault.Event{Class: fault.OpMul, Op: int64(i) % census[convIdx].Mul, Bit: 28, Operand: 0x80}
		out := net.Forward(in, inj)
		if !equalQ(out, golden) {
			return // perturbation observed
		}
	}
	t.Error("20 high-bit conv faults never changed the logits")
}

type singleLayerInjector struct {
	target int
	ev     fault.Event
}

func (s *singleLayerInjector) OpEvents(li int, c fault.Census) []fault.Event {
	if li == s.target {
		return []fault.Event{s.ev}
	}
	return nil
}
func (s *singleLayerInjector) Neuron(int, *tensor.QTensor) {}

func equalQ(a, b *tensor.QTensor) bool {
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestConvNodes(t *testing.T) {
	net := buildTiny(Direct, 3, fixed.Int16)
	nodes := net.ConvNodes()
	if len(nodes) != 6 { // conv1, res.a, res.b, br1, br3, fc
		t.Errorf("ConvNodes = %d, want 6", len(nodes))
	}
}

func TestEngineKindString(t *testing.T) {
	if Direct.String() != "direct" || Winograd.String() != "winograd" {
		t.Error("EngineKind strings wrong")
	}
}

func TestWinograd1x1FallsBackToDirect(t *testing.T) {
	w := tensor.New(tensor.Shape{N: 4, C: 4, H: 1, W: 1}).Random(rng.New(1), 0.3)
	op := NewConv(w, nil, 1, 0, Winograd, winograd.F2, fixed.Int16, fixed.Int16)
	if op.IsWinograd() {
		t.Error("1x1 conv must not use the winograd engine")
	}
	w3 := tensor.New(tensor.Shape{N: 4, C: 4, H: 3, W: 3}).Random(rng.New(2), 0.3)
	op3 := NewConv(w3, nil, 1, 1, Winograd, winograd.F2, fixed.Int16, fixed.Int16)
	if !op3.IsWinograd() {
		t.Error("3x3 conv must use the winograd engine")
	}
}

func TestAddOpFaultReplay(t *testing.T) {
	a := qIn(20, 1, 2, 4, 4, fixed.Int16)
	b := qIn(21, 1, 2, 4, 4, fixed.Int16)
	golden := Add{}.Forward(nil, []*tensor.QTensor{a, b}, nil)
	ev := fault.Event{Class: fault.OpAdd, Op: 5, Bit: 10, Operand: 0}
	out := Add{}.Forward(nil, []*tensor.QTensor{a, b}, []fault.Event{ev})
	diffs := 0
	for i := range out.Data {
		if out.Data[i] != golden.Data[i] {
			if i != 5 {
				t.Errorf("fault on op 5 changed element %d", i)
			}
			diffs++
		}
	}
	if diffs != 1 {
		t.Errorf("expected exactly 1 changed element, got %d", diffs)
	}
	// Duplicate cancels.
	out2 := Add{}.Forward(nil, []*tensor.QTensor{a, b}, []fault.Event{ev, ev})
	if !equalQ(out2, golden) {
		t.Error("duplicate add fault did not cancel")
	}
}

func TestBatchedForwardMatchesPerSample(t *testing.T) {
	net := buildTiny(Direct, 5, fixed.Int16)
	batch := qIn(30, 3, 3, 16, 16, fixed.Int16)
	outB := net.Forward(batch, nil)
	for s := 0; s < 3; s++ {
		single := tensor.NewQ(tensor.Shape{N: 1, C: 3, H: 16, W: 16}, fixed.Int16)
		copy(single.Data, batch.Data[s*3*16*16:(s+1)*3*16*16])
		outS := net.Forward(single, nil)
		for c := 0; c < 10; c++ {
			if outS.At(0, c, 0, 0) != outB.At(s, c, 0, 0) {
				t.Fatalf("sample %d class %d: batched %d != single %d",
					s, c, outB.At(s, c, 0, 0), outS.At(0, c, 0, 0))
			}
		}
	}
}
