package nn

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/tensor"
)

// InputNode is the pseudo-index denoting the network input in Node.Inputs.
const InputNode = -1

// Node is one operation in the inference DAG, consuming the outputs of
// earlier nodes (indices must be strictly increasing, i.e. the node list is
// already topologically ordered).
type Node struct {
	Name   string
	Op     Op
	Inputs []int
}

// Injector supplies fault events during a forward pass. A nil Injector means
// a golden (fault-free) run.
type Injector interface {
	// OpEvents returns the operation-level fault events for node li, whose
	// op census for this invocation is c. It is called only for nodes with a
	// non-empty census.
	OpEvents(li int, c fault.Census) []fault.Event
	// Neuron may corrupt the output activation of node li in place
	// (neuron-level semantics); it is called for every node.
	Neuron(li int, q *tensor.QTensor)
}

// Network is a quantized inference DAG.
type Network struct {
	Name    string
	Kind    EngineKind
	InShape tensor.Shape // with N == 1; batch dimension comes from the input
	Nodes   []Node
	Output  int // index of the output node (logits {N, classes, 1, 1})
}

// Validate checks graph well-formedness.
func (n *Network) Validate() error {
	for i, nd := range n.Nodes {
		if nd.Op == nil {
			return fmt.Errorf("nn: node %d (%s) has nil op", i, nd.Name)
		}
		if len(nd.Inputs) == 0 {
			return fmt.Errorf("nn: node %d (%s) has no inputs", i, nd.Name)
		}
		for _, in := range nd.Inputs {
			if in != InputNode && (in < 0 || in >= i) {
				return fmt.Errorf("nn: node %d (%s) has invalid input %d", i, nd.Name, in)
			}
		}
	}
	if n.Output < 0 || n.Output >= len(n.Nodes) {
		return fmt.Errorf("nn: output index %d out of range", n.Output)
	}
	return nil
}

// shapesOf resolves the input shapes of node i given all node output shapes.
func (n *Network) shapesOf(i int, shapes []tensor.Shape, inShape tensor.Shape) []tensor.Shape {
	ins := make([]tensor.Shape, len(n.Nodes[i].Inputs))
	for j, idx := range n.Nodes[i].Inputs {
		if idx == InputNode {
			ins[j] = inShape
		} else {
			ins[j] = shapes[idx]
		}
	}
	return ins
}

// Shapes returns every node's output shape for a given input batch shape.
func (n *Network) Shapes(inShape tensor.Shape) []tensor.Shape {
	shapes := make([]tensor.Shape, len(n.Nodes))
	for i := range n.Nodes {
		shapes[i] = n.Nodes[i].Op.OutShape(n.shapesOf(i, shapes, inShape))
	}
	return shapes
}

// LayerCensus returns per-node op censuses for a given input batch shape.
func (n *Network) LayerCensus(inShape tensor.Shape) []fault.Census {
	shapes := make([]tensor.Shape, len(n.Nodes))
	census := make([]fault.Census, len(n.Nodes))
	for i := range n.Nodes {
		ins := n.shapesOf(i, shapes, inShape)
		census[i] = n.Nodes[i].Op.Census(ins)
		shapes[i] = n.Nodes[i].Op.OutShape(ins)
	}
	return census
}

// TotalCensus sums all node censuses.
func (n *Network) TotalCensus(inShape tensor.Shape) fault.Census {
	var total fault.Census
	for _, c := range n.LayerCensus(inShape) {
		total = total.AddCensus(c)
	}
	return total
}

// Forward runs the network on a quantized input batch. inj may be nil for a
// golden run. The returned tensor is the output node's activation (logits).
//
// Forward is safe for concurrent use: the Network is immutable after
// construction and every call allocates a fresh execution context. Callers
// running many passes (Monte-Carlo campaigns) should hold an ExecContext per
// goroutine and use ForwardCtx to amortize the per-pass setup.
func (n *Network) Forward(in *tensor.QTensor, inj Injector) *tensor.QTensor {
	return n.ForwardCtx(n.NewExecContext(), in, inj)
}

// Argmax returns the predicted class per batch element of a logits tensor
// shaped {N, classes, 1, 1}.
func Argmax(logits *tensor.QTensor) []int {
	out := make([]int, logits.Shape.N)
	classes := logits.Shape.C
	for n := 0; n < logits.Shape.N; n++ {
		best, bestIdx := logits.At(n, 0, 0, 0), 0
		for c := 1; c < classes; c++ {
			if v := logits.At(n, c, 0, 0); v > best {
				best, bestIdx = v, c
			}
		}
		out[n] = bestIdx
	}
	return out
}

// ConvNodes returns the indices of all convolution/FC nodes, the layers the
// paper's layer-wise analysis and TMR protection operate on.
func (n *Network) ConvNodes() []int {
	var out []int
	for i, nd := range n.Nodes {
		if _, ok := nd.Op.(*ConvOp); ok {
			out = append(out, i)
		}
	}
	return out
}
