package nn

import (
	"repro/internal/conv"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// Scratch is the per-node reusable buffer arena threaded through Op.Forward.
// Each node of an ExecContext owns one Scratch; because a node's output
// geometry is fixed for a given input batch shape, every buffer is allocated
// on the first pass and recycled afterwards, making steady-state forward
// passes allocation-free (see DESIGN.md, memory model).
//
// A nil *Scratch is valid everywhere and means "allocate fresh buffers":
// one-shot callers (tests, Network.Forward via a throwaway context) pay the
// allocations the arena would otherwise amortize.
type Scratch struct {
	out  *tensor.QTensor   // recycled output of simple (non-conv) ops
	conv *conv.Scratch     // direct-convolution arena
	wg   *winograd.Scratch // winograd-layer arena
	kb   kernel.Backend    // compute backend stamped onto the engine arenas
}

// Output returns a recycled output tensor of the given shape and format.
// Contents are unspecified (the previous pass's values): every op that uses
// it must write all elements.
func (s *Scratch) Output(sh tensor.Shape, f fixed.Format) *tensor.QTensor {
	if s == nil {
		return tensor.NewQ(sh, f)
	}
	if s.out == nil || s.out.Shape != sh || s.out.Fmt != f {
		s.out = tensor.NewQ(sh, f)
	}
	return s.out
}

// convScratch returns the node's direct-convolution arena (nil passes
// through, meaning allocate-fresh inside the engine).
func (s *Scratch) convScratch() *conv.Scratch {
	if s == nil {
		return nil
	}
	if s.conv == nil {
		s.conv = &conv.Scratch{}
	}
	s.conv.Backend = s.kb
	return s.conv
}

// wgScratch returns the node's winograd arena (nil passes through).
func (s *Scratch) wgScratch() *winograd.Scratch {
	if s == nil {
		return nil
	}
	if s.wg == nil {
		s.wg = &winograd.Scratch{}
	}
	s.wg.Backend = s.kb
	return s.wg
}
