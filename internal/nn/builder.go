package nn

import (
	"fmt"
	"math"

	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// Config fixes everything needed to instantiate a network deterministically.
// Two configs differing only in Kind produce networks with *identical
// weights and neurons* — the property the paper's ST-vs-WG comparison rests
// on — because weight generation derives from Seed and layer names only.
type Config struct {
	Kind   EngineKind
	Tile   *winograd.Tile // tile algorithm for Kind == Winograd; F2 if nil
	ActFmt fixed.Format   // activation quantization
	WFmt   fixed.Format   // weight quantization
	Seed   uint64
}

// DefaultConfig returns an int16 direct-convolution configuration.
func DefaultConfig(seed uint64) Config {
	return Config{Kind: Direct, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: seed}
}

func (c Config) tile() *winograd.Tile {
	if c.Tile == nil {
		return winograd.F2
	}
	return c.Tile
}

// Builder incrementally constructs a Network, tracking shapes so layer
// weights can be sized from their fan-in and initialized deterministically.
type Builder struct {
	net     *Network
	cfg     Config
	root    *rng.Stream
	inShape tensor.Shape
	shapes  []tensor.Shape
}

// NewBuilder starts a network with a {1, c, h, w} input.
func NewBuilder(name string, cfg Config, c, h, w int) *Builder {
	return &Builder{
		net:     &Network{Name: name, Kind: cfg.Kind, InShape: tensor.Shape{N: 1, C: c, H: h, W: w}},
		cfg:     cfg,
		root:    rng.New(cfg.Seed),
		inShape: tensor.Shape{N: 1, C: c, H: h, W: w},
	}
}

// Input returns the pseudo-index of the network input.
func (b *Builder) Input() int { return InputNode }

func (b *Builder) shapeOf(idx int) tensor.Shape {
	if idx == InputNode {
		return b.inShape
	}
	return b.shapes[idx]
}

func (b *Builder) push(name string, op Op, inputs ...int) int {
	ins := make([]tensor.Shape, len(inputs))
	for i, idx := range inputs {
		ins[i] = b.shapeOf(idx)
	}
	b.net.Nodes = append(b.net.Nodes, Node{Name: name, Op: op, Inputs: inputs})
	b.shapes = append(b.shapes, op.OutShape(ins))
	return len(b.net.Nodes) - 1
}

// HeWeights draws He-initialized weights (std = sqrt(2/fanIn)) and small
// biases from the stream derived from the layer name, so layers are
// reproducible from (seed, name) alone regardless of construction order.
func HeWeights(root *rng.Stream, name string, outC, inC, kh, kw int) (*tensor.Tensor, []float64) {
	r := root.SplitString(name)
	std := math.Sqrt(2.0 / float64(inC*kh*kw))
	w := tensor.New(tensor.Shape{N: outC, C: inC, H: kh, W: kw}).Random(r, std)
	bias := make([]float64, outC)
	for i := range bias {
		bias[i] = r.NormFloat64() * 0.02
	}
	return w, bias
}

func (b *Builder) heWeights(name string, outC, inC, kh, kw int) (*tensor.Tensor, []float64) {
	return HeWeights(b.root, name, outC, inC, kh, kw)
}

// Conv appends a KxK convolution with the builder's engine kind.
func (b *Builder) Conv(name string, from, outC, k, stride, pad int) int {
	in := b.shapeOf(from)
	w, bias := b.heWeights(name, outC, in.C, k, k)
	op := NewConv(w, bias, stride, pad, b.cfg.Kind, b.cfg.tile(), b.cfg.WFmt, b.cfg.ActFmt)
	return b.push(name, op, from)
}

// ConvNoBias appends a convolution without bias (used ahead of residual adds).
func (b *Builder) ConvNoBias(name string, from, outC, k, stride, pad int) int {
	in := b.shapeOf(from)
	w, _ := b.heWeights(name, outC, in.C, k, k)
	op := NewConv(w, nil, stride, pad, b.cfg.Kind, b.cfg.tile(), b.cfg.WFmt, b.cfg.ActFmt)
	return b.push(name, op, from)
}

// ReLU appends an activation.
func (b *Builder) ReLU(name string, from int) int { return b.push(name, ReLU{}, from) }

// ConvReLU is the common conv-then-activation pair; returns the ReLU index.
func (b *Builder) ConvReLU(name string, from, outC, k, stride, pad int) int {
	return b.ReLU(name+".relu", b.Conv(name, from, outC, k, stride, pad))
}

// MaxPool appends max pooling.
func (b *Builder) MaxPool(name string, from, k, stride, pad int) int {
	return b.push(name, MaxPool{K: k, Stride: stride, Pad: pad}, from)
}

// AvgPool appends average pooling.
func (b *Builder) AvgPool(name string, from, k, stride, pad int) int {
	return b.push(name, AvgPool{K: k, Stride: stride, Pad: pad}, from)
}

// GlobalAvgPool appends a global average pool.
func (b *Builder) GlobalAvgPool(name string, from int) int {
	return b.push(name, GlobalAvgPool{}, from)
}

// Add appends a residual addition.
func (b *Builder) Add(name string, x, y int) int { return b.push(name, Add{}, x, y) }

// Concat appends a channel concatenation.
func (b *Builder) Concat(name string, xs ...int) int { return b.push(name, Concat{}, xs...) }

// Flatten appends a flatten.
func (b *Builder) Flatten(name string, from int) int { return b.push(name, Flatten{}, from) }

// FC appends a fully-connected layer (input must be {N, features, 1, 1}).
func (b *Builder) FC(name string, from, outFeatures int) int {
	in := b.shapeOf(from)
	if in.H != 1 || in.W != 1 {
		panic(fmt.Sprintf("nn: FC input must be flattened, got %v", in))
	}
	w, bias := b.heWeights(name, outFeatures, in.C, 1, 1)
	return b.push(name, NewFC(w, bias, b.cfg.WFmt, b.cfg.ActFmt), from)
}

// Shape returns the current output shape of a node (for builders that need
// to inspect intermediate extents).
func (b *Builder) Shape(idx int) tensor.Shape { return b.shapeOf(idx) }

// Build finalizes the network with the given output node.
func (b *Builder) Build(output int) *Network {
	b.net.Output = output
	if err := b.net.Validate(); err != nil {
		panic(err)
	}
	return b.net
}
