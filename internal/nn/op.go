// Package nn provides the quantized inference graph the fault-injection
// campaigns run on: convolution (direct or winograd engine), fully-connected,
// activation, pooling, residual-add, concat and flatten ops composed into a
// DAG. Every compute op exposes an exact operation census and accepts
// operation-level fault events, so a whole network forward pass can be
// corrupted bit-exactly at sampled multiply/add sites.
package nn

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/tensor"
)

// Op is one node operation of the inference graph.
type Op interface {
	// Kind is a short operation type tag ("conv", "relu", ...).
	Kind() string
	// OutShape maps input shapes to the output shape.
	OutShape(ins []tensor.Shape) tensor.Shape
	// Census returns the op's primitive-operation counts (zero for ops with
	// no multiply/add arithmetic, e.g. ReLU and max-pooling).
	Census(ins []tensor.Shape) fault.Census
	// Forward computes the op with the given fault events applied, drawing
	// reusable buffers from sc (nil means allocate fresh ones). The returned
	// tensor may alias sc and stays valid until the next Forward call with
	// the same scratch.
	Forward(sc *Scratch, ins []*tensor.QTensor, events []fault.Event) *tensor.QTensor
}

// ReLU is the rectified linear activation. It performs no counted arithmetic.
type ReLU struct{}

func (ReLU) Kind() string                             { return "relu" }
func (ReLU) OutShape(ins []tensor.Shape) tensor.Shape { return ins[0] }
func (ReLU) Census(ins []tensor.Shape) fault.Census   { return fault.Census{} }
func (ReLU) Forward(sc *Scratch, ins []*tensor.QTensor, _ []fault.Event) *tensor.QTensor {
	in := ins[0]
	out := sc.Output(in.Shape, in.Fmt)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// MaxPool is max pooling with a square window. Comparisons are not counted
// arithmetic; padding contributes nothing (max over valid positions).
type MaxPool struct {
	K, Stride, Pad int
}

func (MaxPool) Kind() string { return "maxpool" }

func (p MaxPool) OutShape(ins []tensor.Shape) tensor.Shape {
	in := ins[0]
	return tensor.Shape{
		N: in.N, C: in.C,
		H: (in.H+2*p.Pad-p.K)/p.Stride + 1,
		W: (in.W+2*p.Pad-p.K)/p.Stride + 1,
	}
}

func (MaxPool) Census(ins []tensor.Shape) fault.Census { return fault.Census{} }

func (p MaxPool) Forward(sc *Scratch, ins []*tensor.QTensor, _ []fault.Event) *tensor.QTensor {
	in := ins[0]
	os := p.OutShape([]tensor.Shape{in.Shape})
	out := sc.Output(os, in.Fmt)
	for n := 0; n < os.N; n++ {
		for c := 0; c < os.C; c++ {
			for oy := 0; oy < os.H; oy++ {
				for ox := 0; ox < os.W; ox++ {
					best := in.Fmt.Min()
					seen := false
					for ky := 0; ky < p.K; ky++ {
						y := oy*p.Stride + ky - p.Pad
						if y < 0 || y >= in.Shape.H {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							x := ox*p.Stride + kx - p.Pad
							if x < 0 || x >= in.Shape.W {
								continue
							}
							if v := in.At(n, c, y, x); !seen || v > best {
								best = v
								seen = true
							}
						}
					}
					if !seen {
						best = 0
					}
					out.Set(n, c, oy, ox, best)
				}
			}
		}
	}
	return out
}

// AvgPool is average pooling (padding counts as zeros, divisor is K²).
// The window summation is counted arithmetic: K²-1 adds per output.
// Op ordering: add index = flatOut·(K²-1) + s, window walked row-major.
type AvgPool struct {
	K, Stride, Pad int
}

func (AvgPool) Kind() string { return "avgpool" }

func (p AvgPool) OutShape(ins []tensor.Shape) tensor.Shape {
	in := ins[0]
	return tensor.Shape{
		N: in.N, C: in.C,
		H: (in.H+2*p.Pad-p.K)/p.Stride + 1,
		W: (in.W+2*p.Pad-p.K)/p.Stride + 1,
	}
}

func (p AvgPool) Census(ins []tensor.Shape) fault.Census {
	os := p.OutShape(ins)
	return fault.Census{Add: int64(os.Elems()) * int64(p.K*p.K-1)}
}

func (p AvgPool) Forward(sc *Scratch, ins []*tensor.QTensor, events []fault.Event) *tensor.QTensor {
	in := ins[0]
	os := p.OutShape([]tensor.Shape{in.Shape})
	out := sc.Output(os, in.Fmt)
	perOut := int64(p.K*p.K - 1)
	byOut := groupByOutput(events, perOut)
	div := int64(p.K * p.K)
	for n := 0; n < os.N; n++ {
		for c := 0; c < os.C; c++ {
			for oy := 0; oy < os.H; oy++ {
				for ox := 0; ox < os.W; ox++ {
					flat := os.Index(n, c, oy, ox)
					evs := byOut[int64(flat)]
					var acc int64
					step := int64(flat) * perOut
					first := true
					for ky := 0; ky < p.K; ky++ {
						y := oy*p.Stride + ky - p.Pad
						for kx := 0; kx < p.K; kx++ {
							x := ox*p.Stride + kx - p.Pad
							var v int64
							if y >= 0 && y < in.Shape.H && x >= 0 && x < in.Shape.W {
								v = int64(in.At(n, c, y, x))
							}
							if first {
								acc = v
								first = false
								continue
							}
							acc = applyAddEvents(acc, v, eventsAt(evs, step))
							step++
						}
					}
					out.Data[flat] = in.Fmt.Saturate(roundDiv(acc, div))
				}
			}
		}
	}
	return out
}

// GlobalAvgPool averages each channel map to 1x1.
// Op ordering: add index = (n·C+c)·(HW-1) + s.
type GlobalAvgPool struct{}

func (GlobalAvgPool) Kind() string { return "gap" }

func (GlobalAvgPool) OutShape(ins []tensor.Shape) tensor.Shape {
	in := ins[0]
	return tensor.Shape{N: in.N, C: in.C, H: 1, W: 1}
}

func (GlobalAvgPool) Census(ins []tensor.Shape) fault.Census {
	in := ins[0]
	return fault.Census{Add: int64(in.N) * int64(in.C) * int64(in.H*in.W-1)}
}

func (GlobalAvgPool) Forward(sc *Scratch, ins []*tensor.QTensor, events []fault.Event) *tensor.QTensor {
	in := ins[0]
	os := tensor.Shape{N: in.Shape.N, C: in.Shape.C, H: 1, W: 1}
	out := sc.Output(os, in.Fmt)
	hw := in.Shape.H * in.Shape.W
	perOut := int64(hw - 1)
	byOut := groupByOutput(events, perOut)
	for n := 0; n < os.N; n++ {
		for c := 0; c < os.C; c++ {
			flat := os.Index(n, c, 0, 0)
			evs := byOut[int64(flat)]
			base := in.Shape.Index(n, c, 0, 0)
			acc := int64(in.Data[base])
			step := int64(flat) * perOut
			for i := 1; i < hw; i++ {
				acc = applyAddEvents(acc, int64(in.Data[base+i]), eventsAt(evs, step))
				step++
			}
			out.Data[flat] = in.Fmt.Saturate(roundDiv(acc, int64(hw)))
		}
	}
	return out
}

// Add is the residual elementwise addition of two equal-shape tensors.
// Op ordering: add index = element flat index.
type Add struct{}

func (Add) Kind() string { return "add" }

func (Add) OutShape(ins []tensor.Shape) tensor.Shape {
	if ins[0] != ins[1] {
		panic(fmt.Sprintf("nn: residual add shape mismatch %v vs %v", ins[0], ins[1]))
	}
	return ins[0]
}

func (Add) Census(ins []tensor.Shape) fault.Census {
	return fault.Census{Add: int64(ins[0].Elems())}
}

func (Add) Forward(sc *Scratch, ins []*tensor.QTensor, events []fault.Event) *tensor.QTensor {
	a, b := ins[0], ins[1]
	if a.Shape != b.Shape {
		panic("nn: residual add shape mismatch")
	}
	out := sc.Output(a.Shape, a.Fmt)
	byOut := groupByOutput(events, 1)
	for i := range a.Data {
		s := applyAddEvents(int64(a.Data[i]), int64(b.Data[i]), byOut[int64(i)])
		out.Data[i] = a.Fmt.Saturate(s)
	}
	return out
}

// Concat concatenates along the channel axis.
type Concat struct{}

func (Concat) Kind() string { return "concat" }

func (Concat) OutShape(ins []tensor.Shape) tensor.Shape {
	s := ins[0]
	c := 0
	for _, in := range ins {
		if in.N != s.N || in.H != s.H || in.W != s.W {
			panic(fmt.Sprintf("nn: concat spatial mismatch %v vs %v", in, s))
		}
		c += in.C
	}
	s.C = c
	return s
}

func (Concat) Census(ins []tensor.Shape) fault.Census { return fault.Census{} }

func (Concat) Forward(sc *Scratch, ins []*tensor.QTensor, _ []fault.Event) *tensor.QTensor {
	os := concatOutShape(ins)
	out := sc.Output(os, ins[0].Fmt)
	for n := 0; n < os.N; n++ {
		cOff := 0
		for _, in := range ins {
			for c := 0; c < in.Shape.C; c++ {
				src := in.Shape.Index(n, c, 0, 0)
				dst := os.Index(n, cOff+c, 0, 0)
				copy(out.Data[dst:dst+os.H*os.W], in.Data[src:src+os.H*os.W])
			}
			cOff += in.Shape.C
		}
	}
	return out
}

// Flatten reshapes to {N, C·H·W, 1, 1} for the FC head.
type Flatten struct{}

func (Flatten) Kind() string { return "flatten" }

func (Flatten) OutShape(ins []tensor.Shape) tensor.Shape {
	in := ins[0]
	return tensor.Shape{N: in.N, C: in.C * in.H * in.W, H: 1, W: 1}
}

func (Flatten) Census(ins []tensor.Shape) fault.Census { return fault.Census{} }

func (Flatten) Forward(sc *Scratch, ins []*tensor.QTensor, _ []fault.Event) *tensor.QTensor {
	in := ins[0]
	out := sc.Output(Flatten{}.OutShape([]tensor.Shape{in.Shape}), in.Fmt)
	copy(out.Data, in.Data)
	return out
}

// concatOutShape computes the concat output shape directly from the input
// tensors, avoiding the per-call shape-slice allocation of OutShape.
func concatOutShape(ins []*tensor.QTensor) tensor.Shape {
	s := ins[0].Shape
	c := 0
	for _, in := range ins {
		if in.Shape.N != s.N || in.Shape.H != s.H || in.Shape.W != s.W {
			panic(fmt.Sprintf("nn: concat spatial mismatch %v vs %v", in.Shape, s))
		}
		c += in.Shape.C
	}
	s.C = c
	return s
}

// roundDiv divides rounding half away from zero.
func roundDiv(v, n int64) int64 {
	if v >= 0 {
		return (v + n/2) / n
	}
	return -((-v + n/2) / n)
}

// groupByOutput buckets events by op-index/perOut (the output element).
func groupByOutput(events []fault.Event, perOut int64) map[int64][]fault.Event {
	if len(events) == 0 {
		return nil
	}
	m := make(map[int64][]fault.Event)
	for _, ev := range events {
		m[ev.Op/perOut] = append(m[ev.Op/perOut], ev)
	}
	return m
}

// eventsAt filters events whose absolute op index equals step.
func eventsAt(evs []fault.Event, step int64) []fault.Event {
	if len(evs) == 0 {
		return nil
	}
	var out []fault.Event
	for _, ev := range evs {
		if ev.Op == step {
			out = append(out, ev)
		}
	}
	return out
}

// applyAddEvents mirrors the engines' addition fault semantics: operand
// flips before the add, result flips after, in the W-bit datapath register
// model (see fault.SurfaceBits).
func applyAddEvents(a, b int64, evs []fault.Event) int64 {
	for _, ev := range evs {
		if ev.Operand&0x80 != 0 {
			continue
		}
		if ev.Operand == 0 {
			a = fixed.FlipBit(a, uint(ev.Bit))
		} else {
			b = fixed.FlipBit(b, uint(ev.Bit))
		}
	}
	s := a + b
	for _, ev := range evs {
		if ev.Operand&0x80 != 0 {
			s = fixed.FlipBit(s, uint(ev.Bit))
		}
	}
	return s
}
