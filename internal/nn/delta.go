package nn

import (
	"repro/internal/fault"
	"repro/internal/tensor"
)

// Delta execution (see DESIGN.md "Delta execution"): a fault round differs
// from the golden run only at the nodes its fault events touch. Because
// every Op.Forward is a deterministic function of its inputs and events, a
// node with no events whose ancestors are all clean produces exactly the
// golden activation — so the round only needs to recompute the fault cone,
// the downstream closure of the event-carrying nodes, and can reuse the
// cached golden activation everywhere else.
//
// Soundness rests on two existing contracts:
//
//   - Event purity: injectors derive each node's events from per-node rng
//     splits of the (seed, round) stream, and splitting never advances the
//     parent, so collecting all events up front (to know the dirty set
//     before executing) yields bit-identical events to the interleaved
//     collection ForwardCtx performs.
//   - Replay ordering: a recomputed node receives the exact event slice the
//     injector produced, so the engine applies the events in the same
//     per-op order as a full pass — recomputed activations are bit-identical,
//     not merely statistically equivalent.

// goldenPlane is the per-context cache of golden (fault-free) per-node
// activations, captured once per (context, input) and reused across the
// thousands of Monte-Carlo rounds of a campaign.
type goldenPlane struct {
	acts []*tensor.QTensor // private copies; never aliased by op scratch
	in   *tensor.QTensor   // the input the plane was captured for
}

// deltaState is the reusable per-round working set of ForwardDelta.
type deltaState struct {
	events     [][]fault.Event // per-node events of the current round
	dirty      []bool          // per-node membership in the round's fault cone
	recomputed int             // Op.Forward calls the last round made
}

// captureGolden runs one full fault-free pass and snapshots every node's
// activation into the context's golden plane. Buffers are allocated on the
// first capture and recycled when the plane is re-captured for a new input
// of the same geometry.
func (c *ExecContext) captureGolden(in *tensor.QTensor) {
	n := c.net
	if c.golden.acts == nil || len(c.golden.acts) != len(n.Nodes) {
		c.golden.acts = make([]*tensor.QTensor, len(n.Nodes))
	}
	if c.delta.events == nil || len(c.delta.events) != len(n.Nodes) {
		c.delta.events = make([][]fault.Event, len(n.Nodes))
		c.delta.dirty = make([]bool, len(n.Nodes))
	}
	n.ForwardCtx(c, in, nil)
	for i := range n.Nodes {
		dst := c.golden.acts[i]
		src := c.acts[i]
		if dst == nil || dst.Shape != src.Shape || dst.Fmt != src.Fmt {
			dst = tensor.NewQ(src.Shape, src.Fmt)
			c.golden.acts[i] = dst
		}
		copy(dst.Data, src.Data)
	}
	c.golden.in = in
}

// InvalidateGolden drops the cached golden plane, forcing the next
// ForwardDelta call to re-capture it. Needed only when the contents of the
// input tensor change in place; passing a different tensor (or a different
// shape) re-captures automatically.
func (c *ExecContext) InvalidateGolden() { c.golden.in = nil }

// ForwardDelta runs the network like ForwardCtx but recomputes only the
// fault cone of the round: nodes carrying fault events plus everything
// downstream of them. Clean nodes reuse the context's cached golden
// activations, so a round with few (or no) events costs a small fraction of
// a full pass while remaining bit-identical to ForwardCtx — the engines are
// deterministic, so a node outside the cone can only ever produce its golden
// output.
//
// Contract: inj must inject exclusively through OpEvents (its Neuron method
// must be a no-op) — neuron-level semantics corrupt activations behind the
// graph's back, where no event stream locates the damage, so those campaigns
// must use ForwardCtx. The input tensor must not be mutated between calls
// with the same context; a different tensor (by pointer or shape) triggers a
// fresh golden capture, an in-place mutation requires InvalidateGolden.
//
// A nil inj returns the golden output directly (capturing the plane if
// needed). The returned tensor remains valid until the next Forward*/
// InvalidateGolden call on the same context.
func (n *Network) ForwardDelta(ctx *ExecContext, in *tensor.QTensor, inj Injector) *tensor.QTensor {
	if ctx.net != n {
		panic("nn: ExecContext bound to a different network")
	}
	ctx.prepare(in.Shape)
	if ctx.golden.in != in {
		ctx.captureGolden(in)
	}
	ctx.delta.recomputed = 0
	if inj == nil {
		return ctx.golden.acts[n.Output]
	}

	// Collect the round's events node by node, in node order — the same
	// calls, against the same per-node streams, a full pass would make —
	// and close the dirty set downstream while at it: a node is dirty iff
	// it carries events or consumes a dirty node, and inputs always precede
	// consumers in the topological node order.
	events, dirty := ctx.delta.events, ctx.delta.dirty
	any := false
	for i := range n.Nodes {
		var evs []fault.Event
		if ctx.hasOps[i] {
			evs = inj.OpEvents(i, ctx.census[i])
		}
		events[i] = evs
		d := len(evs) > 0
		if !d {
			for _, idx := range n.Nodes[i].Inputs {
				if idx != InputNode && dirty[idx] {
					d = true
					break
				}
			}
		}
		dirty[i] = d
		any = any || d
	}
	if !any {
		return ctx.golden.acts[n.Output]
	}

	for i := range n.Nodes {
		// Re-check the inputs: a node marked dirty in the closure may have
		// re-converged ancestors (see below), turning it clean after all.
		if dirty[i] && len(events[i]) == 0 {
			d := false
			for _, idx := range n.Nodes[i].Inputs {
				if idx != InputNode && dirty[idx] {
					d = true
					break
				}
			}
			dirty[i] = d
		}
		if !dirty[i] {
			ctx.acts[i] = ctx.golden.acts[i]
			continue
		}
		nd := &n.Nodes[i]
		ins := ctx.ins[i]
		for j, idx := range nd.Inputs {
			if idx == InputNode {
				ins[j] = in
			} else {
				ins[j] = ctx.acts[idx]
			}
		}
		out := nd.Op.Forward(ctx.scratch[i], ins, events[i])
		ctx.delta.recomputed++
		// Re-convergence detection: faults are often masked within a layer
		// or two (ReLU clamps negatives, maxpool discards non-maxima,
		// saturating quantization rounds small perturbations away). When a
		// recomputed activation equals its golden copy bit-for-bit, the
		// node rejoins the clean region and its consumers can skip
		// recomputation — the compare is a linear scan, negligible against
		// any conv. Publishing the golden tensor (not the scratch output)
		// keeps the invariant that clean consumers always read the plane.
		if sameData(out, ctx.golden.acts[i]) {
			dirty[i] = false
			ctx.acts[i] = ctx.golden.acts[i]
			continue
		}
		ctx.acts[i] = out
	}
	return ctx.acts[n.Output]
}

// sameData reports whether two equal-geometry tensors hold identical values.
func sameData(a, b *tensor.QTensor) bool {
	if a.Shape != b.Shape || len(a.Data) != len(b.Data) {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// RecomputeCount reports how many Op.Forward calls the last ForwardDelta
// round made — the dirty closure before re-convergence thinning (diagnostics
// and tests only).
func (c *ExecContext) RecomputeCount() int { return c.delta.recomputed }

// DirtyCount reports how many nodes remained dirty after the last
// ForwardDelta round, i.e. the fault cone minus the nodes whose recomputed
// activations re-converged to golden (diagnostics and tests only).
func (c *ExecContext) DirtyCount() int {
	count := 0
	for _, d := range c.delta.dirty {
		if d {
			count++
		}
	}
	return count
}
