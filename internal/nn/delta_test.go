package nn

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// mapInjector hands the forward pass a fixed per-node event assignment. Its
// Neuron method is a no-op, so it satisfies the ForwardDelta contract.
type mapInjector struct{ events map[int][]fault.Event }

func (m *mapInjector) OpEvents(li int, c fault.Census) []fault.Event { return m.events[li] }
func (m *mapInjector) Neuron(int, *tensor.QTensor)                   {}

// nodeByName resolves a node index for event placement in tests.
func nodeByName(t *testing.T, net *Network, name string) int {
	t.Helper()
	for i := range net.Nodes {
		if net.Nodes[i].Name == name {
			return i
		}
	}
	t.Fatalf("no node named %q", name)
	return -1
}

// TestForwardDeltaMatchesForwardCtx is the core delta-execution equivalence
// guarantee at the engine level: for any event assignment, ForwardDelta on a
// long-lived context produces logits bit-identical to ForwardCtx on a fresh
// context. Rounds with different event placements run back to back on the
// same delta context, so stale golden reuse, cone under-approximation or
// scratch aliasing between clean and dirty rounds would all surface here.
func TestForwardDeltaMatchesForwardCtx(t *testing.T) {
	for _, kind := range []EngineKind{Direct, Winograd} {
		t.Run(kind.String(), func(t *testing.T) {
			net := buildTiny(kind, 17, fixed.Int16)
			in := qIn(41, 2, 3, 16, 16, fixed.Int16)
			conv1 := nodeByName(t, net, "conv1")
			resB := nodeByName(t, net, "res.b")
			br1 := nodeByName(t, net, "br1")
			fc := nodeByName(t, net, "fc")
			mul := func(li int, op int64, bit uint8) fault.Event {
				return fault.Event{Class: fault.OpMul, Op: op, Bit: bit, Operand: 0x80}
			}
			rounds := []map[int][]fault.Event{
				nil, // clean round
				{conv1: {mul(conv1, 3, 27)}},
				{resB: {mul(resB, 11, 25)}, br1: {mul(br1, 0, 20)}},
				nil, // clean round between dirty ones
				{fc: {mul(fc, 1, 15)}},
				{conv1: {mul(conv1, 3, 27), mul(conv1, 9, 4)}, fc: {mul(fc, 2, 10)}},
			}
			dctx := net.NewExecContext()
			for ri, events := range rounds {
				var inj Injector
				if events != nil {
					inj = &mapInjector{events: events}
				}
				got := net.ForwardDelta(dctx, in, inj)
				want := net.ForwardCtx(net.NewExecContext(), in, inj)
				if !equalQ(got, want) {
					t.Errorf("round %d: ForwardDelta logits diverge from ForwardCtx", ri)
				}
			}
		})
	}
}

// TestForwardDeltaDirtyClosure pins the dirty-set edge cases: an empty round
// recomputes nothing, an event on the input-consuming node dirties the whole
// graph (full recompute), and events on every op-carrying node cost exactly
// one Forward per node — delta execution never does more work than a full
// pass.
func TestForwardDeltaDirtyClosure(t *testing.T) {
	net := buildTiny(Direct, 17, fixed.Int16)
	in := qIn(42, 1, 3, 16, 16, fixed.Int16)
	ctx := net.NewExecContext()

	// Empty round: the golden plane answers directly.
	out := net.ForwardDelta(ctx, in, &mapInjector{})
	if ctx.RecomputeCount() != 0 || ctx.DirtyCount() != 0 {
		t.Errorf("empty round recomputed %d nodes (dirty %d), want 0",
			ctx.RecomputeCount(), ctx.DirtyCount())
	}
	if !equalQ(out, net.ForwardCtx(net.NewExecContext(), in, nil)) {
		t.Error("empty round did not return the golden logits")
	}

	// Event on the first node (the only input consumer): everything is
	// downstream, so the closure is the whole graph.
	conv1 := nodeByName(t, net, "conv1")
	ev := fault.Event{Class: fault.OpMul, Op: 3, Bit: 27, Operand: 0x80}
	net.ForwardDelta(ctx, in, &mapInjector{events: map[int][]fault.Event{conv1: {ev}}})
	if got := ctx.RecomputeCount(); got != len(net.Nodes) {
		t.Errorf("input-node event recomputed %d of %d nodes, want all", got, len(net.Nodes))
	}

	// Events on every op-carrying node: delta degenerates to exactly one
	// Forward per node, never more.
	all := map[int][]fault.Event{}
	for i := range net.Nodes {
		all[i] = []fault.Event{ev}
	}
	net.ForwardDelta(ctx, in, &mapInjector{events: all})
	if got := ctx.RecomputeCount(); got != len(net.Nodes) {
		t.Errorf("all-nodes events recomputed %d of %d nodes, want all", got, len(net.Nodes))
	}
}

// TestForwardDeltaReconvergence: a masked fault must not drag its downstream
// closure through recomputation. A duplicated event flips the same bit twice
// (the replay engines apply events in order, pinned by TestAddOpFaultReplay),
// so the recomputed node lands exactly on its golden activation and every
// consumer stays on the plane.
func TestForwardDeltaReconvergence(t *testing.T) {
	net := buildTiny(Direct, 17, fixed.Int16)
	in := qIn(43, 1, 3, 16, 16, fixed.Int16)
	ctx := net.NewExecContext()
	add := nodeByName(t, net, "res.add")
	ev := fault.Event{Class: fault.OpAdd, Op: 5, Bit: 9}
	out := net.ForwardDelta(ctx, in, &mapInjector{events: map[int][]fault.Event{add: {ev, ev}}})
	if got := ctx.RecomputeCount(); got != 1 {
		t.Errorf("self-canceling event recomputed %d nodes, want 1", got)
	}
	if got := ctx.DirtyCount(); got != 0 {
		t.Errorf("re-converged node left %d dirty nodes", got)
	}
	if !equalQ(out, net.ForwardCtx(net.NewExecContext(), in, nil)) {
		t.Error("re-converged round did not return the golden logits")
	}
}

// TestForwardDeltaInputChange: swapping evaluation inputs on one context must
// re-capture the golden plane, and an in-place mutation is handled by
// InvalidateGolden, per the documented contract.
func TestForwardDeltaInputChange(t *testing.T) {
	net := buildTiny(Winograd, 17, fixed.Int16)
	inA := qIn(44, 1, 3, 16, 16, fixed.Int16)
	inB := qIn(45, 1, 3, 16, 16, fixed.Int16)
	conv1 := nodeByName(t, net, "conv1")
	inj := &mapInjector{events: map[int][]fault.Event{
		conv1: {{Class: fault.OpMul, Op: 7, Bit: 26, Operand: 0x80}},
	}}
	ctx := net.NewExecContext()
	for i, in := range []*tensor.QTensor{inA, inB, inA} {
		got := net.ForwardDelta(ctx, in, inj)
		want := net.ForwardCtx(net.NewExecContext(), in, inj)
		if !equalQ(got, want) {
			t.Errorf("input swap %d: delta logits diverge", i)
		}
	}
	// Mutate inA in place behind the context's back.
	inA.Data[0] ^= 1 << 12
	ctx.InvalidateGolden()
	if !equalQ(net.ForwardDelta(ctx, inA, inj), net.ForwardCtx(net.NewExecContext(), inA, inj)) {
		t.Error("InvalidateGolden did not refresh the plane after in-place mutation")
	}
}

// TestForwardDeltaAllocFree extends the arena contract to the golden-snapshot
// plane: once the plane and scratch arenas are warm, the delta machinery adds
// zero heap allocations, under both compute backends. A clean round allocates
// exactly nothing; a dirty round allocates no more than the same round under
// full ForwardCtx (the event-replay engines allocate proportionally to the
// events they apply, which is unchanged by delta execution).
func TestForwardDeltaAllocFree(t *testing.T) {
	for _, kind := range []EngineKind{Direct, Winograd} {
		for _, backend := range []string{"scalar", "blocked"} {
			bk, err := kernel.Get(backend)
			if err != nil {
				t.Fatal(err)
			}
			net := buildTiny(kind, 17, fixed.Int16)
			in := qIn(46, 2, 3, 16, 16, fixed.Int16)
			conv1 := nodeByName(t, net, "conv1")
			dirty := &mapInjector{events: map[int][]fault.Event{
				conv1: {{Class: fault.OpMul, Op: 3, Bit: 27, Operand: 0x80}},
			}}
			clean := Injector(&mapInjector{})
			ctx := net.NewExecContext()
			ctx.UseBackend(bk)
			net.ForwardDelta(ctx, in, dirty) // warm plane + every node's scratch
			if allocs := testing.AllocsPerRun(10, func() { net.ForwardDelta(ctx, in, clean) }); allocs != 0 {
				t.Errorf("%v/%s: steady-state clean ForwardDelta allocates %v times per round, want 0",
					kind, backend, allocs)
			}
			fctx := net.NewExecContext()
			fctx.UseBackend(bk)
			net.ForwardCtx(fctx, in, dirty) // warm the full-execution baseline
			full := testing.AllocsPerRun(10, func() { net.ForwardCtx(fctx, in, dirty) })
			delta := testing.AllocsPerRun(10, func() { net.ForwardDelta(ctx, in, dirty) })
			if delta > full {
				t.Errorf("%v/%s: dirty ForwardDelta allocates %v times per round, full ForwardCtx %v — delta must add none",
					kind, backend, delta, full)
			}
		}
	}
}

// TestForwardDeltaWrongContext: the context-network binding panic applies to
// the delta path too.
func TestForwardDeltaWrongContext(t *testing.T) {
	a := buildTiny(Direct, 1, fixed.Int16)
	b := buildTiny(Direct, 2, fixed.Int16)
	defer func() {
		if recover() == nil {
			t.Error("ForwardDelta accepted a foreign ExecContext")
		}
	}()
	a.ForwardDelta(b.NewExecContext(), qIn(1, 1, 3, 16, 16, fixed.Int16), nil)
}
