package nn

import (
	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// EngineKind selects how convolution layers are executed. The network's
// neurons are identical either way ("lossless conversion", paper §3.1); what
// changes is the arithmetic — and therefore the operation-level fault
// surface.
type EngineKind int

const (
	// Direct is standard convolution (ST-Conv in the paper).
	Direct EngineKind = iota
	// Winograd is winograd convolution (WG-Conv), with DWM decomposition for
	// kernels other than 3x3 stride 1. Spatial 1x1 convolutions and FC
	// layers have no winograd form and run identically in both kinds.
	Winograd
)

func (k EngineKind) String() string {
	if k == Winograd {
		return "winograd"
	}
	return "direct"
}

// ConvOp is a convolution (or, via 1x1 kernels on flattened activations, a
// fully-connected) layer bound to one execution engine.
type ConvOp struct {
	direct *conv.Params
	wg     *winograd.Layer
}

// NewConv builds a convolution op. Weights are float and quantized inside
// the chosen engine; winograd is only used for spatial kernels (K >= 2).
func NewConv(w *tensor.Tensor, bias []float64, stride, pad int, kind EngineKind,
	tile *winograd.Tile, wFmt, outFmt fixed.Format) *ConvOp {
	if kind == Winograd && (w.Shape.H >= 2 || w.Shape.W >= 2) {
		return &ConvOp{wg: winograd.NewLayer(w, bias, stride, pad, tile, wFmt, outFmt)}
	}
	return &ConvOp{direct: conv.NewParams(w, bias, stride, pad, wFmt, outFmt)}
}

// NewFC builds a fully-connected layer as a 1x1 convolution over {N,C,1,1}
// activations. wMat is {outFeatures, inFeatures}.
func NewFC(wMat *tensor.Tensor, bias []float64, wFmt, outFmt fixed.Format) *ConvOp {
	if wMat.Shape.H != 1 || wMat.Shape.W != 1 {
		panic("nn: FC weight must have shape {out, in, 1, 1}")
	}
	return &ConvOp{direct: conv.NewParams(wMat, bias, 1, 0, wFmt, outFmt)}
}

// IsWinograd reports whether this op runs on the winograd engine.
func (o *ConvOp) IsWinograd() bool { return o.wg != nil }

func (o *ConvOp) Kind() string {
	if o.wg != nil {
		return "conv/wg"
	}
	return "conv"
}

func (o *ConvOp) OutShape(ins []tensor.Shape) tensor.Shape {
	if o.wg != nil {
		return o.wg.OutShape(ins[0])
	}
	return o.direct.OutShape(ins[0])
}

func (o *ConvOp) Census(ins []tensor.Shape) fault.Census {
	if o.wg != nil {
		return o.wg.Census(ins[0])
	}
	return o.direct.Census(ins[0])
}

func (o *ConvOp) Forward(sc *Scratch, ins []*tensor.QTensor, events []fault.Event) *tensor.QTensor {
	if o.wg != nil {
		return o.wg.ForwardFaultyCtx(sc.wgScratch(), ins[0], events)
	}
	return conv.ForwardFaultyCtx(sc.convScratch(), ins[0], o.direct, events)
}
