package nn

import (
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/tensor"
)

// Concurrency model (see DESIGN.md): a Network is immutable after
// construction — nodes, ops and quantized weights are read-only — so any
// number of goroutines may run forward passes over the same Network
// concurrently. All mutable per-pass state (activation storage, resolved
// input views, cached geometry) lives in an ExecContext; each goroutine must
// use its own.
//
// ExecContext additionally hoists the per-node shape and op-census
// computation out of the forward loop: censuses depend only on the input
// batch shape, which is constant across the thousands of Monte-Carlo rounds
// of a fault campaign, so they are computed once per (context, input shape)
// instead of once per round.
//
// It is also the allocation arena of the hot path: every node owns a Scratch
// (recycled output tensors, engine accumulators and transform buffers,
// padded-input copies, cached accumulator-scale biases) threaded through
// Op.Forward, so after the first round a steady-state fault-free ForwardCtx
// performs no heap allocation at all (enforced by TestForwardCtxAllocFree).
//
// For delta execution (ForwardDelta, see delta.go) the context additionally
// carries a golden-snapshot plane: one private copy of every node's
// fault-free activation, captured once per (context, input) and reused as
// the output of all clean nodes in each fault round. Like the scratch
// arenas it is allocated once and recycled, so steady-state delta rounds
// are allocation-free too.

// ExecContext is the reusable per-goroutine state of forward passes over one
// Network. The zero value is not usable; obtain one from
// Network.NewExecContext. An ExecContext must not be shared between
// goroutines; creating one is cheap relative to a single forward pass, so
// worker pools simply allocate one per worker.
type ExecContext struct {
	net     *Network
	inShape tensor.Shape // input shape the cached geometry was computed for

	shapes  []tensor.Shape // per-node output shapes for inShape
	census  []fault.Census // per-node op censuses for inShape
	hasOps  []bool         // census[i].Total() > 0, hoisted out of the round loop
	acts    []*tensor.QTensor
	ins     [][]*tensor.QTensor // per-node resolved input views, refilled per pass
	scratch []*Scratch          // per-node reusable buffer arenas (see scratch.go)
	golden  goldenPlane         // cached golden activations (see delta.go)
	delta   deltaState          // per-round delta-execution working set
	backend kernel.Backend      // compute backend for the fault-free hot paths
}

// UseBackend selects the compute backend for subsequent forward passes on
// this context; nil restores the process default (kernel.Default, resolved at
// the engine level). Backends are bit-identical by contract, so switching can
// never change results — only wall-clock — which is why contexts recycled
// across campaign batches (faultsim's pool) may be restamped freely.
func (c *ExecContext) UseBackend(b kernel.Backend) {
	if c.backend == b {
		return
	}
	c.backend = b
	for _, s := range c.scratch {
		if s != nil {
			s.kb = b
		}
	}
}

// NewExecContext returns an execution context bound to this network.
func (n *Network) NewExecContext() *ExecContext {
	return &ExecContext{net: n}
}

// prepare (re)computes the cached geometry when the input shape changes.
func (c *ExecContext) prepare(inShape tensor.Shape) {
	if c.shapes != nil && inShape == c.inShape {
		return
	}
	n := c.net
	c.inShape = inShape
	c.golden = goldenPlane{} // node geometry changed: the plane is stale
	c.delta = deltaState{}
	c.shapes = make([]tensor.Shape, len(n.Nodes))
	c.census = make([]fault.Census, len(n.Nodes))
	c.hasOps = make([]bool, len(n.Nodes))
	c.acts = make([]*tensor.QTensor, len(n.Nodes))
	c.ins = make([][]*tensor.QTensor, len(n.Nodes))
	c.scratch = make([]*Scratch, len(n.Nodes))
	for i := range n.Nodes {
		ins := n.shapesOf(i, c.shapes, inShape)
		c.census[i] = n.Nodes[i].Op.Census(ins)
		c.hasOps[i] = c.census[i].Total() > 0
		c.shapes[i] = n.Nodes[i].Op.OutShape(ins)
		c.ins[i] = make([]*tensor.QTensor, len(n.Nodes[i].Inputs))
		c.scratch[i] = &Scratch{kb: c.backend}
	}
}

// ForwardCtx runs the network on a quantized input batch using ctx for all
// per-pass mutable state. inj may be nil for a golden run. The returned
// tensor is the output node's activation (logits); it remains valid until
// the next ForwardCtx call on the same context.
func (n *Network) ForwardCtx(ctx *ExecContext, in *tensor.QTensor, inj Injector) *tensor.QTensor {
	if ctx.net != n {
		panic("nn: ExecContext bound to a different network")
	}
	ctx.prepare(in.Shape)
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		ins := ctx.ins[i]
		for j, idx := range nd.Inputs {
			if idx == InputNode {
				ins[j] = in
			} else {
				ins[j] = ctx.acts[idx]
			}
		}
		var events []fault.Event
		if inj != nil && ctx.hasOps[i] {
			events = inj.OpEvents(i, ctx.census[i])
		}
		ctx.acts[i] = nd.Op.Forward(ctx.scratch[i], ins, events)
		if inj != nil {
			inj.Neuron(i, ctx.acts[i])
		}
	}
	return ctx.acts[n.Output]
}
