package faultsim

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
)

// TestCancellationStopsScheduling: canceling the context mid-campaign must
// stop the scheduler from claiming further (campaign, round) units instead
// of draining the whole sweep.
func TestCancellationStopsScheduling(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	bers := []float64{1e-9, 3e-9, 1e-8}
	const rounds = 4
	total := len(bers) * rounds

	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int64
		opts := Options{
			Semantics: fault.OperandFlip, Seed: 21, Intensity: stInt, Workers: workers,
			Progress: func(done, tot int) {
				if tot != total {
					t.Errorf("workers=%d: progress total %d, want %d", workers, tot, total)
				}
				if done == 0 {
					return // the batch announcement, not a completed unit
				}
				if executed.Add(1) >= 2 {
					cancel()
				}
			},
		}
		st.Sweep(ctx, bers, opts, rounds)
		if err := ctx.Err(); err == nil {
			t.Fatalf("workers=%d: context not canceled", workers)
		}
		// After the cancel at unit 2, each worker may finish its in-flight
		// unit but must not claim another.
		if got, max := int(executed.Load()), 2+workers; got > max {
			t.Errorf("workers=%d: %d units ran after cancellation (want <= %d)", workers, got, max)
		}
		cancel()
	}
}

// TestProgressReportsEveryUnit: an uncancelled campaign announces the batch
// with a 0/total call, reports every completed unit, and progress observation
// does not change the measured accuracy.
func TestProgressReportsEveryUnit(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	const rounds = 3
	bers := []float64{1e-9, 1e-8}

	quiet := Options{Semantics: fault.OperandFlip, Seed: 22, Intensity: stInt, Workers: 1}
	want := st.Sweep(context.Background(), bers, quiet, rounds)

	var calls, announced atomic.Int64
	observed := quiet
	observed.Progress = func(done, total int) {
		if total != len(bers)*rounds {
			t.Errorf("progress total %d, want %d", total, len(bers)*rounds)
		}
		if done == 0 {
			announced.Add(1)
			return
		}
		calls.Add(1)
		if done < 1 || done > total {
			t.Errorf("progress done %d out of range [1,%d]", done, total)
		}
	}
	got := st.Sweep(context.Background(), bers, observed, rounds)
	if announced.Load() != 1 {
		t.Errorf("batch announced %d times, want 1", announced.Load())
	}
	if int(calls.Load()) != len(bers)*rounds {
		t.Errorf("progress called %d times, want %d", calls.Load(), len(bers)*rounds)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("observing progress changed results: %+v vs %+v", want[i], got[i])
		}
	}
}
