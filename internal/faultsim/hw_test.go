package faultsim

import (
	"context"
	"testing"

	"repro/internal/fixed"
	"repro/internal/hwfault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/systolic"
	"repro/internal/winograd"
)

// hwInjection builds a stuck-at / burst / voltregion injection for the
// testRig's tiny VGG19 at the given evaluation batch size.
func hwInjection(t *testing.T, sc hwfault.Scenario, kind nn.EngineKind, batch int) *hwfault.Injection {
	t.Helper()
	arch := models.VGG19(models.Tiny)
	sched := hwfault.NetworkSchedules(systolic.DNNEngine16, arch, kind, winograd.F2, batch)
	inj, err := hwfault.NewInjection(sc, systolic.DNNEngine16, fixed.Int16, sched, 42)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestHWSweepDeterministicAcrossWorkers: the acceptance guarantee for
// hardware-located campaigns — a stuck-at-PE sweep is bit-identical across
// Workers 1, 2 and 8 on both engines, exactly like the statistical model.
func TestHWSweepDeterministicAcrossWorkers(t *testing.T) {
	st, wg, _, _ := testRig(t, 4)
	bers := []float64{1e-10, 1e-9}
	for name, r := range map[string]*Runner{"direct": st, "winograd": wg} {
		kind := nn.Direct
		if name == "winograd" {
			kind = nn.Winograd
		}
		opts := Options{
			Seed: 42,
			HW:   hwInjection(t, hwfault.Scenario{Kind: hwfault.StuckPE, Bit: 20}, kind, 4),
		}
		ref := r.Sweep(context.Background(), bers, withWorkers(opts, 1), 2)
		for _, w := range workerCounts[1:] {
			got := r.Sweep(context.Background(), bers, withWorkers(opts, w), 2)
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%s: workers=%d point %d = %+v, serial %+v", name, w, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestStuckPEDegradesAccuracy: a high product bit stuck in PE (0,0) must
// actually corrupt classifications, and the existing masks must still
// govern it: mul-fault-free silences it (all scheduled ops are muls) and a
// full fault-free node set is exact.
func TestStuckPEDegradesAccuracy(t *testing.T) {
	_, wg, _, _ := testRig(t, 4)
	inj := hwInjection(t, hwfault.Scenario{Kind: hwfault.StuckPE, Bit: 28}, nn.Winograd, 4)
	opts := Options{Seed: 1, HW: inj, Workers: 2}
	if acc := wg.Accuracy(context.Background(), 1e-9, opts, 1); acc == 1 {
		t.Error("stuck bit 28 in PE (0,0) left accuracy at 1")
	}
	silenced := opts
	silenced.MulFaultFree = true
	if acc := wg.Accuracy(context.Background(), 1e-9, silenced, 1); acc != 1 {
		t.Errorf("mul-fault-free stuck-at campaign accuracy %v, want 1", acc)
	}
	free := opts
	free.FaultFree = map[int]bool{}
	for li := range wg.Net.Nodes {
		free.FaultFree[li] = true
	}
	if acc := wg.Accuracy(context.Background(), 1e-9, free, 1); acc != 1 {
		t.Errorf("all-fault-free stuck-at campaign accuracy %v, want 1", acc)
	}
}

// TestHWUnitRangeSharding: hardware-located campaigns shard over the unit
// index space exactly like statistical ones — merged shard counts reduce to
// the full-range bytes.
func TestHWUnitRangeSharding(t *testing.T) {
	st, _, _, _ := testRig(t, 4)
	inj := hwInjection(t, hwfault.Scenario{Kind: hwfault.BurstSEU, Span: 32}, nn.Direct, 4)
	cs := SweepCampaigns([]float64{1e-10, 1e-9, 1e-8}, Options{Seed: 3, HW: inj})
	const rounds = 2
	total := Units(cs, rounds)
	want := st.UnitCounts(context.Background(), cs, rounds, 0, total)
	var merged []int
	for lo := 0; lo < total; lo += 2 {
		hi := lo + 2
		if hi > total {
			hi = total
		}
		merged = append(merged, st.UnitCounts(context.Background(), cs, rounds, lo, hi)...)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("unit %d: sharded count %d != full-range %d", i, merged[i], want[i])
		}
	}
}
