package faultsim

import (
	"context"
	"testing"

	"repro/internal/fault"
)

// TestUnitRangeShardingBitIdentical is the distributed-execution foundation:
// executing the flattened unit index space in arbitrary contiguous shards
// (with different worker counts per shard) and reducing the merged counts
// must reproduce AccuracyBatch bit-for-bit.
func TestUnitRangeShardingBitIdentical(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	opts := Options{Semantics: fault.OperandFlip, Seed: 21, Intensity: stInt}
	cs := SweepCampaigns([]float64{0, 1e-9, 1e-8, 3e-8}, opts)
	const rounds = 3
	want := st.AccuracyBatch(context.Background(), cs, rounds)

	total := Units(cs, rounds)
	if total != 3*rounds { // the BER 0 campaign contributes no units
		t.Fatalf("Units = %d, want %d", total, 3*rounds)
	}
	for _, shards := range []int{1, 2, 4, total} {
		counts := make([]int, 0, total)
		for s := 0; s < shards; s++ {
			lo, hi := s*total/shards, (s+1)*total/shards
			o := opts
			o.Workers = 1 + s // shards disagree on worker count on purpose
			shardCS := SweepCampaigns([]float64{0, 1e-9, 1e-8, 3e-8}, o)
			counts = append(counts, st.UnitCounts(context.Background(), shardCS, rounds, lo, hi)...)
		}
		got := st.Reduce(cs, rounds, counts)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%d shards: accuracy[%d] = %v, want %v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestUnitCountsRangeValidation: malformed ranges and count lengths are
// programming errors and must panic rather than silently mis-merge.
func TestUnitCountsRangeValidation(t *testing.T) {
	st, _, _, _ := testRig(t, 2)
	cs := SweepCampaigns([]float64{1e-9}, Options{Seed: 1})
	for _, r := range [][2]int{{-1, 0}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range [%d, %d) did not panic", r[0], r[1])
				}
			}()
			st.UnitCounts(context.Background(), cs, 2, r[0], r[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short counts slice did not panic")
			}
		}()
		st.Reduce(cs, 2, []int{1})
	}()
}

// TestLayerSensitivityFromCounts: the sharded layer-sensitivity reduction
// matches the single-process analysis bit-for-bit.
func TestLayerSensitivityFromCounts(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	opts := Options{Semantics: fault.OperandFlip, Seed: 22, Intensity: stInt}
	const ber, rounds = 3e-9, 2
	wantBase, wantPer := st.LayerSensitivity(context.Background(), ber, opts, rounds)

	cs := st.LayerCampaigns(ber, opts)
	total := Units(cs, rounds)
	var counts []int
	for _, r := range [][2]int{{0, total / 3}, {total / 3, total / 2}, {total / 2, total}} {
		counts = append(counts, st.UnitCounts(context.Background(), cs, rounds, r[0], r[1])...)
	}
	base, per := st.LayerSensitivityFromCounts(ber, opts, rounds, counts)
	if base != wantBase {
		t.Errorf("baseline %v, want %v", base, wantBase)
	}
	if len(per) != len(wantPer) {
		t.Fatalf("per-layer size %d, want %d", len(per), len(wantPer))
	}
	for li, acc := range wantPer {
		if per[li] != acc {
			t.Errorf("layer %d: %v, want %v", li, per[li], acc)
		}
	}
}
