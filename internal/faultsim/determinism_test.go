package faultsim

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/nn"
)

// workerCounts are the schedules every determinism test compares. Workers=8
// on any host forces real goroutine interleaving (the pool spawns min(n,
// workers) goroutines even on a single-core machine), so running these tests
// under -race exercises genuinely concurrent forward passes.
var workerCounts = []int{1, 2, 8}

func withWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

// TestSweepDeterministicAcrossWorkers: the tentpole guarantee — a BER sweep
// must produce bit-identical accuracies (and preserve point order) for every
// worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	st, wg, stInt, wgInt := testRig(t, 6)
	bers := []float64{0, 1e-10, 1e-9, 3e-9, 1e-8, 1e-7}
	rigs := map[string]struct {
		r         *Runner
		intensity []fault.Census
	}{
		"direct":   {st, stInt},
		"winograd": {wg, wgInt},
	}
	for name, rc := range rigs {
		r := rc.r
		opts := Options{Seed: 42, Intensity: rc.intensity}
		ref := r.Sweep(context.Background(), bers, withWorkers(opts, 1), 3)
		for _, w := range workerCounts[1:] {
			got := r.Sweep(context.Background(), bers, withWorkers(opts, w), 3)
			if len(got) != len(ref) {
				t.Fatalf("%s: workers=%d returned %d points, want %d", name, w, len(got), len(ref))
			}
			for i := range ref {
				if got[i].BER != ref[i].BER {
					t.Errorf("%s: workers=%d point %d BER %g, want %g (ordering broken)",
						name, w, i, got[i].BER, ref[i].BER)
				}
				if got[i].Accuracy != ref[i].Accuracy {
					t.Errorf("%s: workers=%d point %d accuracy %v != serial %v",
						name, w, i, got[i].Accuracy, ref[i].Accuracy)
				}
			}
		}
	}
}

// TestLayerSensitivityDeterministicAcrossWorkers checks the Fig. 3 analysis:
// baseline and per-layer accuracies must match the serial schedule exactly.
func TestLayerSensitivityDeterministicAcrossWorkers(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	opts := Options{Seed: 7, Intensity: stInt}
	refBase, refPer := st.LayerSensitivity(context.Background(), 2e-9, withWorkers(opts, 1), 2)
	for _, w := range workerCounts[1:] {
		base, per := st.LayerSensitivity(context.Background(), 2e-9, withWorkers(opts, w), 2)
		if base != refBase {
			t.Errorf("workers=%d baseline %v != serial %v", w, base, refBase)
		}
		if len(per) != len(refPer) {
			t.Fatalf("workers=%d returned %d layers, want %d", w, len(per), len(refPer))
		}
		for li, acc := range refPer {
			if per[li] != acc {
				t.Errorf("workers=%d layer %d accuracy %v != serial %v", w, li, per[li], acc)
			}
		}
	}
}

// TestAccuracyBatchMatchesIndividual: a heterogeneous batch must return
// exactly what separate Accuracy calls return, in campaign order.
func TestAccuracyBatchMatchesIndividual(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	base := Options{Seed: 5, Intensity: stInt}
	mulFree := base
	mulFree.MulFaultFree = true
	ff := base
	ff.FaultFree = map[int]bool{0: true}
	cs := []Campaign{
		{BER: 1e-9, Opts: base},
		{BER: 0, Opts: base}, // BER <= 0 short-circuits to exactly 1
		{BER: 3e-9, Opts: mulFree},
		{BER: 1e-8, Opts: ff},
	}
	for _, w := range workerCounts {
		got := r4(st, cs, w)
		for i, c := range cs {
			want := st.Accuracy(context.Background(), c.BER, withWorkers(c.Opts, 1), 2)
			if got[i] != want {
				t.Errorf("workers=%d campaign %d accuracy %v, want %v", w, i, got[i], want)
			}
		}
	}
}

func r4(r *Runner, cs []Campaign, workers int) []float64 {
	batch := make([]Campaign, len(cs))
	for i, c := range cs {
		batch[i] = Campaign{BER: c.BER, Opts: withWorkers(c.Opts, workers)}
	}
	return r.AccuracyBatch(context.Background(), batch, 2)
}

// TestRunnerConcurrentCallers: distinct goroutines sharing one Runner (each
// with campaigns of their own) must not interfere — the facade allows a
// System to be queried concurrently.
func TestRunnerConcurrentCallers(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	opts := Options{Seed: 11, Intensity: stInt, Workers: 2}
	want := st.Accuracy(context.Background(), 2e-9, withWorkers(opts, 1), 2)
	var wgrp sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wgrp.Add(1)
		go func() {
			defer wgrp.Done()
			if got := st.Accuracy(context.Background(), 2e-9, opts, 2); got != want {
				errs <- fmt.Errorf("concurrent caller got %v, want %v", got, want)
			}
		}()
	}
	wgrp.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunUnitsCoversAllUnitsOnce: scheduler invariant — every unit index in
// [0, n) executes exactly once for any worker count, including workers > n.
func TestRunUnitsCoversAllUnitsOnce(t *testing.T) {
	st, _, _, _ := testRig(t, 1)
	for _, w := range []int{0, 1, 3, 8, 100} {
		const n = 37
		counts := make([]int32, n)
		var mu sync.Mutex
		st.runUnits(context.Background(), w, n, func(ec *nn.ExecContext, u int) {
			if ec == nil {
				t.Error("nil ExecContext") // runs on a worker goroutine: Error, not Fatal
			}
			mu.Lock()
			counts[u]++
			mu.Unlock()
		})
		for u, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d unit %d ran %d times", w, u, c)
			}
		}
	}
}

// TestRunUnitsPropagatesPanic: a panicking unit must surface on the calling
// goroutine (not crash the process from a worker).
func TestRunUnitsPropagatesPanic(t *testing.T) {
	st, _, _, _ := testRig(t, 1)
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: panic did not propagate", w)
				}
			}()
			st.runUnits(context.Background(), w, 8, func(ec *nn.ExecContext, u int) {
				if u == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// TestResolveWorkers pins the Workers option semantics.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d", got)
	}
	if got := resolveWorkers(-3); got != 1 {
		t.Errorf("resolveWorkers(-3) = %d, want 1", got)
	}
	if got := resolveWorkers(6); got != 6 {
		t.Errorf("resolveWorkers(6) = %d", got)
	}
	if got := resolveWorkers(0); got < 1 {
		t.Errorf("resolveWorkers(0) = %d, want >= 1", got)
	}
}
