package faultsim

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/winograd"
)

// testRig builds a VGG19-tiny runner pair (direct + winograd) sharing
// weights, plus the full-scale intensity censuses that pin the BER axis.
func testRig(t *testing.T, n int) (st, wg *Runner, stInt, wgInt []fault.Census) {
	t.Helper()
	arch := models.VGG19(models.Tiny)
	full := models.VGG19(models.Options{}) // paper scale: full width, 32x32
	cfg := nn.Config{Kind: nn.Direct, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 7}
	stNet := models.Build(arch, cfg)
	cfg.Kind = nn.Winograd
	wgNet := models.Build(arch, cfg)
	set := dataset.ForModel("cifar100", n, arch.In.H, 99, fixed.Int16)
	imgs := set.Batch(0, n)
	return New(stNet, imgs), New(wgNet, imgs),
		models.IntensityFor(arch, full, nn.Direct, nil),
		models.IntensityFor(arch, full, nn.Winograd, winograd.F2)
}

func TestZeroBERIsPerfect(t *testing.T) {
	st, _, _, _ := testRig(t, 4)
	if acc := st.Accuracy(context.Background(), 0, Options{Seed: 1}, 2); acc != 1 {
		t.Errorf("accuracy at BER 0 = %v, want 1", acc)
	}
}

func TestAccuracyDegradesWithBER(t *testing.T) {
	st, _, stInt, _ := testRig(t, 8)
	opts := Options{Semantics: fault.OperandFlip, Seed: 2, Intensity: stInt}
	low := st.Accuracy(context.Background(), 1e-11, opts, 4)
	high := st.Accuracy(context.Background(), 1e-7, opts, 4)
	if low < 0.8 {
		t.Errorf("accuracy at BER 1e-11 = %v, want near 1", low)
	}
	if high > low {
		t.Errorf("accuracy did not degrade: %v @1e-11 vs %v @1e-7", low, high)
	}
	if high > 0.6 {
		t.Errorf("accuracy at BER 1e-7 = %v, expected heavy degradation", high)
	}
}

// TestWinogradBeatsDirect is the paper's headline claim (Fig. 2): at equal
// BER, the winograd network retains higher accuracy because it executes
// ~2.25x fewer (vulnerable) multiplications.
func TestWinogradBeatsDirect(t *testing.T) {
	st, wg, stInt, wgInt := testRig(t, 12)
	var stSum, wgSum float64
	bers := []float64{1e-9, 3e-9, 1e-8}
	for _, ber := range bers {
		stSum += st.Accuracy(context.Background(), ber, Options{Semantics: fault.OperandFlip, Seed: 3, Intensity: stInt}, 6)
		wgSum += wg.Accuracy(context.Background(), ber, Options{Semantics: fault.OperandFlip, Seed: 3, Intensity: wgInt}, 6)
	}
	if wgSum <= stSum {
		t.Errorf("winograd accuracy sum %v not above direct %v", wgSum, stSum)
	}
}

// TestMulMoreVulnerableThanAdd reproduces the Fig. 4 phenomenon: keeping
// multiplications fault-free recovers more accuracy than keeping additions
// fault-free.
func TestMulMoreVulnerableThanAdd(t *testing.T) {
	st, _, stInt, _ := testRig(t, 12)
	const ber = 3e-9
	base := Options{Semantics: fault.OperandFlip, Seed: 4, Intensity: stInt}
	mulFree := base
	mulFree.MulFaultFree = true
	addFree := base
	addFree.AddFaultFree = true
	accMulFree := st.Accuracy(context.Background(), ber, mulFree, 6)
	accAddFree := st.Accuracy(context.Background(), ber, addFree, 6)
	if accMulFree <= accAddFree {
		t.Errorf("fault-free muls (%v) did not beat fault-free adds (%v)", accMulFree, accAddFree)
	}
}

// TestNeuronLevelCannotDistinguish reproduces Fig. 1: under neuron-level
// injection, direct and winograd networks degrade identically.
func TestNeuronLevelCannotDistinguish(t *testing.T) {
	st, wg, _, _ := testRig(t, 12)
	neurons := models.NeuronIntensityFor(models.VGG19(models.Tiny), models.VGG19(models.Options{}))
	for _, ber := range []float64{1e-9, 1e-8} {
		opts := Options{Semantics: fault.NeuronFlip, Seed: 5, NeuronIntensity: neurons}
		a := st.Accuracy(context.Background(), ber, opts, 6)
		b := wg.Accuracy(context.Background(), ber, opts, 6)
		if d := a - b; d > 0.1 || d < -0.1 {
			t.Errorf("BER %v: neuron-level FI separates engines: ST %v vs WG %v", ber, a, b)
		}
	}
}

func TestFaultFreeEverythingIsPerfect(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	ff := map[int]bool{}
	for i := range st.Net.Nodes {
		ff[i] = true
	}
	opts := Options{Semantics: fault.OperandFlip, Seed: 6, Intensity: stInt, FaultFree: ff}
	if acc := st.Accuracy(context.Background(), 1e-7, opts, 3); acc != 1 {
		t.Errorf("fully fault-free accuracy = %v, want 1", acc)
	}
}

func TestFullProtectionIsPerfect(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	prot := map[int]fault.Protection{}
	for i := range st.Net.Nodes {
		prot[i] = fault.Protection{MulFrac: 1, AddFrac: 1}
	}
	opts := Options{Semantics: fault.OperandFlip, Seed: 7, Intensity: stInt, Protection: prot}
	if acc := st.Accuracy(context.Background(), 1e-7, opts, 3); acc != 1 {
		t.Errorf("fully protected accuracy = %v, want 1", acc)
	}
}

func TestProtectionImprovesAccuracy(t *testing.T) {
	st, _, stInt, _ := testRig(t, 12)
	const ber = 1e-8
	unprot := st.Accuracy(context.Background(), ber, Options{Semantics: fault.OperandFlip, Seed: 8, Intensity: stInt}, 6)
	prot := map[int]fault.Protection{}
	for i := range st.Net.Nodes {
		prot[i] = fault.Protection{MulFrac: 0.9, AddFrac: 0.9}
	}
	protected := st.Accuracy(context.Background(), ber, Options{Semantics: fault.OperandFlip, Seed: 8, Intensity: stInt, Protection: prot}, 6)
	if protected < unprot {
		t.Errorf("90%% protection did not help: %v vs %v", protected, unprot)
	}
}

func TestLayerSensitivityShape(t *testing.T) {
	st, _, stInt, _ := testRig(t, 8)
	base, per := st.LayerSensitivity(context.Background(), 3e-9, Options{Semantics: fault.OperandFlip, Seed: 9, Intensity: stInt}, 3)
	if len(per) != len(st.Net.ConvNodes()) {
		t.Fatalf("per-layer results %d, want %d", len(per), len(st.Net.ConvNodes()))
	}
	// Every fault-free-layer accuracy must be >= a slack below base (Monte
	// Carlo noise allows small dips) and at least one should exceed base.
	anyAbove := false
	for li, acc := range per {
		if acc < base-0.25 {
			t.Errorf("layer %d fault-free accuracy %v far below baseline %v", li, acc, base)
		}
		if acc > base {
			anyAbove = true
		}
	}
	if base < 0.99 && !anyAbove {
		t.Error("no layer improved over the all-faulty baseline")
	}
}

func TestDeterministicAccuracy(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	opts := Options{Semantics: fault.OperandFlip, Seed: 10, Intensity: stInt}
	a := st.Accuracy(context.Background(), 1e-8, opts, 3)
	b := st.Accuracy(context.Background(), 1e-8, opts, 3)
	if a != b {
		t.Errorf("same seed produced different accuracies: %v vs %v", a, b)
	}
}

func TestSweep(t *testing.T) {
	st, _, stInt, _ := testRig(t, 4)
	pts := st.Sweep(context.Background(), []float64{0, 1e-9}, Options{Semantics: fault.OperandFlip, Seed: 11, Intensity: stInt}, 2)
	if len(pts) != 2 || pts[0].BER != 0 || pts[0].Accuracy != 1 {
		t.Errorf("sweep malformed: %+v", pts)
	}
}
