// Package faultsim is the operation-level fault-injection platform of the
// reproduction (paper Section 3.1): it runs quantized networks under a
// soft-error model, measures golden-agreement accuracy across bit-error-rate
// sweeps, and supports the layer fault-free masks, operation-type masks and
// per-layer TMR protection configurations used by the paper's analyses.
package faultsim

import (
	"fmt"

	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Options configures one injection campaign (everything except the BER).
type Options struct {
	// Semantics selects operand/result/neuron-level injection.
	Semantics fault.Semantics
	// Seed drives all fault randomness; every (seed, round, node) tuple is an
	// independent deterministic stream.
	Seed uint64
	// Intensity optionally overrides each node's own op census for the
	// expected-fault computation with full-size network counts (see
	// DESIGN.md substitutions). Length must match the node count when set.
	Intensity []fault.Census
	// NeuronIntensity is the analogous per-node activation element count for
	// neuron-level injection.
	NeuronIntensity []int64
	// FaultFree exempts the given node indices from injection (layer-wise
	// sensitivity analysis, Fig. 3).
	FaultFree map[int]bool
	// MulFaultFree / AddFaultFree exempt a whole operation class (Fig. 4).
	MulFaultFree bool
	AddFaultFree bool
	// Protection is the per-node fine-grained TMR configuration (Fig. 5).
	Protection map[int]fault.Protection
}

// Runner evaluates one network against one evaluation input set.
type Runner struct {
	Net    *nn.Network
	Inputs *tensor.QTensor // the full evaluation batch
	golden []int
}

// New computes the golden predictions and returns a ready runner.
func New(net *nn.Network, inputs *tensor.QTensor) *Runner {
	r := &Runner{Net: net, Inputs: inputs}
	r.golden = nn.Argmax(net.Forward(inputs, nil))
	return r
}

// Golden returns the fault-free predictions of the evaluation batch.
func (r *Runner) Golden() []int { return r.golden }

// injector adapts Options + BER to the nn.Injector interface for one
// Monte-Carlo round.
type injector struct {
	opts    *Options
	model   fault.Model
	round   *rng.Stream
	batch   int // evaluation batch size (Intensity describes one image)
	fmt     fixed.Format
	convSet map[int]struct{}
}

func (in *injector) OpEvents(li int, census fault.Census) []fault.Event {
	if in.model.Semantics == fault.NeuronFlip {
		return nil
	}
	if in.opts.FaultFree[li] {
		return nil
	}
	intensity := census
	if in.opts.Intensity != nil {
		intensity = in.opts.Intensity[li].Scale(float64(in.batch))
	}
	prot := in.opts.Protection[li]
	if in.opts.MulFaultFree {
		prot.MulFrac = 1
	}
	if in.opts.AddFaultFree {
		prot.AddFrac = 1
	}
	evs := fault.Sample(in.round.Split(uint64(li)), census, intensity, in.model, in.fmt, prot)
	if in.model.Semantics == fault.ResultFlip {
		conv.MarkResultFlip(evs)
	}
	return evs
}

func (in *injector) Neuron(li int, q *tensor.QTensor) {
	if in.model.Semantics != fault.NeuronFlip {
		return
	}
	if in.opts.FaultFree[li] {
		return
	}
	// Neuron-level FI applies to compute-layer outputs (the "neurons").
	if _, ok := in.convSet[li]; !ok {
		return
	}
	intensity := int64(len(q.Data))
	if in.opts.NeuronIntensity != nil {
		intensity = in.opts.NeuronIntensity[li] * int64(in.batch)
	}
	fault.InjectNeuronsIntensity(q, in.model.BER, intensity, in.round.Split(uint64(li)^0x9e37))
}

// Accuracy measures golden-agreement accuracy at one bit error rate over the
// given number of Monte-Carlo rounds (each round re-samples all faults over
// the whole evaluation batch).
func (r *Runner) Accuracy(ber float64, opts Options, rounds int) float64 {
	if rounds < 1 {
		rounds = 1
	}
	if opts.Intensity != nil && len(opts.Intensity) != len(r.Net.Nodes) {
		panic(fmt.Sprintf("faultsim: intensity length %d != %d nodes", len(opts.Intensity), len(r.Net.Nodes)))
	}
	if ber <= 0 {
		return 1
	}
	root := rng.New(opts.Seed)
	convSet := map[int]struct{}{}
	for _, li := range r.Net.ConvNodes() {
		convSet[li] = struct{}{}
	}
	agree, total := 0, 0
	for round := 0; round < rounds; round++ {
		inj := &injector{
			opts:    &opts,
			model:   fault.Model{BER: ber, Semantics: opts.Semantics},
			round:   root.Split(uint64(round)),
			batch:   r.Inputs.Shape.N,
			fmt:     r.Inputs.Fmt,
			convSet: convSet,
		}
		preds := nn.Argmax(r.Net.Forward(r.Inputs, inj))
		for i, p := range preds {
			if p == r.golden[i] {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}

// Sweep evaluates accuracy across a BER range.
func (r *Runner) Sweep(bers []float64, opts Options, rounds int) []Point {
	out := make([]Point, len(bers))
	for i, ber := range bers {
		out[i] = Point{BER: ber, Accuracy: r.Accuracy(ber, opts, rounds)}
	}
	return out
}

// Point is one (BER, accuracy) sample of a sweep.
type Point struct {
	BER      float64
	Accuracy float64
}

// LayerSensitivity computes, for every conv node, the accuracy when that
// node alone is fault-free while the rest of the network is injected at the
// given BER (paper Fig. 3), plus the all-faulty baseline. The difference
// accuracy(li fault-free) - baseline is the layer's vulnerability factor
// (paper Section 4.1).
func (r *Runner) LayerSensitivity(ber float64, opts Options, rounds int) (base float64, perLayer map[int]float64) {
	base = r.Accuracy(ber, opts, rounds)
	perLayer = make(map[int]float64)
	for _, li := range r.Net.ConvNodes() {
		o := opts
		o.FaultFree = map[int]bool{li: true}
		for k, v := range opts.FaultFree {
			o.FaultFree[k] = v
		}
		perLayer[li] = r.Accuracy(ber, o, rounds)
	}
	return base, perLayer
}
