// Package faultsim is the operation-level fault-injection platform of the
// reproduction (paper Section 3.1): it runs quantized networks under a
// soft-error model, measures golden-agreement accuracy across bit-error-rate
// sweeps, and supports the layer fault-free masks, operation-type masks and
// per-layer TMR protection configurations used by the paper's analyses.
//
// Campaigns run on a deterministic worker pool (see pool.go and DESIGN.md):
// Monte-Carlo rounds, BER sweep points and per-layer masks are independent
// work units whose randomness derives from split rng streams, so every
// result is bit-identical for any Options.Workers value.
package faultsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/fixed"
	"repro/internal/hwfault"
	"repro/internal/kernel"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Options configures one injection campaign (everything except the BER).
type Options struct {
	// Semantics selects operand/result/neuron-level injection.
	Semantics fault.Semantics
	// Seed drives all fault randomness; every (seed, round, node) tuple is an
	// independent deterministic stream.
	Seed uint64
	// Intensity optionally overrides each node's own op census for the
	// expected-fault computation with full-size network counts (see
	// DESIGN.md substitutions). Length must match the node count when set.
	Intensity []fault.Census
	// NeuronIntensity is the analogous per-node activation element count for
	// neuron-level injection.
	NeuronIntensity []int64
	// FaultFree exempts the given node indices from injection (layer-wise
	// sensitivity analysis, Fig. 3).
	FaultFree map[int]bool
	// MulFaultFree / AddFaultFree exempt a whole operation class (Fig. 4).
	MulFaultFree bool
	AddFaultFree bool
	// Protection is the per-node fine-grained TMR configuration (Fig. 5).
	Protection map[int]fault.Protection
	// HW, when set, replaces the statistical operation-level sampler for
	// conv/FC nodes with hardware-located event generation mapped onto the
	// systolic array schedule (see internal/hwfault): stuck PEs, SEU bursts
	// and voltage-stressed regions. FaultFree masks, MulFaultFree and
	// per-node mul protection still apply; all generated events are
	// mul result-register flips, so campaigns using HW run ResultFlip
	// semantics. Nodes without an array schedule stay fault-free, and so do
	// all additions — the PE array executes MACs while the vector unit and
	// accumulator datapath are modeled fault-free, so the statistical
	// background of a voltage-region scenario covers multiplications only.
	// Events remain a pure function of (Seed, round, node), so every
	// determinism and sharding guarantee of the statistical path carries
	// over.
	//
	// Note the unit-space contract is unchanged: campaigns with BER <= 0
	// are still skipped as exactly fault-free, so hardware scenarios must
	// run at a positive (background) BER to take effect.
	HW *hwfault.Injection
	// DeltaExec controls the fault-cone delta-execution fast path: each
	// worker caches the golden per-node activations in its ExecContext and
	// per round recomputes only the nodes downstream of that round's fault
	// events, reusing golden outputs everywhere else. Results are
	// bit-identical to full execution (the engines are deterministic, so a
	// node outside the fault cone can only produce its golden activation;
	// pinned by the golden fixtures and the delta equivalence tests), so
	// nil — the default — means enabled. Point at false to force full
	// re-execution of every round (debugging, paired validation runs).
	//
	// Neuron-level semantics fall back to full execution automatically:
	// neuron flips are not located by the event stream, so no dirty set can
	// bound their cone.
	DeltaExec *bool
	// Backend names the registered compute backend (internal/kernel) that
	// runs the fault-free hot paths; "" means the process default (scalar,
	// unless overridden by the WF_BACKEND environment variable). Backends
	// are bit-identical by contract — like Workers and DeltaExec this is a
	// scheduling/performance knob, never a result-affecting one, and the
	// service cache key ignores it for the same reason. The name must be
	// registered: facades validate via kernel.Get before building Options,
	// and UnitCounts panics on an unknown name (programming error).
	Backend string
	// Workers caps the campaign scheduler's parallelism. 0 (the default)
	// means GOMAXPROCS; 1 forces serial execution. Results are bit-identical
	// for every worker count: each (campaign, round) work unit derives its
	// own rng.Stream from the seed, independent of scheduling (see pool.go).
	Workers int
	// Progress, when set, is called after every completed (campaign, round)
	// work unit with the number of finished units and the batch total. It is
	// observational only — results never depend on it — and may be invoked
	// concurrently from worker goroutines, so it must be goroutine-safe.
	// When a batch mixes several Options values, the first non-nil Progress
	// in campaign order is used for the whole batch.
	Progress func(done, total int)
}

// Runner evaluates one network against one evaluation input set.
type Runner struct {
	Net    *nn.Network
	Inputs *tensor.QTensor // the full evaluation batch
	golden []int
	// ecPool recycles per-worker ExecContexts across campaign batches, so
	// scratch arenas and delta-execution golden planes warmed by one batch
	// carry over to the next instead of being rebuilt per call. Contexts
	// hold no result-affecting state (determinism is per-unit rng), so
	// recycling cannot change any outcome.
	ecPool sync.Pool
}

// New computes the golden predictions and returns a ready runner.
func New(net *nn.Network, inputs *tensor.QTensor) *Runner {
	r := &Runner{Net: net, Inputs: inputs}
	r.golden = nn.Argmax(net.Forward(inputs, nil))
	return r
}

// Golden returns the fault-free predictions of the evaluation batch.
func (r *Runner) Golden() []int { return r.golden }

// injector adapts Options + BER to the nn.Injector interface for one
// Monte-Carlo round.
type injector struct {
	opts    *Options
	model   fault.Model
	round   *rng.Stream
	batch   int // evaluation batch size (Intensity describes one image)
	fmt     fixed.Format
	convSet map[int]struct{}
}

func (in *injector) OpEvents(li int, census fault.Census) []fault.Event {
	if in.model.Semantics == fault.NeuronFlip {
		return nil
	}
	if in.opts.FaultFree[li] {
		return nil
	}
	if in.opts.HW != nil {
		prot := in.opts.Protection[li]
		if in.opts.MulFaultFree {
			prot.MulFrac = 1
		}
		evs := in.opts.HW.Events(li, in.round, in.model.BER, 1-prot.Frac(fault.OpMul))
		conv.MarkResultFlip(evs)
		return evs
	}
	intensity := census
	if in.opts.Intensity != nil {
		intensity = in.opts.Intensity[li].Scale(float64(in.batch))
	}
	prot := in.opts.Protection[li]
	if in.opts.MulFaultFree {
		prot.MulFrac = 1
	}
	if in.opts.AddFaultFree {
		prot.AddFrac = 1
	}
	evs := fault.Sample(in.round.Split(uint64(li)), census, intensity, in.model, in.fmt, prot)
	if in.model.Semantics == fault.ResultFlip {
		conv.MarkResultFlip(evs)
	}
	return evs
}

func (in *injector) Neuron(li int, q *tensor.QTensor) {
	if in.model.Semantics != fault.NeuronFlip {
		return
	}
	if in.opts.FaultFree[li] {
		return
	}
	// Neuron-level FI applies to compute-layer outputs (the "neurons").
	if _, ok := in.convSet[li]; !ok {
		return
	}
	intensity := int64(len(q.Data))
	if in.opts.NeuronIntensity != nil {
		intensity = in.opts.NeuronIntensity[li] * int64(in.batch)
	}
	fault.InjectNeuronsIntensity(q, in.model.BER, intensity, in.round.Split(uint64(li)^0x9e37))
}

// deltaEnabled reports whether this campaign runs the delta-execution fast
// path: on unless explicitly disabled, and never for neuron-level semantics
// (whose in-place activation corruption the event stream cannot locate).
func (o *Options) deltaEnabled() bool {
	return (o.DeltaExec == nil || *o.DeltaExec) && o.Semantics != fault.NeuronFlip
}

// Campaign is one accuracy measurement: a BER paired with campaign options.
// Batches of campaigns share the scheduler's worker pool, so heterogeneous
// evaluations (e.g. the TMR optimizer's candidate plans, or the operation-
// class ablations) saturate all workers instead of running back to back.
type Campaign struct {
	BER  float64
	Opts Options
}

// roundAgree runs one Monte-Carlo round of campaign c and returns how many
// evaluation samples agree with the golden predictions. All randomness is
// derived from (c.Opts.Seed, round) alone, so the result is independent of
// which worker executes it and in what order.
func (r *Runner) roundAgree(ec *nn.ExecContext, c *Campaign, bk kernel.Backend, convSet map[int]struct{}, round int) int {
	// Stamp the campaign's backend every unit: pooled contexts are recycled
	// across batches whose Options may differ. Backends are bit-identical,
	// so this can affect wall-clock only.
	ec.UseBackend(bk)
	inj := &injector{
		opts:    &c.Opts,
		model:   fault.Model{BER: c.BER, Semantics: c.Opts.Semantics},
		round:   rng.New(c.Opts.Seed).Split(uint64(round)),
		batch:   r.Inputs.Shape.N,
		fmt:     r.Inputs.Fmt,
		convSet: convSet,
	}
	var logits *tensor.QTensor
	if c.Opts.deltaEnabled() {
		logits = r.Net.ForwardDelta(ec, r.Inputs, inj)
	} else {
		logits = r.Net.ForwardCtx(ec, r.Inputs, inj)
	}
	preds := nn.Argmax(logits)
	agree := 0
	for i, p := range preds {
		if p == r.golden[i] {
			agree++
		}
	}
	return agree
}

// unit is one flattened (campaign, Monte-Carlo round) work item. The unit
// index space of a batch is a pure function of (cs, rounds) — campaigns in
// order, each contributing `rounds` consecutive units, BER <= 0 campaigns
// contributing none — so every party that can reconstruct the batch agrees
// on which unit an index denotes. That is what makes the space shardable
// across machines (see internal/dist).
type unit struct {
	c     int
	round int
}

// clampRounds mirrors AccuracyBatch's historical behavior: fewer than one
// round means one round. Every unit-space function applies it so Units,
// UnitCounts and Reduce always describe the same flattening.
func clampRounds(rounds int) int {
	if rounds < 1 {
		return 1
	}
	return rounds
}

// flattenUnits builds the unit index space of a batch, skipping BER <= 0
// campaigns (their accuracy is exactly 1 with no faults to sample).
func flattenUnits(cs []Campaign, rounds int) []unit {
	rounds = clampRounds(rounds)
	var units []unit
	for i := range cs {
		if cs[i].BER <= 0 {
			continue
		}
		for round := 0; round < rounds; round++ {
			units = append(units, unit{c: i, round: round})
		}
	}
	return units
}

// Units reports the size of a batch's flattened (campaign, round) unit index
// space — the domain of UnitCounts ranges.
func Units(cs []Campaign, rounds int) int {
	rounds = clampRounds(rounds)
	n := 0
	for i := range cs {
		if cs[i].BER > 0 {
			n += rounds
		}
	}
	return n
}

// UnitCounts executes units [lo, hi) of the batch's flattened index space
// and returns their golden-agreement counts in unit order (result[i] is the
// count of unit lo+i). Each unit's randomness derives solely from its
// (campaign seed, round) identity, so counts for a range are bit-identical
// no matter which process computes them, with how many workers, or alongside
// which other ranges — the property the distributed shard executor rests on.
// The units run on the campaign scheduler's worker pool sized by the largest
// Workers option in the batch.
//
// Canceling ctx stops the scheduler from claiming further units; the call
// returns promptly with partial (meaningless) counts. Callers must check
// ctx.Err() before using the result.
func (r *Runner) UnitCounts(ctx context.Context, cs []Campaign, rounds, lo, hi int) []int {
	units := flattenUnits(cs, rounds)
	if lo < 0 || hi < lo || hi > len(units) {
		panic(fmt.Sprintf("faultsim: unit range [%d, %d) outside [0, %d)", lo, hi, len(units)))
	}
	workers := 1
	bks := make([]kernel.Backend, len(cs))
	for i := range cs {
		if cs[i].Opts.Intensity != nil && len(cs[i].Opts.Intensity) != len(r.Net.Nodes) {
			panic(fmt.Sprintf("faultsim: intensity length %d != %d nodes", len(cs[i].Opts.Intensity), len(r.Net.Nodes)))
		}
		// Facades validate backend names at the boundary; an unknown name
		// here is engine misuse, like a bad intensity length.
		bk, err := kernel.Get(cs[i].Opts.Backend)
		if err != nil {
			panic(fmt.Sprintf("faultsim: %v", err))
		}
		bks[i] = bk
		// Resolve before taking the max: Workers == 0 means GOMAXPROCS and
		// must not lose to an explicit small positive count.
		if w := cs[i].Opts.ResolvedWorkers(); w > workers {
			workers = w
		}
	}

	convSet := map[int]struct{}{}
	for _, li := range r.Net.ConvNodes() {
		convSet[li] = struct{}{}
	}

	// Progress is batch-level: the first campaign that asks for it observes
	// every unit of the range (campaigns in a batch complete together).
	var progress func(done, total int)
	for i := range cs {
		if cs[i].Opts.Progress != nil {
			progress = cs[i].Opts.Progress
			break
		}
	}

	// Publish the batch total before any unit completes so observers (SSE
	// subscribers, the trace timeline) see 0/total rather than waiting for
	// the first unit to learn the denominator.
	if progress != nil {
		progress(0, hi-lo)
	}

	agree := make([]int, hi-lo)
	var completed atomic.Int64
	r.runUnits(ctx, workers, hi-lo, func(ec *nn.ExecContext, u int) {
		un := units[lo+u]
		agree[u] = r.roundAgree(ec, &cs[un.c], bks[un.c], convSet, un.round)
		if progress != nil {
			progress(int(completed.Add(1)), hi-lo)
		}
	})
	return agree
}

// Reduce folds a full batch's per-unit agreement counts (len(counts) ==
// Units(cs, rounds), in unit-index order) into accuracies in campaign order.
// The reduction is an index-ordered integer sum per campaign followed by one
// float division, so merged shard counts reduce to exactly the bytes a
// single-process run produces.
func (r *Runner) Reduce(cs []Campaign, rounds int, counts []int) []float64 {
	rounds = clampRounds(rounds)
	units := flattenUnits(cs, rounds)
	if len(counts) != len(units) {
		panic(fmt.Sprintf("faultsim: %d counts for %d units", len(counts), len(units)))
	}
	out := make([]float64, len(cs))
	for i := range out {
		out[i] = 1
	}
	sums := make([]int, len(cs))
	for u, un := range units {
		sums[un.c] += counts[u]
	}
	total := rounds * len(r.golden)
	for i := range cs {
		if cs[i].BER > 0 {
			out[i] = float64(sums[i]) / float64(total)
		}
	}
	return out
}

// AccuracyBatch measures every campaign in cs over the given number of
// Monte-Carlo rounds (each round re-samples all faults over the whole
// evaluation batch) and returns the accuracies in campaign order. It is the
// single-process composition of the shardable primitives: UnitCounts over
// the full unit range, then the index-ordered Reduce — so the returned
// accuracies are bit-identical for any worker count, and identical to any
// sharded execution of the same batch.
//
// Canceling ctx stops the scheduler from claiming further units; the call
// returns promptly with partial (meaningless) accuracies. Callers that can
// be canceled must check ctx.Err() before using the result — every caller
// that caches or publishes results does.
func (r *Runner) AccuracyBatch(ctx context.Context, cs []Campaign, rounds int) []float64 {
	return r.Reduce(cs, rounds, r.UnitCounts(ctx, cs, rounds, 0, Units(cs, rounds)))
}

// Accuracy measures golden-agreement accuracy at one bit error rate over the
// given number of Monte-Carlo rounds. The rounds run on the campaign
// scheduler's worker pool (opts.Workers).
func (r *Runner) Accuracy(ctx context.Context, ber float64, opts Options, rounds int) float64 {
	return r.AccuracyBatch(ctx, []Campaign{{BER: ber, Opts: opts}}, rounds)[0]
}

// SweepCampaigns builds the campaign batch of a BER sweep: one campaign per
// point, in request order. Every process that shards or reduces a sweep
// reconstructs the identical batch from (bers, opts) via this function, so
// all of them agree on the flattened unit index space.
func SweepCampaigns(bers []float64, opts Options) []Campaign {
	cs := make([]Campaign, len(bers))
	for i, ber := range bers {
		cs[i] = Campaign{BER: ber, Opts: opts}
	}
	return cs
}

// Sweep evaluates accuracy across a BER range. All (BER point, round) units
// run on one worker pool; out[i] always corresponds to bers[i] regardless of
// completion order.
func (r *Runner) Sweep(ctx context.Context, bers []float64, opts Options, rounds int) []Point {
	accs := r.AccuracyBatch(ctx, SweepCampaigns(bers, opts), rounds)
	out := make([]Point, len(bers))
	for i, ber := range bers {
		out[i] = Point{BER: ber, Accuracy: accs[i]}
	}
	return out
}

// Point is one (BER, accuracy) sample of a sweep.
type Point struct {
	BER      float64
	Accuracy float64
}

// LayerSensitivity computes, for every conv node, the accuracy when that
// node alone is fault-free while the rest of the network is injected at the
// given BER (paper Fig. 3), plus the all-faulty baseline. The difference
// accuracy(li fault-free) - baseline is the layer's vulnerability factor
// (paper Section 4.1). The baseline and all per-layer campaigns are
// scheduled as one batch, so the whole analysis saturates the worker pool;
// perLayer is keyed by node index and independent of evaluation order.
func (r *Runner) LayerSensitivity(ctx context.Context, ber float64, opts Options, rounds int) (base float64, perLayer map[int]float64) {
	cs := r.LayerCampaigns(ber, opts)
	return r.layerReduce(r.AccuracyBatch(ctx, cs, rounds))
}

// LayerCampaigns builds the campaign batch of a layer-sensitivity analysis:
// the all-faulty baseline first, then one campaign per conv node with that
// node alone added to the fault-free set, in network order. Like
// SweepCampaigns it is the shared batch constructor that coordinator and
// shard workers both use, so they agree on the unit index space.
func (r *Runner) LayerCampaigns(ber float64, opts Options) []Campaign {
	conv := r.Net.ConvNodes()
	cs := make([]Campaign, 1+len(conv))
	cs[0] = Campaign{BER: ber, Opts: opts}
	for i, li := range conv {
		o := opts
		o.FaultFree = map[int]bool{li: true}
		for k, v := range opts.FaultFree {
			o.FaultFree[k] = v
		}
		cs[1+i] = Campaign{BER: ber, Opts: o}
	}
	return cs
}

// layerReduce maps a LayerCampaigns accuracy vector back to (baseline,
// per-conv-node accuracy).
func (r *Runner) layerReduce(accs []float64) (base float64, perLayer map[int]float64) {
	conv := r.Net.ConvNodes()
	perLayer = make(map[int]float64, len(conv))
	for i, li := range conv {
		perLayer[li] = accs[1+i]
	}
	return accs[0], perLayer
}

// LayerSensitivityFromCounts reduces a full set of per-unit agreement counts
// for the LayerCampaigns(ber, opts) batch — typically merged from shards —
// into the same (baseline, per-layer) result LayerSensitivity computes,
// bit-identically.
func (r *Runner) LayerSensitivityFromCounts(ber float64, opts Options, rounds int, counts []int) (base float64, perLayer map[int]float64) {
	cs := r.LayerCampaigns(ber, opts)
	return r.layerReduce(r.Reduce(cs, rounds, counts))
}
