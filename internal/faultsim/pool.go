package faultsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/nn"
)

// The campaign scheduler: every accuracy measurement decomposes into
// independent (campaign, Monte-Carlo round) work units, and each unit derives
// its fault randomness purely from (campaign seed, round index) via
// rng.Stream splitting — never from a shared generator — so the set of
// sampled faults is identical for any worker count and any completion order.
// Workers only ever write to their own unit's result slot; aggregation
// happens on the caller's goroutine after all units finish. Determinism is
// therefore structural, not incidental: results are bit-identical between
// Workers=1 and Workers=N.
//
// Cancellation follows the same unit structure: workers re-check the context
// before claiming each unit, so a canceled campaign stops after at most one
// in-flight unit per worker instead of draining the whole sweep. Units that
// were executed before the cancellation are still deterministic; the caller
// must treat the aggregate as invalid whenever ctx.Err() != nil.

// ResolvedWorkers reports the concrete worker count the scheduler will use
// for this campaign: Workers, with 0 meaning GOMAXPROCS. Callers use it to
// decide whether speculative extra campaigns are free (idle workers) or
// would cost serial wall-clock time.
func (o *Options) ResolvedWorkers() int { return resolveWorkers(o.Workers) }

// resolveWorkers maps the Workers option to a concrete worker count:
// 0 (the default) means GOMAXPROCS, anything below 1 is clamped to serial.
func resolveWorkers(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// execContext draws a per-worker ExecContext from the runner's recycling
// pool (warm scratch arenas and golden planes survive across batches),
// falling back to a fresh one when the pool is empty.
func (r *Runner) execContext() *nn.ExecContext {
	if ec, ok := r.ecPool.Get().(*nn.ExecContext); ok {
		return ec
	}
	return r.Net.NewExecContext()
}

// runUnits executes fn(ctx, u) for every unit u in [0, n) across the given
// number of workers, stopping early (without running the remaining units)
// once ctx is canceled. Each worker owns a private nn.ExecContext over the
// runner's network, so forward passes reuse per-worker state without
// sharing any of it; contexts return to the runner's pool when the worker
// drains normally. A panic in any unit is captured and re-raised on the
// calling goroutine once all workers have drained (its context is dropped —
// mid-pass scratch state is not re-pooled).
func (r *Runner) runUnits(ctx context.Context, workers, n int, fn func(ec *nn.ExecContext, u int)) {
	if n <= 0 {
		return
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		ec := r.execContext()
		for u := 0; u < n; u++ {
			select {
			case <-done:
				return
			default:
			}
			fn(ec, u)
		}
		r.ecPool.Put(ec)
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicOne sync.Once
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOne.Do(func() { panicked = p })
					// Drain the queue so sibling workers exit promptly.
					next.Store(int64(n))
				}
			}()
			ec := r.execContext()
			for {
				select {
				case <-done:
					return
				default:
				}
				u := int(next.Add(1)) - 1
				if u >= n {
					r.ecPool.Put(ec)
					return
				}
				fn(ec, u)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
