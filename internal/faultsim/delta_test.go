package faultsim

import (
	"context"
	"testing"

	"repro/internal/fault"
)

func boolPtr(b bool) *bool { return &b }

// TestDeltaEnabledResolution pins the option semantics: nil means on, an
// explicit false forces full execution, and neuron-flip campaigns always run
// the full path regardless of the flag (their in-place corruption is not
// located by the event stream).
func TestDeltaEnabledResolution(t *testing.T) {
	cases := []struct {
		opts Options
		want bool
	}{
		{Options{}, true},
		{Options{DeltaExec: boolPtr(true)}, true},
		{Options{DeltaExec: boolPtr(false)}, false},
		{Options{Semantics: fault.NeuronFlip}, false},
		{Options{Semantics: fault.NeuronFlip, DeltaExec: boolPtr(true)}, false},
		{Options{Semantics: fault.OperandFlip}, true},
	}
	for i, c := range cases {
		if got := c.opts.deltaEnabled(); got != c.want {
			t.Errorf("case %d: deltaEnabled() = %v, want %v", i, got, c.want)
		}
	}
}

// TestDeltaMatchesFullAcrossSemantics: for every injection semantics, a
// campaign with delta execution enabled returns accuracies bit-identical to
// the same campaign forced through full execution, for serial and parallel
// scheduling alike.
func TestDeltaMatchesFullAcrossSemantics(t *testing.T) {
	st, wg, stInt, wgInt := testRig(t, 6)
	bers := []float64{1e-10, 3e-9, 1e-7}
	for _, sem := range []fault.Semantics{fault.ResultFlip, fault.OperandFlip, fault.NeuronFlip} {
		for _, rig := range []struct {
			name string
			r    *Runner
			in   []fault.Census
		}{{"direct", st, stInt}, {"winograd", wg, wgInt}} {
			for _, workers := range []int{1, 4} {
				opts := Options{Semantics: sem, Seed: 11, Intensity: rig.in, Workers: workers}
				full := opts
				full.DeltaExec = boolPtr(false)
				want := rig.r.AccuracyBatch(context.Background(), SweepCampaigns(bers, full), 2)
				got := rig.r.AccuracyBatch(context.Background(), SweepCampaigns(bers, opts), 2)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%v/%s/workers=%d: delta accuracy[%d] = %v, full = %v",
							sem, rig.name, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestDeltaUnitRangeSharding: per-unit agreement counts from a delta-enabled
// runner, computed shard by shard, must merge to exactly the counts a full-
// execution runner produces over the whole range — the invariant that lets
// delta and non-delta workers participate in the same distributed campaign.
func TestDeltaUnitRangeSharding(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	bers := []float64{1e-9, 1e-8}
	opts := Options{Seed: 5, Intensity: stInt, Workers: 1}
	full := opts
	full.DeltaExec = boolPtr(false)
	cs := SweepCampaigns(bers, full)
	const rounds = 3
	want := st.UnitCounts(context.Background(), cs, rounds, 0, Units(cs, rounds))

	deltaCS := SweepCampaigns(bers, opts)
	total := Units(deltaCS, rounds)
	var got []int
	for lo := 0; lo < total; lo += 2 {
		hi := lo + 2
		if hi > total {
			hi = total
		}
		// Fresh delta runner per shard, as independent workers would be.
		shard, _, _, _ := testRig(t, 6)
		got = append(got, shard.UnitCounts(context.Background(), deltaCS, rounds, lo, hi)...)
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d shard counts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("unit %d: delta-sharded count %d != full count %d", i, got[i], want[i])
		}
	}
}

// TestDeltaProtectionThinsToNothing: when protection (or the operation-class
// fault-free flags) masks every sampled event, each round's dirty set is
// empty and delta execution returns the golden predictions — accuracy exactly
// 1 even at a BER that would otherwise destroy the network, identical to the
// full path.
func TestDeltaProtectionThinsToNothing(t *testing.T) {
	st, _, stInt, _ := testRig(t, 6)
	const ber = 1e-7 // ~everything dirty when unprotected (see the sweep tests)

	classFree := Options{Seed: 9, Intensity: stInt, MulFaultFree: true, AddFaultFree: true}
	prot := map[int]fault.Protection{}
	for i := range st.Net.Nodes {
		prot[i] = fault.Protection{MulFrac: 1, AddFrac: 1}
	}
	fullProt := Options{Seed: 9, Intensity: stInt, Protection: prot}
	for name, opts := range map[string]Options{"class fault-free": classFree, "full protection": fullProt} {
		if acc := st.Accuracy(context.Background(), ber, opts, 2); acc != 1 {
			t.Errorf("%s: delta accuracy = %v, want exactly 1 (events must thin to nothing)", name, acc)
		}
		forced := opts
		forced.DeltaExec = boolPtr(false)
		if acc := st.Accuracy(context.Background(), ber, forced, 2); acc != 1 {
			t.Errorf("%s: full-execution accuracy = %v, want exactly 1", name, acc)
		}
	}
}
