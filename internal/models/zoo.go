package models

import "fmt"

// VGG19 builds the 16-convolution VGG configuration E adapted to CIFAR-100
// (the paper's VGG19@CIFAR-100 benchmark): five conv stages with 2/2/4/4/4
// 3x3 convolutions separated by 2x2 max pooling, then a 512-unit hidden FC
// and the classifier. Native input is 32x32.
func VGG19(o Options) *Arch {
	size := o.inputSize(32)
	b := newArchBuilder("vgg19", "cifar100", 100, 3, size, size)
	stages := [][]int{{64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512}, {512, 512, 512, 512}}
	x := -1
	for si, stage := range stages {
		for ci, c := range stage {
			x = b.convReLU(fmt.Sprintf("conv%d_%d", si+1, ci+1), x, o.scaleC(c), 3, 1, 1)
		}
		if b.shapeOf(x).H >= 2 {
			x = b.maxpool(fmt.Sprintf("pool%d", si+1), x, 2, 2, 0)
		}
	}
	x = b.flatten("flatten", x)
	x = b.relu("fc1.relu", b.fc("fc1", x, o.scaleC(512)))
	x = b.fc("fc2", x, 100)
	return b.finish(x)
}

// ResNet50 builds the bottleneck ResNet-50 for ImageNet (paper benchmark):
// 7x7/2 stem, 3x3/2 max pool, stages of 3/4/6/3 bottleneck blocks, global
// average pooling and a 1000-way classifier. Native input is 224x224.
func ResNet50(o Options) *Arch {
	size := o.inputSize(224)
	b := newArchBuilder("resnet50", "imagenet", 1000, 3, size, size)
	x := b.convReLU("conv1", -1, o.scaleC(64), 7, 2, 3)
	x = b.maxpool("pool1", x, 3, 2, 1)

	blocks := []int{3, 4, 6, 3}
	mids := []int{64, 128, 256, 512}
	for si, nBlocks := range blocks {
		mid, out := o.scaleC(mids[si]), o.scaleC(mids[si]*4)
		for bi := 0; bi < nBlocks; bi++ {
			name := fmt.Sprintf("res%d_%d", si+2, bi+1)
			stride := 1
			if bi == 0 && si > 0 {
				stride = 2
			}
			inIdx := x
			y := b.convReLU(name+".a", x, mid, 1, stride, 0)
			y = b.convReLU(name+".b", y, mid, 3, 1, 1)
			y = b.convNB(name+".c", y, out, 1, 1, 0)
			short := inIdx
			if bi == 0 {
				short = b.convNB(name+".down", inIdx, out, 1, stride, 0)
			}
			x = b.relu(name+".relu", b.add(name+".add", y, short))
		}
	}
	x = b.gap("gap", x)
	x = b.flatten("flatten", x)
	x = b.fc("fc", x, 1000)
	return b.finish(x)
}

// DenseNet169 builds DenseNet-169 for ImageNet (paper benchmark): 7x7/2
// stem, dense blocks of 6/12/32/32 bottleneck layers with growth rate 32,
// half-compression transitions, global average pooling and classifier.
// Native input is 224x224.
func DenseNet169(o Options) *Arch {
	size := o.inputSize(224)
	growth := o.scaleC(32)
	b := newArchBuilder("densenet169", "imagenet", 1000, 3, size, size)
	x := b.convReLU("conv1", -1, o.scaleC(64), 7, 2, 3)
	x = b.maxpool("pool1", x, 3, 2, 1)

	blocks := []int{6, 12, 32, 32}
	for bi, nLayers := range blocks {
		for li := 0; li < nLayers; li++ {
			name := fmt.Sprintf("dense%d_%d", bi+1, li+1)
			y := b.convReLU(name+".bottleneck", x, 4*growth, 1, 1, 0)
			y = b.convReLU(name+".conv", y, growth, 3, 1, 1)
			x = b.concat(name+".cat", x, y)
		}
		if bi < len(blocks)-1 {
			name := fmt.Sprintf("trans%d", bi+1)
			c := b.shapeOf(x).C / 2
			if c < 2 {
				c = 2
			}
			x = b.convReLU(name+".conv", x, c, 1, 1, 0)
			if b.shapeOf(x).H >= 2 {
				x = b.avgpool(name+".pool", x, 2, 2, 0)
			}
		}
	}
	x = b.gap("gap", x)
	x = b.flatten("flatten", x)
	x = b.fc("fc", x, 1000)
	return b.finish(x)
}

// inceptionSpec is one GoogLeNet inception module configuration.
type inceptionSpec struct {
	name                     string
	c1, c3r, c3, c5r, c5, pp int
}

// GoogLeNet builds GoogLeNet for CIFAR-10 (paper benchmark): the CIFAR
// adaptation replaces the 7x7/2 stem with a 3x3/1 convolution so 32x32
// inputs retain spatial extent, then follows the ImageNet inception stack.
// The 5x5 inception branches exercise the DWM kernel decomposition under
// the winograd engine. Native input is 32x32.
func GoogLeNet(o Options) *Arch {
	size := o.inputSize(32)
	b := newArchBuilder("googlenet", "cifar10", 10, 3, size, size)
	x := b.convReLU("conv1", -1, o.scaleC(64), 3, 1, 1)
	x = b.convReLU("conv2", x, o.scaleC(64), 1, 1, 0)
	x = b.convReLU("conv3", x, o.scaleC(192), 3, 1, 1)
	x = b.maxpool("pool1", x, 3, 2, 1)

	specs3 := []inceptionSpec{
		{"3a", 64, 96, 128, 16, 32, 32},
		{"3b", 128, 128, 192, 32, 96, 64},
	}
	specs4 := []inceptionSpec{
		{"4a", 192, 96, 208, 16, 48, 64},
		{"4b", 160, 112, 224, 24, 64, 64},
		{"4c", 128, 128, 256, 24, 64, 64},
		{"4d", 112, 144, 288, 32, 64, 64},
		{"4e", 256, 160, 320, 32, 128, 128},
	}
	specs5 := []inceptionSpec{
		{"5a", 256, 160, 320, 32, 128, 128},
		{"5b", 384, 192, 384, 48, 128, 128},
	}
	for _, s := range specs3 {
		x = b.inception(s, o, x)
	}
	x = b.maxpool("pool2", x, 3, 2, 1)
	for _, s := range specs4 {
		x = b.inception(s, o, x)
	}
	x = b.maxpool("pool3", x, 3, 2, 1)
	for _, s := range specs5 {
		x = b.inception(s, o, x)
	}
	x = b.gap("gap", x)
	x = b.flatten("flatten", x)
	x = b.fc("fc", x, 10)
	return b.finish(x)
}

func (b *archBuilder) inception(s inceptionSpec, o Options, x int) int {
	n := "inc" + s.name
	b1 := b.convReLU(n+".b1", x, o.scaleC(s.c1), 1, 1, 0)
	b3 := b.convReLU(n+".b3r", x, o.scaleC(s.c3r), 1, 1, 0)
	b3 = b.convReLU(n+".b3", b3, o.scaleC(s.c3), 3, 1, 1)
	b5 := b.convReLU(n+".b5r", x, o.scaleC(s.c5r), 1, 1, 0)
	b5 = b.convReLU(n+".b5", b5, o.scaleC(s.c5), 5, 1, 2)
	bp := b.maxpool(n+".pool", x, 3, 1, 1)
	bp = b.convReLU(n+".pp", bp, o.scaleC(s.pp), 1, 1, 0)
	return b.concat(n+".cat", b1, b3, b5, bp)
}

// Zoo returns the four paper benchmarks at the given scale, keyed by the
// names used throughout the experiments.
func Zoo(o Options) map[string]*Arch {
	return map[string]*Arch{
		"vgg19":       VGG19(o),
		"resnet50":    ResNet50(o),
		"densenet169": DenseNet169(o),
		"googlenet":   GoogLeNet(o),
	}
}

// ByName returns one benchmark architecture by name.
func ByName(name string, o Options) (*Arch, error) {
	switch name {
	case "vgg19":
		return VGG19(o), nil
	case "resnet50":
		return ResNet50(o), nil
	case "densenet169":
		return DenseNet169(o), nil
	case "googlenet":
		return GoogLeNet(o), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q (want vgg19, resnet50, densenet169 or googlenet)", name)
	}
}
