package models

import (
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

func cfg(kind nn.EngineKind) nn.Config {
	return nn.Config{Kind: kind, Tile: winograd.F2, ActFmt: fixed.Int16, WFmt: fixed.Int16, Seed: 42}
}

func TestAllModelsBuildAndRun(t *testing.T) {
	for name, arch := range Zoo(Tiny) {
		t.Run(name, func(t *testing.T) {
			net := Build(arch, cfg(nn.Direct))
			in := tensor.Quantize(
				tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(1), 0.5),
				fixed.Int16)
			out := net.Forward(in, nil)
			if out.Shape.C != arch.Classes {
				t.Errorf("output classes = %d, want %d", out.Shape.C, arch.Classes)
			}
			if out.Shape.H != 1 || out.Shape.W != 1 {
				t.Errorf("output not flat: %v", out.Shape)
			}
		})
	}
}

func TestWinogradVariantMatchesDirect(t *testing.T) {
	for name, arch := range Zoo(Tiny) {
		t.Run(name, func(t *testing.T) {
			st := Build(arch, cfg(nn.Direct))
			wg := Build(arch, cfg(nn.Winograd))
			in := tensor.Quantize(
				tensor.New(tensor.Shape{N: 2, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(2), 0.5),
				fixed.Int16)
			oa := st.Forward(in, nil)
			ob := wg.Forward(in, nil)
			// The engines agree up to a few LSB of accumulated quantization
			// noise (paper: lossless conversion). Argmax may still flip when
			// random-weight logit margins are sub-LSB, so the check is on
			// logit closeness, not predictions.
			var maxd int32
			var meanAbs float64
			for i := range oa.Data {
				d := oa.Data[i] - ob.Data[i]
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
				v := oa.Data[i]
				if v < 0 {
					v = -v
				}
				meanAbs += float64(v)
			}
			meanAbs /= float64(len(oa.Data))
			limit := 0.2 * meanAbs
			if limit < 16 {
				limit = 16
			}
			if float64(maxd) > limit {
				t.Errorf("direct and winograd logits diverge by %d LSB (limit %.0f, mean |logit| %.0f)",
					maxd, limit, meanAbs)
			}
		})
	}
}

func TestValidateGeometry(t *testing.T) {
	// Every zoo model must validate at experiment scales and even at absurdly
	// small resolutions (the "same"-padded stacks keep spatial dims >= 1).
	for _, opts := range []Options{Tiny, Quick, {WidthMult: 0.125, InputSize: 1}} {
		for name, arch := range Zoo(opts) {
			if err := ValidateGeometry(arch); err != nil {
				t.Errorf("%s at %+v: unexpected error %v", name, opts, err)
			}
		}
	}

	// A valid-pad convolution on an undersized input must be rejected with a
	// descriptive error instead of panicking inside the engines at forward
	// time ("input too small").
	bad := &Arch{
		Name: "tiny-valid-pad", Dataset: "synthetic", Classes: 2,
		In: tensor.Shape{N: 1, C: 2, H: 2, W: 2},
		Ops: []OpDef{
			{Name: "conv1", Kind: "conv", Inputs: []int{-1}, OutC: 2, K: 3, Stride: 1, Pad: 0},
		},
		Output: 0,
	}
	err := ValidateGeometry(bad)
	if err == nil {
		t.Fatal("collapsing geometry validated")
	}
	if !strings.Contains(err.Error(), "conv1") || !strings.Contains(err.Error(), "too small") {
		t.Errorf("error %q does not name the collapsing node", err)
	}

	empty := &Arch{Name: "empty", In: tensor.Shape{}}
	if ValidateGeometry(empty) == nil {
		t.Error("empty input shape validated")
	}
}

func TestFullScaleCensusMagnitudes(t *testing.T) {
	// Full-scale op counts must be in the ballpark of the published MAC
	// counts: VGG19@CIFAR ~0.4 GMAC, ResNet50@224 ~4.1 GMAC,
	// DenseNet169@224 ~3.4 GMAC, GoogLeNet@32 is the CIFAR adaptation.
	full := Options{}
	checks := []struct {
		name   string
		arch   *Arch
		lo, hi float64 // GMul bounds for the direct engine
	}{
		{"vgg19", VGG19(full), 0.25, 0.55},
		{"resnet50", ResNet50(full), 3.0, 5.0},
		{"densenet169", DenseNet169(full), 2.2, 4.5},
		{"googlenet", GoogLeNet(full), 0.1, 2.0},
	}
	for _, c := range checks {
		mul := float64(TotalCensus(c.arch, nn.Direct, nil).Mul) / 1e9
		if mul < c.lo || mul > c.hi {
			t.Errorf("%s full-scale GMul = %.3f, want in [%v,%v]", c.name, mul, c.lo, c.hi)
		}
	}
}

func TestWinogradCensusReducesMuls(t *testing.T) {
	for name, arch := range Zoo(Quick) {
		st := TotalCensus(arch, nn.Direct, nil)
		wg := TotalCensus(arch, nn.Winograd, winograd.F2)
		if wg.Mul >= st.Mul {
			t.Errorf("%s: winograd muls %d >= direct muls %d", name, wg.Mul, st.Mul)
		}
		ratio := float64(st.Mul) / float64(wg.Mul)
		// Networks mix 1x1 (no winograd) and 3x3+ convs; overall reduction
		// must be visible but below the pure-3x3 2.25x.
		if ratio < 1.05 || ratio > 2.5 {
			t.Errorf("%s: mul reduction ratio %.2f out of plausible range", name, ratio)
		}
	}
}

func TestCensusMatchesBuiltNetwork(t *testing.T) {
	// Geometry-only census must agree exactly with the instantiated network.
	for name, arch := range Zoo(Tiny) {
		for _, kind := range []nn.EngineKind{nn.Direct, nn.Winograd} {
			net := Build(arch, cfg(kind))
			in := tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}
			got := Census(arch, kind, winograd.F2)
			want := net.LayerCensus(in)
			if len(got) != len(want) {
				t.Fatalf("%s/%v: node count %d vs %d", name, kind, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s/%v node %d (%s): census %v != %v",
						name, kind, i, arch.Ops[i].Name, got[i], want[i])
				}
			}
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	arch := VGG19(Tiny)
	a := Build(arch, cfg(nn.Direct))
	b := Build(arch, cfg(nn.Direct))
	in := tensor.Quantize(
		tensor.New(tensor.Shape{N: 1, C: 3, H: arch.In.H, W: arch.In.W}).Random(rng.New(3), 0.5),
		fixed.Int16)
	oa, ob := a.Forward(in, nil), b.Forward(in, nil)
	for i := range oa.Data {
		if oa.Data[i] != ob.Data[i] {
			t.Fatal("two builds from the same seed differ")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50", "densenet169", "googlenet"} {
		if _, err := ByName(name, Tiny); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("alexnet", Tiny); err == nil {
		t.Error("unknown model did not error")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{WidthMult: 0.25}
	if o.scaleC(64) != 16 || o.scaleC(4) != 2 || o.scaleC(1) != 2 {
		t.Error("scaleC wrong")
	}
	full := Options{}
	if full.scaleC(64) != 64 {
		t.Error("zero WidthMult must mean full width")
	}
	if full.inputSize(224) != 224 || (Options{InputSize: 32}).inputSize(224) != 32 {
		t.Error("inputSize wrong")
	}
}

func TestVGG19LayerCount(t *testing.T) {
	arch := VGG19(Options{})
	convs := 0
	for _, op := range arch.Ops {
		if op.Kind == "conv" {
			convs++
		}
	}
	if convs != 16 {
		t.Errorf("VGG19 conv layers = %d, want 16", convs)
	}
}

func TestDenseNet169LayerCount(t *testing.T) {
	arch := DenseNet169(Options{})
	convs := 0
	for _, op := range arch.Ops {
		if op.Kind == "conv" {
			convs++
		}
	}
	// 1 stem + 2*(6+12+32+32) dense + 3 transitions = 168 convs (+1 fc = 169).
	if convs != 168 {
		t.Errorf("DenseNet169 conv layers = %d, want 168", convs)
	}
}

func TestResNet50LayerCount(t *testing.T) {
	arch := ResNet50(Options{})
	convs := 0
	for _, op := range arch.Ops {
		if op.Kind == "conv" {
			convs++
		}
	}
	// 1 stem + 3*(3+4+6+3) block convs + 4 downsamples = 53 (+1 fc = 54).
	if convs != 53 {
		t.Errorf("ResNet50 conv layers = %d, want 53", convs)
	}
}
