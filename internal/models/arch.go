// Package models contains the benchmark network zoo of the paper —
// DenseNet169, ResNet50, VGG19 and GoogLeNet — expressed as an
// architecture IR that can be (a) instantiated into a runnable quantized
// nn.Network with deterministic weights at any width/resolution scale, and
// (b) analysed geometry-only to obtain the *full-size* operation census that
// drives fault intensities, so scaled-down experiment models keep the
// paper's bit-error-rate axis (see DESIGN.md, substitutions).
package models

import (
	"fmt"
	"math"

	"repro/internal/conv"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// OpDef is one node of an architecture, mirroring nn's op set.
type OpDef struct {
	Name   string
	Kind   string // conv | fc | relu | maxpool | avgpool | gap | add | concat | flatten
	Inputs []int  // indices into Arch.Ops; -1 is the network input
	// conv/fc geometry (fc uses K=1):
	OutC, K, Stride, Pad int
	NoBias               bool
}

// Arch is a scale-agnostic network description.
type Arch struct {
	Name    string
	Dataset string
	Classes int
	In      tensor.Shape // {1, C, H, W}
	Ops     []OpDef
	Output  int
}

// Options controls model scaling. The zero value means full paper scale.
type Options struct {
	// WidthMult scales every channel count (0 means 1.0 = full width).
	WidthMult float64
	// InputSize overrides the spatial input resolution (0 = dataset native:
	// 32 for CIFAR, 224 for ImageNet).
	InputSize int
}

// Quick is the default experiment scale: quarter width, 32x32 inputs. The
// layer structure, relative per-layer op counts and mul/add ratios of the
// full models are preserved; only absolute cost shrinks.
var Quick = Options{WidthMult: 0.25, InputSize: 32}

// Tiny is the scale used by unit tests and -short benchmarks.
var Tiny = Options{WidthMult: 0.125, InputSize: 16}

func (o Options) width() float64 {
	if o.WidthMult <= 0 {
		return 1
	}
	return o.WidthMult
}

// scaleC scales a channel count, keeping at least 2 channels.
func (o Options) scaleC(c int) int {
	s := int(math.Round(float64(c) * o.width()))
	if s < 2 {
		return 2
	}
	return s
}

func (o Options) inputSize(native int) int {
	if o.InputSize > 0 {
		return o.InputSize
	}
	return native
}

// archBuilder accumulates OpDefs with shape tracking.
type archBuilder struct {
	a      *Arch
	shapes []tensor.Shape
}

func newArchBuilder(name, dataset string, classes, c, h, w int) *archBuilder {
	return &archBuilder{a: &Arch{
		Name: name, Dataset: dataset, Classes: classes,
		In: tensor.Shape{N: 1, C: c, H: h, W: w},
	}}
}

func (b *archBuilder) shapeOf(i int) tensor.Shape {
	if i == nn.InputNode {
		return b.a.In
	}
	return b.shapes[i]
}

func (b *archBuilder) push(d OpDef) int {
	ins := make([]tensor.Shape, len(d.Inputs))
	for i, idx := range d.Inputs {
		ins[i] = b.shapeOf(idx)
	}
	b.a.Ops = append(b.a.Ops, d)
	b.shapes = append(b.shapes, outShapeOf(d, ins))
	return len(b.a.Ops) - 1
}

func (b *archBuilder) conv(name string, from, outC, k, s, p int) int {
	return b.push(OpDef{Name: name, Kind: "conv", Inputs: []int{from}, OutC: outC, K: k, Stride: s, Pad: p})
}

func (b *archBuilder) convNB(name string, from, outC, k, s, p int) int {
	return b.push(OpDef{Name: name, Kind: "conv", Inputs: []int{from}, OutC: outC, K: k, Stride: s, Pad: p, NoBias: true})
}

func (b *archBuilder) relu(name string, from int) int {
	return b.push(OpDef{Name: name, Kind: "relu", Inputs: []int{from}})
}

func (b *archBuilder) convReLU(name string, from, outC, k, s, p int) int {
	return b.relu(name+".relu", b.conv(name, from, outC, k, s, p))
}

func (b *archBuilder) maxpool(name string, from, k, s, p int) int {
	return b.push(OpDef{Name: name, Kind: "maxpool", Inputs: []int{from}, K: k, Stride: s, Pad: p})
}

func (b *archBuilder) avgpool(name string, from, k, s, p int) int {
	return b.push(OpDef{Name: name, Kind: "avgpool", Inputs: []int{from}, K: k, Stride: s, Pad: p})
}

func (b *archBuilder) gap(name string, from int) int {
	return b.push(OpDef{Name: name, Kind: "gap", Inputs: []int{from}})
}

func (b *archBuilder) add(name string, x, y int) int {
	return b.push(OpDef{Name: name, Kind: "add", Inputs: []int{x, y}})
}

func (b *archBuilder) concat(name string, xs ...int) int {
	return b.push(OpDef{Name: name, Kind: "concat", Inputs: xs})
}

func (b *archBuilder) flatten(name string, from int) int {
	return b.push(OpDef{Name: name, Kind: "flatten", Inputs: []int{from}})
}

func (b *archBuilder) fc(name string, from, out int) int {
	return b.push(OpDef{Name: name, Kind: "fc", Inputs: []int{from}, OutC: out, K: 1})
}

func (b *archBuilder) finish(output int) *Arch {
	b.a.Output = output
	return b.a
}

// outShapeOf propagates shapes for one OpDef.
func outShapeOf(d OpDef, ins []tensor.Shape) tensor.Shape {
	in := ins[0]
	switch d.Kind {
	case "fc":
		return tensor.Shape{N: in.N, C: d.OutC, H: 1, W: 1}
	case "conv":
		oh := (in.H+2*d.Pad-d.K)/d.Stride + 1
		ow := (in.W+2*d.Pad-d.K)/d.Stride + 1
		return tensor.Shape{N: in.N, C: d.OutC, H: oh, W: ow}
	case "relu":
		return in
	case "maxpool":
		return nn.MaxPool{K: d.K, Stride: d.Stride, Pad: d.Pad}.OutShape(ins)
	case "avgpool":
		return nn.AvgPool{K: d.K, Stride: d.Stride, Pad: d.Pad}.OutShape(ins)
	case "gap":
		return nn.GlobalAvgPool{}.OutShape(ins)
	case "add":
		return nn.Add{}.OutShape(ins)
	case "concat":
		return nn.Concat{}.OutShape(ins)
	case "flatten":
		return nn.Flatten{}.OutShape(ins)
	default:
		panic(fmt.Sprintf("models: unknown op kind %q", d.Kind))
	}
}

// Build instantiates the architecture into a runnable network with
// deterministic (seed, layer-name)-derived weights.
func Build(a *Arch, cfg nn.Config) *nn.Network {
	root := rng.New(cfg.Seed)
	net := &nn.Network{Name: a.Name, Kind: cfg.Kind, InShape: a.In, Output: a.Output}
	shapes := make([]tensor.Shape, len(a.Ops))
	tile := cfg.Tile
	if tile == nil {
		tile = winograd.F2
	}
	for i, d := range a.Ops {
		ins := make([]tensor.Shape, len(d.Inputs))
		for j, idx := range d.Inputs {
			if idx == nn.InputNode {
				ins[j] = a.In
			} else {
				ins[j] = shapes[idx]
			}
		}
		var op nn.Op
		switch d.Kind {
		case "conv":
			w, bias := nn.HeWeights(root, d.Name, d.OutC, ins[0].C, d.K, d.K)
			if d.NoBias {
				bias = nil
			}
			op = nn.NewConv(w, bias, d.Stride, d.Pad, cfg.Kind, tile, cfg.WFmt, cfg.ActFmt)
		case "fc":
			w, bias := nn.HeWeights(root, d.Name, d.OutC, ins[0].C, 1, 1)
			op = nn.NewFC(w, bias, cfg.WFmt, cfg.ActFmt)
		case "relu":
			op = nn.ReLU{}
		case "maxpool":
			op = nn.MaxPool{K: d.K, Stride: d.Stride, Pad: d.Pad}
		case "avgpool":
			op = nn.AvgPool{K: d.K, Stride: d.Stride, Pad: d.Pad}
		case "gap":
			op = nn.GlobalAvgPool{}
		case "add":
			op = nn.Add{}
		case "concat":
			op = nn.Concat{}
		case "flatten":
			op = nn.Flatten{}
		default:
			panic(fmt.Sprintf("models: unknown op kind %q", d.Kind))
		}
		net.Nodes = append(net.Nodes, nn.Node{Name: d.Name, Op: op, Inputs: d.Inputs})
		shapes[i] = op.OutShape(ins)
	}
	if err := net.Validate(); err != nil {
		panic(err)
	}
	return net
}

// Census computes the per-node op census of the architecture for the given
// engine kind from geometry alone — no weights are materialized, so it is
// cheap even at full ImageNet scale.
func Census(a *Arch, kind nn.EngineKind, tile *winograd.Tile) []fault.Census {
	if tile == nil {
		tile = winograd.F2
	}
	out := make([]fault.Census, len(a.Ops))
	shapes := make([]tensor.Shape, len(a.Ops))
	for i, d := range a.Ops {
		ins := nodeInputShapes(a, i, shapes)
		switch d.Kind {
		case "conv":
			if kind == nn.Winograd && d.K >= 2 {
				out[i] = winograd.CensusFor(ins[0], d.OutC, d.K, d.K, d.Stride, d.Pad, !d.NoBias, tile)
			} else {
				out[i] = conv.CensusFor(ins[0], d.OutC, d.K, d.K, d.Stride, d.Pad, !d.NoBias)
			}
		case "fc":
			out[i] = conv.CensusFor(ins[0], d.OutC, 1, 1, 1, 0, true)
		case "maxpool":
			out[i] = nn.MaxPool{K: d.K, Stride: d.Stride, Pad: d.Pad}.Census(ins)
		case "avgpool":
			out[i] = nn.AvgPool{K: d.K, Stride: d.Stride, Pad: d.Pad}.Census(ins)
		case "gap":
			out[i] = nn.GlobalAvgPool{}.Census(ins)
		case "add":
			out[i] = nn.Add{}.Census(ins)
		}
		shapes[i] = outShapeOf(d, ins)
	}
	return out
}

// ValidateGeometry checks that every node of the architecture produces a
// non-empty output shape, so undersized inputs surface as a descriptive
// error at construction time instead of a panic deep inside the convolution
// engines ("input too small") at forward time. It propagates shapes exactly
// as Build does; the first collapsing node is reported by name.
func ValidateGeometry(a *Arch) error {
	if !a.In.Valid() {
		return fmt.Errorf("models: %s input shape %v is empty", a.Name, a.In)
	}
	shapes := make([]tensor.Shape, len(a.Ops))
	for i, d := range a.Ops {
		ins := nodeInputShapes(a, i, shapes)
		out := outShapeOf(d, ins)
		if !out.Valid() {
			return fmt.Errorf("models: %s node %q (%s %dx%d s%d p%d) collapses to %v for input %v: input resolution too small",
				a.Name, d.Name, d.Kind, d.K, d.K, d.Stride, d.Pad, out, ins[0])
		}
		shapes[i] = out
	}
	return nil
}

// nodeInputShapes resolves node i's input shapes from the already-propagated
// node output shapes, shared by every geometry walk over an Arch.
func nodeInputShapes(a *Arch, i int, shapes []tensor.Shape) []tensor.Shape {
	d := a.Ops[i]
	ins := make([]tensor.Shape, len(d.Inputs))
	for j, idx := range d.Inputs {
		if idx == nn.InputNode {
			ins[j] = a.In
		} else {
			ins[j] = shapes[idx]
		}
	}
	return ins
}

// Shapes returns every node's output shape (batch 1) from geometry alone,
// used to derive full-scale neuron counts for neuron-level injection.
func Shapes(a *Arch) []tensor.Shape {
	shapes := make([]tensor.Shape, len(a.Ops))
	for i, d := range a.Ops {
		shapes[i] = outShapeOf(d, nodeInputShapes(a, i, shapes))
	}
	return shapes
}

// TotalCensus sums Census over all nodes.
func TotalCensus(a *Arch, kind nn.EngineKind, tile *winograd.Tile) fault.Census {
	var total fault.Census
	for _, c := range Census(a, kind, tile) {
		total = total.AddCensus(c)
	}
	return total
}

// IntensityFor maps the full-scale architecture's per-node op census onto
// the node list of a scaled-down architecture, aligning by layer name (the
// two differ only in pooling nodes that vanish at tiny resolutions). Nodes
// without a full-scale counterpart keep their own census. This is what pins
// the scaled experiments to the paper's BER axis.
func IntensityFor(scaled, full *Arch, kind nn.EngineKind, tile *winograd.Tile) []fault.Census {
	fullCensus := Census(full, kind, tile)
	byName := make(map[string]fault.Census, len(full.Ops))
	for i, d := range full.Ops {
		byName[d.Name] = fullCensus[i]
	}
	scaledCensus := Census(scaled, kind, tile)
	out := make([]fault.Census, len(scaled.Ops))
	for i, d := range scaled.Ops {
		if c, ok := byName[d.Name]; ok {
			out[i] = c
		} else {
			out[i] = scaledCensus[i]
		}
	}
	return out
}

// NeuronIntensityFor maps full-scale neuron-level fault opportunities onto a
// scaled architecture's node list, aligned by layer name. The neuron-level
// BER is interpreted per value-use (one use per executed operation), which
// makes the neuron-level and operation-level platforms commensurable on one
// BER axis as in the paper's Fig. 1; the counts come from the standard
// convolution census for *both* engines because neuron-level injection is,
// by construction, oblivious to how the neurons were computed.
func NeuronIntensityFor(scaled, full *Arch) []int64 {
	fullCensus := Census(full, nn.Direct, nil)
	byName := make(map[string]int64, len(full.Ops))
	for i, d := range full.Ops {
		byName[d.Name] = fullCensus[i].Total()
	}
	scaledCensus := Census(scaled, nn.Direct, nil)
	out := make([]int64, len(scaled.Ops))
	for i, d := range scaled.Ops {
		if e, ok := byName[d.Name]; ok {
			out[i] = e
		} else {
			out[i] = scaledCensus[i].Total()
		}
	}
	return out
}
