package core

import (
	"testing"

	"repro/internal/experiments"
)

func TestPaperIdentity(t *testing.T) {
	if Paper.Year != 2022 || Paper.Venue != "DAC" || Paper.ArXiv != "2202.08675" {
		t.Errorf("paper identity wrong: %+v", Paper)
	}
}

func TestEveryClaimHasAnExperiment(t *testing.T) {
	reg := experiments.Registry()
	for _, c := range Claims {
		if _, ok := reg[c.ID]; !ok {
			t.Errorf("claim %q references unknown experiment %q", c.Statement, c.ID)
		}
	}
}

func TestClaimsFor(t *testing.T) {
	if got := ClaimsFor("fig5"); len(got) != 2 {
		t.Errorf("fig5 claims = %d, want 2", len(got))
	}
	if got := ClaimsFor("nope"); got != nil {
		t.Errorf("unknown id returned %v", got)
	}
}

func TestHeadlineNumbersPresent(t *testing.T) {
	want := map[float64]bool{61.21: false, 27.49: false, 42.89: false, 7.19: false}
	for _, c := range Claims {
		if _, ok := want[c.PaperValue]; ok {
			want[c.PaperValue] = true
		}
	}
	for v, seen := range want {
		if !seen {
			t.Errorf("headline value %v missing from claims", v)
		}
	}
}
