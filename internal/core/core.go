// Package core anchors the reproduction: it records the paper's identity and
// quantitative claims, and wires the claim list to the experiment IDs that
// regenerate them. The substance of the contribution lives in the sibling
// packages (fault + winograd + faultsim form the operation-level platform;
// tmr and volt are the two applications); core is the single place that maps
// "what the paper says" to "what this repository measures".
package core

// Paper identifies the reproduced publication.
var Paper = struct {
	Title string
	Venue string
	Year  int
	ArXiv string
}{
	Title: "Winograd Convolution: A Perspective from Fault Tolerance",
	Venue: "DAC",
	Year:  2022,
	ArXiv: "2202.08675",
}

// Claim is one quantitative statement from the paper tied to the experiment
// that reproduces it.
type Claim struct {
	ID         string  // experiment ID in internal/experiments
	Statement  string  // the paper's claim
	PaperValue float64 // headline number (percent, if applicable; 0 = shape-only)
}

// Claims lists the paper's evaluation results in presentation order.
var Claims = []Claim{
	{"fig1", "neuron-level FI cannot distinguish ST from WG convolution; operation-level FI can", 0},
	{"fig2", "winograd networks retain up to ~35pp more accuracy than standard convolution at equal BER", 35},
	{"fig3", "mid-network layers with the most multiplications are the most fault-sensitive", 0},
	{"fig4", "multiplications are far more vulnerable than additions, under both engines", 0},
	{"fig5", "fault-tolerance-aware winograd cuts fine-grained TMR overhead vs standard convolution", 61.21},
	{"fig5", "fault-tolerance-aware winograd cuts TMR overhead vs unaware winograd", 27.49},
	{"fig7", "fault-tolerance-aware winograd cuts voltage-scaled energy vs scaled standard convolution", 42.89},
	{"fig7", "fault-tolerance-aware winograd cuts energy vs unaware winograd", 7.19},
}

// ClaimsFor returns the claims reproduced by one experiment ID.
func ClaimsFor(id string) []Claim {
	var out []Claim
	for _, c := range Claims {
		if c.ID == id {
			out = append(out, c)
		}
	}
	return out
}
