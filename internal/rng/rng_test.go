package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := root.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Error("Split is not deterministic")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical output")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	_ = a.Split(6)
	if a.Uint64() != b.Uint64() {
		t.Error("Split advanced the parent state")
	}
}

func TestSplitString(t *testing.T) {
	root := New(3)
	if root.SplitString("conv1").Uint64() == root.SplitString("conv2").Uint64() {
		t.Error("different string labels produced identical streams")
	}
	if root.SplitString("x").Uint64() != root.SplitString("x").Uint64() {
		t.Error("same string label produced different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 4*math.Sqrt(float64(want)) {
			t.Errorf("bucket %d count %d deviates from %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(23)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(29)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate = %v", float64(hits)/n)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPoissonSmallLambda(t *testing.T) {
	r := New(37)
	const lambda, n = 3.0, 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		k := float64(r.Poisson(lambda))
		sum += k
		sumsq += k * k
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("Poisson(3) mean = %v", mean)
	}
	if math.Abs(variance-lambda) > 0.15 {
		t.Errorf("Poisson(3) variance = %v", variance)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(41)
	const lambda, n = 500.0, 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(lambda))
	}
	mean := sum / n
	if math.Abs(mean-lambda) > 1.5 {
		t.Errorf("Poisson(500) mean = %v", mean)
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(43)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda must be 0")
	}
}

func TestBinomialRegimes(t *testing.T) {
	r := New(47)
	// Exact small-n regime.
	var sum float64
	const n1 = 50000
	for i := 0; i < n1; i++ {
		sum += float64(r.Binomial(20, 0.3))
	}
	if mean := sum / n1; math.Abs(mean-6) > 0.1 {
		t.Errorf("Binomial(20,0.3) mean = %v, want 6", mean)
	}
	// Poisson-limit regime.
	sum = 0
	for i := 0; i < n1; i++ {
		sum += float64(r.Binomial(1e9, 1e-8))
	}
	if mean := sum / n1; math.Abs(mean-10) > 0.2 {
		t.Errorf("Binomial(1e9,1e-8) mean = %v, want 10", mean)
	}
	// Normal regime.
	sum = 0
	for i := 0; i < n1; i++ {
		sum += float64(r.Binomial(10000, 0.5))
	}
	if mean := sum / n1; math.Abs(mean-5000) > 5 {
		t.Errorf("Binomial(1e4,0.5) mean = %v, want 5000", mean)
	}
	// Edges.
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial edge cases wrong")
	}
}

func TestPerm(t *testing.T) {
	r := New(53)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation")
		}
		seen[v] = true
	}
	// First elements should differ across draws (overwhelmingly likely).
	q := r.Perm(100)
	same := true
	for i := range p {
		if p[i] != q[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two Perm draws identical")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(2.5)
	}
}
