// Package rng provides the deterministic, splittable random number streams
// used throughout the fault-injection platform. Every experiment in the
// reproduction is exactly repeatable: a root seed is split per (experiment,
// sample, layer, op-class) into independent streams, so changing the order in
// which layers are simulated does not perturb the fault pattern of other
// layers.
//
// The generator is xoshiro256**, seeded through SplitMix64, which is the
// combination recommended by its authors. Only stdlib is used.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. The zero value is not
// usable; construct with New or Split.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// Guard against the all-zero state (astronomically unlikely but cheap).
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Split derives an independent child stream identified by label. Splitting is
// deterministic: the same parent state and label always yield the same child,
// and splitting does not advance the parent, so sibling order is irrelevant.
func (r *Stream) Split(label uint64) *Stream {
	x := r.s[0] ^ rotl(r.s[2], 17) ^ (label * 0xd1342543de82ef95)
	return New(splitmix64(&x) ^ label)
}

// SplitString derives a child stream from a string label (FNV-1a hashed).
func (r *Stream) SplitString(label string) *Stream {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return r.Split(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform integer in [0,n). n must be > 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0,n). n must be > 0.
func (r *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0,n) using Lemire's rejection method.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic modulo-rejection, unbiased.
	max := ^uint64(0) - (^uint64(0)%n+1)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's multiplication method; for large lambda a normal approximation
// with continuity correction, which is statistically indistinguishable at
// the fleet sizes used by statistical fault injection (lambda > 64 implies
// relative error < 1e-2 on the tail probabilities that matter here).
func (r *Stream) Poisson(lambda float64) int64 {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 64:
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := math.Floor(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return int64(n)
	}
}

// Binomial returns a Binomial(n, p) variate. It is exact (per-trial) for
// small n and uses the Poisson/normal limits for large n, matching the
// regimes in which those limits hold to well under the Monte-Carlo noise of
// the experiments.
func (r *Stream) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	switch {
	case n <= 64:
		var k int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	case float64(n)*p < 32:
		// Poisson limit for rare events; clamp to n.
		k := r.Poisson(float64(n) * p)
		if k > n {
			k = n
		}
		return k
	default:
		mu := float64(n) * p
		sigma := math.Sqrt(mu * (1 - p))
		k := math.Floor(mu + sigma*r.NormFloat64() + 0.5)
		if k < 0 {
			return 0
		}
		if k > float64(n) {
			return n
		}
		return int64(k)
	}
}

// Perm returns a uniformly random permutation of [0,n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
