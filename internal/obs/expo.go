package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline are escaped; everything else —
// including non-ASCII — passes through verbatim. This intentionally differs
// from Go's %q, which also escapes non-printable and non-ASCII runes and so
// produces values Prometheus would read back differently.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLabel reverses EscapeLabel. It reports an error on a dangling or
// unknown escape so the validity parser can reject malformed exposition.
func UnescapeLabel(v string) (string, error) {
	if !strings.Contains(v, `\`) {
		return v, nil
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("dangling backslash in label value %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c in label value %q", v[i], v)
		}
	}
	return b.String(), nil
}

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is the parsed form of a /metrics payload.
type Exposition struct {
	// Types maps metric family name to its declared TYPE.
	Types map[string]string
	// Samples holds every sample line in order.
	Samples []Sample
}

// Find returns the samples whose metric name matches exactly.
func (e *Exposition) Find(name string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// ValidateExposition strictly parses a Prometheus text-format payload and
// checks the structural invariants the scraper relies on:
//
//   - every non-comment line is `name{labels} value` with a parseable value;
//   - `# HELP` and `# TYPE` for a family precede its samples, at most once each;
//   - sample names belong to a declared family (histogram samples may use the
//     _bucket/_sum/_count suffixes of a histogram family);
//   - label values survive a round-trip through the escaper;
//   - histogram bucket counts are cumulative per label set, the +Inf bucket is
//     present, and it equals the family's _count.
//
// It returns the parsed exposition so tests can make further assertions.
func ValidateExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}}
	help := map[string]bool{}
	seenSample := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln, err)
			}
			if kind == "" { // plain comment
				continue
			}
			if seenSample[name] {
				return nil, fmt.Errorf("line %d: # %s %s after samples for the family", ln, kind, name)
			}
			switch kind {
			case "HELP":
				if help[name] {
					return nil, fmt.Errorf("line %d: duplicate # HELP %s", ln, name)
				}
				help[name] = true
			case "TYPE":
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate # TYPE %s", ln, name)
				}
				fields := strings.Fields(line)
				exp.Types[name] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		fam := familyOf(s.Name, exp.Types)
		if _, ok := exp.Types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", ln, s.Name)
		}
		if !help[fam] {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # HELP", ln, s.Name)
		}
		seenSample[fam] = true
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(exp); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseComment handles `# HELP name ...` / `# TYPE name kind` lines.
func parseComment(line string) (kind, name string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", nil
	}
	if len(fields) < 3 {
		return "", "", fmt.Errorf("malformed %s comment: %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return "", "", fmt.Errorf("malformed TYPE comment: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return fields[1], fields[2], nil
}

// familyOf strips histogram sample suffixes when the base name is a declared
// histogram family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{k="v",...}` starting at rest[0] == '{' and returns the
// index one past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label set in %q", rest)
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed label set in %q", rest)
		}
		key := rest[i : i+eq]
		if !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", rest)
		}
		i++
		start := i
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label value in %q", rest)
		}
		raw := rest[start:i]
		val, err := UnescapeLabel(raw)
		if err != nil {
			return 0, err
		}
		if EscapeLabel(val) != raw {
			return 0, fmt.Errorf("label value %q does not round-trip the escaper", raw)
		}
		if _, dup := into[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		into[key] = val
		i++
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0 && !strings.HasPrefix(s, "__")
}

// checkHistograms verifies cumulative buckets and +Inf == _count for every
// declared histogram family, per label set.
func checkHistograms(exp *Exposition) error {
	for fam, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		type series struct {
			les    []float64
			counts []float64
			count  float64
			hasCnt bool
		}
		bySet := map[string]*series{}
		key := func(labels map[string]string) string {
			ks := make([]string, 0, len(labels))
			for k := range labels {
				if k != "le" {
					ks = append(ks, k)
				}
			}
			sort.Strings(ks)
			var b strings.Builder
			for _, k := range ks {
				fmt.Fprintf(&b, "%s=%q,", k, labels[k])
			}
			return b.String()
		}
		for _, s := range exp.Samples {
			ser := bySet[key(s.Labels)]
			if ser == nil {
				ser = &series{}
				bySet[key(s.Labels)] = ser
			}
			switch s.Name {
			case fam + "_bucket":
				raw, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("%s_bucket sample missing le label", fam)
				}
				le := math.Inf(1)
				if raw != "+Inf" {
					v, err := strconv.ParseFloat(raw, 64)
					if err != nil {
						return fmt.Errorf("%s_bucket: bad le %q", fam, raw)
					}
					le = v
				}
				ser.les = append(ser.les, le)
				ser.counts = append(ser.counts, s.Value)
			case fam + "_count":
				ser.count = s.Value
				ser.hasCnt = true
			}
		}
		for set, ser := range bySet {
			if len(ser.les) == 0 {
				continue
			}
			for i := 1; i < len(ser.les); i++ {
				if ser.les[i] <= ser.les[i-1] {
					return fmt.Errorf("%s{%s}: bucket le values not ascending", fam, set)
				}
				if ser.counts[i] < ser.counts[i-1] {
					return fmt.Errorf("%s{%s}: bucket counts not cumulative", fam, set)
				}
			}
			if !math.IsInf(ser.les[len(ser.les)-1], 1) {
				return fmt.Errorf("%s{%s}: missing +Inf bucket", fam, set)
			}
			if !ser.hasCnt {
				return fmt.Errorf("%s{%s}: missing _count", fam, set)
			}
			if ser.counts[len(ser.counts)-1] != ser.count {
				return fmt.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam, set, ser.counts[len(ser.counts)-1], ser.count)
			}
		}
	}
	return nil
}

// WriteBuildInfo emits <prefix>_build_info (constant 1 with version and
// goversion labels from the embedded build info) and <prefix>_uptime_seconds
// since start.
func WriteBuildInfo(w io.Writer, prefix string, start time.Time) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else {
			version = "devel"
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 12 {
					version = s.Value[:12]
				}
			}
		}
	}
	fmt.Fprintf(w, "# HELP %s_build_info Build metadata; the metric value is always 1.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_build_info gauge\n", prefix)
	fmt.Fprintf(w, "%s_build_info{version=\"%s\",goversion=\"%s\"} 1\n", prefix, EscapeLabel(version), EscapeLabel(runtime.Version()))
	fmt.Fprintf(w, "# HELP %s_uptime_seconds Seconds since the process started.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_uptime_seconds gauge\n", prefix)
	fmt.Fprintf(w, "%s_uptime_seconds %s\n", prefix, formatSample(time.Since(start).Seconds()))
}

// WriteRuntimeMetrics emits a small set of Go runtime gauges under prefix.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n", prefix, name, help)
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n", prefix, name)
		fmt.Fprintf(w, "%s_%s %s\n", prefix, name, formatSample(v))
	}
	g("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	g("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	g("go_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys))
	g("go_gc_runs", "Completed GC cycles.", float64(ms.NumGC))
}
