package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Fixed bucket layouts. Hand-picked, not generated: fixed buckets make the
// exposition stable across restarts and diffable across fleets, and the
// ranges cover the latencies this service actually exhibits (see DESIGN.md
// "Observability" for the rationale per metric).
var (
	// DurationBuckets covers campaign-scale work: 1ms to 10min.
	DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 600}
	// ProbeBuckets covers cache probes and other sub-millisecond paths:
	// 25µs to 1s (a disk-tier probe on a cold spindle is the long tail).
	ProbeBuckets = []float64{25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	// ThroughputBuckets covers per-campaign unit throughput in units/second.
	ThroughputBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
)

// Histogram is a fixed-bucket Prometheus histogram: per-bucket atomic
// counters plus an atomically-accumulated sum. Observations are lock-free;
// Write renders the cumulative exposition form. The zero bucket set is
// invalid — build with NewHistogram. A nil *Histogram ignores observations.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search beats a linear scan only past ~30 buckets; these are
	// small and observation is campaign-granular, so clarity wins.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable for
// shipping over the wire (worker heartbeats) and merging on the far side.
// Counts has one entry per bound plus the +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the current bucket counts. Count is derived from the
// bucket counts rather than the count atomic: under a concurrent Observe the
// two can be read at different instants, and a +Inf bucket that disagrees
// with _count fails exposition validation on the coordinator.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Valid reports whether the snapshot is structurally sound: ascending
// bounds, one overflow bucket, non-negative counts that sum to Count.
// Snapshots arrive from workers over the network, so the coordinator
// validates before merging.
func (s HistogramSnapshot) Valid() bool {
	if len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return false
	}
	for i := 1; i < len(s.Bounds); i++ {
		if !(s.Bounds[i] > s.Bounds[i-1]) {
			return false
		}
	}
	total := int64(0)
	for _, c := range s.Counts {
		if c < 0 {
			return false
		}
		total += c
	}
	return total == s.Count
}

// Merge accumulates other into s. Bucket layouts must match (same bounds);
// mismatched layouts are ignored rather than mis-binned.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(s.Bounds) == 0 {
		s.Bounds = append([]float64(nil), other.Bounds...)
		s.Counts = make([]int64, len(other.Counts))
	}
	if len(other.Counts) != len(s.Counts) || len(other.Bounds) != len(s.Bounds) {
		return
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return
		}
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket, the same estimate PromQL's histogram_quantile
// produces. Returns 0 for an empty snapshot; samples in the +Inf bucket
// report the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteSamples emits the snapshot's cumulative _bucket/_sum/_count sample
// lines (no # HELP/# TYPE header) under the given name and labels, so a
// caller can render many label sets within one family.
func (s HistogramSnapshot) WriteSamples(w io.Writer, name string, labels ...Attr) {
	prefix := labelPrefix(labels)
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, prefix, formatLe(b), cum)
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, cum)
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatSample(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	set := labelSet(labels)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, set, formatSample(s.Sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, set, cum)
}

// formatLe renders a bucket bound the way Prometheus expects.
func formatLe(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// formatSample renders a sample value.
func formatSample(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write emits the full exposition block: # HELP, # TYPE and the cumulative
// _bucket/_sum/_count samples, each carrying the extra labels (escaped).
func (h *Histogram) Write(w io.Writer, name, help string, labels ...Attr) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	h.writeSamples(w, name, labels...)
}

// writeSamples emits the sample lines only (no header) so HistogramVec can
// share one # HELP/# TYPE across label sets.
func (h *Histogram) writeSamples(w io.Writer, name string, labels ...Attr) {
	prefix := labelPrefix(labels)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, prefix, formatLe(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, cum)
	sum := math.Float64frombits(h.sum.Load())
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatSample(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	set := labelSet(labels)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, set, formatSample(sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, set, cum)
}

// labelPrefix renders `k1="v1",k2="v2",` (with trailing comma) for use
// before the le label.
func labelPrefix(labels []Attr) string {
	out := ""
	for _, l := range labels {
		out += fmt.Sprintf("%s=\"%s\",", l.K, EscapeLabel(l.V))
	}
	return out
}

// labelSet renders `k1="v1",k2="v2"`.
func labelSet(labels []Attr) string {
	out := labelPrefix(labels)
	return out[:len(out)-1]
}

// HistogramVec is a histogram family partitioned by one label (the tenant
// dimension). Label sets materialize on first observation and are never
// dropped — the cardinality is bounded by the tenant table.
type HistogramVec struct {
	label  string
	bounds []float64

	mu sync.Mutex
	hs map[string]*Histogram
}

// NewHistogramVec builds a histogram family keyed by the given label name.
func NewHistogramVec(label string, bounds []float64) *HistogramVec {
	return &HistogramVec{label: label, bounds: bounds, hs: map[string]*Histogram{}}
}

// Observe records one sample under the given label value.
func (v *HistogramVec) Observe(labelValue string, x float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	h, ok := v.hs[labelValue]
	if !ok {
		h = NewHistogram(v.bounds)
		v.hs[labelValue] = h
	}
	v.mu.Unlock()
	h.Observe(x)
}

// Write emits one # HELP/# TYPE header followed by every label value's
// cumulative samples, sorted by label value for stable output.
func (v *HistogramVec) Write(w io.Writer, name, help string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.hs))
	for k := range v.hs {
		keys = append(keys, k)
	}
	hs := make([]*Histogram, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		hs[i] = v.hs[k]
	}
	v.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for i, k := range keys {
		hs[i].writeSamples(w, name, Attr{K: v.label, V: k})
	}
}

// Metrics is the service-level histogram set shared by the campaign service
// (which observes and serves most of it) and the dist coordinator (which
// observes worker-side shard execution as results merge). Fields are fixed
// at construction; a nil *Metrics ignores every observation.
type Metrics struct {
	// Campaign is end-to-end campaign latency in seconds: submission to
	// terminal state, all outcomes.
	Campaign *Histogram
	// QueueWait is seconds spent waiting in the fair-share queue, by tenant.
	QueueWait *HistogramVec
	// ShardExec is worker-side shard execution seconds, as reported back in
	// the dist result message and observed at merge time.
	ShardExec *Histogram
	// Throughput is per-campaign unit throughput (units/second of execution
	// time), observed once per successful campaign.
	Throughput *Histogram
	// CacheProbe is content-addressed cache probe seconds (memory + disk).
	CacheProbe *Histogram
}

// NewMetrics builds the service histogram set with its fixed buckets.
func NewMetrics() *Metrics {
	return &Metrics{
		Campaign:   NewHistogram(DurationBuckets),
		QueueWait:  NewHistogramVec("tenant", DurationBuckets),
		ShardExec:  NewHistogram(DurationBuckets),
		Throughput: NewHistogram(ThroughputBuckets),
		CacheProbe: NewHistogram(ProbeBuckets),
	}
}

// Write emits every histogram family under its wfserve_* name.
func (m *Metrics) Write(w io.Writer) {
	if m == nil {
		return
	}
	m.Campaign.Write(w, "wfserve_campaign_seconds", "End-to-end campaign latency: submission to terminal state, all outcomes.")
	m.QueueWait.Write(w, "wfserve_queue_wait_seconds", "Seconds campaigns spent waiting in the fair-share queue, per tenant.")
	m.ShardExec.Write(w, "wfserve_shard_exec_seconds", "Worker-side shard execution seconds, reported through the dist result message.")
	m.Throughput.Write(w, "wfserve_campaign_units_per_second", "Per-campaign unit throughput over execution time (successful campaigns).")
	m.CacheProbe.Write(w, "wfserve_cache_probe_seconds", "Content-addressed result cache probe seconds (memory and disk tiers).")
}

// nil-safe Observe on a nil Metrics means call sites never branch.

// ObserveQueueWait records a campaign's queue wait for its tenant.
func (m *Metrics) ObserveQueueWait(tenant string, seconds float64) {
	if m == nil {
		return
	}
	m.QueueWait.Observe(tenant, seconds)
}
