package obs

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler builds the -debug-addr mux shared by wfserve and wfworker:
// the full net/http/pprof suite under /debug/pprof/ plus a /metrics page
// (build info, uptime, runtime gauges, and whatever extra the caller
// contributes). This handler must only ever be bound to a loopback or
// otherwise private listener — pprof exposes heap contents — which is why
// the daemons keep it off the public mux entirely.
func DebugHandler(prefix string, start time.Time, extra func(w http.ResponseWriter)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteBuildInfo(w, prefix, start)
		WriteRuntimeMetrics(w, prefix)
		if extra != nil {
			extra(w)
		}
	})
	return mux
}
