package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the daemons' slog.Logger: format is "text" or "json"
// (the -log-format flag). Both handlers go through slog so every line
// carries the structured campaign/tenant/shard/epoch attrs that correlate
// logs with traces and metrics.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
