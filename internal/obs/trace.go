package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	K string
	V string
}

// A builds an Attr, rendering any value through fmt.Sprint. Attrs are
// recorded at campaign/shard granularity, so the formatting cost is
// irrelevant next to the work being annotated.
func A(k string, v any) Attr {
	switch s := v.(type) {
	case string:
		return Attr{K: k, V: s}
	case time.Duration:
		return Attr{K: k, V: s.String()}
	default:
		return Attr{K: k, V: fmt.Sprint(v)}
	}
}

// Span is one timed region of a campaign's lifecycle. Starts and durations
// are offsets on the trace's monotonic clock (time.Since of the trace
// epoch), so a span is immune to wall-clock adjustments. All methods are
// goroutine-safe (the trace's mutex) and no-ops on a nil receiver.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration // offset from the trace epoch
	dur   time.Duration // valid once open == false
	open  bool
	attrs []Attr
	kids  []*Span
}

// Trace is the span tree of one campaign, keyed by its content address. A
// trace records O(spans) memory where spans are campaign phases and shards —
// never rounds — and lives in a Recorder's bounded ring.
type Trace struct {
	key   string
	epoch time.Time // wall time at Begin; its monotonic reading anchors offsets

	mu   sync.Mutex
	root []*Span
	done bool
}

// Key returns the campaign content address this trace describes.
func (t *Trace) Key() string {
	if t == nil {
		return ""
	}
	return t.key
}

func (t *Trace) now() time.Duration { return time.Since(t.epoch) }

// Start opens a root span. End it with End; an unfinished span renders with
// a zero duration and an open marker.
func (t *Trace) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.now(), open: true, attrs: attrs}
	t.root = append(t.root, sp)
	return sp
}

// Record appends an already-finished root span retroactively: start is a
// wall-clock instant captured earlier (its monotonic reading positions the
// span), d its duration. Useful when the span's identity — the campaign key —
// is only known after the timed work ran (submit-time validation).
func (t *Trace) Record(name string, start time.Time, d time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.offsetLocked(start), dur: d, attrs: attrs}
	t.root = append(t.root, sp)
	return sp
}

// offsetLocked converts a wall instant to a trace offset, clamping instants
// captured before the trace epoch to zero.
func (t *Trace) offsetLocked(at time.Time) time.Duration {
	off := at.Sub(t.epoch)
	if off < 0 {
		off = 0
	}
	return off
}

// Finish marks the trace complete. Further spans are still accepted (late
// shard results are harmless); Finish only flips the snapshot's Complete bit.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.now(), open: true, attrs: attrs}
	s.kids = append(s.kids, sp)
	return sp
}

// Record appends an already-finished child span (see Trace.Record).
func (s *Span) Record(name string, start time.Time, d time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: t.offsetLocked(start), dur: d, attrs: attrs}
	s.kids = append(s.kids, sp)
	return sp
}

// SetAttr adds (or appends — duplicate keys render in order) an attribute.
func (s *Span) SetAttr(k string, v any) {
	if s == nil {
		return
	}
	a := A(k, v)
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.tr.mu.Unlock()
}

// End closes the span at the current trace clock. Ending twice keeps the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.open {
		s.open = false
		s.dur = t.now() - s.start
	}
	t.mu.Unlock()
}

// SpanSnapshot is the wire form of one span (GET /campaigns/{id}/trace).
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartMs / DurMs are offsets and lengths in fractional milliseconds on
	// the trace's monotonic clock.
	StartMs  float64           `json:"startMs"`
	DurMs    float64           `json:"durMs"`
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanSnapshot    `json:"children,omitempty"`
}

// TraceSnapshot is the wire form of a campaign trace.
type TraceSnapshot struct {
	Campaign string         `json:"campaign"`
	Start    time.Time      `json:"start"`
	Complete bool           `json:"complete"`
	Spans    []SpanSnapshot `json:"spans"`
}

// Snapshot copies the trace into its wire form under the trace lock.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		Campaign: t.key,
		Start:    t.epoch,
		Complete: t.done,
		Spans:    snapshotSpans(t.root),
	}
}

func snapshotSpans(spans []*Span) []SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(spans))
	for i, sp := range spans {
		ss := SpanSnapshot{
			Name:     sp.name,
			StartMs:  float64(sp.start) / float64(time.Millisecond),
			DurMs:    float64(sp.dur) / float64(time.Millisecond),
			Open:     sp.open,
			Children: snapshotSpans(sp.kids),
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				ss.Attrs[a.K] = a.V
			}
		}
		out[i] = ss
	}
	return out
}

// WriteJSON marshals the snapshot (indented — traces are read by humans).
func (ts TraceSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// WriteText renders the snapshot as an indented waterfall: one line per
// span with its offset, duration, depth-indented name and attrs, ordered by
// start offset within each level.
func (ts TraceSnapshot) WriteText(w io.Writer) {
	state := "in flight"
	if ts.Complete {
		state = "complete"
	}
	fmt.Fprintf(w, "campaign %s  (%s, started %s)\n", ts.Campaign, state, ts.Start.Format(time.RFC3339))
	writeSpansText(w, ts.Spans, 0)
}

func writeSpansText(w io.Writer, spans []SpanSnapshot, depth int) {
	ordered := make([]SpanSnapshot, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartMs < ordered[j].StartMs })
	for _, sp := range ordered {
		dur := fmt.Sprintf("%10.3fms", sp.DurMs)
		if sp.Open {
			dur = "      open  "
		}
		fmt.Fprintf(w, "%12.3fms %s  %*s%s", sp.StartMs, dur, 2*depth, "", sp.Name)
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, sp.Attrs[k])
		}
		fmt.Fprintln(w)
		writeSpansText(w, sp.Children, depth+1)
	}
}

// Recorder holds the traces of recent campaigns in a bounded ring: memory is
// O(campaigns retained), independent of campaign size or round count. It is
// goroutine-safe.
type Recorder struct {
	mu     sync.Mutex
	max    int
	traces map[string]*Trace
	order  []string // insertion order for eviction
}

// DefaultTraceCap is the default Recorder ring size.
const DefaultTraceCap = 512

// NewRecorder builds a recorder retaining at most max traces (min 1; <= 0
// means DefaultTraceCap).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Recorder{max: max, traces: map[string]*Trace{}}
}

// Begin starts a fresh trace for key, replacing any previous one (a
// resubmitted campaign after a failure gets a clean timeline) and evicting
// the oldest finished trace beyond the ring capacity. In-flight traces are
// pinned: a burst of cache-hit probe traces cannot evict a long-running
// campaign's trace mid-execution, so the ring may transiently exceed max by
// the number of concurrently executing campaigns (bounded by the queue).
func (r *Recorder) Begin(key string) *Trace {
	if r == nil {
		return nil
	}
	tr := &Trace{key: key, epoch: time.Now()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.traces[key]; !ok {
		r.order = append(r.order, key)
	}
	r.traces[key] = tr
	for over := len(r.order) - r.max; over > 0; over-- {
		evicted := false
		for i, k := range r.order {
			t := r.traces[k]
			t.mu.Lock()
			pinned := !t.done
			t.mu.Unlock()
			if pinned {
				continue
			}
			delete(r.traces, k)
			r.order = append(r.order[:i], r.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything in flight: keep them all
		}
	}
	return tr
}

// Lookup returns the trace recorded for key, or nil.
func (r *Recorder) Lookup(key string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces[key]
}

// Len reports how many traces the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
