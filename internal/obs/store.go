package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// TraceStore persists finished campaign traces to a bounded on-disk store so
// `GET /campaigns/{id}/trace` survives a restart of the serving process —
// the same crash the journal already recovers campaign *results* across.
// Each trace is one file of compact line-JSON (the TraceSnapshot wire form)
// named <key>.trace, written with the journal's tmp+fsync+rename discipline
// so a crash mid-write leaves either the old trace or none, never a torn
// one. The store holds at most max traces; Put prunes oldest-modified files
// beyond the bound. A nil *TraceStore ignores writes and misses lookups, so
// call sites never branch on whether -trace-dir was configured.
type TraceStore struct {
	dir string
	max int
	mu  sync.Mutex
}

// DefaultTraceStoreCap bounds the on-disk trace store when no explicit cap
// is given. Traces are O(spans) small, so this is megabytes, not gigabytes.
const DefaultTraceStoreCap = 4096

// NewTraceStore opens (creating if needed) a trace store rooted at dir,
// retaining at most max traces (<= 0 means DefaultTraceStoreCap).
func NewTraceStore(dir string, max int) (*TraceStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: trace store needs a directory")
	}
	if max <= 0 {
		max = DefaultTraceStoreCap
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: trace store: %w", err)
	}
	return &TraceStore{dir: dir, max: max}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *TraceStore) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// validStoreKey gates keys used as file names: campaign keys are lowercase
// hex content addresses, and rejecting everything else keeps path traversal
// out of the store by construction.
func validStoreKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *TraceStore) path(key string) string {
	return filepath.Join(s.dir, key+".trace")
}

// Put durably writes the snapshot, replacing any previous trace for the same
// campaign, then prunes oldest files beyond the store's bound.
func (s *TraceStore) Put(ts TraceSnapshot) error {
	if s == nil {
		return nil
	}
	if !validStoreKey(ts.Campaign) {
		return fmt.Errorf("obs: trace store: invalid campaign key %q", ts.Campaign)
	}
	data, err := json.Marshal(ts)
	if err != nil {
		return fmt.Errorf("obs: trace store: %w", err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(ts.Campaign) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: trace store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: trace store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: trace store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: trace store: %w", err)
	}
	if err := os.Rename(tmp, s.path(ts.Campaign)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: trace store: %w", err)
	}
	s.pruneLocked()
	return nil
}

// pruneLocked removes oldest-modified traces beyond the bound. Best-effort:
// a prune failure never fails the Put that triggered it.
func (s *TraceStore) pruneLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	traces := make([]aged, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".trace") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		traces = append(traces, aged{name: e.Name(), mod: info.ModTime().UnixNano()})
	}
	if len(traces) <= s.max {
		return
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].mod < traces[j].mod })
	for _, t := range traces[:len(traces)-s.max] {
		os.Remove(filepath.Join(s.dir, t.name))
	}
}

// Get loads the stored trace for key. The second result reports whether a
// well-formed trace was found.
func (s *TraceStore) Get(key string) (TraceSnapshot, bool) {
	if s == nil || !validStoreKey(key) {
		return TraceSnapshot{}, false
	}
	s.mu.Lock()
	data, err := os.ReadFile(s.path(key))
	s.mu.Unlock()
	if err != nil {
		return TraceSnapshot{}, false
	}
	var ts TraceSnapshot
	if err := json.Unmarshal(data, &ts); err != nil || ts.Campaign != key {
		return TraceSnapshot{}, false
	}
	return ts, true
}

// Has reports whether a trace for key is on disk (without parsing it).
func (s *TraceStore) Has(key string) bool {
	if s == nil || !validStoreKey(key) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Len counts stored traces (0 for a nil store).
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trace") {
			n++
		}
	}
	return n
}
