// Package obs is the service stack's observability layer: lightweight
// campaign tracing (monotonic-clock span trees bounded per campaign),
// hand-rolled Prometheus exposition primitives (fixed-bucket histograms, a
// label escaper, a strict validity parser), structured logging setup
// (log/slog), and the pprof debug listener shared by wfserve and wfworker.
//
// The package depends only on the standard library, and every recording
// entry point is nil-safe: a nil *Trace, *Span, *Histogram or zero Obs value
// turns the corresponding call into a no-op, so instrumented code never
// branches on whether observability is wired up. Spans exist at campaign and
// shard granularity only — nothing in this package is ever called from the
// per-round forward-pass hot loop, which is what keeps the alloc-free
// guarantees of internal/nn intact (see DESIGN.md "Observability").
package obs

import "context"

// Obs bundles the observability handles a campaign execution carries through
// its context: the campaign's trace and the service-level histogram set. The
// zero value is valid and records nothing.
type Obs struct {
	Trace   *Trace
	Metrics *Metrics
}

type ctxKey struct{}

// With attaches o to ctx. The service attaches a campaign's Obs to the job
// context at submission, so every layer below (distributor, coordinator,
// local runner) can record spans without plumbing new parameters.
func With(ctx context.Context, o Obs) context.Context {
	return context.WithValue(ctx, ctxKey{}, o)
}

// From extracts the Obs attached by With, or a zero (no-op) value.
func From(ctx context.Context) Obs {
	if o, ok := ctx.Value(ctxKey{}).(Obs); ok {
		return o
	}
	return Obs{}
}
