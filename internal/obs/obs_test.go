package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Begin("deadbeef")
	root := tr.Start("phase", A("phase", "sweep"))
	kid := root.Start("shard", A("lo", 0), A("hi", 8))
	kid.SetAttr("worker", "w1")
	kid.End()
	root.Record("merge", time.Now(), 3*time.Millisecond)
	root.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Campaign != "deadbeef" || !snap.Complete {
		t.Fatalf("snapshot header wrong: %+v", snap)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "phase" {
		t.Fatalf("root spans: %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 2 {
		t.Fatalf("want 2 children, got %+v", kids)
	}
	if kids[0].Name != "shard" || kids[0].Attrs["worker"] != "w1" || kids[0].Attrs["hi"] != "8" {
		t.Fatalf("shard span: %+v", kids[0])
	}
	if kids[0].Open {
		t.Fatalf("ended span still open")
	}
	if kids[1].Name != "merge" || kids[1].DurMs < 2.9 {
		t.Fatalf("recorded span: %+v", kids[1])
	}

	var text strings.Builder
	snap.WriteText(&text)
	for _, want := range []string{"campaign deadbeef", "complete", "phase", "shard", "merge", "worker=w1"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("waterfall missing %q:\n%s", want, text.String())
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.SetAttr("k", "v")
	sp.Record("y", time.Now(), time.Second)
	sp.End()
	tr.Record("z", time.Now(), 0)
	tr.Finish()
	if got := tr.Snapshot(); got.Campaign != "" || len(got.Spans) != 0 {
		t.Fatalf("nil trace snapshot: %+v", got)
	}
	var h *Histogram
	h.Observe(1)
	var m *Metrics
	m.ObserveQueueWait("t", 1)
	m.Write(&strings.Builder{})
	var r *Recorder
	if r.Begin("k") != nil || r.Lookup("k") != nil {
		t.Fatalf("nil recorder not inert")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(2)
	// Finished traces are the evictable kind; in-flight ones are pinned
	// (see TestRecorderPinsInflightTraces).
	r.Begin("a").Finish()
	r.Begin("b").Finish()
	r.Begin("c").Finish()
	if r.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", r.Len())
	}
	if r.Lookup("a") != nil {
		t.Fatalf("oldest trace not evicted")
	}
	if r.Lookup("c") == nil || r.Lookup("b") == nil {
		t.Fatalf("recent traces missing")
	}
	// Re-begin replaces in place without growing the ring.
	old := r.Lookup("b")
	if r.Begin("b") == old {
		t.Fatalf("Begin reused the old trace")
	}
	if r.Len() != 2 {
		t.Fatalf("ring grew on re-begin: %d", r.Len())
	}
}

func TestContextCarrier(t *testing.T) {
	if o := From(context.Background()); o.Trace != nil || o.Metrics != nil {
		t.Fatalf("empty context carried %+v", o)
	}
	m := NewMetrics()
	tr := NewRecorder(1).Begin("k")
	ctx := With(context.Background(), Obs{Trace: tr, Metrics: m})
	got := From(ctx)
	if got.Trace != tr || got.Metrics != m {
		t.Fatalf("round-trip lost handles: %+v", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	h.Write(&b, "test_seconds", "help text")
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 56.05`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition invalid: %v", err)
	}
	// Boundary values land in the bucket whose le equals them (le is <=).
	hb := NewHistogram([]float64{1})
	hb.Observe(1)
	var bb strings.Builder
	hb.Write(&bb, "edge", "h")
	if !strings.Contains(bb.String(), `edge_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not inclusive:\n%s", bb.String())
	}
}

func TestHistogramVecEscaping(t *testing.T) {
	v := NewHistogramVec("tenant", []float64{1})
	weird := `back\slash "quoted" uni-cödé`
	v.Observe(weird, 0.5)
	v.Observe("plain", 2)
	var b strings.Builder
	v.Write(&b, "vec_seconds", "h")
	out := b.String()
	if strings.Count(out, "# TYPE vec_seconds histogram") != 1 {
		t.Fatalf("want one TYPE line:\n%s", out)
	}
	exp, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("vec exposition invalid: %v\n%s", err, out)
	}
	found := false
	for _, s := range exp.Find("vec_seconds_count") {
		if s.Labels["tenant"] == weird {
			found = true
		}
	}
	if !found {
		t.Fatalf("weird tenant label did not round-trip:\n%s", out)
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`a\b`, `a\\b`},
		{`a"b`, `a\"b`},
		{"a\nb", `a\nb`},
		{"ünïcode", "ünïcode"}, // unlike %q, non-ASCII passes through
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
		back, err := UnescapeLabel(EscapeLabel(c.in))
		if err != nil || back != c.in {
			t.Errorf("round-trip of %q failed: %q, %v", c.in, back, err)
		}
	}
	if _, err := UnescapeLabel(`dangling\`); err == nil {
		t.Errorf("dangling escape accepted")
	}
	if _, err := UnescapeLabel(`bad\t`); err == nil {
		t.Errorf("unknown escape accepted")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "x 1\n",
		"sample before HELP":  "# TYPE x gauge\nx 1\n",
		"HELP after samples":  "# HELP x h\n# TYPE x gauge\nx 1\n# HELP x again\n",
		"duplicate TYPE":      "# HELP x h\n# TYPE x gauge\n# TYPE x gauge\nx 1\n",
		"bad value":           "# HELP x h\n# TYPE x gauge\nx pots\n",
		"bad metric name":     "# HELP 9x h\n# TYPE 9x gauge\n9x 1\n",
		"unterminated labels": "# HELP x h\n# TYPE x gauge\nx{a=\"b\" 1\n",
		"non-cumulative buckets": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 3\nx_sum 1\nx_count 3\n",
		"+Inf != count": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 3\n",
		"missing +Inf": "# HELP x h\n# TYPE x histogram\n" +
			"x_bucket{le=\"1\"} 1\nx_sum 1\nx_count 1\n",
	}
	for name, payload := range cases {
		if _, err := ValidateExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted invalid payload:\n%s", name, payload)
		}
	}
}

func TestBuildInfoAndRuntimeMetrics(t *testing.T) {
	var b strings.Builder
	WriteBuildInfo(&b, "test", time.Now().Add(-2*time.Second))
	WriteRuntimeMetrics(&b, "test")
	exp, err := ValidateExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("build info exposition invalid: %v\n%s", err, b.String())
	}
	bi := exp.Find("test_build_info")
	if len(bi) != 1 || bi[0].Value != 1 || bi[0].Labels["goversion"] == "" {
		t.Fatalf("build_info sample wrong: %+v", bi)
	}
	up := exp.Find("test_uptime_seconds")
	if len(up) != 1 || up[0].Value < 1 {
		t.Fatalf("uptime sample wrong: %+v", up)
	}
	if len(exp.Find("test_go_goroutines")) != 1 {
		t.Fatalf("runtime gauges missing:\n%s", b.String())
	}
}

func TestDebugHandler(t *testing.T) {
	h := DebugHandler("worker", time.Now(), func(w http.ResponseWriter) {
		NewHistogram([]float64{1}).Write(w, "worker_extra_seconds", "h")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("debug /metrics invalid: %v", err)
	}
	if len(exp.Find("worker_build_info")) != 1 || len(exp.Find("worker_extra_seconds_count")) != 1 {
		t.Fatalf("debug /metrics families missing: %+v", exp.Types)
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp2.StatusCode)
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "campaign", "abc")
	if !strings.Contains(b.String(), `"campaign":"abc"`) {
		t.Fatalf("json log missing attr: %s", b.String())
	}
	if _, err := NewLogger(&b, "yaml"); err == nil {
		t.Fatalf("bad format accepted")
	}
	if _, err := NewLogger(&b, ""); err != nil {
		t.Fatalf("default format rejected: %v", err)
	}
}
