package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramSnapshotConcurrentObserve: snapshots taken while observers are
// running must stay internally consistent — the +Inf cumulative bucket equal
// to _count — because federated snapshots are re-validated (and re-rendered)
// on the coordinator, where a torn read would fail exposition validation for
// the whole fleet page.
func TestHistogramSnapshotConcurrentObserve(t *testing.T) {
	h := NewHistogram(ProbeBuckets)
	const observers, perObserver = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < observers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perObserver; i++ {
				h.Observe(float64(g*perObserver+i) * 1e-6)
			}
		}(g)
	}
	go func() { wg.Wait(); close(stop) }()
	snaps := 0
	for {
		select {
		case <-stop:
		default:
			s := h.Snapshot()
			if !s.Valid() {
				t.Fatalf("mid-flight snapshot invalid: count %d vs bucket sum", s.Count)
			}
			snaps++
			continue
		}
		break
	}
	if snaps == 0 {
		t.Fatal("no snapshot raced an observer")
	}
	final := h.Snapshot()
	if want := int64(observers * perObserver); final.Count != want {
		t.Fatalf("final snapshot count %d, want %d", final.Count, want)
	}
	if final.Count != h.Count() {
		t.Fatalf("snapshot count %d disagrees with histogram count %d", final.Count, h.Count())
	}
}

// TestHistogramSnapshotMerge: merging accumulates matching layouts, adopts a
// layout into an empty snapshot, and refuses to mis-bin mismatched ones.
func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram(DurationBuckets)
	b := NewHistogram(DurationBuckets)
	for i := 0; i < 10; i++ {
		a.Observe(0.002)
		b.Observe(3.0)
	}
	var merged HistogramSnapshot
	merged.Merge(a.Snapshot())
	merged.Merge(b.Snapshot())
	if !merged.Valid() {
		t.Fatal("merged snapshot invalid")
	}
	if merged.Count != 20 {
		t.Fatalf("merged count %d, want 20", merged.Count)
	}
	if want := 10*0.002 + 10*3.0; math.Abs(merged.Sum-want) > 1e-9 {
		t.Fatalf("merged sum %g, want %g", merged.Sum, want)
	}

	// A snapshot with different bounds must be ignored, not mis-binned.
	other := NewHistogram(ProbeBuckets)
	other.Observe(0.1)
	merged.Merge(other.Snapshot())
	if merged.Count != 20 {
		t.Fatalf("mismatched layout merged anyway: count %d", merged.Count)
	}
}

// TestHistogramSnapshotQuantile: the interpolated estimate lands inside the
// containing bucket, an empty snapshot reports 0, and overflow samples clamp
// to the largest finite bound.
func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all samples in the (1,2] bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 %g outside the containing bucket (1,2]", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty snapshot p50 %g, want 0", q)
	}
	over := NewHistogram([]float64{1, 2})
	over.Observe(100) // +Inf bucket
	if q := over.Snapshot().Quantile(0.99); q != 2 {
		t.Fatalf("overflow p99 %g, want largest finite bound 2", q)
	}
}

// TestHistogramSnapshotValidRejects: structurally broken snapshots (the kind
// a hostile or buggy worker could ship in a heartbeat) must fail validation.
func TestHistogramSnapshotValidRejects(t *testing.T) {
	good := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{1, 2, 3}, Sum: 4, Count: 6}
	if !good.Valid() {
		t.Fatal("well-formed snapshot rejected")
	}
	bad := []HistogramSnapshot{
		{},
		{Bounds: []float64{1, 2}, Counts: []int64{1, 2}, Count: 3},     // missing overflow bucket
		{Bounds: []float64{2, 1}, Counts: []int64{1, 2, 3}, Count: 6},  // descending bounds
		{Bounds: []float64{1, 2}, Counts: []int64{1, -2, 3}, Count: 2}, // negative bucket
		{Bounds: []float64{1, 2}, Counts: []int64{1, 2, 3}, Count: 7},  // count disagrees
		{Bounds: []float64{1, 1}, Counts: []int64{1, 2, 3}, Count: 6},  // duplicate bound
	}
	for i, s := range bad {
		if s.Valid() {
			t.Errorf("malformed snapshot %d passed validation: %+v", i, s)
		}
	}
}

// TestHistogramSnapshotWriteSamples: the snapshot renderer produces the same
// strict exposition form the live histogram writer does, including escaped
// hostile label values — the federation path for wffleet_shard_exec_seconds.
func TestHistogramSnapshotWriteSamples(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	h.Observe(0.01)
	h.Observe(2)
	snap := h.Snapshot()

	hostile := "node\nwith \"quotes\" and \\slashes\\ and 蜂"
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "# HELP wffleet_shard_exec_seconds test family")
	fmt.Fprintln(&buf, "# TYPE wffleet_shard_exec_seconds histogram")
	snap.WriteSamples(&buf, "wffleet_shard_exec_seconds", Attr{K: "worker", V: hostile}, Attr{K: "id", V: "w-1"})
	snap.WriteSamples(&buf, "wffleet_shard_exec_seconds", Attr{K: "worker", V: "plain"}, Attr{K: "id", V: "w-2"})

	exp, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("snapshot exposition failed strict validation: %v\n%s", err, buf.String())
	}
	found := false
	for _, s := range exp.Find("wffleet_shard_exec_seconds_count") {
		if s.Labels["worker"] == hostile {
			found = true
			if s.Value != float64(snap.Count) {
				t.Errorf("_count %g, want %d", s.Value, snap.Count)
			}
		}
	}
	if !found {
		t.Fatal("hostile worker label did not round-trip through the escaper")
	}
}

// TestRecorderPinsInflightTraces is the regression pin for the eviction bug:
// a full ring of finished cache-hit probe traces must never evict a running
// campaign's trace mid-execution. Uses the default 512-cap ring, per the bug.
func TestRecorderPinsInflightTraces(t *testing.T) {
	r := NewRecorder(0) // DefaultTraceCap
	live := r.Begin("liveliveliveaaa")
	live.Start("phase", A("phase", "sweep"))

	for i := 0; i < DefaultTraceCap+50; i++ {
		probe := r.Begin(fmt.Sprintf("probe%08d", i))
		probe.Record("cache-probe", time.Now(), time.Microsecond, A("hit", true))
		probe.Finish()
	}
	got := r.Lookup("liveliveliveaaa")
	if got == nil {
		t.Fatal("in-flight campaign trace evicted by probe flood")
	}
	if got != live {
		t.Fatal("in-flight trace replaced rather than pinned")
	}
	if n := r.Len(); n != DefaultTraceCap {
		t.Fatalf("ring holds %d traces after flood, want %d", n, DefaultTraceCap)
	}

	// Once finished, the formerly-pinned trace becomes evictable again.
	live.Finish()
	for i := 0; i < DefaultTraceCap+1; i++ {
		tr := r.Begin(fmt.Sprintf("flood%08d", i))
		tr.Finish()
	}
	if r.Lookup("liveliveliveaaa") != nil {
		t.Fatal("finished trace survived a full ring of newer traces")
	}
}

// TestRecorderAllInflightExceedsCapTransiently: when everything is pinned the
// ring grows past max instead of evicting running campaigns, and shrinks back
// once traces finish.
func TestRecorderAllInflightExceedsCapTransiently(t *testing.T) {
	r := NewRecorder(2)
	keys := []string{"aaa1", "bbb2", "ccc3", "ddd4"}
	for _, k := range keys {
		r.Begin(k)
	}
	if n := r.Len(); n != 4 {
		t.Fatalf("ring evicted an in-flight trace: len %d, want 4", n)
	}
	for _, k := range keys {
		r.Lookup(k).Finish()
	}
	r.Begin("eee5").Finish()
	if n := r.Len(); n != 2 {
		t.Fatalf("ring did not shrink back to cap: len %d, want 2", n)
	}
}

// traceFixture builds a finished trace with a realistic span tree.
func traceFixture(key string) *Trace {
	tr := &Trace{key: key, epoch: time.Now()}
	ph := tr.Start("phase", A("phase", "sweep"), A("path", "dist"))
	ph.Record("shard", time.Now(), 3*time.Millisecond, A("worker", "w-1"), A("lo", 0), A("hi", 4))
	ph.Record("merge", time.Now(), time.Millisecond)
	ph.End()
	tr.Finish()
	return tr
}

// TestTraceStoreRoundTripByteIdentical: a spilled trace read back from disk
// renders byte-identically to the in-memory snapshot — the property the
// chaos-recovery CI tier asserts across a real wfserve restart.
func TestTraceStoreRoundTripByteIdentical(t *testing.T) {
	st, err := NewTraceStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef0123456789abcdef"
	snap := traceFixture(key).Snapshot()
	if err := st.Put(snap); err != nil {
		t.Fatal(err)
	}
	if !st.Has(key) {
		t.Fatal("Has misses a stored trace")
	}
	got, ok := st.Get(key)
	if !ok {
		t.Fatal("Get misses a stored trace")
	}
	var want, have bytes.Buffer
	if err := snap.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatalf("disk round-trip changed the rendered trace:\nmem:  %s\ndisk: %s", want.String(), have.String())
	}
	if !got.Complete || len(got.Spans) != 1 || len(got.Spans[0].Children) != 2 {
		t.Fatalf("span tree mangled: %+v", got.Spans)
	}
}

// TestTraceStoreRejectsHostileKeys: keys are file names; anything that is not
// a lowercase-hex content address is refused before touching the filesystem.
func TestTraceStoreRejectsHostileKeys(t *testing.T) {
	dir := t.TempDir()
	st, err := NewTraceStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "../../etc/passwd", "ABCDEF", "abc/def", "abc.def",
		strings.Repeat("a", 129), "abc\x00def", "..",
	} {
		if err := st.Put(TraceSnapshot{Campaign: key}); err == nil {
			t.Errorf("Put accepted hostile key %q", key)
		}
		if _, ok := st.Get(key); ok {
			t.Errorf("Get resolved hostile key %q", key)
		}
		if st.Has(key) {
			t.Errorf("Has resolved hostile key %q", key)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("hostile keys left droppings: %v", entries)
	}
}

// TestTraceStorePrunes: the store holds at most max traces, evicting the
// oldest-modified files.
func TestTraceStorePrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := NewTraceStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032d", i)
		if err := st.Put(traceFixture(keys[i]).Snapshot()); err != nil {
			t.Fatal(err)
		}
		// Separate modtimes explicitly: filesystem timestamp granularity must
		// not make eviction order ambiguous.
		mod := time.Now().Add(time.Duration(i-len(keys)) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, keys[i]+".trace"), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	// One more Put triggers the prune over the aged set.
	last := "f000000000000000000000000000000f"
	if err := st.Put(traceFixture(last).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n := st.Len(); n != 3 {
		t.Fatalf("store holds %d traces, want 3", n)
	}
	if !st.Has(last) {
		t.Fatal("newest trace pruned")
	}
	if st.Has(keys[0]) || st.Has(keys[1]) {
		t.Fatal("oldest traces survived the prune")
	}
}

// TestTraceStoreIgnoresCorruptFiles: a torn or tampered trace file misses
// rather than serving garbage, and a mismatched embedded key is rejected.
func TestTraceStoreIgnoresCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewTraceStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := "00000000000000000000000000000001"
	if err := os.WriteFile(filepath.Join(dir, torn+".trace"), []byte(`{"campaign":"000`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(torn); ok {
		t.Fatal("torn trace file served")
	}
	// A file whose embedded campaign key disagrees with its name is refused:
	// the name is the lookup key, the body must corroborate it.
	swapped := "00000000000000000000000000000002"
	if err := os.WriteFile(filepath.Join(dir, swapped+".trace"), []byte(`{"campaign":"00000000000000000000000000000003","start":"2026-01-01T00:00:00Z","complete":true,"spans":null}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(swapped); ok {
		t.Fatal("trace with mismatched embedded key served")
	}
}

// TestTraceStoreNilSafe: a nil store ignores writes and misses lookups, so
// call sites never branch on whether -trace-dir was configured.
func TestTraceStoreNilSafe(t *testing.T) {
	var st *TraceStore
	if err := st.Put(TraceSnapshot{Campaign: "abc123"}); err != nil {
		t.Fatalf("nil store Put errored: %v", err)
	}
	if _, ok := st.Get("abc123"); ok {
		t.Fatal("nil store Get hit")
	}
	if st.Has("abc123") || st.Len() != 0 || st.Dir() != "" {
		t.Fatal("nil store not inert")
	}
}
