package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestDistributedTraceTimeline: a campaign sharded across two workers leaves
// a complete trace — dist-path phase spans with worker-side shard execution
// timings stitched in (epoch-stamped), plus the coordinator-side merge —
// while still producing bytes identical to the local path.
func TestDistributedTraceTimeline(t *testing.T) {
	req := tinyReq()
	want := localBytes(t, req)

	c, _ := fleet(t, CoordinatorConfig{LeaseTTL: 2 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 1}, 2)
	s, err := service.New(service.Config{Jobs: 1, QueueDepth: 4, Logger: quiet(), Distributor: c})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed bytes differ from local:\n%s\n%s", got, want)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + j.Key + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Complete {
		t.Error("finished distributed campaign's trace is not complete")
	}

	phases, shards, merges := 0, 0, 0
	var walk func(spans []obs.SpanSnapshot, inPhase bool)
	walk = func(spans []obs.SpanSnapshot, inPhase bool) {
		for _, sp := range spans {
			switch sp.Name {
			case "phase":
				phases++
				if sp.Attrs["path"] != "dist" {
					t.Errorf("phase path attr %q, want dist", sp.Attrs["path"])
				}
				walk(sp.Children, true)
				continue
			case "shard":
				shards++
				if !inPhase {
					t.Error("shard span outside a phase span")
				}
				if sp.Attrs["worker"] == "" || sp.Attrs["shard"] == "" {
					t.Errorf("shard span lacks worker/shard attrs: %v", sp.Attrs)
				}
				// The epoch attr is the coordinator incarnation stamp (base-36
				// nanos), the same namespace shard IDs embed.
				if ep := sp.Attrs["epoch"]; ep == "" {
					t.Errorf("shard span lacks the epoch attr: %v", sp.Attrs)
				} else if _, err := strconv.ParseInt(ep, 36, 64); err != nil {
					t.Errorf("shard span epoch attr %q is not a base-36 stamp: %v", ep, err)
				}
				if _, err := time.ParseDuration(sp.Attrs["exec"]); err != nil {
					t.Errorf("shard exec attr %q is not a duration: %v", sp.Attrs["exec"], err)
				}
			case "merge":
				merges++
				if !inPhase {
					t.Error("merge span outside a phase span")
				}
			}
			walk(sp.Children, inPhase)
		}
	}
	walk(snap.Spans, false)
	if phases != 2 {
		t.Errorf("%d phase spans, want 2 (sweep + layers)", phases)
	}
	// ShardUnits=1: the sweep alone has 2 units, layers adds more.
	if shards < 3 {
		t.Errorf("%d shard spans, want at least 3", shards)
	}
	if merges != 2 {
		t.Errorf("%d merge spans, want one per phase", merges)
	}
}
