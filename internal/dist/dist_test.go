package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	winofault "repro"
	"repro/internal/service"
)

func quiet() *slog.Logger { return slog.New(slog.DiscardHandler) }

// tinyReq is a real but fast campaign (the same shape the service tests
// use), with the layer-sensitivity phase on so both unit spaces shard.
func tinyReq() winofault.CampaignRequest {
	return winofault.CampaignRequest{
		Model:     "vgg19",
		Engine:    "winograd",
		InputSize: 16,
		Samples:   4,
		Rounds:    1,
		BERs:      []float64{1e-9, 1e-8},
		Layers:    true,
	}
}

// localBytes runs req through the in-process service path — the reference
// every distributed execution must match byte-for-byte.
func localBytes(t *testing.T, req winofault.CampaignRequest) []byte {
	t.Helper()
	s, err := service.New(service.Config{Jobs: 1, QueueDepth: 4, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fleet stands up a coordinator (with its worker HTTP surface) and n real
// workers, and tears everything down with the test.
func fleet(t *testing.T, cfg CoordinatorConfig, n int) (*Coordinator, string) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet()
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		name := string(rune('a' + i))
		go func() {
			defer wg.Done()
			RunWorker(ctx, WorkerConfig{Server: ts.URL, Name: name, Workers: 1, Logger: quiet()})
		}()
	}
	if n > 0 {
		waitForWorkers(t, c, n)
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		c.Close()
	})
	return c, ts.URL
}

func waitForWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range c.Workers() {
			if w.Live {
				live++
			}
		}
		if live >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("workers did not register in time")
}

// TestDistributedRunBitIdentical is the tentpole acceptance test: a
// campaign sharded unit-by-unit across two workers produces bytes identical
// to the local execution path — including the layer-sensitivity phase — so
// the content-addressed cache stores the same entry either way.
func TestDistributedRunBitIdentical(t *testing.T) {
	req := tinyReq()
	want := localBytes(t, req)

	c, _ := fleet(t, CoordinatorConfig{LeaseTTL: 2 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 1}, 2)
	key, err := service.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]int{} // batch -> max done
	got, err := c.Run(context.Background(), key, req, func(batch, done, total int) {
		mu.Lock()
		if done > seen[batch] {
			seen[batch] = done
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed bytes differ from local:\n%s\n%s", got, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("progress not reported for both phases: %v", seen)
	}

	// Both workers actually executed shards (ShardUnits=1 guarantees more
	// shards than workers; the sweep alone has 2).
	stats := c.Workers()
	if len(stats) != 2 {
		t.Fatalf("fleet size %d, want 2", len(stats))
	}
	var total int64
	for _, w := range stats {
		if w.Shards == 0 {
			t.Errorf("worker %s (%q) executed no shards", w.ID, w.Name)
		}
		total += w.Shards
	}
	if total < 3 {
		t.Errorf("fleet executed %d shards, want at least 3 (2 sweep units + layers)", total)
	}
}

// TestDistributedScenarioBitIdentical: the hardware-located acceptance
// invariant — a stuck-at-PE campaign sharded across a two-worker fleet
// produces bytes identical to the local execution path. The workers rebuild
// the scenario injection from the re-canonicalized spec alone (sampled
// stuck coordinates resolve from the keyed seed), so no scenario state
// crosses the wire beyond the request itself.
func TestDistributedScenarioBitIdentical(t *testing.T) {
	req := tinyReq()
	req.Rounds = 2
	req.Layers = false
	req.Scenario = &winofault.Scenario{Kind: "stuckpe", Row: 0, Col: 0, Bit: 24}
	want := localBytes(t, req)

	c, _ := fleet(t, CoordinatorConfig{LeaseTTL: 2 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 1}, 2)
	key, err := service.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background(), key, req, func(batch, done, total int) {})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed scenario bytes differ from local:\n%s\n%s", got, want)
	}
	for _, w := range c.Workers() {
		if w.Shards == 0 {
			t.Errorf("worker %s executed no shards of the scenario campaign", w.ID)
		}
	}
}

// TestServiceDistributedCacheBytes: the full service path with a
// Distributor — submit, distribute, cache — serves bytes identical to a
// service with no fleet at all.
func TestServiceDistributedCacheBytes(t *testing.T) {
	req := tinyReq()
	want := localBytes(t, req)

	c, _ := fleet(t, CoordinatorConfig{LeaseTTL: 2 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 2}, 2)
	s, err := service.New(service.Config{Jobs: 1, QueueDepth: 4, Logger: quiet(), Distributor: c})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed service bytes differ from local:\n%s\n%s", got, want)
	}
	// The second submission is a cache hit serving those very bytes.
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if !st.Cached {
		t.Error("second submission not served from cache")
	}
	if data, _ := j2.Wait(context.Background()); !bytes.Equal(data, want) {
		t.Error("cached bytes differ from local bytes")
	}
}

// rawWorker speaks the wire protocol by hand: a worker the test can kill at
// an exact point in the lease lifecycle.
type rawWorker struct {
	t    *testing.T
	base string
	id   string
}

func newRawWorker(t *testing.T, base, name string) *rawWorker {
	t.Helper()
	body, _ := json.Marshal(registerRequest{Name: name})
	resp, err := http.Post(base+"/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register returned %d", resp.StatusCode)
	}
	var reg registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	return &rawWorker{t: t, base: base, id: reg.ID}
}

// leaseOne polls until it holds a shard task, then returns it.
func (rw *rawWorker) leaseOne(deadline time.Duration) *ShardTask {
	rw.t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Post(rw.base+"/workers/"+rw.id+"/lease", "application/json", nil)
		if err != nil {
			rw.t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var task ShardTask
			err := json.NewDecoder(resp.Body).Decode(&task)
			resp.Body.Close()
			if err != nil {
				rw.t.Fatal(err)
			}
			return &task
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	rw.t.Fatal("no shard lease within deadline")
	return nil
}

// TestReLeaseAfterWorkerDeath: a worker that leases a shard and dies (no
// heartbeat, no result) must have the shard re-leased to the surviving
// fleet, and the merged result must still be byte-identical to local.
func TestReLeaseAfterWorkerDeath(t *testing.T) {
	req := tinyReq()
	req.Layers = false
	want := localBytes(t, req)

	cfg := CoordinatorConfig{LeaseTTL: 300 * time.Millisecond, Poll: 10 * time.Millisecond, ShardUnits: 1}
	c, url := fleet(t, cfg, 0) // no real workers yet
	dead := newRawWorker(t, url, "doomed")

	key, err := service.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	type runOut struct {
		data []byte
		err  error
	}
	out := make(chan runOut, 1)
	go func() {
		data, err := c.Run(context.Background(), key, req, func(int, int, int) {})
		out <- runOut{data, err}
	}()

	// The doomed worker takes one shard and vanishes without reporting.
	task := dead.leaseOne(5 * time.Second)
	if task.Key != key {
		t.Fatalf("leased task key %.12s, want %.12s", task.Key, key)
	}

	// A healthy worker joins and must end up executing everything —
	// including the dead worker's shard once its lease expires.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go RunWorker(ctx, WorkerConfig{Server: url, Name: "survivor", Workers: 1, Logger: quiet()})

	select {
	case r := <-out:
		if r.err != nil {
			t.Fatalf("Run failed: %v", r.err)
		}
		if !bytes.Equal(r.data, want) {
			t.Errorf("re-leased run bytes differ from local:\n%s\n%s", r.data, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not complete after worker death")
	}
}

// TestNoWorkersRegistered: with an empty fleet, Run reports ErrNoWorkers
// immediately — the service's cue to execute locally.
func TestNoWorkersRegistered(t *testing.T) {
	c, _ := fleet(t, CoordinatorConfig{LeaseTTL: time.Second}, 0)
	req := tinyReq()
	key, _ := service.Key(req)
	if _, err := c.Run(context.Background(), key, req, func(int, int, int) {}); !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("Run with no workers returned %v, want ErrNoWorkers", err)
	}
}

// TestFleetDiesMidCampaign: when every worker goes silent with shards
// outstanding, the run must fail with ErrNoWorkers (triggering local
// fallback) instead of hanging forever.
func TestFleetDiesMidCampaign(t *testing.T) {
	req := tinyReq()
	req.Layers = false
	cfg := CoordinatorConfig{LeaseTTL: 200 * time.Millisecond, Poll: 10 * time.Millisecond, ShardUnits: 1}
	c, url := fleet(t, cfg, 0)
	dead := newRawWorker(t, url, "last-of-its-kind")

	key, _ := service.Key(req)
	out := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), key, req, func(int, int, int) {})
		out <- err
	}()
	dead.leaseOne(5 * time.Second) // holds a shard, then goes silent forever

	select {
	case err := <-out:
		if !errors.Is(err, service.ErrNoWorkers) {
			t.Fatalf("stranded run returned %v, want ErrNoWorkers", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stranded run did not fail")
	}
}

// TestShardErrorRetriesThenFails: explicit shard errors are retried up to
// MaxAttempts, then fail the run with the shard's error.
func TestShardErrorRetriesThenFails(t *testing.T) {
	req := tinyReq()
	req.Layers = false
	cfg := CoordinatorConfig{LeaseTTL: 5 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 4, MaxAttempts: 2}
	c, url := fleet(t, cfg, 0)
	rw := newRawWorker(t, url, "saboteur")

	key, _ := service.Key(req)
	out := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), key, req, func(int, int, int) {})
		out <- err
	}()
	for i := 0; i < 2; i++ {
		task := rw.leaseOne(5 * time.Second)
		body, _ := json.Marshal(ShardResult{Task: task.ID, Error: "synthetic shard failure"})
		resp, err := http.Post(url+"/workers/"+rw.id+"/result", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	select {
	case err := <-out:
		if err == nil || !strings.Contains(err.Error(), "synthetic shard failure") {
			t.Fatalf("run returned %v, want the shard failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("failing shards did not fail the run")
	}
}

// TestWorkerRefusesKeyMismatch: the worker re-canonicalizes the spec and
// refuses a task whose advertised key disagrees — the coordinator sees an
// explicit shard error, not silent wrong-campaign counts.
func TestWorkerRefusesKeyMismatch(t *testing.T) {
	w := &fleetWorker{cfg: WorkerConfig{Logger: quiet()}}
	res := w.execute(context.Background(), ShardTask{
		ID:  "t1",
		Key: strings.Repeat("0", 64),
		Req: tinyReq(),
		Lo:  0, Hi: 1,
	})
	if res.Error == "" || !strings.Contains(res.Error, "key mismatch") {
		t.Fatalf("mismatched key produced %+v, want a key-mismatch error", res)
	}
	res = w.execute(context.Background(), ShardTask{ID: "t2", Key: "junk", Req: winofault.CampaignRequest{}})
	if res.Error == "" {
		t.Fatal("invalid spec did not error")
	}
}

// TestDrainRefusesRegistration: a draining coordinator turns away new
// fleet; existing workers keep leasing so in-flight campaigns finish.
func TestDrainRefusesRegistration(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Second, Logger: quiet()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	rw := newRawWorker(t, ts.URL, "early-bird")
	c.BeginDrain()

	body, _ := json.Marshal(registerRequest{Name: "latecomer"})
	resp, err := http.Post(ts.URL+"/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("register while draining returned %d, want 503", resp.StatusCode)
	}
	// The registered worker still heartbeats and polls fine.
	hb, err := http.Post(ts.URL+"/workers/"+rw.id+"/heartbeat", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	hb.Body.Close()
	if hb.StatusCode != http.StatusNoContent {
		t.Errorf("heartbeat while draining returned %d, want 204", hb.StatusCode)
	}
	lease, err := http.Post(ts.URL+"/workers/"+rw.id+"/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	lease.Body.Close()
	if lease.StatusCode != http.StatusNoContent {
		t.Errorf("idle lease while draining returned %d, want 204", lease.StatusCode)
	}
}

// TestRunCanceled: canceling the campaign context unblocks Run promptly and
// strips its shards so late results are ignored.
func TestRunCanceled(t *testing.T) {
	req := tinyReq()
	req.Layers = false
	cfg := CoordinatorConfig{LeaseTTL: 5 * time.Second, Poll: 10 * time.Millisecond, ShardUnits: 1}
	c, url := fleet(t, cfg, 0)
	rw := newRawWorker(t, url, "bystander")

	key, _ := service.Key(req)
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, key, req, func(int, int, int) {})
		out <- err
	}()
	task := rw.leaseOne(5 * time.Second)
	cancel()
	select {
	case err := <-out:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run did not return")
	}
	// A late result for the canceled run is dropped without fuss.
	body, _ := json.Marshal(ShardResult{Task: task.ID, Counts: []int{4}})
	resp, err := http.Post(url+"/workers/"+rw.id+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("late result returned %d, want 204", resp.StatusCode)
	}
}
