package dist

import (
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WorkerMetrics is the per-node instrumentation wfworker serves on its
// -debug-addr listener and ships to the coordinator inside heartbeats
// (metric federation): shard throughput, execution latency and in-flight
// work, alongside the build/runtime gauges every debug listener carries. A
// nil *WorkerMetrics records nothing, so the worker loop never branches on
// whether the debug listener is enabled.
type WorkerMetrics struct {
	start    time.Time
	shards   atomic.Int64 // completed shard executions (including failed ones)
	inflight atomic.Int64 // shards currently executing
	exec     *obs.Histogram
}

// NewWorkerMetrics builds the worker's metric set.
func NewWorkerMetrics() *WorkerMetrics {
	return &WorkerMetrics{start: time.Now(), exec: obs.NewHistogram(obs.DurationBuckets)}
}

// shardStarted marks one shard execution as in flight.
func (m *WorkerMetrics) shardStarted() {
	if m == nil {
		return
	}
	m.inflight.Add(1)
}

// observeShard records one completed shard execution (paired with
// shardStarted).
func (m *WorkerMetrics) observeShard(d time.Duration) {
	if m == nil {
		return
	}
	m.inflight.Add(-1)
	m.shards.Add(1)
	m.exec.Observe(d.Seconds())
}

// Snapshot captures the node's current metric state for a heartbeat. nil
// receivers report nil so the heartbeat body stays empty for an
// uninstrumented worker.
func (m *WorkerMetrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MetricsSnapshot{
		Shards:     m.shards.Load(),
		Inflight:   m.inflight.Load(),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		Exec:       m.exec.Snapshot(),
	}
}

// Handler serves the worker's debug mux: /debug/pprof/* plus /metrics with
// wfworker_build_info, wfworker_uptime_seconds, runtime gauges, the shard
// counter, the in-flight gauge and the shard execution histogram.
func (m *WorkerMetrics) Handler() http.Handler {
	return obs.DebugHandler("wfworker", m.start, func(w http.ResponseWriter) {
		fmt.Fprintf(w, "# HELP wfworker_shards_total Shard executions completed by this worker (including failures).\n")
		fmt.Fprintf(w, "# TYPE wfworker_shards_total counter\n")
		fmt.Fprintf(w, "wfworker_shards_total %d\n", m.shards.Load())
		fmt.Fprintf(w, "# HELP wfworker_inflight_shards Shards currently executing on this worker.\n")
		fmt.Fprintf(w, "# TYPE wfworker_inflight_shards gauge\n")
		fmt.Fprintf(w, "wfworker_inflight_shards %d\n", m.inflight.Load())
		m.exec.Write(w, "wfworker_shard_exec_seconds", "Wall time this worker spent executing one shard.")
	})
}
