package dist

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WorkerMetrics is the per-node instrumentation wfworker serves on its
// -debug-addr listener: shard throughput and execution latency, alongside
// the build/runtime gauges every debug listener carries. A nil *WorkerMetrics
// records nothing, so the worker loop never branches on whether the debug
// listener is enabled.
type WorkerMetrics struct {
	start  time.Time
	shards atomic.Int64 // completed shard executions (including failed ones)
	exec   *obs.Histogram
}

// NewWorkerMetrics builds the worker's metric set.
func NewWorkerMetrics() *WorkerMetrics {
	return &WorkerMetrics{start: time.Now(), exec: obs.NewHistogram(obs.DurationBuckets)}
}

// observeShard records one shard execution.
func (m *WorkerMetrics) observeShard(d time.Duration) {
	if m == nil {
		return
	}
	m.shards.Add(1)
	m.exec.Observe(d.Seconds())
}

// Handler serves the worker's debug mux: /debug/pprof/* plus /metrics with
// wfworker_build_info, wfworker_uptime_seconds, runtime gauges, the shard
// counter and the shard execution histogram.
func (m *WorkerMetrics) Handler() http.Handler {
	return obs.DebugHandler("wfworker", m.start, func(w http.ResponseWriter) {
		fmt.Fprintf(w, "# HELP wfworker_shards_total Shard executions completed by this worker (including failures).\n")
		fmt.Fprintf(w, "# TYPE wfworker_shards_total counter\n")
		fmt.Fprintf(w, "wfworker_shards_total %d\n", m.shards.Load())
		m.exec.Write(w, "wfworker_shard_exec_seconds", "Wall time this worker spent executing one shard.")
	})
}
