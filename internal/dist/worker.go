package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	winofault "repro"
	"repro/internal/service"
)

// WorkerConfig configures one fleet node (cmd/wfworker).
type WorkerConfig struct {
	// Server is the coordinator's base URL (the wfserve address).
	Server string
	// Name labels this node in logs and /metrics (default: anonymous).
	Name string
	// Workers is the faultsim parallelism used per shard (0 = GOMAXPROCS).
	// Like everywhere else it changes wall-clock time, never counts.
	Workers int
	// APIKey authenticates against a coordinator running with -keys. Empty
	// is fine for an open (single-lab) coordinator.
	APIKey string
	// Logger receives worker events (default slog.Default()).
	Logger *slog.Logger
	// Metrics, when set, collects shard throughput/latency for the worker's
	// debug listener and is snapshotted into every heartbeat (metric
	// federation). nil records nothing and heartbeats stay bodyless.
	Metrics *WorkerMetrics
	// ExecDelay artificially stretches every shard execution by sleeping
	// inside the timed section. It exists for testing the coordinator's
	// straggler detection (CI starts one deliberately slow node); production
	// workers leave it zero. Determinism is untouched — the delay changes
	// wall-clock time, never counts.
	ExecDelay time.Duration
}

// RunWorker joins the fleet at cfg.Server and processes shard leases until
// ctx is canceled: register, heartbeat, lease-execute-report. Connection
// errors, coordinator restarts and drains are survived by backing off and
// re-registering — the worker is stateless between shards except for a
// small LRU of built systems keyed by campaign content address.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	base := cfg.Server
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("dist: worker server %q: %w", cfg.Server, err)
	}
	w := &fleetWorker{cfg: cfg, base: u, hc: &http.Client{}}
	for {
		if err := w.session(ctx); err != nil {
			return err
		}
		// session only returns without error to re-register (lapsed
		// registration or coordinator restart); pause briefly first.
		if !sleepCtx(ctx, w.backoff()) {
			return ctx.Err()
		}
	}
}

// fleetWorker is the state of one RunWorker loop.
type fleetWorker struct {
	cfg  WorkerConfig
	base *url.URL
	hc   *http.Client

	id    string
	lease time.Duration // coordinator's lease TTL
	poll  time.Duration // idle poll interval
	fails int           // consecutive connection/5xx failures, for backoff

	// Built systems cached by campaign content address: a campaign's shards
	// arrive back to back (often both phases), and rebuilding the network
	// per shard would dwarf small unit ranges. A few slots (not one) so the
	// interleaved shard streams of a multi-job coordinator don't thrash it.
	// Touched only by the single lease/execute goroutine.
	sysCache map[string]*winofault.System
	sysOrder []string // LRU, most recent last
}

// sysCacheSize bounds cached systems per worker; coordinators run few
// campaigns concurrently (wfserve -jobs, default 1), so a handful covers
// realistic interleavings.
const sysCacheSize = 4

// backoff grows with consecutive failures, capped at 2s.
func (w *fleetWorker) backoff() time.Duration {
	d := 100 * time.Millisecond << min(w.fails, 4)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (w *fleetWorker) endpoint(path string) string {
	u := *w.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	return u.String()
}

// postJSON posts body (or nothing) and decodes a JSON reply into out when
// non-nil. It returns the HTTP status; transport errors return 0.
func (w *fleetWorker) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint(path), rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.APIKey)
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// session is one registration's lifetime: register, then lease/execute until
// ctx ends (error) or the registration lapses (nil — caller re-registers).
func (w *fleetWorker) session(ctx context.Context) error {
	var resp registerResponse
	for {
		code, err := w.postJSON(ctx, "/workers", registerRequest{Name: w.cfg.Name}, &resp)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err == nil && code == http.StatusOK && resp.ID != "" {
			break
		}
		w.fails++
		w.cfg.Logger.Warn("dist: worker register failed; retrying",
			"name", w.cfg.Name, "server", w.base.String(), "status", code, "err", err)
		if !sleepCtx(ctx, w.backoff()) {
			return ctx.Err()
		}
	}
	w.fails = 0
	w.id = resp.ID
	w.lease = time.Duration(resp.LeaseMillis) * time.Millisecond
	if w.lease <= 0 {
		w.lease = 15 * time.Second
	}
	w.poll = time.Duration(resp.PollMillis) * time.Millisecond
	if w.poll <= 0 {
		w.poll = 500 * time.Millisecond
	}
	w.cfg.Logger.Info("dist: worker registered",
		"name", w.cfg.Name, "worker", w.id, "lease", w.lease, "poll", w.poll)
	return w.leaseLoop(ctx)
}

func (w *fleetWorker) leaseLoop(ctx context.Context) error {
	hbStop := make(chan struct{})
	defer close(hbStop)
	go w.heartbeatLoop(ctx, hbStop)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var task ShardTask
		code, err := w.postJSON(ctx, "/workers/"+w.id+"/lease", nil, &task)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil || code >= 500 || code == 0:
			w.fails++
			if !sleepCtx(ctx, w.backoff()) {
				return ctx.Err()
			}
		case code == http.StatusNotFound:
			w.cfg.Logger.Info("dist: worker registration lapsed; re-registering", "worker", w.id)
			return nil
		case code == http.StatusNoContent:
			w.fails = 0
			if !sleepCtx(ctx, w.poll) {
				return ctx.Err()
			}
		case code == http.StatusOK:
			w.fails = 0
			// Time the execution here (around system reuse and unit compute,
			// not transport) and ship the duration back in the result: the
			// coordinator stitches it into the campaign trace without the two
			// clocks ever having to agree on absolute time.
			w.cfg.Metrics.shardStarted()
			execStart := time.Now()
			res := w.execute(ctx, task)
			if w.cfg.ExecDelay > 0 {
				// Inside the timed section on purpose: the delay must show up
				// in ExecNanos and the exec histogram, exactly like a genuinely
				// slow node's extra wall time would.
				sleepCtx(ctx, w.cfg.ExecDelay)
			}
			exec := time.Since(execStart)
			res.ExecNanos = exec.Nanoseconds()
			w.cfg.Metrics.observeShard(exec)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.report(ctx, res)
		default:
			w.fails++
			if !sleepCtx(ctx, w.backoff()) {
				return ctx.Err()
			}
		}
	}
}

func (w *fleetWorker) heartbeatLoop(ctx context.Context, stop <-chan struct{}) {
	tick := time.NewTicker(w.lease / 3)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
			// The heartbeat doubles as the federation channel: it carries the
			// node's metric snapshot so the coordinator can expose per-worker
			// series without ever dialing workers. A nil Metrics keeps the
			// body empty (the coordinator tolerates both).
			var body any
			if snap := w.cfg.Metrics.Snapshot(); snap != nil {
				body = heartbeatRequest{Metrics: snap}
			}
			w.postJSON(ctx, "/workers/"+w.id+"/heartbeat", body, nil)
		}
	}
}

// report delivers a shard result, retrying briefly: losing a computed shard
// to a transient network blip would force a pointless re-execution.
func (w *fleetWorker) report(ctx context.Context, res ShardResult) {
	for attempt := 0; attempt < 4; attempt++ {
		code, err := w.postJSON(ctx, "/workers/"+w.id+"/result", res, nil)
		if err == nil && code < 500 && code != 0 {
			return
		}
		if !sleepCtx(ctx, w.backoff()) {
			return
		}
	}
	w.cfg.Logger.Warn("dist: dropping shard result (coordinator unreachable); it will be re-leased",
		"worker", w.id, "shard", res.Task)
}

// execute runs one shard: re-canonicalize the campaign spec, rebuild (or
// reuse) the system, compute the unit range's agreement counts.
func (w *fleetWorker) execute(ctx context.Context, task ShardTask) ShardResult {
	res := ShardResult{Task: task.ID}
	// Re-canonicalization is the trust boundary: the worker derives the
	// content address itself (with the shared service validation) and
	// refuses to compute under a key it does not agree describes the spec.
	key, err := service.Key(task.Req)
	if err != nil {
		res.Error = fmt.Sprintf("invalid campaign spec: %v", err)
		return res
	}
	if key != task.Key {
		res.Error = fmt.Sprintf("campaign key mismatch: coordinator says %.12s, spec canonicalizes to %.12s", task.Key, key)
		return res
	}
	sys, err := w.system(key, task.Req)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var counts []int
	switch task.Phase {
	case PhaseSweep:
		counts, err = sys.SweepUnitCounts(ctx, task.Req.BERs, task.Lo, task.Hi)
	case PhaseLayers:
		mid := task.Req.BERs[len(task.Req.BERs)/2]
		counts, err = sys.LayerUnitCounts(ctx, mid, task.Lo, task.Hi)
	default:
		err = fmt.Errorf("unknown campaign phase %d", task.Phase)
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Counts = counts
	return res
}

// system returns the cached system for key, or builds one (evicting the
// least recently used entry beyond sysCacheSize).
func (w *fleetWorker) system(key string, req winofault.CampaignRequest) (*winofault.System, error) {
	if sys, ok := w.sysCache[key]; ok {
		w.touchSys(key)
		return sys, nil
	}
	cfg, err := req.SystemConfig()
	if err != nil {
		return nil, err
	}
	cfg.Workers = w.cfg.Workers // scheduling only; never part of the key
	sys, err := winofault.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.SetProtection(req.Protection); err != nil {
		return nil, err
	}
	if w.sysCache == nil {
		w.sysCache = map[string]*winofault.System{}
	}
	w.sysCache[key] = sys
	w.touchSys(key)
	for len(w.sysOrder) > sysCacheSize {
		delete(w.sysCache, w.sysOrder[0])
		w.sysOrder = w.sysOrder[1:]
	}
	return sys, nil
}

// touchSys moves key to the most-recent end of the LRU order.
func (w *fleetWorker) touchSys(key string) {
	for i, k := range w.sysOrder {
		if k == key {
			w.sysOrder = append(w.sysOrder[:i], w.sysOrder[i+1:]...)
			break
		}
	}
	w.sysOrder = append(w.sysOrder, key)
}
