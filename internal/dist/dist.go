// Package dist is the distributed campaign execution layer: a coordinator
// that shards a campaign batch's flattened (campaign, round) unit index
// space into contiguous ranges and farms them out over HTTP+JSON to a fleet
// of wfworker nodes, plus the worker loop those nodes run.
//
// The design leans entirely on the scheduler's determinism guarantee
// (internal/faultsim): every unit's result is a pure function of (seed,
// round, node), so per-unit agreement counts computed on any machine are
// bit-identical to a local run's, and merging shard count slices in unit
// index order before the index-ordered reduction reproduces the exact bytes
// a single process would cache. Shard count, worker arrival order, worker
// death and re-leasing can therefore never change a result — only its
// wall-clock time. See DESIGN.md "Distributed execution".
//
// Topology: workers pull. A worker registers with the coordinator, then
// polls for shard leases and posts back per-unit counts; a heartbeat keeps
// its registration and leases fresh. Leases expire — a worker that dies or
// goes silent past the lease TTL has its shards re-queued and re-leased to
// the surviving fleet. The coordinator never dials workers, so nodes behind
// NAT or ephemeral containers join with zero configuration.
package dist

import (
	winofault "repro"
	"repro/internal/obs"
)

// Campaign phases a shard task can belong to. A campaign request yields one
// sweep batch and, when Layers is set, one layer-sensitivity batch; the two
// have independent unit index spaces, so tasks name theirs explicitly.
const (
	// PhaseSweep is the BER sweep batch (unit space of SweepUnits).
	PhaseSweep = 0
	// PhaseLayers is the layer-sensitivity batch at the sweep's middle BER
	// (unit space of LayerUnits).
	PhaseLayers = 1
)

// registerRequest is the body of POST /workers.
type registerRequest struct {
	Name string `json:"name"`
}

// registerResponse assigns the worker its ID and the coordinator's timing
// contract: heartbeat well inside LeaseMillis or lose registration and
// leases; poll for work roughly every PollMillis when idle.
type registerResponse struct {
	ID          string `json:"id"`
	LeaseMillis int64  `json:"leaseMillis"`
	PollMillis  int64  `json:"pollMillis"`
}

// MetricsSnapshot is the compact per-node metric set a worker ships inside
// each heartbeat (metric federation): the coordinator merges the fleet's
// snapshots into per-worker wffleet_* series on /metrics and the /fleet
// endpoint, so an operator scrapes one address instead of every node's
// private -debug-addr.
type MetricsSnapshot struct {
	// Shards counts completed shard executions (including failures).
	Shards int64 `json:"shards"`
	// Inflight is the number of shards currently executing (0 or 1 today —
	// the lease loop is serial — but the wire form doesn't assume that).
	Inflight int64 `json:"inflight"`
	// Goroutines and HeapBytes are the node's runtime health gauges.
	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heapBytes"`
	// Exec is the node's shard execution latency histogram. Bounds ride along
	// so the coordinator can validate the layout before merging.
	Exec obs.HistogramSnapshot `json:"exec"`
}

// heartbeatRequest is the (optional) body of POST /workers/{id}/heartbeat.
// Older workers post an empty body; the snapshot is additive.
type heartbeatRequest struct {
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// ShardTask is one leased unit range of a campaign phase. The worker
// re-canonicalizes Req (service.Key) and refuses the task unless its own
// key equals Key — both sides must agree on the campaign's identity before
// any counts are trusted.
type ShardTask struct {
	// ID names this shard; it is stable across re-leases, so a result from
	// a presumed-dead worker that raced a re-lease is still mergeable (the
	// counts are bit-identical by determinism — first one in wins).
	ID string `json:"id"`
	// Key is the campaign's content address (service.Key of Req).
	Key string `json:"key"`
	// Req is the full campaign spec; the worker rebuilds the system from it.
	Req winofault.CampaignRequest `json:"req"`
	// Phase selects the unit index space (PhaseSweep or PhaseLayers).
	Phase int `json:"phase"`
	// Lo, Hi bound the unit range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ShardResult is the body of POST /workers/{id}/result: the per-unit
// agreement counts of a completed shard, or the error that prevented them.
type ShardResult struct {
	Task   string `json:"task"`
	Counts []int  `json:"counts,omitempty"`
	Error  string `json:"error,omitempty"`
	// ExecNanos is the worker-side wall time spent executing the shard, in
	// nanoseconds. It rides back in the result message so the coordinator can
	// stitch worker execution time into the campaign trace without any clock
	// agreement between the two machines — a duration survives clock skew,
	// an absolute timestamp would not.
	ExecNanos int64 `json:"execNanos,omitempty"`
}

// short truncates a campaign key for logs and span attrs, matching the
// %.12s prefix shard IDs embed.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
