package dist

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// twoWorkers registers a fast and a slow worker directly on a coordinator
// (no HTTP, no goroutines) and seeds their per-unit exec EWMAs, so the
// straggler policy is testable without timing.
func twoWorkers(t *testing.T, c *Coordinator, fastPer, slowPer float64) (fastID, slowID string) {
	t.Helper()
	fast, err := c.register("fast")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.register("slow")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	c.mu.Lock()
	c.workers[fast.ID].unitEWMA, c.workers[fast.ID].samples = fastPer, 3
	c.workers[slow.ID].unitEWMA, c.workers[slow.ID].samples = slowPer, 3
	c.recomputeStragglersLocked(now)
	c.mu.Unlock()
	return fast.ID, slow.ID
}

// queueShard puts one dispatchable shard on the coordinator's pending queue.
func queueShard(c *Coordinator, id string) {
	run := &campaignRun{counts: make([]int, 1), total: 1, remaining: 1, done: make(chan struct{})}
	c.mu.Lock()
	c.pending = append(c.pending, &shard{task: ShardTask{ID: id, Lo: 0, Hi: 1}, run: run})
	c.mu.Unlock()
}

// TestStragglerFlaggingAndLeaseDenial: a worker whose per-unit EWMA dwarfs
// the fleet median is flagged and stops receiving leases while a healthy
// worker is live; the healthy worker keeps leasing.
func TestStragglerFlaggingAndLeaseDenial(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fastID, slowID := twoWorkers(t, c, 50e-6, 10e-3)

	fs := c.Fleet()
	if len(fs.Workers) != 2 {
		t.Fatalf("fleet has %d workers, want 2", len(fs.Workers))
	}
	for _, fw := range fs.Workers {
		switch fw.ID {
		case fastID:
			if fw.Straggler {
				t.Error("fast worker flagged")
			}
		case slowID:
			if !fw.Straggler {
				t.Error("slow worker not flagged")
			}
		}
	}
	if fs.MedianUnitSeconds != 50e-6 {
		t.Errorf("fleet median %g, want the faster worker's 50e-6 (lower median)", fs.MedianUnitSeconds)
	}

	queueShard(c, "t1")
	if task, err := c.lease(slowID); err != nil || task != nil {
		t.Fatalf("flagged straggler got a lease: task=%v err=%v", task, err)
	}
	if task, err := c.lease(fastID); err != nil || task == nil {
		t.Fatalf("healthy worker denied the lease: task=%v err=%v", task, err)
	}
}

// TestStragglerProbationProbe: after the probation window a flagged worker
// earns exactly one probe lease (to re-measure itself), and the probation
// clock restarts so it cannot immediately take a second.
func TestStragglerProbationProbe(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, slowID := twoWorkers(t, c, 50e-6, 10e-3)

	c.mu.Lock()
	c.workers[slowID].flaggedAt = time.Now().Add(-c.cfg.StragglerProbation - time.Second)
	c.mu.Unlock()
	queueShard(c, "t1")
	queueShard(c, "t2")
	if task, err := c.lease(slowID); err != nil || task == nil {
		t.Fatalf("post-probation probe lease denied: task=%v err=%v", task, err)
	}
	if task, err := c.lease(slowID); err != nil || task != nil {
		t.Fatalf("straggler got a second lease inside the restarted probation: task=%v err=%v", task, err)
	}
}

// TestStragglerLeasesWhenAlone: benching a straggler must never stall the
// queue — with no healthy live worker, the flagged one still leases.
func TestStragglerLeasesWhenAlone(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fastID, slowID := twoWorkers(t, c, 50e-6, 10e-3)

	c.mu.Lock()
	c.workers[fastID].lastSeen = time.Now().Add(-2 * c.cfg.LeaseTTL) // fast worker dies
	c.mu.Unlock()
	queueShard(c, "t1")
	if task, err := c.lease(slowID); err != nil || task == nil {
		t.Fatalf("lone straggler denied work with nobody else alive: task=%v err=%v", task, err)
	}
}

// TestStragglerNeedsTwoMeasured: with fewer than two live measured workers
// every flag clears — a lone worker has no fleet to be slower than.
func TestStragglerNeedsTwoMeasured(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fastID, slowID := twoWorkers(t, c, 50e-6, 10e-3)

	c.mu.Lock()
	c.workers[fastID].samples = 0 // fast worker no longer measured
	c.recomputeStragglersLocked(time.Now())
	flagged := c.workers[slowID].straggler
	c.mu.Unlock()
	if flagged {
		t.Fatal("straggler flag survived with only one measured worker")
	}
}

// TestStragglerAbsoluteFloor: when the whole fleet executes units in
// microseconds, a 10x ratio alone must not flag — the EWMA has to clear the
// median by the absolute floor too, or scheduling noise benches healthy nodes.
func TestStragglerAbsoluteFloor(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, slowID := twoWorkers(t, c, 1e-6, 10e-6) // 10x apart, both microscopic

	c.mu.Lock()
	flagged := c.workers[slowID].straggler
	c.mu.Unlock()
	if flagged {
		t.Fatal("sub-floor gap flagged a worker")
	}
}

// TestHeartbeatStoresSnapshot: a heartbeat snapshot lands in the fleet view;
// a snapshot whose histogram layout is malformed (hostile or torn on the
// wire) has the histogram dropped before it can poison the exposition page.
func TestHeartbeatStoresSnapshot(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Logger: quiet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg, err := c.register("node")
	if err != nil {
		t.Fatal(err)
	}

	h := obs.NewHistogram(obs.DurationBuckets)
	h.Observe(0.25)
	h.Observe(0.5)
	snap := &MetricsSnapshot{Shards: 7, Inflight: 1, Goroutines: 12, HeapBytes: 1 << 20, Exec: h.Snapshot()}
	if !c.heartbeat(reg.ID, snap) {
		t.Fatal("heartbeat for a registered worker rejected")
	}
	fw := c.Fleet().Workers[0]
	if fw.Inflight != 1 || fw.Goroutines != 12 || fw.HeapBytes != 1<<20 {
		t.Fatalf("snapshot gauges lost: %+v", fw)
	}
	if fw.Exec.Count != 2 || fw.P50 <= 0 || fw.P99 <= 0 {
		t.Fatalf("exec histogram lost: count=%d p50=%g p99=%g", fw.Exec.Count, fw.P50, fw.P99)
	}

	// Malformed histogram: Counts shorter than Bounds+1 would panic the
	// exposition writer — the coordinator must drop it at the door.
	bad := &MetricsSnapshot{Exec: obs.HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{5}, Count: 5}}
	if !c.heartbeat(reg.ID, bad) {
		t.Fatal("heartbeat with a bad snapshot rejected outright (liveness must survive)")
	}
	fw = c.Fleet().Workers[0]
	if len(fw.Exec.Bounds) != 0 || fw.Exec.Count != 0 {
		t.Fatalf("malformed exec histogram stored: %+v", fw.Exec)
	}

	if c.heartbeat("w-unknown", snap) {
		t.Fatal("heartbeat for an unknown worker accepted")
	}
}

// TestHeartbeatBodyTolerated: over HTTP, an empty or unparseable heartbeat
// body (older workers, partial writes) still refreshes liveness — it is
// treated as snapshotless, never rejected.
func TestHeartbeatBodyTolerated(t *testing.T) {
	c, srv := fleet(t, CoordinatorConfig{LeaseTTL: time.Minute}, 0)
	reg, err := c.register("old-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{"", "not json at all", `{"metrics":{"exec":{"bounds":"wat"}}}`} {
		resp, err := http.Post(srv+"/workers/"+reg.ID+"/heartbeat", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("heartbeat with body %q got %d, want 204", body, resp.StatusCode)
		}
	}
	for _, w := range c.Workers() {
		if w.ID == reg.ID && !w.Live {
			t.Fatal("tolerated heartbeat did not refresh liveness")
		}
	}
}

// TestWorkerMetricsSnapshot: the worker-side snapshot carries inflight,
// runtime gauges and a valid exec histogram, and inflight tracks the
// start/observe pairing.
func TestWorkerMetricsSnapshot(t *testing.T) {
	m := NewWorkerMetrics()
	m.shardStarted()
	snap := m.Snapshot()
	if snap.Inflight != 1 {
		t.Fatalf("inflight %d mid-shard, want 1", snap.Inflight)
	}
	if snap.Goroutines <= 0 || snap.HeapBytes == 0 {
		t.Fatalf("runtime gauges empty: %+v", snap)
	}
	m.observeShard(5 * time.Millisecond)
	snap = m.Snapshot()
	if snap.Inflight != 0 {
		t.Fatalf("inflight %d after observe, want 0", snap.Inflight)
	}
	if snap.Shards != 1 || snap.Exec.Count != 1 || !snap.Exec.Valid() {
		t.Fatalf("exec snapshot wrong: shards=%d %+v", snap.Shards, snap.Exec)
	}
}

// TestJournalEpochRoundTrip: the campaign record's epoch survives replay (and
// the compaction snapshot), so a recovered campaign can link its previous
// incarnation's trace.
func TestJournalEpochRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	req := tinyReq()
	j.append(journalRecord{T: recCampaign, Key: "aaa", Req: &req, Epoch: "prior-epoch"})
	j.close()

	_, reg, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	cs := reg["aaa"]
	if cs == nil {
		t.Fatal("campaign not replayed")
	}
	if cs.epoch != "prior-epoch" {
		t.Fatalf("replayed epoch %q, want prior-epoch", cs.epoch)
	}
	recs := snapshotRecords(reg)
	found := false
	for _, rec := range recs {
		if rec.T == recCampaign && rec.Key == "aaa" {
			found = true
			if rec.Epoch != "prior-epoch" {
				t.Fatalf("compaction snapshot epoch %q, want prior-epoch", rec.Epoch)
			}
		}
	}
	if !found {
		t.Fatal("campaign record missing from compaction snapshot")
	}
}

// TestStragglerEndToEnd: a real two-worker fleet where one node carries an
// artificial exec delay. The slow worker gets flagged from its merged shard
// timings, receives no further leases while the fast worker is live, and the
// campaign bytes stay identical to local execution throughout.
func TestStragglerEndToEnd(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:   5 * time.Second,
		Poll:       10 * time.Millisecond,
		ShardUnits: 1,
		Logger:     quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerConfig{Server: ts.URL, Name: "fast", Workers: 1, Logger: quiet(), Metrics: NewWorkerMetrics()})
	}()
	go func() {
		defer wg.Done()
		RunWorker(ctx, WorkerConfig{Server: ts.URL, Name: "slow", Workers: 1, Logger: quiet(), Metrics: NewWorkerMetrics(),
			ExecDelay: 400 * time.Millisecond})
	}()
	t.Cleanup(func() { cancel(); wg.Wait(); ts.Close(); c.Close() })
	waitForWorkers(t, c, 2)

	req := tinyReq()
	req.Layers = false

	// Run campaigns (distinct seeds, so nothing coalesces or prefills) until
	// the slow worker has merged a shard and been flagged.
	slowID := ""
	deadline := time.Now().Add(60 * time.Second)
	for seed := uint64(1); slowID == ""; seed++ {
		if time.Now().After(deadline) {
			t.Fatal("slow worker never flagged as straggler")
		}
		r := req
		r.Seed = seed
		key, err := service.Key(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(context.Background(), key, r, func(int, int, int) {}); err != nil {
			t.Fatal(err)
		}
		for _, fw := range c.Fleet().Workers {
			if fw.Name == "slow" && fw.Straggler {
				slowID = fw.ID
			}
		}
	}

	// Flagged: the slow worker must sit out the next campaign entirely while
	// the fast worker is live — its merged-shard count stays frozen — and the
	// result must still match local bytes exactly.
	before := workerShards(c, slowID)
	r := req
	r.Seed = 9999
	key, err := service.Key(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background(), key, r, func(int, int, int) {})
	if err != nil {
		t.Fatal(err)
	}
	if want := localBytes(t, r); !bytes.Equal(got, want) {
		t.Fatal("distributed bytes diverged from local after straggler benching")
	}
	if after := workerShards(c, slowID); after != before {
		t.Fatalf("flagged straggler still leased shards: %d -> %d", before, after)
	}
}

// workerShards reads one worker's merged-shard count from the fleet view.
func workerShards(c *Coordinator, id string) int64 {
	for _, fw := range c.Fleet().Workers {
		if fw.ID == id {
			return fw.Shards
		}
	}
	return -1
}
