package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"

	winofault "repro"
)

// The control-plane journal makes the coordinator restartable: every
// campaign handed to Run, every merged shard's unit range and counts, and
// every terminal outcome is appended as one JSON record per line. A
// restarted coordinator replays the journal into its campaign registry and
// resumes each unfinished campaign exactly where the last complete record
// left it — already-merged unit ranges are pre-filled, only the gaps are
// re-sharded, and the workers' ordinary re-register/re-lease protocol covers
// the rest. Determinism (counts are a pure function of the request) is what
// makes this sound: a pre-filled range and a recomputed one hold identical
// integers, so recovery can never change result bytes, only wall-clock time.
//
// Durability model: records are written straight to the file descriptor (no
// user-space buffering), so they survive a killed process unconditionally;
// only a whole-machine crash can lose the tail of the file, and replay
// tolerates exactly that by discarding a trailing partial record. The
// journal is single-owner — one coordinator process per journal file.

// Journal record types.
const (
	// recCampaign registers a campaign: Key plus the full request needed to
	// resubmit it after a restart.
	recCampaign = "campaign"
	// recShard records one merged shard: the unit range [Lo, Hi) of Phase
	// and its per-unit agreement counts.
	recShard = "shard"
	// recDone retires a campaign: its result reached the content-addressed
	// cache (or it failed/was canceled in a client-visible way), so recovery
	// must not resurrect it.
	recDone = "done"
)

// journalRecord is one line of the journal.
type journalRecord struct {
	T      string                     `json:"t"`
	Key    string                     `json:"key"`
	Req    *winofault.CampaignRequest `json:"req,omitempty"`
	Phase  int                        `json:"phase,omitempty"`
	Lo     int                        `json:"lo,omitempty"`
	Hi     int                        `json:"hi,omitempty"`
	Counts []int                      `json:"counts,omitempty"`
	// Epoch (campaign records only) is the coordinator incarnation that
	// registered the campaign; recovery traces use it to link the prior
	// incarnation's trace across a restart.
	Epoch string `json:"epoch,omitempty"`
}

// shardRange is one journaled merged range of a phase's unit space.
type shardRange struct {
	lo, hi int
	counts []int
}

// campaignState is the registry entry for one journaled campaign: the
// request to resubmit on recovery, and the merged ranges per phase.
type campaignState struct {
	req    winofault.CampaignRequest
	phases map[int][]shardRange
	// epoch is the coordinator incarnation that registered the campaign (the
	// prior incarnation's, for recovered entries).
	epoch string
	// recovered marks entries replayed from a previous incarnation's journal:
	// their Run waits the recovery grace for workers to re-register instead
	// of falling back to local execution on an empty worker table.
	recovered bool
}

// journal is the append-only writer. Appends are called with the coordinator
// mutex held (they happen inside merge/registry updates), so the journal's
// own mutex is mostly uncontended — except during compaction, whose bulk
// snapshot write deliberately runs WITHOUT either mutex so lease/result/
// heartbeat traffic never stalls behind a multi-megabyte rewrite+fsync.
type journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records int // complete records currently in the file
	budget  int // compaction threshold (records)
	log     *slog.Logger
	// compacting marks an in-flight snapshot rewrite (finishCompaction in a
	// goroutine). Meanwhile appends keep landing on the old file AND are
	// buffered in pending, so the snapshot can absorb them before the rename
	// — no record is lost whichever file survives.
	compacting bool
	pending    []byte
	pendingN   int
}

// openJournal opens (or creates) the journal at path and replays it into a
// campaign registry. A trailing partial record — the signature of a crash
// mid-write — is discarded with a log line and truncated away so the next
// append starts on a clean boundary; refusing to start would turn one lost
// record into a lost coordinator.
func openJournal(path string, budget int, lg *slog.Logger) (*journal, map[string]*campaignState, error) {
	j := &journal{path: path, budget: budget, log: lg}
	registry := map[string]*campaignState{}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("dist: read journal %s: %w", path, err)
	}
	// Replay the longest prefix of complete, parseable, newline-terminated
	// records. A record missing its terminator or failing to parse marks a
	// torn write; crash-mid-write only ever corrupts the tail, so everything
	// from the first bad record on is discarded.
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // unterminated final record: torn
		}
		var rec journalRecord
		if err := json.Unmarshal(data[good:good+nl], &rec); err != nil || rec.T == "" || rec.Key == "" {
			break
		}
		good += nl + 1
		j.records++
		replayRecord(registry, rec, lg)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open journal %s: %w", path, err)
	}
	if good < len(data) {
		lg.Warn("dist: journal: discarding torn trailing record (crash mid-write); resuming from the last complete record",
			"journal", path, "bytes", len(data)-good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: truncate torn journal %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist: seek journal %s: %w", path, err)
	}
	j.f = f
	return j, registry, nil
}

// replayRecord applies one journal record to the registry being rebuilt.
func replayRecord(registry map[string]*campaignState, rec journalRecord, lg *slog.Logger) {
	switch rec.T {
	case recCampaign:
		if rec.Req == nil {
			lg.Warn("dist: journal: campaign record has no request; dropping", "campaign", short(rec.Key))
			return
		}
		if _, ok := registry[rec.Key]; !ok {
			registry[rec.Key] = &campaignState{req: *rec.Req, phases: map[int][]shardRange{}, epoch: rec.Epoch}
		}
	case recShard:
		cs, ok := registry[rec.Key]
		if !ok || rec.Hi <= rec.Lo || len(rec.Counts) != rec.Hi-rec.Lo {
			lg.Warn("dist: journal: dropping malformed shard record",
				"campaign", short(rec.Key), "phase", rec.Phase, "lo", rec.Lo, "hi", rec.Hi, "counts", len(rec.Counts))
			return
		}
		cs.phases[rec.Phase] = append(cs.phases[rec.Phase], shardRange{lo: rec.Lo, hi: rec.Hi, counts: rec.Counts})
	case recDone:
		delete(registry, rec.Key)
	default:
		lg.Warn("dist: journal: ignoring unknown record type", "type", rec.T)
	}
}

// append writes one record. Journal failures degrade durability, never
// availability: the error is logged and the coordinator keeps serving.
func (j *journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		j.log.Error("dist: journal: marshal record failed", "type", rec.T, "err", err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	line := append(data, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.log.Error("dist: journal: append record failed", "type", rec.T, "err", err)
		return
	}
	j.records++
	if j.compacting {
		// A snapshot rewrite is in flight: this record postdates its registry
		// snapshot, so buffer it for finishCompaction to tack onto the new
		// file before the rename. The write above still lands on the old file,
		// so a crash during compaction loses nothing either way.
		j.pending = append(j.pending, line...)
		j.pendingN++
	}
}

// beginCompaction claims the compaction slot if the file has accreted enough
// records to be worth rewriting. The caller holds the coordinator mutex, so
// the registry it is about to snapshot matches the file's record set exactly;
// the expensive rewrite itself belongs in a goroutine via finishCompaction.
func (j *journal) beginCompaction() bool {
	if j == nil || j.budget <= 0 {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.compacting || j.records <= j.budget {
		return false
	}
	j.compacting = true
	return true
}

// finishCompaction atomically rewrites the journal as the snapshot taken at
// beginCompaction time: one campaign record plus its merged ranges per
// unfinished campaign. Retired campaigns and superseded shard records vanish,
// bounding the file by live state instead of history. The bulk write and
// fsync run without any lock — lease/result/heartbeat traffic keeps flowing —
// and records appended meanwhile are replayed from the pending buffer under
// j.mu before the rename. Every failure path leaves the old file (which holds
// all records) as the journal.
func (j *journal) finishCompaction(recs []journalRecord) {
	done := false
	defer func() {
		j.mu.Lock()
		j.compacting = false
		j.pending = nil
		j.pendingN = 0
		j.mu.Unlock()
		if !done {
			os.Remove(j.path + ".tmp")
		}
	}()
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.log.Error("dist: journal: compaction open failed", "path", tmp, "err", err)
		return
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			j.log.Error("dist: journal: compaction marshal failed", "err", err)
			f.Close()
			return
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		j.log.Error("dist: journal: compaction write failed", "path", tmp, "err", err)
		f.Close()
		return
	}

	// Publication: from here on j.mu is held, so no new appends race the
	// pending drain, and the swap of j.f/j.records is atomic to appenders.
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil { // journal closed mid-compaction
		f.Close()
		return
	}
	if len(j.pending) > 0 {
		if _, err := f.Write(j.pending); err != nil {
			j.log.Error("dist: journal: compaction append pending failed", "err", err)
			f.Close()
			return
		}
		if err := f.Sync(); err != nil {
			j.log.Error("dist: journal: compaction sync pending failed", "err", err)
			f.Close()
			return
		}
	}
	if err := f.Close(); err != nil {
		j.log.Error("dist: journal: compaction close failed", "path", tmp, "err", err)
		return
	}
	if err := os.Rename(tmp, j.path); err != nil {
		j.log.Error("dist: journal: compaction rename failed", "err", err)
		return
	}
	done = true
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The snapshot is in place but unappendable; keep the old handle
		// (now pointing at the unlinked file) so appends still go somewhere
		// recoverable-by-log rather than panicking.
		j.log.Error("dist: journal: reopen after compaction failed", "err", err)
		return
	}
	j.f.Close()
	j.f = nf
	j.records = len(recs) + j.pendingN
	j.log.Info("dist: journal: compacted", "records", j.records)
}

// snapshotRecords renders the registry as a minimal record sequence, in
// deterministic key order.
func snapshotRecords(registry map[string]*campaignState) []journalRecord {
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var recs []journalRecord
	for _, k := range keys {
		cs := registry[k]
		req := cs.req
		recs = append(recs, journalRecord{T: recCampaign, Key: k, Req: &req, Epoch: cs.epoch})
		phases := make([]int, 0, len(cs.phases))
		for p := range cs.phases {
			phases = append(phases, p)
		}
		sort.Ints(phases)
		for _, p := range phases {
			for _, r := range cs.phases[p] {
				recs = append(recs, journalRecord{T: recShard, Key: k, Phase: p, Lo: r.lo, Hi: r.hi, Counts: r.counts})
			}
		}
	}
	return recs
}

// close releases the file handle (tests and wfserve shutdown).
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
