package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	winofault "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

// CoordinatorConfig sizes the shard dispatcher.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker may stay silent before its registration
	// lapses and its leased shards are re-queued (default 15s). Workers
	// heartbeat at a third of this.
	LeaseTTL time.Duration
	// Poll is the idle polling interval hinted to workers (default 500ms).
	Poll time.Duration
	// ShardUnits fixes the target units per shard. 0 (default) sizes shards
	// so each live worker gets about two — small enough for load balancing
	// and cheap re-leases, large enough to amortize per-shard system
	// construction on the worker.
	ShardUnits int
	// MaxAttempts bounds explicit shard failures (a worker reporting an
	// error) before the whole run fails (default 3). Lease expiries do not
	// count: a dead worker is the fleet's fault, not the shard's.
	MaxAttempts int
	// JournalPath, when non-empty, makes the control plane durable: the
	// campaign registry and every merged shard are appended to this file, and
	// a restarted coordinator resumes unfinished campaigns from it (see
	// journal.go). Empty means in-memory only — a crash fails in-flight
	// campaigns exactly as before.
	JournalPath string
	// JournalBudget is the record count past which the journal is compacted
	// to a snapshot of live state (default 4096).
	JournalBudget int
	// RecoveryGrace bounds how long a journal-recovered campaign's Run waits
	// for workers to re-register after a coordinator restart before giving
	// up with ErrNoWorkers (default: LeaseTTL). Recovery resubmission races
	// the fleet's re-register/heartbeat cycle; without the grace an empty
	// worker table at that instant would discard the journaled shard merges
	// in favor of a full local recompute. Fresh campaigns never wait.
	RecoveryGrace time.Duration
	// StragglerFactor flags a worker as a straggler once its per-unit shard
	// execution EWMA exceeds this multiple of the fleet's median (default 3;
	// requires at least two live measured workers). Flagged workers stop
	// receiving leases while a healthy worker is live, so one slow node
	// stretches at most the shards it already holds, not the campaign tail.
	StragglerFactor float64
	// StragglerProbation is how long a flagged worker goes lease-less before
	// it is granted one probe shard to re-measure itself (default 10×
	// LeaseTTL). Without probation a node that was slow once — a transient
	// noisy neighbor — would be benched forever.
	StragglerProbation time.Duration
	// Auth, when set, gates every worker-facing endpoint: a request whose
	// API key it rejects gets a 401 instead of joining the fleet. nil leaves
	// the fleet API open (single-lab mode).
	Auth func(apiKey string) bool
	// Logger receives coordinator events (default slog.Default()).
	Logger *slog.Logger
}

// Coordinator is the fleet side of distributed campaign execution: worker
// registry (register / heartbeat / lease expiry), shard queue, and the
// index-ordered merge that keeps distributed results byte-identical to
// local ones. It implements service.Distributor.
type Coordinator struct {
	cfg CoordinatorConfig
	// epoch namespaces shard IDs across restarts: a worker that computed a
	// shard while the coordinator was down must never have its stale result
	// merged into a same-numbered shard of the new incarnation.
	epoch string
	// jrnl is nil without a JournalPath; all appends happen under mu.
	jrnl *journal

	mu       sync.Mutex
	draining bool
	workers  map[string]*workerState
	pending  []*shard          // dispatchable shards, FIFO
	leased   map[string]*shard // task ID -> leased shard
	// registry tracks journaled campaigns between Run and CampaignDone: the
	// request (for recovery resubmission) and the merged unit ranges per
	// phase (for resume pre-fill and compaction snapshots). Maintained even
	// without a journal so the code has one shape.
	registry map[string]*campaignState
	nextID   uint64
	stop     chan struct{}
	stopOnce sync.Once
}

// workerState is one registered fleet node.
type workerState struct {
	id, name string
	lastSeen time.Time
	shards   int64 // completed shard results (metrics)
	// snap is the node's last heartbeat metric snapshot (metric federation);
	// nil until an instrumented worker heartbeats.
	snap   *MetricsSnapshot
	snapAt time.Time
	// unitEWMA tracks exec seconds per unit over this worker's merged shards
	// (exponentially weighted, stragglerAlpha); samples counts contributions.
	unitEWMA float64
	samples  int
	// straggler marks a worker slower than StragglerFactor× the fleet median;
	// flaggedAt feeds the probation clock.
	straggler bool
	flaggedAt time.Time
}

// stragglerAlpha weights the newest per-unit execution sample in the EWMA.
// 0.3 adapts within a few shards without letting one noisy shard flip flags.
const stragglerAlpha = 0.3

// stragglerMinGap is an absolute per-unit floor (seconds) a worker's EWMA
// must exceed the median by before flagging: when the whole fleet executes
// units in microseconds, ratios alone are dominated by scheduling noise.
const stragglerMinGap = 100e-6

// shard is one dispatchable unit range of a running campaign phase.
type shard struct {
	task     ShardTask
	run      *campaignRun
	attempts int       // explicit failures reported by workers
	worker   string    // current lease holder ("" while pending)
	deadline time.Time // lease expiry when leased
	leaseAt  time.Time // when the current (or last) lease was granted
}

// campaignRun collects one phase's shard results.
type campaignRun struct {
	counts    []int
	remaining int // shards not yet merged
	doneUnits int
	total     int
	finished  bool
	err       error
	done      chan struct{}
	progress  func(done, total int)
	// o and span carry the campaign's observability handles into result(),
	// which runs on handler goroutines: merged shards become child spans of
	// the phase span and worker exec times feed the ShardExec histogram.
	o    obs.Obs
	span *obs.Span
}

// NewCoordinator builds a coordinator and starts its lease janitor; stop it
// with Close. With a JournalPath it replays the journal first, so Recovered
// reports the campaigns a previous incarnation left unfinished.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.JournalBudget < 1 {
		cfg.JournalBudget = 4096
	}
	if cfg.RecoveryGrace <= 0 {
		cfg.RecoveryGrace = cfg.LeaseTTL
	}
	if cfg.StragglerFactor <= 1 {
		cfg.StragglerFactor = 3
	}
	if cfg.StragglerProbation <= 0 {
		cfg.StragglerProbation = 10 * cfg.LeaseTTL
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Coordinator{
		cfg:      cfg,
		epoch:    strconv.FormatInt(time.Now().UnixNano(), 36),
		workers:  map[string]*workerState{},
		leased:   map[string]*shard{},
		registry: map[string]*campaignState{},
		stop:     make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		jrnl, registry, err := openJournal(cfg.JournalPath, cfg.JournalBudget, cfg.Logger)
		if err != nil {
			return nil, err
		}
		c.jrnl = jrnl
		c.registry = registry
		for _, cs := range registry {
			cs.recovered = true
		}
		if len(registry) > 0 {
			cfg.Logger.Info("dist: journal replayed: unfinished campaigns recovered",
				"journal", cfg.JournalPath, "campaigns", len(registry))
		}
	}
	go c.janitor()
	return c, nil
}

// Close stops the lease janitor and releases the journal handle. In-flight
// Run calls are not interrupted (their contexts are); Close exists so tests
// and shutdown leak nothing.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.jrnl.close()
	})
}

// Recovered is one journaled campaign a previous coordinator incarnation
// left unfinished, to be resubmitted by the server at startup.
type Recovered struct {
	Key string
	Req winofault.CampaignRequest
}

// Recovered lists the campaigns replayed from the journal, in key order.
// The server resubmits each one; the coordinator then resumes its phases
// from the journaled shard merges instead of starting over.
func (c *Coordinator) Recovered() []Recovered {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Recovered, 0, len(c.registry))
	for key, cs := range c.registry {
		out = append(out, Recovered{Key: key, Req: cs.req})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CampaignDone retires a campaign from the registry and journal: its result
// reached the content-addressed cache, or it ended in a client-visible
// failure or cancellation. The service calls this for successes only after
// the cache write, so a crash between finishing and caching still resumes —
// recovery then re-runs nothing the cache already holds.
func (c *Coordinator) CampaignDone(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.registry[key]; !ok {
		return
	}
	delete(c.registry, key)
	c.jrnl.append(journalRecord{T: recDone, Key: key})
	c.compactIfNeededLocked()
}

// compactIfNeededLocked kicks off a journal snapshot once the file grows past
// the record budget. Called with c.mu held, so the snapshot captures a
// registry consistent with the journal's record set; the rewrite+fsync itself
// runs in a goroutine so lease/result/heartbeat traffic waiting on c.mu never
// stalls behind journal I/O. The snapshot shares the registry's counts slices,
// which is safe because merged ranges are never mutated after insertion.
func (c *Coordinator) compactIfNeededLocked() {
	if c.jrnl.beginCompaction() {
		recs := snapshotRecords(c.registry)
		go c.jrnl.finishCompaction(recs)
	}
}

// BeginDrain stops accepting new worker registrations. Existing workers
// keep leasing and reporting so in-flight campaigns finish inside the drain
// budget; new fleet members should register with a coordinator that will
// outlive them.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Workers reports the fleet for /metrics (service.Distributor).
func (c *Coordinator) Workers() []service.WorkerStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]service.WorkerStat, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, service.WorkerStat{
			ID:     w.id,
			Name:   w.name,
			Live:   c.liveLocked(w, now),
			Shards: w.shards,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *Coordinator) liveLocked(w *workerState, now time.Time) bool {
	return now.Sub(w.lastSeen) <= c.cfg.LeaseTTL
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if c.liveLocked(w, now) {
			n++
		}
	}
	return n
}

// healthyLiveLocked reports whether a live, un-flagged worker other than w
// exists — the condition under which benching w costs the fleet nothing.
func (c *Coordinator) healthyLiveLocked(w *workerState, now time.Time) bool {
	for _, other := range c.workers {
		if other != w && !other.straggler && c.liveLocked(other, now) {
			return true
		}
	}
	return false
}

// fleetMedianLocked is the lower median of live, measured workers' per-unit
// exec EWMAs (0 with nothing measured). Lower median on purpose: with two
// workers it is the faster one, so a two-node fleet can still flag its slow
// half instead of comparing the straggler against itself.
func (c *Coordinator) fleetMedianLocked(now time.Time) (float64, int) {
	ewmas := make([]float64, 0, len(c.workers))
	for _, w := range c.workers {
		if w.samples > 0 && c.liveLocked(w, now) {
			ewmas = append(ewmas, w.unitEWMA)
		}
	}
	if len(ewmas) == 0 {
		return 0, 0
	}
	sort.Float64s(ewmas)
	return ewmas[(len(ewmas)-1)/2], len(ewmas)
}

// recomputeStragglersLocked re-evaluates every measured worker against the
// fleet median. Fewer than two live measured workers clears all flags: a
// lone worker has no fleet to be slower than.
func (c *Coordinator) recomputeStragglersLocked(now time.Time) {
	median, measured := c.fleetMedianLocked(now)
	for _, w := range c.workers {
		if w.samples == 0 {
			continue
		}
		flag := measured >= 2 &&
			w.unitEWMA > c.cfg.StragglerFactor*median &&
			w.unitEWMA > median+stragglerMinGap
		if flag && !w.straggler {
			w.flaggedAt = now
			c.cfg.Logger.Warn("dist: worker flagged as straggler; deprioritizing leases",
				"worker", w.id, "name", w.name,
				"unitSeconds", w.unitEWMA, "fleetMedian", median, "factor", c.cfg.StragglerFactor)
		} else if !flag && w.straggler {
			c.cfg.Logger.Info("dist: worker recovered from straggler flag",
				"worker", w.id, "name", w.name, "unitSeconds", w.unitEWMA, "fleetMedian", median)
		}
		w.straggler = flag
	}
}

// Fleet reports the federated per-worker view for GET /fleet and the
// wffleet_* series on /metrics (service.FleetReporter): coordinator-side
// liveness, shard counts and straggler flags joined with each node's last
// heartbeat snapshot.
func (c *Coordinator) Fleet() service.FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	median, _ := c.fleetMedianLocked(now)
	fs := service.FleetStatus{
		Epoch:             c.epoch,
		StragglerFactor:   c.cfg.StragglerFactor,
		MedianUnitSeconds: median,
		Workers:           make([]service.FleetWorker, 0, len(c.workers)),
	}
	for _, w := range c.workers {
		fw := service.FleetWorker{
			ID:            w.id,
			Name:          w.name,
			Epoch:         c.epoch,
			Live:          c.liveLocked(w, now),
			Straggler:     w.straggler,
			Shards:        w.shards,
			LastHeartbeat: now.Sub(w.lastSeen).Seconds(),
			UnitSeconds:   w.unitEWMA,
		}
		if w.snap != nil {
			fw.Inflight = w.snap.Inflight
			fw.Goroutines = w.snap.Goroutines
			fw.HeapBytes = w.snap.HeapBytes
			fw.Exec = w.snap.Exec
			fw.P50 = fw.Exec.Quantile(0.50)
			fw.P99 = fw.Exec.Quantile(0.99)
		}
		fs.Workers = append(fs.Workers, fw)
	}
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].ID < fs.Workers[j].ID })
	return fs
}

// Run executes one campaign across the fleet (service.Distributor): shard
// the sweep batch, merge counts, reduce; then the same for the
// layer-sensitivity batch when requested. The returned bytes are
// byte-identical to the local runner's for the same request — the marshaled
// result of the same index-ordered integer reduction.
func (c *Coordinator) Run(ctx context.Context, key string, req winofault.CampaignRequest, progress func(batch, done, total int)) ([]byte, error) {
	o := obs.From(ctx)
	c.mu.Lock()
	// Durability begins here: register the campaign before any execution
	// decision, so even a run that immediately falls back to local (no live
	// workers) survives a crash and is resumed at the next startup.
	cs, ok := c.registry[key]
	if !ok {
		reqCopy := req
		// The record carries this incarnation's epoch so a recovered
		// campaign's trace can link the prior incarnation's trace (shard
		// span epochs) across the restart.
		cs = &campaignState{req: reqCopy, phases: map[int][]shardRange{}, epoch: c.epoch}
		c.registry[key] = cs
		c.jrnl.append(journalRecord{T: recCampaign, Key: key, Req: &reqCopy, Epoch: c.epoch})
		c.compactIfNeededLocked()
	}
	recovered := cs.recovered
	live := c.liveWorkersLocked(time.Now())
	c.mu.Unlock()
	if live == 0 {
		// A journal-recovered campaign is resubmitted right after a restart,
		// when the previous fleet has heard nothing yet: give workers their
		// re-register window instead of instantly wasting the journaled
		// progress on a full local recompute. Fresh campaigns keep the
		// immediate local fallback.
		if !recovered || !c.awaitWorkers(ctx, key) {
			return nil, service.ErrNoWorkers
		}
	}

	// The coordinator builds the system too — for unit totals, the golden
	// predictions the reduction divides by, and the final reduce. It never
	// executes campaign units itself.
	cfg, err := req.SystemConfig()
	if err != nil {
		return nil, err
	}
	sys, err := winofault.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.SetProtection(req.Protection); err != nil {
		return nil, err
	}

	ph := o.Trace.Start("phase", obs.A("phase", "sweep"), obs.A("path", "dist"))
	counts, err := c.runPhase(ctx, o, ph, key, req, PhaseSweep, sys.SweepUnits(req.BERs), func(done, total int) { progress(0, done, total) })
	if err != nil {
		ph.SetAttr("err", err.Error())
		ph.End()
		return nil, err
	}
	mStart := time.Now()
	pts, err := sys.SweepFromCounts(req.BERs, counts)
	ph.Record("merge", mStart, time.Since(mStart))
	ph.End()
	if err != nil {
		return nil, err
	}
	res := winofault.CampaignResult{Points: pts}
	if req.Layers {
		mid := req.BERs[len(req.BERs)/2]
		ph := o.Trace.Start("phase", obs.A("phase", "layers"), obs.A("path", "dist"))
		counts, err := c.runPhase(ctx, o, ph, key, req, PhaseLayers, sys.LayerUnits(mid), func(done, total int) { progress(1, done, total) })
		if err != nil {
			ph.SetAttr("err", err.Error())
			ph.End()
			return nil, err
		}
		mStart := time.Now()
		base, layers, err := sys.LayersFromCounts(mid, counts)
		ph.Record("merge", mStart, time.Since(mStart))
		ph.End()
		if err != nil {
			return nil, err
		}
		res.Baseline = base
		res.Layers = layers
	}
	return json.Marshal(res)
}

// awaitWorkers blocks until a live worker registers, the recovery grace
// lapses, or ctx/Close interrupts, reporting whether the fleet came back.
// Only journal-recovered campaigns wait (see CoordinatorConfig.RecoveryGrace).
func (c *Coordinator) awaitWorkers(ctx context.Context, key string) bool {
	c.cfg.Logger.Info("dist: campaign recovered from journal; waiting for workers to re-register",
		"campaign", short(key), "grace", c.cfg.RecoveryGrace)
	deadline := time.NewTimer(c.cfg.RecoveryGrace)
	defer deadline.Stop()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-c.stop:
			return false
		case <-deadline.C:
			return false
		case <-tick.C:
			c.mu.Lock()
			live := c.liveWorkersLocked(time.Now())
			c.mu.Unlock()
			if live > 0 {
				return true
			}
		}
	}
}

// runPhase shards one phase's unit index space [0, total) into contiguous
// ranges, dispatches them, and blocks until every shard's counts are merged
// (in index order, by construction of the counts slice) or the phase fails.
func (c *Coordinator) runPhase(ctx context.Context, o obs.Obs, ph *obs.Span, key string, req winofault.CampaignRequest, phase, total int, progress func(done, total int)) ([]int, error) {
	ph.SetAttr("units", total)
	run := &campaignRun{
		counts:   make([]int, total),
		total:    total,
		done:     make(chan struct{}),
		progress: progress,
		o:        o,
		span:     ph,
	}
	if total == 0 {
		return run.counts, nil // e.g. every BER <= 0: nothing to sample
	}

	recStart := time.Now()
	c.mu.Lock()
	// Resume: pre-fill unit ranges a previous incarnation already merged and
	// journaled. Counts are deterministic, so a pre-filled range holds
	// exactly the integers a re-execution would produce — recovery changes
	// wall-clock time, never bytes. Only the uncovered gaps are sharded.
	covered := make([]bool, total)
	prefilled := 0
	prevEpoch := ""
	if cs := c.registry[key]; cs != nil {
		if cs.recovered && cs.epoch != "" && cs.epoch != c.epoch {
			prevEpoch = cs.epoch
		}
		kept := cs.phases[phase][:0]
		for _, r := range cs.phases[phase] {
			if r.lo < 0 || r.hi > total || len(r.counts) != r.hi-r.lo {
				c.cfg.Logger.Warn("dist: dropping journaled range outside unit space",
					"campaign", short(key), "phase", phase, "lo", r.lo, "hi", r.hi, "units", total)
				continue
			}
			kept = append(kept, r)
			for i := r.lo; i < r.hi; i++ {
				if !covered[i] {
					covered[i] = true
					run.counts[i] = r.counts[i-r.lo]
					prefilled++
				}
			}
		}
		cs.phases[phase] = kept
	}
	run.doneUnits = prefilled
	if prefilled == total {
		// The whole phase was merged before the crash: no fleet needed, the
		// live-worker check below would only get in the way.
		c.mu.Unlock()
		ph.Record("journal-recovery", recStart, time.Since(recStart),
			recoveryAttrs(prefilled, c.epoch, prevEpoch)...)
		c.cfg.Logger.Info("dist: all units recovered from journal",
			"campaign", short(key), "phase", phase, "units", total)
		return run.counts, nil
	}
	now := time.Now()
	live := c.liveWorkersLocked(now)
	if live == 0 {
		c.mu.Unlock()
		return nil, service.ErrNoWorkers
	}
	size := c.cfg.ShardUnits
	if size <= 0 {
		// About two shards per live worker: re-leases stay cheap and a slow
		// node can't serialize the tail.
		size = (total - prefilled + 2*live - 1) / (2 * live)
	}
	if size < 1 {
		size = 1
	}
	shards := 0
	for lo := 0; lo < total; {
		if covered[lo] {
			lo++
			continue
		}
		hi := lo
		for hi < total && !covered[hi] && hi-lo < size {
			hi++
		}
		c.nextID++
		sh := &shard{
			task: ShardTask{
				ID:    fmt.Sprintf("%.12s.%d.%s.%d", key, phase, c.epoch, c.nextID),
				Key:   key,
				Req:   req,
				Phase: phase,
				Lo:    lo,
				Hi:    hi,
			},
			run: run,
		}
		run.remaining++
		c.pending = append(c.pending, sh)
		shards++
		lo = hi
	}
	c.mu.Unlock()
	if prefilled > 0 {
		ph.Record("journal-recovery", recStart, time.Since(recStart),
			recoveryAttrs(prefilled, c.epoch, prevEpoch)...)
		c.cfg.Logger.Info("dist: resuming: units recovered from journal",
			"campaign", short(key), "phase", phase, "recovered", prefilled, "total", total,
			"remaining", total-prefilled, "shards", shards)
	} else {
		c.cfg.Logger.Info("dist: phase sharded",
			"campaign", short(key), "phase", phase, "units", total, "shards", shards, "workers", live)
	}
	if progress != nil {
		// Publish the starting point (non-zero after a journal resume) so
		// subscribers see recovered progress before the first merge lands.
		progress(prefilled, total)
	}

	select {
	case <-run.done:
		return run.counts, run.err
	case <-ctx.Done():
		c.mu.Lock()
		c.finishRunLocked(run, ctx.Err())
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// recoveryAttrs builds the journal-recovery span's attributes. prevEpoch,
// when known, links this recovered timeline to the prior incarnation's trace:
// that trace's shard spans carry the same epoch value, so an operator can
// join the two halves of the campaign across the restart.
func recoveryAttrs(units int, epoch, prevEpoch string) []obs.Attr {
	attrs := []obs.Attr{obs.A("units", units), obs.A("epoch", epoch)}
	if prevEpoch != "" {
		attrs = append(attrs, obs.A("prevEpoch", prevEpoch))
	}
	return attrs
}

// finishRunLocked resolves a run exactly once and strips its shards from the
// queues; late results for them are ignored (or, post-success, harmlessly
// redundant — counts are deterministic).
func (c *Coordinator) finishRunLocked(run *campaignRun, err error) {
	if run.finished {
		return
	}
	run.finished = true
	run.err = err
	kept := c.pending[:0]
	for _, sh := range c.pending {
		if sh.run != run {
			kept = append(kept, sh)
		}
	}
	c.pending = kept
	for id, sh := range c.leased {
		if sh.run == run {
			delete(c.leased, id)
		}
	}
	close(run.done)
}

// register admits a new worker. It fails while draining: a terminating
// coordinator must not accrete fleet.
func (c *Coordinator) register(name string) (registerResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return registerResponse{}, errDraining
	}
	c.nextID++
	w := &workerState{
		id:       fmt.Sprintf("w-%d", c.nextID),
		name:     name,
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	c.cfg.Logger.Info("dist: worker registered", "worker", w.id, "name", w.name)
	return registerResponse{
		ID:          w.id,
		LeaseMillis: c.cfg.LeaseTTL.Milliseconds(),
		PollMillis:  c.cfg.Poll.Milliseconds(),
	}, nil
}

// touchLocked refreshes a worker's liveness and its lease deadlines.
func (c *Coordinator) touchLocked(w *workerState, now time.Time) {
	w.lastSeen = now
	for _, sh := range c.leased {
		if sh.worker == w.id {
			sh.deadline = now.Add(c.cfg.LeaseTTL)
		}
	}
}

// heartbeat keeps a worker (and its leases) alive and absorbs its federated
// metric snapshot when one rides along (older workers post empty bodies).
// Unknown IDs report false so the worker re-registers — the coordinator may
// have restarted.
func (c *Coordinator) heartbeat(workerID string, snap *MetricsSnapshot) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return false
	}
	now := time.Now()
	c.touchLocked(w, now)
	if snap != nil {
		// The snapshot crossed the network: validate the histogram layout
		// before it can reach the exposition writer (a short Counts slice
		// would panic it, a cooked one would fail metricscheck for everyone).
		if len(snap.Exec.Bounds) > 0 && !snap.Exec.Valid() {
			snap.Exec = obs.HistogramSnapshot{}
		}
		w.snap = snap
		w.snapAt = now
	}
	return true
}

// lease hands the oldest pending shard to a worker, or nil when the queue is
// empty. Leasing (like any contact) refreshes the worker's liveness. A
// flagged straggler is deprioritized: while a healthy worker is live it gets
// no work (the healthy fleet drains the queue instead), until its probation
// lapses and it earns one probe shard to re-measure itself.
func (c *Coordinator) lease(workerID string) (*ShardTask, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, errUnknownWorker
	}
	now := time.Now()
	c.touchLocked(w, now)
	if len(c.pending) == 0 {
		return nil, nil
	}
	if w.straggler && c.healthyLiveLocked(w, now) {
		if now.Sub(w.flaggedAt) < c.cfg.StragglerProbation {
			return nil, nil // idle answer; the healthy fleet takes the shard
		}
		// Probation probe: grant one lease and restart the clock. The merge
		// re-measures the worker; a recovered node un-flags itself.
		w.flaggedAt = now
	}
	sh := c.pending[0]
	c.pending = c.pending[1:]
	sh.worker = workerID
	sh.deadline = now.Add(c.cfg.LeaseTTL)
	sh.leaseAt = now
	c.leased[sh.task.ID] = sh
	task := sh.task
	return &task, nil
}

// result merges a completed shard (or records its failure). Stale results —
// for runs already finished or tasks this coordinator no longer tracks —
// are dropped: determinism makes duplicates harmless, so no error surfaces.
func (c *Coordinator) result(workerID string, res ShardResult) {
	c.mu.Lock()
	now := time.Now()
	w := c.workers[workerID]
	if w != nil {
		c.touchLocked(w, now)
	}
	sh, ok := c.leased[res.Task]
	if !ok {
		// A re-queued shard (expired lease) being answered by its original,
		// slow-but-alive worker: still mergeable, pull it out of pending.
		for i, p := range c.pending {
			if p.task.ID == res.Task {
				sh, ok = p, true
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	if !ok || sh.run.finished {
		c.mu.Unlock()
		return
	}
	delete(c.leased, res.Task)
	run := sh.run

	if res.Error != "" || len(res.Counts) != sh.task.Hi-sh.task.Lo {
		msg := res.Error
		if msg == "" {
			msg = fmt.Sprintf("shard %s returned %d counts for %d units", res.Task, len(res.Counts), sh.task.Hi-sh.task.Lo)
		}
		sh.attempts++
		c.cfg.Logger.Warn("dist: shard failed",
			"shard", res.Task, "worker", workerID, "attempt", sh.attempts, "max", c.cfg.MaxAttempts, "err", msg)
		if sh.attempts >= c.cfg.MaxAttempts {
			c.finishRunLocked(run, fmt.Errorf("dist: shard %s failed after %d attempts: %s", res.Task, sh.attempts, msg))
		} else {
			sh.worker = ""
			c.pending = append(c.pending, sh)
		}
		c.mu.Unlock()
		return
	}

	copy(run.counts[sh.task.Lo:sh.task.Hi], res.Counts)
	// Journal the merged range so a restarted coordinator pre-fills it
	// instead of re-running it. The counts are copied: res.Counts aliases a
	// decode buffer owned by the handler.
	if cs := c.registry[sh.task.Key]; cs != nil {
		merged := make([]int, len(res.Counts))
		copy(merged, res.Counts)
		cs.phases[sh.task.Phase] = append(cs.phases[sh.task.Phase], shardRange{lo: sh.task.Lo, hi: sh.task.Hi, counts: merged})
		c.jrnl.append(journalRecord{T: recShard, Key: sh.task.Key, Phase: sh.task.Phase, Lo: sh.task.Lo, Hi: sh.task.Hi, Counts: merged})
		c.compactIfNeededLocked()
	}
	units := sh.task.Hi - sh.task.Lo
	exec := time.Duration(res.ExecNanos)
	straggler := false
	if w != nil {
		w.shards++
		// Feed the straggler detector: exec seconds per unit, exponentially
		// weighted so the flag follows the worker's current speed, not its
		// history. Recomputing fleet flags here (under mu, per merge) is
		// O(workers) on a campaign-granular path — noise next to the shard.
		if exec > 0 && units > 0 {
			per := exec.Seconds() / float64(units)
			if w.samples == 0 {
				w.unitEWMA = per
			} else {
				w.unitEWMA = stragglerAlpha*per + (1-stragglerAlpha)*w.unitEWMA
			}
			w.samples++
			c.recomputeStragglersLocked(now)
		}
		straggler = w.straggler
	}
	run.remaining--
	run.doneUnits += units
	doneUnits, total := run.doneUnits, run.total
	progress := run.progress
	if run.remaining == 0 {
		c.finishRunLocked(run, nil)
	}
	leaseAt, attempt := sh.leaseAt, sh.attempts+1
	c.mu.Unlock()
	// Stitch the shard into the campaign timeline: the span covers
	// lease-to-merge on the coordinator's clock, with the worker's own
	// execution time attached as a duration (immune to clock skew). Shard IDs
	// are epoch-stamped, so traces distinguish pre- and post-restart work.
	attrs := []obs.Attr{
		obs.A("shard", res.Task), obs.A("worker", workerID), obs.A("epoch", c.epoch),
		obs.A("lo", sh.task.Lo), obs.A("hi", sh.task.Hi),
		obs.A("exec", exec), obs.A("attempt", attempt),
	}
	if straggler {
		attrs = append(attrs, obs.A("straggler", true))
	}
	run.span.Record("shard", leaseAt, now.Sub(leaseAt), attrs...)
	if run.o.Metrics != nil && exec > 0 {
		run.o.Metrics.ShardExec.Observe(exec.Seconds())
	}
	if progress != nil {
		progress(doneUnits, total)
	}
}

// janitor periodically re-queues expired leases, fails stranded runs when
// the whole fleet is gone (the service then falls back to local execution),
// and prunes long-dead workers.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.expire(now)
		}
	}
}

// expire is one janitor pass.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	for id, sh := range c.leased {
		if now.After(sh.deadline) {
			c.cfg.Logger.Info("dist: lease expired; re-queueing shard", "shard", id, "worker", sh.worker)
			delete(c.leased, id)
			sh.worker = ""
			c.pending = append(c.pending, sh)
		}
	}
	if c.liveWorkersLocked(now) == 0 {
		// No fleet left: strand nothing. Fail the runs behind the pending
		// shards so their campaigns fall back to local execution.
		runs := map[*campaignRun]bool{}
		for _, sh := range c.pending {
			runs[sh.run] = true
		}
		for run := range runs {
			c.finishRunLocked(run, service.ErrNoWorkers)
		}
	}
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > 20*c.cfg.LeaseTTL {
			delete(c.workers, id) // long dead: drop from the registry/metrics
		}
	}
	c.mu.Unlock()
}
