package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	winofault "repro"
	"repro/internal/service"
)

// jsonBody marshals v for an http.Post body.
func jsonBody(v any) (io.Reader, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// journalPath gives each test its own journal file.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

// TestJournalRoundTrip: records appended by one journal instance replay into
// an identical registry in the next.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, reg, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 0 {
		t.Fatalf("fresh journal replayed %d campaigns", len(reg))
	}
	req := tinyReq()
	j.append(journalRecord{T: recCampaign, Key: "aaa", Req: &req})
	j.append(journalRecord{T: recShard, Key: "aaa", Phase: PhaseSweep, Lo: 0, Hi: 2, Counts: []int{3, 4}})
	j.append(journalRecord{T: recCampaign, Key: "bbb", Req: &req})
	j.append(journalRecord{T: recDone, Key: "bbb"})
	j.close()

	_, reg, err = openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 1 {
		t.Fatalf("replayed %d campaigns, want 1 (bbb was retired)", len(reg))
	}
	cs := reg["aaa"]
	if cs == nil {
		t.Fatal("campaign aaa not replayed")
	}
	ranges := cs.phases[PhaseSweep]
	if len(ranges) != 1 || ranges[0].lo != 0 || ranges[0].hi != 2 {
		t.Fatalf("replayed ranges %+v, want one [0,2)", ranges)
	}
	if ranges[0].counts[0] != 3 || ranges[0].counts[1] != 4 {
		t.Fatalf("replayed counts %v, want [3 4]", ranges[0].counts)
	}
}

// TestJournalTornTailRecovery is the bugfix pin: a journal whose final
// record was torn by a crash mid-write must replay every complete record,
// truncate the torn bytes, and keep accepting appends — never refuse to
// start.
func TestJournalTornTailRecovery(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	req := tinyReq()
	j.append(journalRecord{T: recCampaign, Key: "aaa", Req: &req})
	j.append(journalRecord{T: recShard, Key: "aaa", Phase: PhaseSweep, Lo: 0, Hi: 1, Counts: []int{7}})
	j.close()

	// Tear the tail the way a crash does: a record that never got its
	// terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"t":"shard","key":"aaa","phase":0,"lo":1,"hi":2,"coun`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logged bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&logged, nil))
	j2, reg, err := openJournal(path, 100, lg)
	if err != nil {
		t.Fatalf("torn journal refused to open: %v", err)
	}
	cs := reg["aaa"]
	if cs == nil || len(cs.phases[PhaseSweep]) != 1 {
		t.Fatalf("complete prefix not replayed: %+v", reg)
	}
	if !strings.Contains(logged.String(), "torn") {
		t.Errorf("discard was not logged: %v", logged.String())
	}
	// The torn bytes are gone and the next append lands on a clean boundary.
	j2.append(journalRecord{T: recDone, Key: "aaa"})
	j2.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), torn) {
		t.Error("torn bytes survived the truncate")
	}
	_, reg, err = openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 0 {
		t.Fatalf("after done record, %d campaigns replayed, want 0", len(reg))
	}
}

// TestJournalCompaction: past the record budget the journal collapses to a
// snapshot of live state — retired campaigns vanish, live merges survive, and
// records appended while the snapshot rewrite is in flight are absorbed into
// the new file rather than lost with the old one.
func TestJournalCompaction(t *testing.T) {
	path := journalPath(t)
	j, _, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	req := tinyReq()
	registry := map[string]*campaignState{}
	// Many retired campaigns bloat the file; only one stays live.
	for i := 0; i < 50; i++ {
		key := "retired-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		j.append(journalRecord{T: recCampaign, Key: key, Req: &req})
		j.append(journalRecord{T: recDone, Key: key})
	}
	j.append(journalRecord{T: recCampaign, Key: "live", Req: &req})
	j.append(journalRecord{T: recShard, Key: "live", Phase: PhaseLayers, Lo: 4, Hi: 6, Counts: []int{1, 2}})
	registry["live"] = &campaignState{req: req, phases: map[int][]shardRange{
		PhaseLayers: {{lo: 4, hi: 6, counts: []int{1, 2}}},
	}}
	if !j.beginCompaction() {
		t.Fatalf("journal with %d records not over budget 100", j.records)
	}
	if j.beginCompaction() {
		t.Fatal("second beginCompaction claimed the slot while one is in flight")
	}
	recs := snapshotRecords(registry)
	// A record appended between snapshot and rename postdates the snapshot:
	// it must ride the pending buffer into the new file.
	j.append(journalRecord{T: recShard, Key: "live", Phase: PhaseLayers, Lo: 0, Hi: 1, Counts: []int{9}})
	j.finishCompaction(recs)
	if j.records != 3 {
		t.Fatalf("compacted to %d records, want 3 (campaign + shard + mid-compaction shard)", j.records)
	}
	// Appends after compaction land on the reopened handle.
	j.append(journalRecord{T: recShard, Key: "live", Phase: PhaseLayers, Lo: 2, Hi: 3, Counts: []int{7}})
	j.close()

	_, reg, err := openJournal(path, 100, quiet())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 1 || reg["live"] == nil {
		t.Fatalf("compacted journal replayed %+v, want just campaign live", reg)
	}
	if got := len(reg["live"].phases[PhaseLayers]); got != 3 {
		t.Fatalf("live campaign has %d layer ranges, want 3", got)
	}
}

// TestCoordinatorResumesFromJournal is the crash-recovery acceptance test:
// a coordinator that merged part of a campaign and died is replaced by a new
// incarnation on the same journal, which resumes the campaign — re-running
// only the unmerged units — and produces bytes identical to a local run.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	req := tinyReq()
	want := localBytes(t, req)
	key, err := service.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	path := journalPath(t)
	noProgress := func(batch, done, total int) {}

	// Incarnation A: one raw worker completes exactly one sweep shard
	// (ShardUnits=1 → one unit), then A "crashes" (context canceled, never
	// a done record).
	cfgA := CoordinatorConfig{
		LeaseTTL: 5 * time.Second, Poll: 10 * time.Millisecond,
		ShardUnits: 1, JournalPath: path, Logger: quiet(),
	}
	c1, err := NewCoordinator(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	rw := newRawWorker(t, ts1.URL, "doomed")
	ctx1, crash := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := c1.Run(ctx1, key, req, noProgress)
		runDone <- err
	}()
	task := rw.leaseOne(5 * time.Second)
	if task.Phase != PhaseSweep || task.Hi-task.Lo != 1 {
		t.Fatalf("first lease %+v, want a single sweep unit", task)
	}
	exec := &fleetWorker{cfg: WorkerConfig{Workers: 1, Logger: quiet()}}
	res := exec.execute(context.Background(), *task)
	if res.Error != "" {
		t.Fatalf("shard execution failed: %s", res.Error)
	}
	rw.report(t, res)
	crash()
	if err := <-runDone; err == nil {
		t.Fatal("run survived the simulated crash")
	}
	ts1.Close()
	c1.Close()

	// Incarnation B on the same journal: the campaign is recovered, and a
	// real two-worker fleet finishes it.
	cfgB := cfgA
	c2, err := NewCoordinator(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	recovered := c2.Recovered()
	if len(recovered) != 1 || recovered[0].Key != key {
		t.Fatalf("recovered %+v, want campaign %.12s", recovered, key)
	}
	if k2, err := service.Key(recovered[0].Req); err != nil || k2 != key {
		t.Fatalf("recovered request canonicalizes to %.12s (%v), want %.12s", k2, err, key)
	}
	ts2 := httptest.NewServer(c2.Handler())
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, name := range []string{"r1", "r2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(ctx2, WorkerConfig{Server: ts2.URL, Name: name, Workers: 1, Logger: quiet()})
		}()
	}
	t.Cleanup(func() {
		cancel2()
		wg.Wait()
		ts2.Close()
		c2.Close()
	})
	waitForWorkers(t, c2, 2)

	got, err := c2.Run(context.Background(), recovered[0].Key, recovered[0].Req, noProgress)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed bytes differ from local:\n%s\n%s", got, want)
	}

	// The resumed run re-executed everything except the one journaled unit.
	sys := systemFor(t, req)
	totalUnits := sys.SweepUnits(req.BERs) + sys.LayerUnits(req.BERs[len(req.BERs)/2])
	var shards int64
	for _, w := range c2.Workers() {
		shards += w.Shards
	}
	if want := int64(totalUnits - 1); shards != want {
		t.Errorf("resumed fleet executed %d shards, want %d (one unit pre-filled from the journal)", shards, want)
	}

	// Retiring the campaign empties the journal for the next incarnation.
	c2.CampaignDone(key)
	c3, err := NewCoordinator(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if left := c3.Recovered(); len(left) != 0 {
		t.Errorf("after CampaignDone, %d campaigns still recovered", len(left))
	}
}

// TestRecoveredRunAwaitsReregistration: a restarted coordinator's worker
// table is necessarily empty when recovery resubmits journaled campaigns, so
// a recovered Run must wait out the re-registration grace instead of
// instantly failing into a full local recompute — while a fresh campaign on
// the same coordinator keeps the immediate ErrNoWorkers fallback.
func TestRecoveredRunAwaitsReregistration(t *testing.T) {
	req := tinyReq()
	key, err := service.Key(req)
	if err != nil {
		t.Fatal(err)
	}
	path := journalPath(t)
	noProgress := func(batch, done, total int) {}
	cfg := CoordinatorConfig{
		LeaseTTL: 5 * time.Second, Poll: 10 * time.Millisecond,
		JournalPath: path, RecoveryGrace: 5 * time.Second, Logger: quiet(),
	}

	// Incarnation A journals the campaign, then "crashes" before running it.
	// Fresh campaigns never wait: with no fleet this fails immediately.
	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c1.Run(context.Background(), key, req, noProgress); !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("fresh run with no fleet returned %v, want ErrNoWorkers", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("fresh run waited %s for workers; only recovered campaigns should", waited)
	}
	c1.Close()

	// Incarnation B recovers the campaign. Run starts on an empty worker
	// table; a worker registers shortly after, inside the grace, and the run
	// must ride it to completion with bytes identical to a local execution.
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := c2.Recovered(); len(rec) != 1 || rec[0].Key != key {
		t.Fatalf("recovered %+v, want campaign %.12s", rec, key)
	}
	ts := httptest.NewServer(c2.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(200 * time.Millisecond) // re-registration lag
		RunWorker(ctx, WorkerConfig{Server: ts.URL, Name: "late", Workers: 1, Logger: quiet()})
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		c2.Close()
	})
	got, err := c2.Run(context.Background(), key, req, noProgress)
	if err != nil {
		t.Fatalf("recovered run did not wait for the late worker: %v", err)
	}
	if want := localBytes(t, req); !bytes.Equal(got, want) {
		t.Errorf("recovered bytes differ from local:\n%s\n%s", got, want)
	}
}

// systemFor builds the facade system for unit-space arithmetic in tests.
func systemFor(t *testing.T, req winofault.CampaignRequest) *winofault.System {
	t.Helper()
	cfg, err := req.SystemConfig()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := winofault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// report posts a hand-built shard result over the wire.
func (rw *rawWorker) report(t *testing.T, res ShardResult) {
	t.Helper()
	body, err := jsonBody(res)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(rw.base+"/workers/"+rw.id+"/result", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("result returned %d", resp.StatusCode)
	}
}

// TestFleetAuth: with an Auth hook every worker endpoint demands a valid
// key — a keyless register is a 401, a keyed worker joins and serves.
func TestFleetAuth(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL: time.Second, Logger: quiet(),
		Auth: func(k string) bool { return k == "sekrit" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	body, _ := jsonBody(registerRequest{Name: "anon"})
	resp, err := http.Post(ts.URL+"/workers", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless register returned %d, want 401", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, WorkerConfig{Server: ts.URL, Name: "keyed", Workers: 1, APIKey: "sekrit", Logger: quiet()})
	}()
	waitForWorkers(t, c, 1)
	cancel()
	<-done
}
