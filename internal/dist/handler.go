package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Errors surfaced to workers as HTTP statuses.
var (
	// errUnknownWorker (404) tells a worker its registration lapsed (it went
	// silent past the lease TTL, or the coordinator restarted); the worker
	// re-registers and carries on.
	errUnknownWorker = errors.New("dist: unknown worker (re-register)")
	// errDraining (503) tells a joining worker this coordinator is
	// terminating and will not accrete fleet.
	errDraining = errors.New("dist: coordinator is draining")
	// errUnauthorized (401) rejects a worker whose API key the configured
	// Auth hook refuses (or that sent none when one is required).
	errUnauthorized = errors.New("dist: invalid or missing API key")
)

// Handler exposes the worker-facing fleet API, mounted by wfserve next to
// the campaign API:
//
//	POST /workers                  register: {"name": ...} ->
//	                               {"id", "leaseMillis", "pollMillis"}
//	POST /workers/{id}/heartbeat   refresh registration + lease deadlines
//	POST /workers/{id}/lease       200 ShardTask, or 204 when idle
//	POST /workers/{id}/result      deliver a ShardResult
//	GET  /workers                  registry snapshot (debugging)
//
// Every per-worker call answers 404 for a lapsed registration, which is the
// worker's signal to re-register.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /workers", c.handleRegister)
	mux.HandleFunc("GET /workers", c.handleList)
	mux.HandleFunc("POST /workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /workers/{id}/lease", c.handleLease)
	mux.HandleFunc("POST /workers/{id}/result", c.handleResult)
	if c.cfg.Auth == nil {
		return mux
	}
	// With an Auth hook, every fleet endpoint requires a valid key. Workers
	// are full campaign executors, so an open fleet port would bypass the
	// tenant API entirely.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !c.cfg.Auth(requestAPIKey(r)) {
			distError(w, http.StatusUnauthorized, errUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// requestAPIKey extracts the caller's API key: "Authorization: Bearer <key>"
// or the "X-API-Key" header.
func requestAPIKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
	}
	return r.Header.Get("X-API-Key")
}

func distError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		distError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
		return
	}
	resp, err := c.register(req.Name)
	if err != nil {
		distError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Workers())
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	// The body is optional: instrumented workers ship a metric snapshot
	// (federation), older workers post nothing. An unparseable body is
	// tolerated as snapshotless rather than rejected — a heartbeat's first
	// job is keeping the worker alive.
	var hb heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		hb.Metrics = nil
	}
	if !c.heartbeat(r.PathValue("id"), hb.Metrics) {
		distError(w, http.StatusNotFound, errUnknownWorker)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	task, err := c.lease(r.PathValue("id"))
	if err != nil {
		distError(w, http.StatusNotFound, err)
		return
	}
	if task == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(task)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var res ShardResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		distError(w, http.StatusBadRequest, fmt.Errorf("bad result body: %w", err))
		return
	}
	// Stale and duplicate results are dropped inside; the ack is
	// unconditional so a worker never retries a merge that already happened.
	c.result(r.PathValue("id"), res)
	w.WriteHeader(http.StatusNoContent)
}
