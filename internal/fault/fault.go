// Package fault defines the soft-error models of the reproduction: the
// bit-error-rate metric, the three injection semantics (operand-level,
// result-level, neuron-level), and the statistical sampler that converts a
// per-bit Bernoulli process over billions of executed operations into a small
// set of exactly-placed fault events.
//
// The paper's operation-level platform injects "random soft errors ... to the
// results of primitive operations i.e. multiplication and addition", with the
// motivating observation that operand corruption of a multiplication is far
// more damaging than of an addition. Both views are implemented here and can
// be compared with the semantics ablation experiment.
package fault

import (
	"fmt"
	"math"

	"repro/internal/fixed"
	"repro/internal/rng"
)

// OpClass identifies the primitive operation class a fault lands in.
type OpClass uint8

const (
	// OpMul is a multiplication (MAC multiplier, Hadamard product, ...).
	OpMul OpClass = iota
	// OpAdd is an addition (accumulation, transform add, bias add, ...).
	OpAdd
	numOpClasses
)

func (c OpClass) String() string {
	switch c {
	case OpMul:
		return "mul"
	case OpAdd:
		return "add"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(c))
	}
}

// Semantics selects how a fault event corrupts an operation.
type Semantics uint8

const (
	// ResultFlip flips one bit of the operation's result register: the full
	// 2W-bit product register for multiplications, the W-bit result register
	// for additions. This is the platform default — it is the paper's
	// stated methodology ("random soft errors injected to the results of
	// primitive operations").
	ResultFlip Semantics = iota
	// OperandFlip flips one bit of one W-bit input operand of the chosen
	// operation. For a multiplication the induced output error scales with
	// the other operand; for an addition it is a single power of two —
	// the paper's motivating observation, kept as an ablation semantics.
	OperandFlip
	// NeuronFlip is the coarse neuron-level semantics of TensorFI/PyTorchFI:
	// bits are flipped in layer output activations. It cannot distinguish
	// standard from winograd convolution (paper Fig. 1).
	NeuronFlip
)

func (s Semantics) String() string {
	switch s {
	case OperandFlip:
		return "operand"
	case ResultFlip:
		return "result"
	case NeuronFlip:
		return "neuron"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// Model is a complete soft-error configuration.
type Model struct {
	// BER is the probability that any single bit of an operation's fault
	// surface flips during that operation's execution, per the paper's
	// "probability of a bit flip in an operation" metric.
	BER float64
	// Semantics selects operand-, result- or neuron-level injection.
	Semantics Semantics
}

// Census counts the primitive operations of one engine invocation (one
// layer forward pass), per class.
type Census struct {
	Mul int64
	Add int64
}

// Total returns Mul + Add.
func (c Census) Total() int64 { return c.Mul + c.Add }

// Class returns the count for one op class.
func (c Census) Class(cl OpClass) int64 {
	if cl == OpMul {
		return c.Mul
	}
	return c.Add
}

// AddCensus returns the element-wise sum of two censuses.
func (c Census) AddCensus(o Census) Census {
	return Census{Mul: c.Mul + o.Mul, Add: c.Add + o.Add}
}

// Scale returns the census multiplied by k (used to translate a scaled-down
// model's census to the full-size network's fault intensity), rounding half
// away from zero: truncating toward zero would bias every scaled-up intensity
// low by up to one whole operation per class.
func (c Census) Scale(k float64) Census {
	return Census{Mul: scaleCount(c.Mul, k), Add: scaleCount(c.Add, k)}
}

func scaleCount(n int64, k float64) int64 {
	return int64(math.Round(float64(n) * k))
}

// SurfaceBits returns the size in bits of the fault surface of one operation
// of the given class under the given semantics and data format. The surface
// is what the per-bit BER multiplies into a per-op fault rate.
//
// Register model: every operand and every addition result lives in a W-bit
// datapath register, so a flipped addition bit perturbs the value by at most
// 2^(W-1) accumulator LSBs — small against the 2^2F accumulator scale. A
// multiplication amplifies a flipped operand bit by the other operand, and
// its result occupies the full 2W-bit product register, so multiplication
// faults are far more damaging per event. This register model is what makes
// the engines reproduce the paper's Fig. 4 asymmetry (multiplications much
// more vulnerable than additions) from first principles.
func SurfaceBits(sem Semantics, cl OpClass, f fixed.Format) int {
	switch sem {
	case OperandFlip:
		return 2 * f.Width // two W-bit operand registers, either class
	case ResultFlip:
		if cl == OpMul {
			return f.ProductBits() // full 2W-bit product register
		}
		return f.Width // addition result returns to a W-bit register
	case NeuronFlip:
		return f.Width
	default:
		panic("fault: unknown semantics")
	}
}

// Event is one sampled fault: a specific bit of a specific operand/result of
// a specific operation (identified by its flat index in the engine's
// deterministic op ordering for the layer invocation).
type Event struct {
	Class   OpClass
	Op      int64 // flat op index within the class ordering of the layer
	Bit     uint8 // bit position within the chosen register
	Operand uint8 // 0 or 1; which operand (OperandFlip only)
}

// Protection describes the fraction of operations of each class in a layer
// that are TMR-protected (majority-voted, hence immune to single faults).
// The paper's fine-grained TMR selects the protected subset uniformly at
// random with multiplications prioritised, which is statistically equivalent
// to thinning the fault process by the protected fraction.
type Protection struct {
	MulFrac float64 // fraction of multiplications protected, in [0,1]
	AddFrac float64 // fraction of additions protected, in [0,1]
}

// Frac returns the protected fraction for an op class, clamped to [0,1].
func (p Protection) Frac(cl OpClass) float64 {
	f := p.AddFrac
	if cl == OpMul {
		f = p.MulFrac
	}
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Lambda returns the expected number of unprotected fault events for one op
// class of a layer whose fault intensity is governed by intensityCensus
// (normally the layer's own census; experiments may substitute the full-size
// network's census to keep the paper's BER axis).
func Lambda(cl OpClass, intensity Census, m Model, f fixed.Format, p Protection) float64 {
	n := float64(intensity.Class(cl))
	return n * float64(SurfaceBits(m.Semantics, cl, f)) * m.BER * (1 - p.Frac(cl))
}

// Sample draws the fault events for one layer invocation.
//
// siteCensus is the census of the engine that will apply the events (op
// indices are drawn within it); intensityCensus governs the expected event
// count and may be a scaled-up census (see Lambda). Passing the same census
// for both reproduces plain per-bit Bernoulli injection exactly: the number
// of flipped bits among N·surface independent Bernoulli(BER) trials is
// Binomial(N·surface, BER), which the sampler draws before placing each
// event uniformly, the standard decomposition of an i.i.d. thinned process.
func Sample(r *rng.Stream, siteCensus, intensityCensus Census, m Model, f fixed.Format, p Protection) []Event {
	if m.BER <= 0 {
		return nil
	}
	var events []Event
	for _, cl := range []OpClass{OpMul, OpAdd} {
		sites := siteCensus.Class(cl)
		if sites <= 0 {
			continue
		}
		surface := SurfaceBits(m.Semantics, cl, f)
		trials := intensityCensus.Class(cl) * int64(surface)
		keep := 1 - p.Frac(cl)
		if keep <= 0 {
			continue
		}
		k := r.Binomial(trials, m.BER*keep)
		for i := int64(0); i < k; i++ {
			ev := Event{
				Class: cl,
				Op:    r.Int63n(sites),
				Bit:   uint8(r.Intn(surface)),
			}
			if m.Semantics == OperandFlip {
				// The surface spans both operand registers; split it.
				half := surface / 2
				if int(ev.Bit) >= half {
					ev.Operand = 1
					ev.Bit -= uint8(half)
				}
			}
			events = append(events, ev)
		}
	}
	return events
}

// FlipInReg flips bit b of the regBits-wide two's-complement register
// currently holding v, returning the new value sign-extended to int64. Bits
// at or above regBits clamp to the register's sign bit.
func FlipInReg(v int64, b uint, regBits int) int64 {
	if int(b) >= regBits {
		b = uint(regBits - 1)
	}
	u := uint64(v) ^ (uint64(1) << b)
	shift := uint(64 - regBits)
	return int64(u<<shift) >> shift
}
