package fault

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestCensusArithmetic(t *testing.T) {
	a := Census{Mul: 10, Add: 20}
	b := Census{Mul: 1, Add: 2}
	if got := a.Total(); got != 30 {
		t.Errorf("Total = %d", got)
	}
	if got := a.AddCensus(b); got != (Census{11, 22}) {
		t.Errorf("AddCensus = %v", got)
	}
	if got := a.Scale(2.5); got != (Census{25, 50}) {
		t.Errorf("Scale = %v", got)
	}
	if a.Class(OpMul) != 10 || a.Class(OpAdd) != 20 {
		t.Error("Class lookup wrong")
	}
}

func TestCensusScaleRounds(t *testing.T) {
	cases := []struct {
		c    Census
		k    float64
		want Census
	}{
		// Exact integer products must be exact.
		{Census{Mul: 10, Add: 20}, 3, Census{Mul: 30, Add: 60}},
		{Census{Mul: 1 << 40, Add: 1 << 41}, 8, Census{Mul: 1 << 43, Add: 1 << 44}},
		// Fractional products round half away from zero, not truncate:
		// int64(10*1.75) would already be 17, but int64(3*1.5)=4 truncates 4.5.
		{Census{Mul: 3, Add: 5}, 1.5, Census{Mul: 5, Add: 8}},
		{Census{Mul: 7, Add: 9}, 0.1, Census{Mul: 1, Add: 1}},
		{Census{Mul: 1, Add: 2}, 0.2, Census{Mul: 0, Add: 0}},
	}
	for _, tc := range cases {
		if got := tc.c.Scale(tc.k); got != tc.want {
			t.Errorf("%v.Scale(%v) = %v, want %v", tc.c, tc.k, got, tc.want)
		}
	}
}

func TestSurfaceBits(t *testing.T) {
	cases := []struct {
		sem  Semantics
		cl   OpClass
		f    fixed.Format
		want int
	}{
		{OperandFlip, OpMul, fixed.Int16, 32},
		{OperandFlip, OpMul, fixed.Int8, 16},
		{OperandFlip, OpAdd, fixed.Int16, 32},
		{OperandFlip, OpAdd, fixed.Int8, 16},
		{ResultFlip, OpMul, fixed.Int16, 32},
		{ResultFlip, OpMul, fixed.Int8, 16},
		{ResultFlip, OpAdd, fixed.Int8, 8},
		{ResultFlip, OpAdd, fixed.Int16, 16},
		{NeuronFlip, OpMul, fixed.Int16, 16},
		{NeuronFlip, OpAdd, fixed.Int8, 8},
	}
	for _, c := range cases {
		if got := SurfaceBits(c.sem, c.cl, c.f); got != c.want {
			t.Errorf("SurfaceBits(%v,%v,%v) = %d, want %d", c.sem, c.cl, c.f, got, c.want)
		}
	}
}

func TestProtectionFracClamps(t *testing.T) {
	p := Protection{MulFrac: 1.5, AddFrac: -0.5}
	if p.Frac(OpMul) != 1 || p.Frac(OpAdd) != 0 {
		t.Errorf("clamping wrong: %v %v", p.Frac(OpMul), p.Frac(OpAdd))
	}
}

func TestLambda(t *testing.T) {
	c := Census{Mul: 1000, Add: 2000}
	m := Model{BER: 1e-3, Semantics: ResultFlip}
	// mul: 1000 ops * 32 bits * 1e-3 = 32
	if got := Lambda(OpMul, c, m, fixed.Int16, Protection{}); math.Abs(got-32) > 1e-9 {
		t.Errorf("Lambda(mul) = %v, want 32", got)
	}
	// add: 2000 ops * 16-bit result register * 1e-3 = 32; half protected -> 16
	if got := Lambda(OpAdd, c, m, fixed.Int16, Protection{AddFrac: 0.5}); math.Abs(got-16) > 1e-9 {
		t.Errorf("Lambda(add, 50%% prot) = %v, want 16", got)
	}
	// full protection kills the rate.
	if got := Lambda(OpMul, c, m, fixed.Int16, Protection{MulFrac: 1}); got != 0 {
		t.Errorf("Lambda with full protection = %v", got)
	}
}

func TestSampleCountsMatchBinomialMean(t *testing.T) {
	r := rng.New(99)
	c := Census{Mul: 100000, Add: 100000}
	m := Model{BER: 1e-5, Semantics: ResultFlip}
	const rounds = 400
	var total float64
	for i := 0; i < rounds; i++ {
		evs := Sample(r.Split(uint64(i)), c, c, m, fixed.Int16, Protection{})
		total += float64(len(evs))
	}
	mean := total / rounds
	// Expected: mul 1e5*32*1e-5=32, add 1e5*16*1e-5=16 -> 48.
	if math.Abs(mean-48) > 3 {
		t.Errorf("mean event count = %v, want ~48", mean)
	}
}

func TestSampleZeroBER(t *testing.T) {
	r := rng.New(1)
	if evs := Sample(r, Census{1000, 1000}, Census{1000, 1000}, Model{BER: 0}, fixed.Int16, Protection{}); evs != nil {
		t.Errorf("zero BER produced %d events", len(evs))
	}
}

func TestSampleEventFieldsInRange(t *testing.T) {
	r := rng.New(2)
	c := Census{Mul: 50, Add: 70}
	m := Model{BER: 0.01, Semantics: OperandFlip}
	for trial := 0; trial < 50; trial++ {
		for _, ev := range Sample(r.Split(uint64(trial)), c, c, m, fixed.Int16, Protection{}) {
			if ev.Op < 0 || ev.Op >= c.Class(ev.Class) {
				t.Fatalf("op index %d out of range for %v", ev.Op, ev.Class)
			}
			if ev.Operand > 1 {
				t.Fatalf("operand = %d", ev.Operand)
			}
			half := SurfaceBits(m.Semantics, ev.Class, fixed.Int16) / 2
			if int(ev.Bit) >= half {
				t.Fatalf("bit %d out of per-operand range %d", ev.Bit, half)
			}
		}
	}
}

func TestSampleResultFlipBitRange(t *testing.T) {
	r := rng.New(3)
	c := Census{Mul: 100, Add: 100}
	m := Model{BER: 0.01, Semantics: ResultFlip}
	for trial := 0; trial < 50; trial++ {
		for _, ev := range Sample(r.Split(uint64(trial)), c, c, m, fixed.Int8, Protection{}) {
			limit := SurfaceBits(m.Semantics, ev.Class, fixed.Int8)
			if int(ev.Bit) >= limit {
				t.Fatalf("bit %d out of range %d for %v", ev.Bit, limit, ev.Class)
			}
			if ev.Operand != 0 {
				t.Fatalf("ResultFlip must not set operand")
			}
		}
	}
}

func TestSampleProtectionThins(t *testing.T) {
	c := Census{Mul: 200000, Add: 0}
	m := Model{BER: 1e-5, Semantics: ResultFlip}
	count := func(p Protection, seed uint64) float64 {
		r := rng.New(seed)
		var total float64
		for i := 0; i < 300; i++ {
			total += float64(len(Sample(r.Split(uint64(i)), c, c, m, fixed.Int16, p)))
		}
		return total / 300
	}
	unprot := count(Protection{}, 4)
	half := count(Protection{MulFrac: 0.5}, 5)
	full := count(Protection{MulFrac: 1}, 6)
	if full != 0 {
		t.Errorf("fully protected layer still faults: %v", full)
	}
	if math.Abs(half/unprot-0.5) > 0.1 {
		t.Errorf("half protection ratio = %v, want ~0.5", half/unprot)
	}
}

func TestSampleIntensityScaling(t *testing.T) {
	// A 10x intensity census must produce ~10x the events while op indices
	// stay within the (smaller) site census.
	site := Census{Mul: 1000, Add: 0}
	intensity := site.Scale(10)
	m := Model{BER: 1e-4, Semantics: ResultFlip}
	r := rng.New(7)
	var total float64
	const rounds = 300
	for i := 0; i < rounds; i++ {
		evs := Sample(r.Split(uint64(i)), site, intensity, m, fixed.Int16, Protection{})
		total += float64(len(evs))
		for _, ev := range evs {
			if ev.Op >= site.Mul {
				t.Fatalf("op index %d outside site census %d", ev.Op, site.Mul)
			}
		}
	}
	mean := total / rounds
	want := float64(intensity.Mul) * 32 * 1e-4
	if math.Abs(mean-want) > want*0.15 {
		t.Errorf("mean = %v, want ~%v", mean, want)
	}
}

func TestFlipInReg(t *testing.T) {
	// Flip inside a 16-bit register.
	if got := FlipInReg(0, 15, 16); got != -32768 {
		t.Errorf("FlipInReg(0,15,16) = %d, want -32768", got)
	}
	if got := FlipInReg(-1, 0, 16); got != -2 {
		t.Errorf("FlipInReg(-1,0,16) = %d", got)
	}
	// Out-of-range bit clamps to the sign bit.
	if got := FlipInReg(0, 63, 16); got != -32768 {
		t.Errorf("FlipInReg clamp = %d", got)
	}
	// Involution.
	err := quick.Check(func(v int32, b uint8) bool {
		bit := uint(b % 32)
		x := int64(v)
		return FlipInReg(FlipInReg(x, bit, 32), bit, 32) == x
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestInjectNeuronsRate(t *testing.T) {
	f := fixed.Int16
	q := tensor.NewQ(tensor.Shape{N: 1, C: 8, H: 32, W: 32}, f)
	r := rng.New(11)
	const ber = 1e-4
	var flips float64
	const rounds = 50
	for i := 0; i < rounds; i++ {
		flips += float64(InjectNeurons(q, ber, r.Split(uint64(i))))
	}
	mean := flips / rounds
	want := float64(len(q.Data)) * 16 * ber
	if math.Abs(mean-want) > want*0.3 {
		t.Errorf("mean flips = %v, want ~%v", mean, want)
	}
}

func TestInjectNeuronsChangesValues(t *testing.T) {
	f := fixed.Int16
	q := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 16, W: 16}, f)
	r := rng.New(13)
	n := InjectNeurons(q, 0.01, r)
	if n == 0 {
		t.Skip("no faults sampled (expected rare)")
	}
	changed := 0
	for _, v := range q.Data {
		if v != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("faults reported but no value changed")
	}
	if changed > n {
		t.Errorf("%d values changed with only %d flips", changed, n)
	}
}

func TestInjectNeuronsZeroBER(t *testing.T) {
	q := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 4, W: 4}, fixed.Int8)
	if n := InjectNeurons(q, 0, rng.New(1)); n != 0 {
		t.Errorf("zero BER flipped %d bits", n)
	}
}

func TestStringers(t *testing.T) {
	if OpMul.String() != "mul" || OpAdd.String() != "add" {
		t.Error("OpClass strings wrong")
	}
	if OperandFlip.String() != "operand" || ResultFlip.String() != "result" || NeuronFlip.String() != "neuron" {
		t.Error("Semantics strings wrong")
	}
	if OpClass(9).String() == "" || Semantics(9).String() == "" {
		t.Error("unknown values must still render")
	}
}
