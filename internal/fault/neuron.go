package fault

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// InjectNeurons applies neuron-level fault injection to a quantized
// activation tensor in place: every bit of every stored value flips
// independently with probability ber, sampled statistically (binomial count,
// uniform placement) exactly as the op-level sampler does.
//
// This is the TensorFI/PyTorchFI-style semantics the paper compares against
// in Figure 1: because it corrupts the *values* of neurons after a layer has
// produced them, it is oblivious to whether the layer computed them with
// standard or winograd convolution.
func InjectNeurons(q *tensor.QTensor, ber float64, r *rng.Stream) int {
	return InjectNeuronsIntensity(q, ber, int64(len(q.Data)), r)
}

// InjectNeuronsIntensity is InjectNeurons with the expected flip count
// derived from intensityElems value registers instead of the tensor's own
// size — the neuron-level analogue of the scaled-intensity op sampler, used
// to keep the paper's BER axis on scaled-down models.
func InjectNeuronsIntensity(q *tensor.QTensor, ber float64, intensityElems int64, r *rng.Stream) int {
	if ber <= 0 {
		return 0
	}
	elems := int64(len(q.Data))
	bits := int64(q.Fmt.Width)
	k := r.Binomial(intensityElems*bits, ber)
	for i := int64(0); i < k; i++ {
		idx := r.Int63n(elems)
		bit := uint(r.Intn(q.Fmt.Width))
		q.Data[idx] = q.Fmt.FlipBit32(q.Data[idx], bit)
	}
	return int(k)
}
