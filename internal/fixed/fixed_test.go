package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	cases := []struct {
		f  Format
		ok bool
	}{
		{Format{8, 4}, true},
		{Format{16, 8}, true},
		{Format{32, 16}, true},
		{Format{16, 16}, false},
		{Format{16, -1}, false},
		{Format{12, 4}, false},
		{Format{8, 8}, false},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.f, err, c.ok)
		}
	}
}

func TestRanges(t *testing.T) {
	if Int8.Max() != 127 || Int8.Min() != -128 {
		t.Fatalf("Int8 range = [%d,%d]", Int8.Min(), Int8.Max())
	}
	if Int16.Max() != 32767 || Int16.Min() != -32768 {
		t.Fatalf("Int16 range = [%d,%d]", Int16.Min(), Int16.Max())
	}
	if got := Int16.Scale(); got != 1.0/256 {
		t.Fatalf("Int16.Scale() = %v", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	f := Int16
	for _, x := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 100.125} {
		q := f.Quantize(x)
		back := f.Dequantize(q)
		if math.Abs(back-x) > f.Scale()/2+1e-12 {
			t.Errorf("round trip %v -> %d -> %v exceeds half-LSB", x, q, back)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := Int8
	if got := f.Quantize(1e9); got != f.Max() {
		t.Errorf("Quantize(1e9) = %d, want %d", got, f.Max())
	}
	if got := f.Quantize(-1e9); got != f.Min() {
		t.Errorf("Quantize(-1e9) = %d, want %d", got, f.Min())
	}
}

func TestQuantizeRoundHalfAwayFromZero(t *testing.T) {
	f := Format{Width: 16, Frac: 0}
	if got := f.Quantize(2.5); got != 3 {
		t.Errorf("Quantize(2.5) = %d, want 3", got)
	}
	if got := f.Quantize(-2.5); got != -3 {
		t.Errorf("Quantize(-2.5) = %d, want -3", got)
	}
	if got := f.Quantize(2.4); got != 2 {
		t.Errorf("Quantize(2.4) = %d, want 2", got)
	}
}

func TestQuantizeNonFinite(t *testing.T) {
	for _, f := range []Format{Int8, Int16, {Width: 32, Frac: 16}} {
		cases := []struct {
			x    float64
			want int32
		}{
			{math.NaN(), 0},
			{math.Inf(1), f.Max()},
			{math.Inf(-1), f.Min()},
		}
		for _, c := range cases {
			if got := f.Quantize(c.x); got != c.want {
				t.Errorf("%v.Quantize(%v) = %d, want %d", f, c.x, got, c.want)
			}
		}
	}
}

func TestRoundShift(t *testing.T) {
	cases := []struct {
		v    int64
		s    uint
		want int64
	}{
		{0, 4, 0},
		{16, 4, 1},
		{8, 4, 1},   // exactly half rounds away
		{7, 4, 0},   // below half truncates
		{-8, 4, -1}, // negative half rounds away
		{-7, 4, 0},
		{-16, 4, -1},
		{255, 0, 255},
		{1 << 30, 8, 1 << 22},
	}
	for _, c := range cases {
		if got := RoundShift(c.v, c.s); got != c.want {
			t.Errorf("RoundShift(%d,%d) = %d, want %d", c.v, c.s, got, c.want)
		}
	}
}

func TestRoundShiftSymmetry(t *testing.T) {
	// RoundShift must be odd: RoundShift(-v) == -RoundShift(v).
	err := quick.Check(func(v int64, s uint8) bool {
		sh := uint(s % 16)
		if v == math.MinInt64 {
			return true
		}
		return RoundShift(-v, sh) == -RoundShift(v, sh)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRequantizeMatchesFloat(t *testing.T) {
	// Requantize of an exact product must match float math within 1 LSB.
	f := Int16
	err := quick.Check(func(a16, b16 int16) bool {
		a, b := int32(a16), int32(b16)
		acc := int64(a) * int64(b)
		got := f.Requantize(acc)
		want := f.Quantize(f.Dequantize(a) * f.Dequantize(b))
		d := int64(got) - int64(want)
		return d >= -1 && d <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFlipBit(t *testing.T) {
	if got := FlipBit(0, 0); got != 1 {
		t.Errorf("FlipBit(0,0) = %d", got)
	}
	if got := FlipBit(1, 0); got != 0 {
		t.Errorf("FlipBit(1,0) = %d", got)
	}
	if got := FlipBit(0, 63); got != math.MinInt64 {
		t.Errorf("FlipBit(0,63) = %d", got)
	}
	// Involution property.
	err := quick.Check(func(v int64, b uint8) bool {
		bit := uint(b % 64)
		return FlipBit(FlipBit(v, bit), bit) == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFlipBit32SignExtension(t *testing.T) {
	f := Int8
	// Flipping the sign bit of 0 in an 8-bit register yields -128.
	if got := f.FlipBit32(0, 7); got != -128 {
		t.Errorf("FlipBit32(0,7) = %d, want -128", got)
	}
	// Flipping bit 0 of -128 yields -127.
	if got := f.FlipBit32(-128, 0); got != -127 {
		t.Errorf("FlipBit32(-128,0) = %d, want -127", got)
	}
	// Out-of-range bit index clamps to the sign bit.
	if got := f.FlipBit32(0, 200); got != -128 {
		t.Errorf("FlipBit32(0,200) = %d, want -128", got)
	}
}

func TestFlipBit32Involution(t *testing.T) {
	for _, f := range []Format{Int8, Int16} {
		err := quick.Check(func(v int32, b uint8) bool {
			bit := uint(int(b) % f.Width)
			s := f.Saturate(int64(v))
			return f.FlipBit32(f.FlipBit32(s, bit), bit) == s
		}, nil)
		if err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestSaturate(t *testing.T) {
	f := Int16
	if got := f.Saturate(1 << 40); got != f.Max() {
		t.Errorf("Saturate(big) = %d", got)
	}
	if got := f.Saturate(-(1 << 40)); got != f.Min() {
		t.Errorf("Saturate(-big) = %d", got)
	}
	if got := f.Saturate(1234); got != 1234 {
		t.Errorf("Saturate(1234) = %d", got)
	}
}

func TestWidths(t *testing.T) {
	if Int8.ProductBits() != 16 || Int16.ProductBits() != 32 {
		t.Error("product widths wrong")
	}
	if Int8.OperandBits() != 8 || Int16.OperandBits() != 16 {
		t.Error("operand widths wrong")
	}
}
