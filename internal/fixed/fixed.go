// Package fixed implements the Q-format fixed-point arithmetic used by the
// quantized inference engines. The paper evaluates networks quantized to
// 8-bit and 16-bit fixed point; all convolution arithmetic is carried out on
// integer values with a wide (int64) multiply-accumulate path and a single
// rounding + saturation step at the end, mirroring how hardware MAC units
// (and the paper's fault-injection platform) treat intermediate values.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed Q-format fixed-point representation: Width total
// bits (including sign) of the stored value, of which Frac bits sit to the
// right of the binary point. A Format with Width 16 and Frac 8 stores values
// in [-128, 128) with a resolution of 2^-8.
type Format struct {
	Width int // total bits including sign; 8 or 16 in the paper
	Frac  int // fractional bits
}

// Int8 and Int16 are the two quantization configurations evaluated in the
// paper (Section 3.2.1). The fractional split is chosen by calibration in
// tensor.Calibrate; these are the defaults used when no calibration is run.
var (
	Int8  = Format{Width: 8, Frac: 4}
	Int16 = Format{Width: 16, Frac: 8}
)

// Validate reports whether the format is usable.
func (f Format) Validate() error {
	if f.Width != 8 && f.Width != 16 && f.Width != 32 {
		return fmt.Errorf("fixed: unsupported width %d (want 8, 16 or 32)", f.Width)
	}
	if f.Frac < 0 || f.Frac >= f.Width {
		return fmt.Errorf("fixed: frac %d out of range for width %d", f.Frac, f.Width)
	}
	return nil
}

func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.Width-f.Frac, f.Frac) }

// Max returns the largest representable stored integer, 2^(Width-1)-1.
func (f Format) Max() int32 { return int32(1)<<(f.Width-1) - 1 }

// Min returns the smallest representable stored integer, -2^(Width-1).
func (f Format) Min() int32 { return -(int32(1) << (f.Width - 1)) }

// Scale returns the value of one least-significant bit, 2^-Frac.
func (f Format) Scale() float64 { return math.Ldexp(1, -f.Frac) }

// Quantize converts a real value to the nearest representable stored integer,
// rounding half away from zero and saturating at the representable range.
// NaN maps to 0 (int32(NaN) is implementation-defined garbage otherwise);
// ±Inf saturate like any out-of-range value.
func (f Format) Quantize(x float64) int32 {
	if math.IsNaN(x) {
		return 0
	}
	scaled := x * math.Ldexp(1, f.Frac)
	var r float64
	if scaled >= 0 {
		r = math.Floor(scaled + 0.5)
	} else {
		r = math.Ceil(scaled - 0.5)
	}
	if r > float64(f.Max()) {
		return f.Max()
	}
	if r < float64(f.Min()) {
		return f.Min()
	}
	return int32(r)
}

// Dequantize converts a stored integer back to its real value.
func (f Format) Dequantize(v int32) float64 { return float64(v) * f.Scale() }

// Saturate clamps a wide integer to the representable range of the format.
func (f Format) Saturate(v int64) int32 {
	if v > int64(f.Max()) {
		return f.Max()
	}
	if v < int64(f.Min()) {
		return f.Min()
	}
	return int32(v)
}

// Requantize narrows a wide accumulator holding a value with 2*Frac
// fractional bits (the natural result of multiplying two Frac-bit values and
// accumulating) back to Frac fractional bits: shift right by Frac with
// round-half-away-from-zero, then saturate. This is the single rounding step
// at the end of a MAC chain.
func (f Format) Requantize(acc int64) int32 {
	return f.Saturate(RoundShift(acc, uint(f.Frac)))
}

// RequantizeShift narrows a wide accumulator by an arbitrary shift: for
// shift >= 0 it rounds half away from zero while shifting right, for
// shift < 0 it shifts left. The result saturates to the format. This is the
// general form used when input, weight and output formats carry different
// fractional widths.
func (f Format) RequantizeShift(acc int64, shift int) int32 {
	if shift >= 0 {
		return f.Saturate(RoundShift(acc, uint(shift)))
	}
	s := uint(-shift)
	if s > 62 {
		s = 62
	}
	// Detect overflow of the left shift before it happens.
	limit := int64(1) << (62 - s)
	if acc >= limit {
		return f.Max()
	}
	if acc <= -limit {
		return f.Min()
	}
	return f.Saturate(acc << s)
}

// RoundShift arithmetic-right-shifts v by s bits, rounding half away from
// zero. For s == 0 it returns v unchanged.
func RoundShift(v int64, s uint) int64 {
	if s == 0 {
		return v
	}
	half := int64(1) << (s - 1)
	if v >= 0 {
		return (v + half) >> s
	}
	return -((-v + half) >> s)
}

// FlipBit returns v with bit b toggled. b counts from the least significant
// bit. It is the primitive used by every fault-injection semantics.
func FlipBit(v int64, b uint) int64 { return v ^ (int64(1) << b) }

// FlipBit32 toggles bit b of a stored (narrow) value, then re-saturates to
// the format so the corrupted value remains representable, as a register of
// Width bits would behave (the flip happens inside the register, so no
// saturation applies; the value is reinterpreted as a two's-complement
// Width-bit integer).
func (f Format) FlipBit32(v int32, b uint) int32 {
	if int(b) >= f.Width {
		b = uint(f.Width - 1)
	}
	u := uint32(v) ^ (uint32(1) << b)
	// Sign-extend from Width bits.
	shift := uint(32 - f.Width)
	return int32(u<<shift) >> shift
}

// OperandBits returns the number of bits in one stored operand.
func (f Format) OperandBits() int { return f.Width }

// ProductBits returns the width of the full product register of a
// Width x Width signed multiply.
func (f Format) ProductBits() int { return 2 * f.Width }

// AccumulatorBits is the width of the MAC accumulator register modelled for
// ResultFlip faults on additions. 32 bits matches typical int8/int16 DNN
// accelerator datapaths (the paper's DNN Engine uses a wide accumulator).
const AccumulatorBits = 32
