// Package systolic is the Scale-Sim-style analytical performance model used
// to estimate network runtime on the DNN accelerator (paper Section 4.2:
// "estimated with a simulator modified on top of Scale-Sim"). It models a
// weight-stationary RxC processing-element array: convolutions lower to
// GEMMs, winograd convolutions lower to T² independent transform-domain
// GEMMs plus shift-add transform passes on a vector unit, and the model
// reports cycles, MACs and SRAM traffic per layer.
package systolic

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

// Array describes the PE array geometry.
type Array struct {
	Rows int // reduction dimension (weight rows)
	Cols int // output-channel dimension
	// VectorLanes is the width of the auxiliary vector unit executing
	// winograd transform shift-adds and elementwise work.
	VectorLanes int
}

// DNNEngine16 approximates the paper's 28nm DNN-Engine-class accelerator:
// a modest 16x16 MAC array with a 16-lane vector unit.
var DNNEngine16 = Array{Rows: 16, Cols: 16, VectorLanes: 16}

// Cost aggregates the performance-model outputs for a workload.
type Cost struct {
	Cycles    int64
	MACs      int64
	VectorOps int64 // shift-add / elementwise ops on the vector unit
	SRAMReads int64
}

// Add accumulates another cost.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		Cycles:    c.Cycles + o.Cycles,
		MACs:      c.MACs + o.MACs,
		VectorOps: c.VectorOps + o.VectorOps,
		SRAMReads: c.SRAMReads + o.SRAMReads,
	}
}

// Utilization returns achieved MACs per PE-cycle.
func (c Cost) Utilization(a Array) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.MACs) / (float64(c.Cycles) * float64(a.Rows*a.Cols))
}

// GEMM returns the weight-stationary cycle estimate for an MxN output with
// reduction depth K: the (K x N) weight matrix is tiled onto the array; each
// of the ceil(K/Rows)·ceil(N/Cols) folds streams the M input vectors through
// the array with a Rows+Cols-1 cycle fill/drain skew. Weights are
// double-buffered (next fold's weights load during the current fold's
// compute), so only the first load is exposed — the Scale-Sim
// weight-stationary formula with weight prefetch.
func (a Array) GEMM(m, k, n int64) Cost {
	if m <= 0 || k <= 0 || n <= 0 {
		return Cost{}
	}
	foldK := (k + int64(a.Rows) - 1) / int64(a.Rows)
	foldN := (n + int64(a.Cols) - 1) / int64(a.Cols)
	perFold := m + int64(a.Rows) + int64(a.Cols) - 2
	return Cost{
		Cycles:    foldK*foldN*perFold + int64(a.Rows),
		MACs:      m * k * n,
		SRAMReads: foldK*foldN*int64(a.Rows*a.Cols) + foldN*m*k, // weights + streamed inputs
	}
}

// vector returns the cycle cost of ops elementwise operations on the vector
// unit.
func (a Array) vector(ops int64) Cost {
	lanes := int64(a.VectorLanes)
	if lanes < 1 {
		lanes = 1
	}
	return Cost{Cycles: (ops + lanes - 1) / lanes, VectorOps: ops}
}

// ConvDirect models a direct convolution as an im2col GEMM:
// M = output pixels, K = inC·kh·kw, N = outC.
func (a Array) ConvDirect(in tensor.Shape, outC, kh, kw, stride, pad int) Cost {
	oh := int64((in.H+2*pad-kh)/stride + 1)
	ow := int64((in.W+2*pad-kw)/stride + 1)
	m := int64(in.N) * oh * ow
	k := int64(in.C) * int64(kh) * int64(kw)
	return a.GEMM(m, k, int64(outC))
}

// ConvWinograd models a winograd (DWM-decomposed) convolution: per
// decomposition unit, T² transform-domain GEMMs with M = tiles,
// K = inC, N = outC, plus input/output transform shift-adds and the DWM
// summation on the vector unit.
func (a Array) ConvWinograd(in tensor.Shape, outC, kh, kw, stride, pad int, t *winograd.Tile) Cost {
	oh := int64((in.H+2*pad-kh)/stride + 1)
	ow := int64((in.W+2*pad-kw)/stride + 1)
	m := int64(t.M)
	tilesY := (oh + m - 1) / m
	tilesX := (ow + m - 1) / m
	tiles := int64(in.N) * tilesY * tilesX

	// One unit: T² GEMMs of (tiles x inC x outC) + transforms.
	t2 := int64(t.T() * t.T())
	unitGeoms := winograd.NumUnits(kh, kw, stride, t.R)
	var total Cost
	for u := 0; u < unitGeoms; u++ {
		var unitCost Cost
		for p := int64(0); p < t2; p++ {
			unitCost = unitCost.Add(a.GEMM(tiles, int64(in.C), int64(outC)))
		}
		itAdds := tiles * int64(in.C) * int64(t.InputAdds())
		otAdds := tiles * int64(outC) * int64(t.OutputAdds())
		unitCost = unitCost.Add(a.vector(itAdds + otAdds))
		total = total.Add(unitCost)
	}
	if unitGeoms > 1 {
		sum := int64(in.N) * int64(outC) * oh * ow * int64(unitGeoms-1)
		total = total.Add(a.vector(sum))
	}
	return total
}

// NetworkCost sums the layer costs of an architecture under one engine kind
// for a throughput batch of the given size (batch amortizes array fill/drain
// across tiles, as pipelined accelerators do; cost is returned for the whole
// batch). Non-conv ops (pooling, activation, residual adds) run on the
// vector unit.
func (a Array) NetworkCost(arch *models.Arch, kind nn.EngineKind, tile *winograd.Tile, batch int) Cost {
	if tile == nil {
		tile = winograd.F2
	}
	if batch < 1 {
		batch = 1
	}
	shapes := models.Shapes(arch)
	var total Cost
	for i, d := range arch.Ops {
		in := arch.In
		if d.Inputs[0] != nn.InputNode {
			in = shapes[d.Inputs[0]]
		}
		in.N *= batch
		outElems := int64(shapes[i].Elems()) * int64(batch)
		switch d.Kind {
		case "conv":
			if kind == nn.Winograd && d.K >= 2 {
				total = total.Add(a.ConvWinograd(in, d.OutC, d.K, d.K, d.Stride, d.Pad, tile))
			} else {
				total = total.Add(a.ConvDirect(in, d.OutC, d.K, d.K, d.Stride, d.Pad))
			}
		case "fc":
			total = total.Add(a.GEMM(int64(in.N), int64(in.C), int64(d.OutC)))
		case "relu", "add", "concat":
			total = total.Add(a.vector(outElems))
		case "maxpool", "avgpool":
			total = total.Add(a.vector(outElems * int64(d.K*d.K)))
		case "gap":
			total = total.Add(a.vector(int64(in.Elems())))
		case "flatten":
			// free
		default:
			panic(fmt.Sprintf("systolic: unknown op kind %q", d.Kind))
		}
	}
	return total
}

// CensusCost converts an op census into vector-unit cycles; exposed for
// ad-hoc what-if analyses.
func (a Array) CensusCost(c fault.Census) Cost {
	return a.vector(c.Total())
}
