package systolic

import (
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/winograd"
)

func TestGEMMBasics(t *testing.T) {
	a := Array{Rows: 16, Cols: 16, VectorLanes: 16}
	c := a.GEMM(100, 16, 16)
	if c.MACs != 100*16*16 {
		t.Errorf("MACs = %d", c.MACs)
	}
	// One fold: (100 + 16 + 16 - 2) + 16 prime = 146 cycles.
	if c.Cycles != 146 {
		t.Errorf("cycles = %d, want 146", c.Cycles)
	}
	if u := c.Utilization(a); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if got := a.GEMM(0, 5, 5); got != (Cost{}) {
		t.Errorf("degenerate GEMM = %+v", got)
	}
}

func TestGEMMFolds(t *testing.T) {
	a := Array{Rows: 16, Cols: 16, VectorLanes: 16}
	one := a.GEMM(10, 16, 16)
	four := a.GEMM(10, 32, 32)
	// 4x the folds, same single prime load.
	if four.Cycles != 4*(one.Cycles-16)+16 {
		t.Errorf("2x2 folds: %d cycles, want %d", four.Cycles, 4*(one.Cycles-16)+16)
	}
}

func TestVectorRounding(t *testing.T) {
	a := Array{Rows: 4, Cols: 4, VectorLanes: 8}
	if c := a.vector(17); c.Cycles != 3 || c.VectorOps != 17 {
		t.Errorf("vector(17) = %+v", c)
	}
}

func TestWinogradFasterThanDirectOn3x3(t *testing.T) {
	a := DNNEngine16
	in := tensor.Shape{N: 1, C: 64, H: 32, W: 32}
	st := a.ConvDirect(in, 64, 3, 3, 1, 1)
	wg := a.ConvWinograd(in, 64, 3, 3, 1, 1, winograd.F2)
	if wg.Cycles >= st.Cycles {
		t.Errorf("winograd %d cycles not below direct %d", wg.Cycles, st.Cycles)
	}
	if wg.MACs >= st.MACs {
		t.Errorf("winograd MACs %d not below direct %d", wg.MACs, st.MACs)
	}
}

func TestNetworkCostAllModels(t *testing.T) {
	// Runtime estimates feed the energy study, which models the paper's
	// full-size networks: at full channel counts the transform-domain GEMMs
	// amortize the array fill/drain and winograd wins cycles (at tiny scaled
	// widths the skinny GEMMs would not — the model captures that fidelity).
	a := DNNEngine16
	for name, arch := range models.Zoo(models.Options{}) {
		st := a.NetworkCost(arch, nn.Direct, nil, 16)
		wg := a.NetworkCost(arch, nn.Winograd, winograd.F2, 16)
		if st.Cycles <= 0 || wg.Cycles <= 0 {
			t.Fatalf("%s: non-positive cycles", name)
		}
		// Winograd must win on the stride-1 3x3-dominated networks the
		// paper's energy study uses (VGG19; GoogLeNet likewise). On the
		// ImageNet models the DWM decomposition of the stride-2 stems eats
		// into the gain — the model reports that honestly, so there we only
		// require the gap to stay bounded.
		switch name {
		case "vgg19", "googlenet":
			if wg.Cycles >= st.Cycles {
				t.Errorf("%s: winograd cycles %d not below direct %d", name, wg.Cycles, st.Cycles)
			}
		default:
			if float64(wg.Cycles) > 1.5*float64(st.Cycles) {
				t.Errorf("%s: winograd cycles %d unreasonably above direct %d", name, wg.Cycles, st.Cycles)
			}
		}
		if st.MACs <= 0 || wg.SRAMReads <= 0 {
			t.Errorf("%s: missing cost components: %+v %+v", name, st, wg)
		}
	}
}

func TestNumUnitsMatchesDWM(t *testing.T) {
	cases := []struct{ k, s, want int }{
		{3, 1, 1}, {5, 1, 4}, {7, 2, 9}, {3, 2, 4}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := winograd.NumUnits(c.k, c.k, c.s, 3); got != c.want {
			t.Errorf("NumUnits(k=%d,s=%d) = %d, want %d", c.k, c.s, got, c.want)
		}
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Cycles: 1, MACs: 2, VectorOps: 3, SRAMReads: 4}
	b := a.Add(a)
	if b != (Cost{2, 4, 6, 8}) {
		t.Errorf("Add = %+v", b)
	}
}

// TestGoldenDNNEngine16Costs pins the DNNEngine16 cost model for one direct
// and one winograd convolution (a mid-network 3x3 and the DWM-decomposed
// 7x7 stride-2 stem), so schedule-mapping refactors cannot silently shift
// the cycle/MAC/SRAM numbers the energy study (Figs. 6-7) and the hwfault
// schedule rest on. If a deliberate cost-model change lands, re-derive the
// constants and say why in the commit.
func TestGoldenDNNEngine16Costs(t *testing.T) {
	a := DNNEngine16
	mid := tensor.Shape{N: 1, C: 64, H: 56, W: 56}
	stem := tensor.Shape{N: 1, C: 3, H: 224, W: 224}
	cases := []struct {
		name string
		got  Cost
		want Cost
	}{
		{"conv3x3-direct", a.ConvDirect(mid, 128, 3, 3, 1, 1),
			Cost{Cycles: 911824, MACs: 231211008, SRAMReads: 14524416}},
		{"conv3x3-winograd", a.ConvWinograd(mid, 128, 3, 3, 1, 1, winograd.F2),
			Cost{Cycles: 667904, MACs: 102760448, VectorOps: 4014080, SRAMReads: 6553600}},
		{"conv7x7s2-direct", a.ConvDirect(stem, 64, 7, 7, 2, 3),
			Cost{Cycles: 502976, MACs: 118013952, SRAMReads: 7386112}},
		{"conv7x7s2-winograd", a.ConvWinograd(stem, 64, 7, 7, 2, 3, winograd.F2),
			Cost{Cycles: 5106176, MACs: 86704128, VectorOps: 52484096, SRAMReads: 5566464}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: cost %+v, want pinned %+v", c.name, c.got, c.want)
		}
	}
}
