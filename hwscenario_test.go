package winofault

import (
	"context"
	"strings"
	"testing"
)

func scenarioConfig(engine Engine, sc *Scenario) Config {
	cfg := testConfig(engine)
	cfg.Samples = 4
	cfg.Scenario = sc
	return cfg
}

// TestScenarioConfigValidation: New must reject scenarios that cannot run —
// unknown kinds, non-result semantics, geometry outside the array — with
// descriptive errors instead of deep panics.
func TestScenarioConfigValidation(t *testing.T) {
	bad := map[string]Config{
		"unknown kind": scenarioConfig(Winograd, &Scenario{Kind: "cosmic"}),
		"pe outside":   scenarioConfig(Winograd, &Scenario{Kind: "stuckpe", Row: 99}),
		"semantics": func() Config {
			cfg := scenarioConfig(Winograd, &Scenario{Kind: "burst"})
			cfg.Semantics = OperandFlip
			return cfg
		}(),
		"bit vs precision": func() Config {
			cfg := scenarioConfig(Direct, &Scenario{Kind: "stuckpe", Bit: 20})
			cfg.Precision = Int8
			return cfg
		}(),
	}
	for name, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid scenario config", name)
		}
	}
}

// TestScenarioSweepMatchesSweepHW: baking a scenario into the Config and
// overriding per-sweep via SweepHW are the same campaign — bit-identical
// points — and both reject the fault-free BER 0 that the unit-space
// contract would silently skip.
func TestScenarioSweepMatchesSweepHW(t *testing.T) {
	sc := Scenario{Kind: "stuckpe", Row: 0, Col: 0, Bit: 24}
	bers := []float64{1e-10, 1e-9}

	baked, err := New(scenarioConfig(Winograd, &sc))
	if err != nil {
		t.Fatal(err)
	}
	want, err := baked.SweepCtx(context.Background(), bers)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := New(scenarioConfig(Winograd, nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := plain.SweepHW(sc, bers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: SweepHW %+v != Config.Scenario %+v", i, got[i], want[i])
		}
	}

	if _, err := baked.SweepCtx(context.Background(), []float64{0, 1e-9}); err == nil ||
		!strings.Contains(err.Error(), "positive") {
		t.Errorf("scenario sweep accepted BER 0 (err %v)", err)
	}
	if _, err := plain.SweepHW(sc, []float64{0}); err == nil {
		t.Error("SweepHW accepted BER 0")
	}
	if _, err := plain.SweepHW(Scenario{Kind: "nope"}, bers); err == nil {
		t.Error("SweepHW accepted an unknown scenario kind")
	}

	// A non-result-semantics system must refuse the per-sweep override too:
	// the injector would otherwise silently ignore the scenario and hand
	// back statistical results labeled as a stuck-at sweep.
	neuronCfg := scenarioConfig(Winograd, nil)
	neuronCfg.Semantics = NeuronFlip
	neuron, err := New(neuronCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := neuron.SweepHW(sc, bers); err == nil ||
		!strings.Contains(err.Error(), "semantics") {
		t.Errorf("SweepHW on a neuron-semantics system returned %v, want a semantics error", err)
	}

	// The error-dropping convenience wrappers must not swallow the
	// validation: they panic instead of returning a fake measurement.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Sweep with BER 0 on a scenario system did not panic")
			}
		}()
		baked.Sweep([]float64{0})
	}()
}

// TestScenarioShardedSweepBitIdentical: the acceptance invariant for
// distribution — a stuck-at-PE sweep sharded over its unit index space by
// independent Systems reduces to the unsharded bytes.
func TestScenarioShardedSweepBitIdentical(t *testing.T) {
	sc := &Scenario{Kind: "stuckpe", Row: 0, Col: 0, Bit: 24}
	bers := []float64{1e-10, 1e-9}
	cfg := scenarioConfig(Winograd, sc)
	cfg.Rounds = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.SweepCtx(context.Background(), bers)
	if err != nil {
		t.Fatal(err)
	}
	total := sys.SweepUnits(bers)
	var counts []int
	for lo := 0; lo < total; lo++ {
		remote, err := New(cfg) // fresh system per shard, as a worker would
		if err != nil {
			t.Fatal(err)
		}
		part, err := remote.SweepUnitCounts(context.Background(), bers, lo, lo+1)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, part...)
	}
	got, err := sys.SweepFromCounts(bers, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: sharded %+v != local %+v", i, got[i], want[i])
		}
	}
}

// TestScenarioNormalized pins the normalization contract the cache key
// depends on: defaults applied, kind-irrelevant fields zeroed.
func TestScenarioNormalized(t *testing.T) {
	got, err := Scenario{Kind: "burst", Row: 7, V: 0.8}.Normalized(Int16)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Scenario{Kind: "burst", Span: 64}) {
		t.Errorf("burst normalized to %+v", got)
	}
	got, err = Scenario{Kind: "voltregion", Row1: 3, Col1: 3, V: 0.75, Span: 9}.Normalized(Int16)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Scenario{Kind: "voltregion", Row1: 3, Col1: 3, V: 0.75}) {
		t.Errorf("voltregion normalized to %+v", got)
	}
	if _, err := (Scenario{Kind: "stuckpe", Bit: 16}).Normalized(Int8); err == nil {
		t.Error("bit 16 accepted for the int8 product register")
	}
	// Any negative sampled coordinate clamps to exactly -1.
	got, err = Scenario{Kind: "stuckpe", Row: -7, Col: -2, Bit: -3}.Normalized(Int16)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Scenario{Kind: "stuckpe", Row: -1, Col: -1, Bit: -1}) {
		t.Errorf("negative coordinates normalized to %+v, want all -1", got)
	}
}
