package winofault

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/kernel"
)

// This file is the thin client side of the campaign service (cmd/wfserve,
// internal/service): the wire types shared by client and server, and an
// HTTP client obtained with Dial. The server imports these types, so the
// request/response schema lives in exactly one place.

// CampaignRequest is the wire form of one campaign submission. The zero
// value of every field means "the platform default" (same defaults as
// Config), so a request that spells a default explicitly is the same
// campaign — and hits the same cache entry — as one that omits it.
//
// Everything except Workers, DeltaExec, Backend and Priority contributes to
// the result; those four are scheduling/performance hints (results are
// bit-identical for any worker count, with delta execution on or off, and
// under every compute backend) and are therefore excluded from the service's
// cache key.
type CampaignRequest struct {
	// Model is one of "vgg19", "resnet50", "densenet169", "googlenet".
	Model string `json:"model,omitempty"`
	// Engine is "direct" (default) or "winograd".
	Engine string `json:"engine,omitempty"`
	// Precision is "int16" (default) or "int8".
	Precision string `json:"precision,omitempty"`
	// Semantics is "result" (default), "operand" or "neuron".
	Semantics string `json:"semantics,omitempty"`
	// WidthMult scales channel counts (default 0.125).
	WidthMult float64 `json:"widthMult,omitempty"`
	// InputSize is the input resolution (default 32).
	InputSize int `json:"inputSize,omitempty"`
	// Samples is the number of evaluation images (default 24).
	Samples int `json:"samples,omitempty"`
	// Rounds is the Monte-Carlo rounds per accuracy point (default 2).
	Rounds int `json:"rounds,omitempty"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// TileF4 switches winograd to F(4x4,3x3).
	TileF4 bool `json:"tileF4,omitempty"`
	// BERs is the bit-error-rate sweep, in order. Required.
	BERs []float64 `json:"bers"`
	// Layers additionally requests the per-layer sensitivity analysis at the
	// middle BER of the sweep (BERs[len/2], the wfsim -layers convention).
	Layers bool `json:"layers,omitempty"`
	// Protection optionally applies a fine-grained TMR plan before the
	// campaign: conv layer name -> protected [mul, add] fractions in [0,1].
	Protection map[string][2]float64 `json:"protection,omitempty"`
	// Scenario optionally locates the campaign's faults on the accelerator
	// PE array (stuck PE, SEU burst, voltage-stressed region). Requires
	// result semantics and strictly positive BERs. Absent scenarios leave
	// the cache key byte-identical to the pre-scenario schema.
	Scenario *Scenario `json:"scenario,omitempty"`
	// Workers caps the campaign's scheduler parallelism on the server
	// (bounded by the server's own per-job budget; 0 = server default).
	Workers int `json:"workers,omitempty"`
	// DeltaExec toggles the fault-cone delta-execution fast path on
	// whichever process runs the campaign (absent = enabled). Results are
	// bit-identical with it on or off, so like Workers it is a scheduling
	// hint excluded from the service's cache key — a request spelling
	// "deltaExec": false addresses the same cache entry as one omitting it.
	DeltaExec *bool `json:"deltaExec,omitempty"`
	// Backend names the compute backend that runs the fault-free hot paths
	// on the serving process: "scalar" or "blocked" ("" = process default).
	// Backends are bit-identical by contract, so like Workers and DeltaExec
	// it is excluded from the cache key; unknown names are rejected at
	// submission time.
	Backend string `json:"backend,omitempty"`
	// Priority orders this campaign within the submitting tenant's queue
	// (0 = lowest and default, 9 = highest; out-of-range values clamp).
	// Priorities never cross tenant boundaries — fair-share weights decide
	// between tenants — and like Workers this is a scheduling hint excluded
	// from the cache key.
	Priority int `json:"priority,omitempty"`
}

// SystemConfig translates the wire request into the facade Config, rejecting
// unknown enum spellings. It does not apply defaults beyond Config's own
// zero-value handling, so translation never changes campaign identity.
func (r CampaignRequest) SystemConfig() (Config, error) {
	cfg := Config{
		Model:     r.Model,
		WidthMult: r.WidthMult,
		InputSize: r.InputSize,
		Samples:   r.Samples,
		Rounds:    r.Rounds,
		Seed:      r.Seed,
		TileF4:    r.TileF4,
		Workers:   r.Workers,
		Scenario:  r.Scenario,
		DeltaExec: r.DeltaExec,
		Backend:   r.Backend,
	}
	switch r.Engine {
	case "", "direct":
	case "winograd":
		cfg.Engine = Winograd
	default:
		return cfg, fmt.Errorf("winofault: unknown engine %q (want direct or winograd)", r.Engine)
	}
	switch r.Precision {
	case "", "int16":
	case "int8":
		cfg.Precision = Int8
	default:
		return cfg, fmt.Errorf("winofault: unknown precision %q (want int16 or int8)", r.Precision)
	}
	switch r.Semantics {
	case "", "result":
	case "operand":
		cfg.Semantics = OperandFlip
	case "neuron":
		cfg.Semantics = NeuronFlip
	default:
		return cfg, fmt.Errorf("winofault: unknown semantics %q (want result, operand or neuron)", r.Semantics)
	}
	// Reject unknown backend names here so the service 400s them at submit
	// time instead of keying a job that can only fail on the worker.
	if _, err := kernel.Get(r.Backend); err != nil {
		return cfg, fmt.Errorf("winofault: %w", err)
	}
	return cfg, nil
}

// CampaignResult is the wire form of a finished campaign: the sweep, plus
// the layer-sensitivity analysis when the request asked for it. The server
// caches and serves the marshaled bytes verbatim, so two identical requests
// receive byte-identical results.
type CampaignResult struct {
	Points []Point `json:"points"`
	// Baseline and Layers are present only for Layers requests.
	Baseline float64            `json:"baseline,omitempty"`
	Layers   []LayerSensitivity `json:"layers,omitempty"`
}

// Campaign states reported by CampaignStatus.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// CampaignStatus is the service's envelope for a submitted campaign.
type CampaignStatus struct {
	// ID is the campaign's content address (the canonical request hash);
	// identical requests share one ID.
	ID    string `json:"id"`
	State string `json:"state"`
	// Cached reports that the result was served from the content-addressed
	// cache without running the campaign.
	Cached bool `json:"cached"`
	// Done/Total track (campaign, round) work units of the running batch.
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
	// Result holds the raw CampaignResult bytes once State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// Client is a thin HTTP client for a wfserve campaign server.
//
// Idempotent GETs (Status, Result) retry transparently on connection errors
// and 5xx responses with exponential backoff, honoring the caller's context
// — a coordinator mid-restart or a load balancer hiccup costs latency, not
// an error. Submissions never retry implicitly: POST /campaigns is safe to
// repeat (content addressing dedups it), but that is the caller's call.
type Client struct {
	base *url.URL
	hc   *http.Client
	// apiKey, when non-empty, authenticates every request against a
	// multi-tenant server (sent as an Authorization bearer token).
	apiKey string
	// retryAttempts bounds tries for idempotent GETs (default 4).
	retryAttempts int
	// retryBase is the first backoff delay; it doubles per attempt
	// (default 100ms, so at most ~700ms of waiting across 4 attempts).
	retryBase time.Duration
}

// DialOption configures a Client before Dial's health check runs.
type DialOption func(*Client)

// WithAPIKey authenticates the client as a tenant of a server running with
// a key table (wfserve -keys). Open servers ignore the header.
func WithAPIKey(key string) DialOption {
	return func(c *Client) { c.apiKey = key }
}

// Dial validates the server URL and checks the server is reachable via its
// health endpoint. An empty scheme defaults to http.
func Dial(rawURL string, opts ...DialOption) (*Client, error) {
	if !strings.Contains(rawURL, "://") {
		rawURL = "http://" + rawURL
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("winofault: dial %q: %w", rawURL, err)
	}
	c := &Client{base: u, hc: &http.Client{}, retryAttempts: 4, retryBase: 100 * time.Millisecond}
	for _, opt := range opts {
		opt(c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint("/healthz"), nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("winofault: dial %s: %w", u, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("winofault: dial %s: health check returned %s", u, resp.Status)
	}
	return c, nil
}

// authorize attaches the client's API key, if any.
func (c *Client) authorize(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
}

// endpoint joins a "/path?query" suffix onto the base URL.
func (c *Client) endpoint(pathAndQuery string) string {
	u := *c.base
	path, query, _ := strings.Cut(pathAndQuery, "?")
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = query
	return u.String()
}

func decodeStatus(resp *http.Response) (*CampaignStatus, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("winofault: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("winofault: bad status payload: %w", err)
	}
	return &st, nil
}

func (c *Client) post(ctx context.Context, path string, req CampaignRequest) (*CampaignStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(path), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.authorize(hreq)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	return decodeStatus(resp)
}

// getRetry performs an idempotent GET with bounded exponential-backoff
// retry on connection errors and 5xx responses. Client errors (4xx) return
// immediately — repeating them cannot help. The caller owns the response
// body on success.
func (c *Client) getRetry(ctx context.Context, pathAndQuery string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.retryAttempts; attempt++ {
		if attempt > 0 {
			backoff := c.retryBase << (attempt - 1)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("winofault: %w (last attempt: %v)", ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint(pathAndQuery), nil)
		if err != nil {
			return nil, err
		}
		c.authorize(hreq)
		resp, err := c.hc.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("winofault: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("winofault: giving up after %d attempts: %w", c.retryAttempts, lastErr)
}

// Submit enqueues a campaign without waiting for it and returns its status
// (already "done" with the result attached on a cache hit).
func (c *Client) Submit(ctx context.Context, req CampaignRequest) (*CampaignStatus, error) {
	return c.post(ctx, "/campaigns", req)
}

// Status polls a submitted campaign by ID, retrying transient failures.
func (c *Client) Status(ctx context.Context, id string) (*CampaignStatus, error) {
	resp, err := c.getRetry(ctx, "/campaigns/"+url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	return decodeStatus(resp)
}

// Result fetches a finished campaign's raw result bytes — exactly the
// content-addressed cache entry, so identical campaigns yield byte-identical
// payloads. Transient failures retry like Status.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.getRetry(ctx, "/campaigns/"+url.PathEscape(id)+"/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("winofault: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Sweep submits a campaign and blocks until the server finishes it (or ctx
// is canceled), returning the parsed result together with its status
// envelope. The status reports whether the result came from the server's
// content-addressed cache.
func (c *Client) Sweep(ctx context.Context, req CampaignRequest) (*CampaignResult, *CampaignStatus, error) {
	st, err := c.post(ctx, "/campaigns?wait=1", req)
	if err != nil {
		return nil, nil, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("winofault: campaign %s ended %s: %s", st.ID, st.State, st.Error)
	}
	var res CampaignResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		return nil, st, fmt.Errorf("winofault: bad result payload: %w", err)
	}
	return &res, st, nil
}
