package winofault

import (
	"bytes"
	"strings"
	"testing"
)

func testConfig(engine Engine) Config {
	return Config{
		Model:     "vgg19",
		Engine:    engine,
		WidthMult: 0.125,
		InputSize: 16,
		Samples:   8,
		Rounds:    1,
		Seed:      3,
	}
}

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.GoldenPredictions()); got != 24 {
		t.Errorf("default samples = %d, want 24", got)
	}
	if acc := sys.Accuracy(0); acc != 1 {
		t.Errorf("accuracy at BER 0 = %v", acc)
	}
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New(Config{Model: "alexnet"}); err == nil {
		t.Error("unknown model did not error")
	}
}

func TestSweepAndOpCounts(t *testing.T) {
	st, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	wg, err := New(testConfig(Winograd))
	if err != nil {
		t.Fatal(err)
	}
	_, _, stMul, _ := st.OpCounts()
	_, _, wgMul, _ := wg.OpCounts()
	if wgMul >= stMul {
		t.Errorf("winograd full-size muls %d not below direct %d", wgMul, stMul)
	}
	pts := st.Sweep([]float64{0, 1e-8})
	if len(pts) != 2 || pts[0].Accuracy != 1 {
		t.Errorf("sweep malformed: %+v", pts)
	}
	if pts[1].Accuracy > pts[0].Accuracy {
		t.Error("accuracy rose with BER")
	}
}

func TestLayerSensitivities(t *testing.T) {
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	base, layers := sys.LayerSensitivities(3e-9)
	if base < 0 || base > 1 {
		t.Errorf("baseline = %v", base)
	}
	if len(layers) == 0 {
		t.Fatal("no layers")
	}
	for _, l := range layers {
		if l.Layer == "" || l.Muls <= 0 {
			t.Errorf("malformed layer entry: %+v", l)
		}
	}
}

func TestOptimizeTMR(t *testing.T) {
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	const ber = 3e-9
	before := sys.Accuracy(ber)
	plan := sys.OptimizeTMR(ber, before+(1-before)*0.5)
	if plan.Accuracy < before-0.2 {
		t.Errorf("plan accuracy %v collapsed below unprotected %v", plan.Accuracy, before)
	}
	if plan.OverheadFraction < 0 || plan.OverheadFraction > 1 {
		t.Errorf("overhead fraction %v out of range", plan.OverheadFraction)
	}
}

func TestExploreEnergy(t *testing.T) {
	sys, err := New(testConfig(Winograd))
	if err != nil {
		t.Fatal(err)
	}
	pts := sys.ExploreEnergy([]float64{1, 10})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Voltage < 0.7 || p.Voltage > 0.9 {
			t.Errorf("voltage %v out of range", p.Voltage)
		}
		if p.NormalizedEnergy <= 0 || p.NormalizedEnergy > 1.01 {
			t.Errorf("energy %v out of range", p.NormalizedEnergy)
		}
	}
	if pts[1].NormalizedEnergy > pts[0].NormalizedEnergy+1e-9 {
		t.Error("looser loss budget should not cost more energy")
	}
}

func TestRunExperimentBudgets(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("tile", "smoke", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-tile") {
		t.Error("experiment output missing figure id")
	}
	if err := RunExperiment("fig1", "nope", &buf); err == nil {
		t.Error("bad budget did not error")
	}
	if err := RunExperiment("nope", "smoke", &buf); err == nil {
		t.Error("bad id did not error")
	}
}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) < 8 {
		t.Errorf("expected at least 8 experiments, got %v", ids)
	}
}

func TestSemanticsSelection(t *testing.T) {
	for _, sem := range []Semantics{ResultFlip, OperandFlip, NeuronFlip} {
		cfg := testConfig(Direct)
		cfg.Semantics = sem
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if acc := sys.Accuracy(1e-9); acc < 0 || acc > 1 {
			t.Errorf("semantics %v: accuracy %v", sem, acc)
		}
	}
}

func TestPrecisionAndTileSelection(t *testing.T) {
	cfg := testConfig(Winograd)
	cfg.Precision = Int8
	cfg.TileF4 = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := sys.Accuracy(0); acc != 1 {
		t.Errorf("golden accuracy = %v", acc)
	}
}
