package winofault

import (
	"bytes"
	"strings"
	"testing"
)

func testConfig(engine Engine) Config {
	return Config{
		Model:     "vgg19",
		Engine:    engine,
		WidthMult: 0.125,
		InputSize: 16,
		Samples:   8,
		Rounds:    1,
		Seed:      3,
	}
}

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.GoldenPredictions()); got != 24 {
		t.Errorf("default samples = %d, want 24", got)
	}
	if acc := sys.Accuracy(0); acc != 1 {
		t.Errorf("accuracy at BER 0 = %v", acc)
	}
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New(Config{Model: "alexnet"}); err == nil {
		t.Error("unknown model did not error")
	}
}

func TestSweepAndOpCounts(t *testing.T) {
	st, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	wg, err := New(testConfig(Winograd))
	if err != nil {
		t.Fatal(err)
	}
	_, _, stMul, _ := st.OpCounts()
	_, _, wgMul, _ := wg.OpCounts()
	if wgMul >= stMul {
		t.Errorf("winograd full-size muls %d not below direct %d", wgMul, stMul)
	}
	pts := st.Sweep([]float64{0, 1e-8})
	if len(pts) != 2 || pts[0].Accuracy != 1 {
		t.Errorf("sweep malformed: %+v", pts)
	}
	if pts[1].Accuracy > pts[0].Accuracy {
		t.Error("accuracy rose with BER")
	}
}

func TestLayerSensitivities(t *testing.T) {
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	base, layers := sys.LayerSensitivities(3e-9)
	if base < 0 || base > 1 {
		t.Errorf("baseline = %v", base)
	}
	if len(layers) == 0 {
		t.Fatal("no layers")
	}
	for _, l := range layers {
		if l.Layer == "" || l.Muls <= 0 {
			t.Errorf("malformed layer entry: %+v", l)
		}
	}
}

func TestOptimizeTMR(t *testing.T) {
	sys, err := New(testConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	const ber = 3e-9
	before := sys.Accuracy(ber)
	plan := sys.OptimizeTMR(ber, before+(1-before)*0.5)
	if plan.Accuracy < before-0.2 {
		t.Errorf("plan accuracy %v collapsed below unprotected %v", plan.Accuracy, before)
	}
	if plan.OverheadFraction < 0 || plan.OverheadFraction > 1 {
		t.Errorf("overhead fraction %v out of range", plan.OverheadFraction)
	}
}

func TestExploreEnergy(t *testing.T) {
	sys, err := New(testConfig(Winograd))
	if err != nil {
		t.Fatal(err)
	}
	pts := sys.ExploreEnergy([]float64{1, 10})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Voltage < 0.7 || p.Voltage > 0.9 {
			t.Errorf("voltage %v out of range", p.Voltage)
		}
		if p.NormalizedEnergy <= 0 || p.NormalizedEnergy > 1.01 {
			t.Errorf("energy %v out of range", p.NormalizedEnergy)
		}
	}
	if pts[1].NormalizedEnergy > pts[0].NormalizedEnergy+1e-9 {
		t.Error("looser loss budget should not cost more energy")
	}
}

func TestRunExperimentBudgets(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("tile", "smoke", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-tile") {
		t.Error("experiment output missing figure id")
	}
	if err := RunExperiment("fig1", "nope", &buf); err == nil {
		t.Error("bad budget did not error")
	}
	if err := RunExperiment("nope", "smoke", &buf); err == nil {
		t.Error("bad id did not error")
	}
}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) < 8 {
		t.Errorf("expected at least 8 experiments, got %v", ids)
	}
}

func TestSemanticsSelection(t *testing.T) {
	for _, sem := range []Semantics{ResultFlip, OperandFlip, NeuronFlip} {
		cfg := testConfig(Direct)
		cfg.Semantics = sem
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if acc := sys.Accuracy(1e-9); acc < 0 || acc > 1 {
			t.Errorf("semantics %v: accuracy %v", sem, acc)
		}
	}
}

// TestFormatSweepGoldenBytes pins the exact rendered bytes of the canonical
// accuracy table — the one renderer wfsim stdout and the wfserve
// `?format=text` endpoint share, and that CI diffs byte-for-byte between
// CLI, server and distributed runs. Any drift in the header, column widths,
// float formatting or line endings fails here before it fails in CI.
func TestFormatSweepGoldenBytes(t *testing.T) {
	var b strings.Builder
	FormatSweep(&b, []Point{
		{BER: 0, Accuracy: 1},
		{BER: 1e-10, Accuracy: 0.96875},
		{BER: 3.5e-9, Accuracy: 0.5},
		{BER: 1e-7, Accuracy: 0.0625},
		{BER: 0.25, Accuracy: 0},
	})
	want := "BER          accuracy%\n" +
		"0            100.00\n" +
		"1e-10        96.88\n" +
		"3.5e-09      50.00\n" +
		"1e-07        6.25\n" +
		"0.25         0.00\n"
	if b.String() != want {
		t.Errorf("FormatSweep bytes drifted:\n got %q\nwant %q", b.String(), want)
	}
}

// TestFormatSweepGoldenCampaigns pins rendered tables for real campaigns —
// a protected winograd VGG19 and a second model — so the golden bytes cover
// the protection path and multi-model rendering, not just the formatter.
// (Accuracies here are bit-exact by the scheduler's determinism guarantee;
// cf. TestGoldenAccuracyFixture.)
func TestFormatSweepGoldenCampaigns(t *testing.T) {
	bers := []float64{1e-10, 1e-9, 1e-8}
	cases := []struct {
		name       string
		cfg        Config
		protection map[string][2]float64
		want       string
	}{
		{
			name: "vgg19-winograd-protected",
			cfg:  Config{Model: "vgg19", Engine: Winograd, InputSize: 16, Samples: 8, Rounds: 2, Seed: 3},
			protection: map[string][2]float64{
				"conv1_1": {1, 0.5},
				"conv1_2": {0.75, 0.25},
			},
			want: "BER          accuracy%\n1e-10        100.00\n1e-09        87.50\n1e-08        62.50\n",
		},
		{
			name: "googlenet-direct",
			cfg:  Config{Model: "googlenet", Engine: Direct, InputSize: 16, Samples: 8, Rounds: 2, Seed: 3},
			want: "BER          accuracy%\n1e-10        81.25\n1e-09        62.50\n1e-08        62.50\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.protection != nil {
				if err := sys.SetProtection(tc.protection); err != nil {
					t.Fatal(err)
				}
			}
			var b strings.Builder
			FormatSweep(&b, sys.Sweep(bers))
			if b.String() != tc.want {
				t.Errorf("rendered table drifted:\n got %q\nwant %q", b.String(), tc.want)
			}
		})
	}
}

func TestPrecisionAndTileSelection(t *testing.T) {
	cfg := testConfig(Winograd)
	cfg.Precision = Int8
	cfg.TileF4 = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := sys.Accuracy(0); acc != 1 {
		t.Errorf("golden accuracy = %v", acc)
	}
}
